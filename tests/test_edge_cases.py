"""Edge-case tests across modules (branches thinner suites miss)."""

import numpy as np
import pytest

from repro.host import Cluster
from repro.rnic import cx5
from repro.verbs import ImmediateEngine


def make_conn(**kwargs):
    cluster = Cluster(seed=0)
    server = cluster.add_host("server", spec=cx5())
    client = cluster.add_host("client", spec=cx5())
    conn = cluster.connect(client, server, **kwargs)
    mr = server.reg_mr(4096)
    return cluster, server, conn, mr


class TestConnectionHelpers:
    def test_post_atomic_requires_operands(self):
        _, _, conn, mr = make_conn()
        with pytest.raises(ValueError):
            conn.post_atomic(mr, 0)
        with pytest.raises(ValueError):
            conn.post_atomic(mr, 0, compare=1)  # swap missing

    def test_duplicate_host_name_rejected(self):
        cluster = Cluster(seed=0)
        cluster.add_host("a", spec=cx5())
        with pytest.raises(ValueError):
            cluster.add_host("a", spec=cx5())

    def test_run_for_advances_clock(self):
        cluster = Cluster(seed=0)
        cluster.run_for(12345.0)
        assert cluster.sim.now == 12345.0


class TestImmediateEngine:
    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            ImmediateEngine(latency=-1.0)

    def test_clock_advances_per_operation(self):
        from repro.verbs import AccessFlags, Context, Opcode, SendWR

        engine = ImmediateEngine(latency=10.0)
        a, b = Context(engine=engine), Context(engine=engine)
        qa = a.create_qp(a.alloc_pd(), a.create_cq())
        qb = b.create_qp(b.alloc_pd(), b.create_cq())
        qa.connect(qb)
        mr = b.reg_mr(b.pds[0], 64, access=AccessFlags.all_remote())
        local = a.reg_mr(a.pds[0], 64)
        for expected in (10.0, 20.0):
            qa.post_send(SendWR(opcode=Opcode.RDMA_READ,
                                local_addr=local.addr, length=8,
                                remote_addr=mr.addr, rkey=mr.rkey))
            assert engine.now == expected


class TestFingerprintCalibration:
    def test_flat_trace_rejected(self):
        from repro.side.fingerprint import _extract_core

        with pytest.raises(ValueError):
            _extract_core("shuffle", np.ones(50) * 100.0)

    def test_join_core_without_three_edges_falls_back(self):
        from repro.side.fingerprint import _extract_core

        values = np.concatenate([np.ones(10) * 100, np.ones(30) * 10])
        core = _extract_core("join", values)
        assert 0 < len(core) <= len(values)


class TestTrainerExtras:
    def test_log_callback_invoked(self):
        from repro.ml import Adam, Trainer
        from repro.ml.layers import Dense, Sequential

        model = Sequential(Dense(2, 2))
        trainer = Trainer(model, Adam(model), batch_size=4)
        seen = []
        trainer.fit(np.zeros((8, 2)), np.zeros(8, dtype=int), epochs=2,
                    log=seen.append)
        assert len(seen) == 2
        assert seen[0].epoch == 0
        assert trainer.history == seen

    def test_resnet_bad_head_rejected(self):
        from repro.ml import ResNet1d

        with pytest.raises(ValueError):
            ResNet1d(in_channels=1, num_classes=2, head="avgmax")


class TestMultiClientTreeConsistency:
    def test_interleaved_clients_leave_valid_tree(self):
        from repro.apps.sherman import (
            ShermanClient,
            ShermanMemoryServer,
            validate_tree,
        )
        from repro.sim.units import MEBIBYTE

        cluster = Cluster(seed=0)
        ms = cluster.add_host("ms", spec=cx5())
        server = ShermanMemoryServer(ms, region_size=16 * MEBIBYTE)
        clients = []
        for i in range(3):
            cs = cluster.add_host(f"cs{i}", spec=cx5())
            clients.append(ShermanClient(cluster.connect(cs, ms), server,
                                         client_id=i + 1))
        rng = np.random.default_rng(1)
        live = set()
        for step in range(300):
            client = clients[step % 3]
            key = int(rng.integers(1, 500))
            if rng.random() < 0.7:
                client.insert(key, b"v")
                live.add(key)
            else:
                client.delete(key)
                live.discard(key)
        stats = validate_tree(server)
        assert stats.entries == len(live)
