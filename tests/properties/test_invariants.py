"""Property tests for simulator and model invariants."""

import dataclasses

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rnic import BandwidthAllocator, FluidFlow, TranslationUnit, cx5
from repro.sim import Simulator
from repro.verbs.enums import Opcode


class TestSimulatorInvariants:
    @settings(max_examples=100, deadline=None)
    @given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6,
                                     allow_nan=False), max_size=50))
    def test_events_fire_in_nondecreasing_time(self, delays):
        sim = Simulator()
        fired: list[float] = []
        for delay in delays:
            sim.schedule(delay, lambda: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @settings(max_examples=50, deadline=None)
    @given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6,
                                     allow_nan=False), min_size=1,
                           max_size=30))
    def test_nested_scheduling_preserves_order(self, delays):
        sim = Simulator()
        fired = []

        def chain(remaining):
            fired.append(sim.now)
            if remaining:
                sim.schedule(remaining[0], chain, remaining[1:])

        sim.schedule(0.0, chain, list(delays))
        sim.run()
        assert fired == sorted(fired)


class TestTranslationInvariants:
    @settings(max_examples=50, deadline=None)
    @given(requests=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
            st.sampled_from(["mrA", "mrB"]),
            st.integers(min_value=0, max_value=2**20),
            st.sampled_from([8, 64, 512, 1024]),
        ),
        min_size=1, max_size=60,
    ))
    def test_service_is_causal_and_positive(self, requests):
        unit = TranslationUnit(cx5(), rng=np.random.default_rng(0))
        now = 0.0
        last_finish = 0.0
        for gap, mr, offset, size in requests:
            now += gap
            finish, breakdown = unit.admit(now, mr, offset, size,
                                           want_breakdown=True)
            assert finish > now                      # causality
            assert finish >= last_finish             # pipeline FIFO
            assert breakdown.service > 0.0
            assert breakdown.bank_wait >= 0.0
            last_finish = finish

    def test_same_seed_same_latencies(self):
        def run(seed):
            unit = TranslationUnit(cx5(), rng=np.random.default_rng(seed))
            out = []
            now = 0.0
            for i in range(50):
                now, _ = unit.admit(now, "mr", (i * 192) % 4096, 64)
                out.append(now)
            return out

        assert run(7) == run(7)
        assert run(7) != run(8)


class TestAllocatorInvariants:
    flows = st.lists(
        st.builds(
            FluidFlow,
            opcode=st.sampled_from([Opcode.RDMA_READ, Opcode.RDMA_WRITE,
                                    Opcode.ATOMIC_FETCH_ADD]),
            msg_size=st.sampled_from([64, 512, 4096, 65536]),
            qp_num=st.integers(min_value=1, max_value=16),
        ),
        min_size=1, max_size=5,
    )

    @settings(max_examples=100, deadline=None)
    @given(flows=flows)
    def test_allocations_are_positive_and_capped(self, flows):
        allocator = BandwidthAllocator(cx5())
        alloc = allocator.allocate(flows)
        assert set(alloc) == {f.flow_id for f in flows}
        pcie = cx5().pcie.usable_rate_bps
        for flow in flows:
            assert alloc[flow.flow_id] > 0
        inbound = sum(alloc[f.flow_id] for f in flows if not f.reverse)
        outbound = sum(alloc[f.flow_id] for f in flows if f.reverse)
        assert inbound <= pcie * 1.001
        assert outbound <= pcie * 1.001

    @settings(max_examples=100, deadline=None)
    @given(flows=flows)
    def test_utilizations_in_unit_interval(self, flows):
        allocator = BandwidthAllocator(cx5())
        for value in allocator.utilizations(flows).values():
            assert 0.0 <= value <= 1.0

    @settings(max_examples=50, deadline=None)
    @given(size=st.sampled_from([64, 512, 4096]),
           qp_small=st.integers(min_value=1, max_value=4))
    def test_interference_monotonic_in_competitor_qps(self, size, qp_small):
        allocator = BandwidthAllocator(cx5())
        victim = FluidFlow(opcode=Opcode.RDMA_READ, msg_size=4096, qp_num=4)
        weak = FluidFlow(opcode=Opcode.RDMA_WRITE, msg_size=size,
                         qp_num=qp_small)
        strong = FluidFlow(opcode=Opcode.RDMA_WRITE, msg_size=size,
                           qp_num=qp_small + 8)
        f_weak = allocator.interference_factor(victim, weak)
        f_strong = allocator.interference_factor(victim, strong)
        if f_weak >= 1.0:  # boost rules grow with qp count instead
            assert f_strong >= f_weak - 1e-9
        else:
            assert f_strong <= f_weak + 1e-9


class TestNoiseMitigationInvariants:
    @settings(max_examples=50, deadline=None)
    @given(scale_a=st.floats(min_value=0.0, max_value=8.0),
           scale_b=st.floats(min_value=0.0, max_value=8.0))
    def test_noise_params_monotonic_in_scale(self, scale_a, scale_b):
        from repro.defense import with_noise_mitigation

        low, high = sorted((scale_a, scale_b))
        spec_low = with_noise_mitigation(cx5(), low)
        spec_high = with_noise_mitigation(cx5(), high)
        assert spec_high.jitter_frac >= spec_low.jitter_frac
        assert spec_high.spike_prob >= spec_low.spike_prob
        assert spec_high.spike_ns >= spec_low.spike_ns
