"""Model-based test: SetAssocCache against a reference implementation."""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rnic import SetAssocCache


class ReferenceCache:
    """An obviously-correct set-associative LRU cache."""

    def __init__(self, entries, ways):
        self.sets = entries // ways
        self.ways = ways
        self.data = [OrderedDict() for _ in range(self.sets)]

    def _set(self, key):
        return self.data[hash(key) % self.sets]

    def access(self, key):
        target = self._set(key)
        if key in target:
            target.move_to_end(key)
            return True
        if len(target) >= self.ways:
            target.popitem(last=False)
        target[key] = True
        return False

    def probe(self, key):
        return key in self._set(key)


operations = st.lists(
    st.tuples(
        st.sampled_from(["access", "probe", "invalidate"]),
        st.integers(min_value=0, max_value=40),
    ),
    max_size=200,
)


@settings(max_examples=200, deadline=None)
@given(ops=operations)
def test_cache_matches_reference(ops):
    cache = SetAssocCache(entries=16, ways=4)
    reference = ReferenceCache(entries=16, ways=4)
    for op, key in ops:
        if op == "access":
            assert cache.access(key) == reference.access(key)
        elif op == "probe":
            assert cache.probe(key) == reference.probe(key)
        else:
            was_there = reference.probe(key)
            if was_there:
                del reference._set(key)[key]
            assert cache.invalidate(key) == was_there


@settings(max_examples=100, deadline=None)
@given(ops=operations)
def test_cache_occupancy_never_exceeds_capacity(ops):
    cache = SetAssocCache(entries=16, ways=4)
    for op, key in ops:
        if op == "access":
            cache.access(key)
        assert cache.occupancy <= 16


@settings(max_examples=100, deadline=None)
@given(keys=st.lists(st.integers(0, 1000), min_size=1, max_size=100))
def test_cache_stats_are_consistent(keys):
    cache = SetAssocCache(entries=8, ways=2)
    for key in keys:
        cache.access(key)
    assert cache.hits + cache.misses == len(keys)
    assert cache.evictions <= cache.misses
    assert 0.0 <= cache.hit_rate <= 1.0
