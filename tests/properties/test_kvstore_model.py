"""Model-based test: the RDMA KV store against a plain dict."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.kvstore import MAX_PROBES, KVStoreClient, KVStoreServer, StoreFullError
from repro.host import Cluster
from repro.rnic import cx5


def make_store(num_slots=64):
    cluster = Cluster(seed=0)
    server_host = cluster.add_host("server", spec=cx5())
    client_host = cluster.add_host("client", spec=cx5())
    server = KVStoreServer(server_host, num_slots=num_slots)
    client = KVStoreClient(cluster.connect(client_host, server_host), server)
    return server, client


keys = st.binary(min_size=1, max_size=8)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(st.tuples(keys, st.binary(max_size=16)), max_size=40))
def test_store_matches_dict(ops):
    _, client = make_store()
    model: dict[bytes, bytes] = {}
    try:
        for key, value in ops:
            client.put(key, value)
            model[key] = value
    except StoreFullError:
        pass  # acceptable under adversarial collisions
    for key, value in model.items():
        assert client.get(key) == value


def test_probe_chain_fills_and_rejects():
    """Force MAX_PROBES collisions into one chain; the next insert in
    that chain must raise StoreFullError rather than clobber."""
    server, client = make_store(num_slots=64)
    home = None
    colliders = []
    i = 0
    while len(colliders) <= MAX_PROBES:
        key = f"k{i}".encode()
        slot = server.slot_of(key)
        if home is None:
            home = slot
            colliders.append(key)
        elif slot == home:
            colliders.append(key)
        i += 1
        if i > 500_000:
            raise AssertionError("could not build a collision chain")
    for key in colliders[:MAX_PROBES]:
        client.put(key, b"v")
    # chain may already be interrupted by other home slots; only assert
    # that every stored key stays retrievable
    for key in colliders[:MAX_PROBES]:
        assert client.get(key) == b"v"
