"""Property tests for the covert receivers' demodulation pipeline."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.covert.lockstep import decode_windows, detrend, window_means, winsorize


@settings(max_examples=100, deadline=None)
@given(
    bits=st.lists(st.integers(0, 1), min_size=2, max_size=40),
    low=st.floats(min_value=10.0, max_value=1000.0),
    gap=st.floats(min_value=50.0, max_value=500.0),
    samples_per_bit=st.integers(min_value=3, max_value=12),
)
def test_decode_recovers_clean_two_level_signal(bits, low, gap,
                                                samples_per_bit):
    """With any two separated levels and at least one bit of each value,
    decode_windows recovers the exact pattern."""
    if len(set(bits)) < 2:
        bits = bits + [1 - bits[0]]
    period = 100.0
    samples = []
    for index, bit in enumerate(bits):
        level = low + gap if bit else low
        for j in range(samples_per_bit):
            t = index * period + (j + 0.5) * period / samples_per_bit
            samples.append((t, level))
    assert decode_windows(samples, 0.0, period, len(bits)) == bits


@settings(max_examples=100, deadline=None)
@given(values=st.lists(
    st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
    min_size=1, max_size=100,
))
def test_winsorize_never_raises_values(values):
    samples = [(float(i), v) for i, v in enumerate(values)]
    clipped = winsorize(samples)
    for (t0, original), (t1, new) in zip(samples, clipped):
        assert t0 == t1
        assert new <= original + 1e-9


@settings(max_examples=100, deadline=None)
@given(values=st.lists(
    st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
    min_size=2, max_size=80,
))
def test_detrend_output_is_locally_centered(values):
    samples = [(float(i), v) for i, v in enumerate(values)]
    flat = detrend(samples, half_window_ns=1e9)  # window spans everything
    mean = np.mean([v for _, v in flat])
    assert abs(mean) < 1e-6 * max(1.0, np.abs(values).max())


@settings(max_examples=50, deadline=None)
@given(
    count=st.integers(min_value=1, max_value=20),
    period=st.floats(min_value=1.0, max_value=1e4),
)
def test_window_means_handles_empty_input(count, period):
    means = window_means([], 0.0, period, count)
    assert means.shape == (count,)
    assert (means == 0.0).all()
