"""Property tests: RC recovery under heavy loss, and replay identity.

The robustness contract in two clauses: (1) *liveness* — any loss rate
the retry budget can absorb still completes every WQE successfully;
(2) *determinism* — a replay from the same seed reproduces not just
the outcomes but the exact completion timestamps and counter values
(the fault models draw only from named simulator streams).
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric import Link
from repro.faults import GilbertElliott
from repro.host import Cluster
from repro.lint.determinism import fingerprint
from repro.rnic import cx5


def run_reads(loss, seed, reads=25, retry_count=40, fault=None):
    """Drive ``reads`` blocking READs over a lossy fabric; returns a
    replay-sensitive payload (statuses, timestamps, counters)."""
    cluster = Cluster(seed=seed)
    spec = dataclasses.replace(cx5(), retry_count=retry_count)
    server = cluster.add_host("server", spec=spec)
    client = cluster.add_host("client", spec=spec,
                              link=Link(loss_probability=loss))
    if fault is not None:
        cluster.network.set_fault(client.rnic, fault)
    conn = cluster.connect(client, server, max_send_wr=4)
    mr = server.reg_mr(4096)
    completions = []
    for i in range(reads):
        wc = conn.read_blocking(mr, 64 * (i % 8), 64)
        completions.append((wc.status.name, wc.complete_time))
    return {
        "completions": completions,
        "counters": client.rnic.counters.snapshot(),
        "final_time": cluster.sim.now,
    }


class TestHeavyLossLiveness:
    @settings(max_examples=8, deadline=None)
    @given(
        loss=st.floats(min_value=0.3, max_value=0.45),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_every_wqe_completes_despite_heavy_loss(self, loss, seed):
        # per-attempt frame loss is 1-(1-p)^2 (either direction); a
        # 40-retry budget puts exhaustion below 1e-6 per WQE at p=0.45
        payload = run_reads(loss, seed)
        assert all(status == "SUCCESS"
                   for status, _ in payload["completions"])
        # at these rates recovery work is statistically certain
        assert payload["counters"]["retransmits"] > 0
        assert payload["counters"]["timeouts"] > 0

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_bursty_loss_also_recovers(self, seed):
        fault = GilbertElliott(p_enter_bad=0.1, p_exit_bad=0.3,
                               loss_bad=0.6)
        payload = run_reads(0.0, seed, fault=fault)
        assert all(status == "SUCCESS"
                   for status, _ in payload["completions"])


class TestReplayIdentity:
    @settings(max_examples=6, deadline=None)
    @given(
        loss=st.floats(min_value=0.3, max_value=0.5),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_replay_reproduces_timestamps_and_counters(self, loss, seed):
        first = run_reads(loss, seed)
        again = run_reads(loss, seed)
        assert fingerprint(first) == fingerprint(again)

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_bursty_replay_with_shared_model_instance(self, seed):
        """One GilbertElliott instance serves two replays: install()
        resets it, so the second run must be bit-identical."""
        fault = GilbertElliott(p_enter_bad=0.05, p_exit_bad=0.2,
                               loss_bad=0.7)
        first = run_reads(0.0, seed, fault=fault)
        again = run_reads(0.0, seed, fault=fault)
        assert fingerprint(first) == fingerprint(again)
