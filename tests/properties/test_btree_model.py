"""Model-based test: the Sherman tree against a plain dict."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.sherman import ShermanClient, ShermanMemoryServer
from repro.host import Cluster
from repro.rnic import cx5
from repro.sim.units import MEBIBYTE


def make_client():
    cluster = Cluster(seed=0)
    ms = cluster.add_host("ms", spec=cx5())
    cs = cluster.add_host("cs", spec=cx5())
    server = ShermanMemoryServer(ms, region_size=8 * MEBIBYTE)
    return ShermanClient(cluster.connect(cs, ms), server)


ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "search", "delete", "update"]),
        st.integers(min_value=1, max_value=64),   # small key space: collisions
        st.binary(min_size=0, max_size=12),
    ),
    max_size=60,
)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=ops)
def test_tree_matches_dict(ops):
    client = make_client()
    model: dict[int, bytes] = {}
    for op, key, value in ops:
        if op == "insert":
            client.insert(key, value)
            model[key] = value
        elif op == "search":
            assert client.search(key) == model.get(key)
        elif op == "delete":
            assert client.delete(key) == (key in model)
            model.pop(key, None)
        else:  # update
            assert client.update(key, value) == (key in model)
            if key in model:
                model[key] = value
    # final sweep: every model key retrievable, scan is sorted+complete
    for key, value in model.items():
        assert client.search(key) == value
    scan = client.range_scan(1, 65)
    assert [k for k, _ in scan] == sorted(model)
    assert dict(scan) == model


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(keys=st.lists(st.integers(min_value=1, max_value=10**6),
                     min_size=50, max_size=120, unique=True))
def test_tree_survives_many_splits(keys):
    client = make_client()
    for key in keys:
        client.insert(key, b"x")
    # the leaf chain covers everything, in order, exactly once
    scan = client.range_scan(1, 10**6 + 1)
    assert [k for k, _ in scan] == sorted(keys)
