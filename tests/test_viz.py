"""Unit tests for terminal visualization helpers."""

import numpy as np
import pytest

from repro.viz import annotate_position, bar_chart, heatmap, sparkline


class TestSparkline:
    def test_monotonic_series_monotonic_density(self):
        line = sparkline([0, 1, 2, 3, 4, 5])
        blocks = " .:-=+*#%@"
        densities = [blocks.index(c) for c in line]
        assert densities == sorted(densities)

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "   "

    def test_empty(self):
        assert sparkline([]) == ""

    def test_long_series_bucketed(self):
        line = sparkline(np.arange(1000), width=50)
        assert len(line) == 50

    def test_extremes_use_full_range(self):
        line = sparkline([0, 100])
        assert line[0] == " " and line[-1] == "@"


class TestBarChart:
    def test_alignment_and_values(self):
        chart = bar_chart(["alpha", "b"], [10.0, 5.0], width=10)
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[0].index("|") == lines[1].index("|")
        assert "##########" in lines[0]
        assert "#####" in lines[1]

    def test_mismatched_inputs(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        assert bar_chart([], []) == ""

    def test_zero_values(self):
        chart = bar_chart(["a"], [0.0])
        assert "#" not in chart


class TestHeatmap:
    def test_diagonal_matrix(self):
        matrix = np.eye(3) * 10
        rendered = heatmap(matrix).splitlines()[1:]
        for i, row in enumerate(rendered):
            assert row[i] == "@"
            assert set(row) <= {"@", " "}

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            heatmap(np.zeros(3))

    def test_zero_matrix(self):
        rendered = heatmap(np.zeros((2, 2))).splitlines()[1:]
        assert all(set(row) == {" "} for row in rendered)


class TestAnnotate:
    def test_marker_position(self):
        line = annotate_position(10, 0.0)
        assert line[0] == "^"
        line = annotate_position(10, 1.0)
        assert line[9] == "^"

    def test_note_appended(self):
        assert annotate_position(5, 0.5, note="victim").endswith(" victim")

    def test_position_bounds(self):
        with pytest.raises(ValueError):
            annotate_position(10, 1.5)
