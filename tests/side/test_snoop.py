"""Tests for the disaggregated-memory snooping attack (Figure 13)."""

import numpy as np
import pytest

from repro.analysis import normalized_cross_correlation
from repro.side import (
    CANDIDATE_OFFSETS,
    OBSERVATION_OFFSETS,
    SnoopConfig,
    SnoopDataset,
    TraceSynthesizer,
    capture_trace_sim,
    evaluate_classifier,
    nearest_centroid,
)


def bump_strength(trace, victim_offset):
    obs = np.asarray(OBSERVATION_OFFSETS)
    zone = (obs >= victim_offset) & (obs < victim_offset + 64)
    return trace[zone].mean() - trace[~zone].mean()


class TestSets:
    def test_candidate_set_matches_paper(self):
        assert len(CANDIDATE_OFFSETS) == 17
        assert CANDIDATE_OFFSETS[0] == 0
        assert CANDIDATE_OFFSETS[-1] == 1024
        assert all(o % 64 == 0 for o in CANDIDATE_OFFSETS)

    def test_observation_set_matches_paper(self):
        assert len(OBSERVATION_OFFSETS) == 257
        assert OBSERVATION_OFFSETS[0] == 0
        assert OBSERVATION_OFFSETS[-1] == 1024

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SnoopConfig(probes_per_point=0)
        with pytest.raises(ValueError):
            SnoopConfig(victim_duty=0.0)
        with pytest.raises(ValueError):
            SnoopConfig(ambient_rate=1.0)


class TestSynthesizer:
    def test_trace_shape(self):
        trace = TraceSynthesizer(seed=0).trace(0)
        assert trace.shape == (257,)
        assert (trace > 0).all()

    def test_bump_at_victim_offset(self):
        """The contention bump sits exactly on the victim's record."""
        synthesizer = TraceSynthesizer(seed=1)
        for victim in (0, 512, 1024):
            trace = synthesizer.trace(victim)
            assert bump_strength(trace, victim) > 0, victim

    def test_bump_location_is_discriminative(self):
        """The argmax of a smoothed trace lands near the victim's line."""
        from repro.analysis import moving_average

        synthesizer = TraceSynthesizer(seed=2)
        obs = np.asarray(OBSERVATION_OFFSETS)
        hits = 0
        for victim in CANDIDATE_OFFSETS:
            strengths = [
                bump_strength(moving_average(synthesizer.trace(victim), 8), c)
                for c in CANDIDATE_OFFSETS
            ]
            guess = CANDIDATE_OFFSETS[int(np.argmax(strengths))]
            hits += abs(guess - victim) <= 64
        assert hits >= 14  # most single traces localize within one line

    def test_invalid_victim_rejected(self):
        with pytest.raises(ValueError):
            TraceSynthesizer(seed=0).trace(100)  # not 64-aligned

    def test_labelled_traces_shapes(self):
        x, y = TraceSynthesizer(seed=3).labelled_traces(per_class=2)
        assert x.shape == (34, 257)
        assert sorted(set(y)) == list(range(17))

    def test_traces_reproducible(self):
        a = TraceSynthesizer(seed=5).trace(128)
        b = TraceSynthesizer(seed=5).trace(128)
        np.testing.assert_allclose(a, b)


class TestParallelSynthesis:
    def test_jobs_build_byte_identical(self):
        serial_x, serial_y = TraceSynthesizer(seed=9).labelled_traces(
            per_class=2)
        parallel_x, parallel_y = TraceSynthesizer(seed=9).labelled_traces(
            per_class=2, jobs=3)
        np.testing.assert_array_equal(serial_x, parallel_x)
        np.testing.assert_array_equal(serial_y, parallel_y)

    def test_class_block_independent_of_build_order(self):
        # class 5's traces must not depend on classes 0-4 having been
        # synthesized first — that independence is what makes any
        # partitioning across workers reproduce the serial build
        block = TraceSynthesizer(seed=9).class_traces(5, per_class=2)
        full, _ = TraceSynthesizer(seed=9).labelled_traces(per_class=2)
        np.testing.assert_array_equal(block, full[10:12])

    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            TraceSynthesizer(seed=0).labelled_traces(per_class=1, jobs=0)


class TestSimCapture:
    def test_sim_trace_bump_position(self):
        trace = capture_trace_sim(512, seed=1)
        assert trace.shape == (257,)
        assert bump_strength(trace, 512) > 0

    def test_sim_and_synth_agree_on_bump(self):
        """The fast path's discriminative feature (bump location) must
        match the full pipeline's."""
        for victim in (0, 768):
            sim_trace = capture_trace_sim(victim, seed=2)
            syn_trace = TraceSynthesizer(seed=2).trace(victim)
            sim_bump = bump_strength(sim_trace, victim)
            syn_bump = bump_strength(syn_trace, victim)
            assert sim_bump > 0 and syn_bump > 0


class TestClassifier:
    @pytest.fixture(scope="class")
    def dataset(self):
        return SnoopDataset.generate(per_class=24, seed=7)

    def test_dataset_shapes(self, dataset):
        assert dataset.x.shape == (17 * 24, 1, 257)
        assert dataset.num_classes == 17

    def test_normalization(self, dataset):
        means = dataset.x[:, 0, :].mean(axis=1)
        assert np.abs(means).max() < 1e-9

    def test_resnet_recovers_addresses(self, dataset):
        """Figure 13(b): high 17-way accuracy (paper: 95.6 %).  The
        small CI dataset trades a few points of accuracy for runtime."""
        report = evaluate_classifier(dataset, epochs=10, seed=1)
        assert report.test_accuracy > 0.75
        assert report.confusion.shape == (17, 17)
        assert report.confusion.sum() == len(dataset.y) - int(len(dataset.y) * 0.75)

    def test_centroid_baseline_also_works(self, dataset):
        assert nearest_centroid(dataset) > 0.7

    def test_per_class_accuracy_shape(self, dataset):
        report = evaluate_classifier(dataset, epochs=6, seed=2)
        rates = report.per_class_accuracy
        assert rates.shape == (17,)
        assert ((0.0 <= rates) & (rates <= 1.0)).all()
