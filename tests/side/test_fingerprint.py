"""Tests for the Algorithm 1 shuffle/join fingerprinting attack."""

import numpy as np
import pytest

from repro.apps.shuffle_join import JoinOperator, OperatorSchedule, ShuffleOperator
from repro.side import ShuffleJoinFingerprinter, calibrate_templates
from repro.rnic import cx5
from repro.sim.units import MILLISECONDS


@pytest.fixture(scope="module")
def templates():
    return calibrate_templates(cx5())


def test_templates_have_distinct_shapes(templates):
    assert set(templates) == {"shuffle", "join"}
    from repro.analysis import normalized_cross_correlation

    n = min(len(templates["shuffle"]), len(templates["join"]))
    ncc = normalized_cross_correlation(
        templates["shuffle"][:n], templates["join"][:n]
    )
    assert ncc < 0.9


def test_detects_single_shuffle(templates):
    attacker = ShuffleJoinFingerprinter(templates, spec=cx5())

    def schedule(node):
        s = OperatorSchedule(node)
        s.add("shuffle", ShuffleOperator(), 20 * MILLISECONDS)
        return s

    result = attacker.run(schedule, seed=1)
    assert result.detection_rate == 1.0
    names = {name for name, _ in result.detections}
    assert "shuffle" in names


def test_detects_single_join(templates):
    attacker = ShuffleJoinFingerprinter(templates, spec=cx5())

    def schedule(node):
        s = OperatorSchedule(node)
        s.add("join", JoinOperator(), 20 * MILLISECONDS)
        return s

    result = attacker.run(schedule, seed=2)
    assert result.detection_rate == 1.0


def test_distinguishes_sequence(templates):
    """Figure 12: a shuffle followed by a join, both identified."""
    attacker = ShuffleJoinFingerprinter(templates, spec=cx5())

    def schedule(node):
        s = OperatorSchedule(node)
        end = s.add("shuffle", ShuffleOperator(), 20 * MILLISECONDS)
        s.add("join", JoinOperator(), end + 30 * MILLISECONDS)
        return s

    result = attacker.run(schedule, seed=3)
    assert result.detection_rate == 1.0
    assert result.false_positives <= 1


def test_quiet_run_has_no_detections(templates):
    attacker = ShuffleJoinFingerprinter(templates, spec=cx5())

    def schedule(node):
        s = OperatorSchedule(node)
        # a workload with no operator: record a zero-length truth entry
        s.events.append(("idle", 0.0, 80 * MILLISECONDS))
        return s

    result = attacker.run(schedule, seed=4)
    real = [d for d in result.detections if d[0] in ("shuffle", "join")]
    assert len(real) == 0


def test_result_accounting():
    from repro.side.fingerprint import FingerprintResult

    result = FingerprintResult(
        detections=(("shuffle", 50.0), ("join", 500.0)),
        truth=(("shuffle", 0.0, 100.0), ("join", 900.0, 1000.0)),
        samples=(),
    )
    assert result.matched == [("shuffle", True), ("join", False)]
    assert result.detection_rate == 0.5
    assert result.false_positives == 1
