"""Tests for the per-link fault models (repro.faults.models)."""

import numpy as np
import pytest

from repro.faults import (
    CompositeFault,
    GilbertElliott,
    LatencySchedule,
    LinkFlap,
    LossSchedule,
    PiecewiseSchedule,
)


class TestGilbertElliott:
    def test_probability_validation(self):
        with pytest.raises(ValueError):
            GilbertElliott(p_enter_bad=1.5)
        with pytest.raises(ValueError):
            GilbertElliott(loss_bad=-0.1)

    def test_stationary_loss(self):
        ge = GilbertElliott(p_enter_bad=0.01, p_exit_bad=0.09,
                            loss_good=0.0, loss_bad=0.5)
        # pi_bad = 0.01 / 0.1 = 0.1 -> 0.1 * 0.5
        assert ge.stationary_loss == pytest.approx(0.05)

    def test_stationary_loss_frozen_chain(self):
        ge = GilbertElliott(p_enter_bad=0.0, p_exit_bad=0.0,
                            loss_bad=0.5, start_bad=True)
        assert ge.stationary_loss == pytest.approx(0.5)

    def test_empirical_loss_matches_stationary(self):
        ge = GilbertElliott(p_enter_bad=0.02, p_exit_bad=0.2, loss_bad=0.5)
        rng = np.random.default_rng(0)
        losses = sum(ge.drop(float(i), rng) for i in range(40_000))
        assert losses / 40_000 == pytest.approx(ge.stationary_loss, rel=0.2)

    def test_losses_are_bursty(self):
        """Consecutive-frame losses must exceed the i.i.d. rate: that is
        the entire point of the two-state chain."""
        ge = GilbertElliott(p_enter_bad=0.01, p_exit_bad=0.1, loss_bad=0.8)
        rng = np.random.default_rng(1)
        drops = [ge.drop(float(i), rng) for i in range(40_000)]
        loss_rate = sum(drops) / len(drops)
        pairs = sum(a and b for a, b in zip(drops, drops[1:]))
        conditional = pairs / max(1, sum(drops[:-1]))
        assert conditional > 2.0 * loss_rate

    def test_reset_replays_identically(self):
        ge = GilbertElliott(p_enter_bad=0.05, p_exit_bad=0.2, loss_bad=0.6)
        first = [ge.drop(float(i), np.random.default_rng(7))
                 for i in range(50)]
        # without reset the chain state carries over...
        carried = [ge.drop(float(i), np.random.default_rng(7))
                   for i in range(50)]
        ge.reset()
        replayed = [ge.drop(float(i), np.random.default_rng(7))
                    for i in range(50)]
        assert replayed == first
        # (sanity: the drop sequence genuinely depends on chain state —
        # same rng draws, but drops may differ when mid-burst)
        assert len(carried) == len(first)

    def test_good_state_with_zero_loss_consumes_one_draw(self):
        """In the lossless good state only the transition draw happens,
        keeping replays aligned when the fault is armed but quiet."""
        ge = GilbertElliott(p_enter_bad=0.0, p_exit_bad=0.5, loss_good=0.0)
        rng = np.random.default_rng(0)
        before = rng.bit_generator.state["state"]["state"]
        assert ge.drop(0.0, rng) is False
        one_draw = np.random.default_rng(0)
        one_draw.random()
        assert (rng.bit_generator.state["state"]["state"]
                == one_draw.bit_generator.state["state"]["state"])


class TestPiecewiseSchedule:
    def test_unsorted_breakpoints_rejected(self):
        with pytest.raises(ValueError):
            PiecewiseSchedule(points=((10.0, 1.0), (5.0, 2.0)))

    def test_right_continuous_lookup(self):
        sched = PiecewiseSchedule(points=((10.0, 0.1), (20.0, 0.3)),
                                  default=0.0)
        assert sched.value_at(0.0) == 0.0
        assert sched.value_at(9.999) == 0.0
        assert sched.value_at(10.0) == 0.1     # boundary takes the new value
        assert sched.value_at(19.999) == 0.1
        assert sched.value_at(20.0) == 0.3
        assert sched.value_at(1e9) == 0.3

    def test_empty_schedule_is_default(self):
        assert PiecewiseSchedule(default=0.25).value_at(123.0) == 0.25


class TestLossSchedule:
    def test_zero_rate_consumes_no_draws(self):
        fault = LossSchedule(schedule=PiecewiseSchedule(
            points=((100.0, 0.5),)))
        rng = np.random.default_rng(0)
        untouched = np.random.default_rng(0)
        assert fault.drop(0.0, rng) is False
        assert (rng.bit_generator.state["state"]["state"]
                == untouched.bit_generator.state["state"]["state"])

    def test_scheduled_epoch_loses_frames(self):
        fault = LossSchedule(schedule=PiecewiseSchedule(
            points=((100.0, 1.0),)))
        rng = np.random.default_rng(0)
        assert fault.drop(100.0, rng) is True

    def test_invalid_scheduled_rate_raises(self):
        fault = LossSchedule(schedule=PiecewiseSchedule(
            points=((0.0, 1.5),)))
        with pytest.raises(ValueError):
            fault.drop(0.0, np.random.default_rng(0))


class TestLatencySchedule:
    def test_extra_latency_follows_schedule(self):
        fault = LatencySchedule(schedule=PiecewiseSchedule(
            points=((50.0, 200.0), (150.0, 0.0))))
        assert fault.extra_latency_ns(0.0) == 0.0
        assert fault.extra_latency_ns(60.0) == 200.0
        assert fault.extra_latency_ns(151.0) == 0.0

    def test_negative_scheduled_latency_raises(self):
        fault = LatencySchedule(schedule=PiecewiseSchedule(
            points=((0.0, -5.0),)))
        with pytest.raises(ValueError):
            fault.extra_latency_ns(1.0)

    def test_consumes_no_randomness(self):
        fault = LatencySchedule()
        rng = np.random.default_rng(0)
        untouched = np.random.default_rng(0)
        assert fault.drop(0.0, rng) is False
        assert (rng.bit_generator.state["state"]["state"]
                == untouched.bit_generator.state["state"]["state"])


class TestLinkFlap:
    def test_validation(self):
        with pytest.raises(ValueError):
            LinkFlap(period_ns=0.0)
        with pytest.raises(ValueError):
            LinkFlap(period_ns=100.0, down_ns=200.0)
        with pytest.raises(ValueError):
            LinkFlap(first_down_ns=-1.0)

    def test_down_windows(self):
        flap = LinkFlap(first_down_ns=1000.0, period_ns=500.0, down_ns=100.0)
        assert not flap.down(0.0)
        assert not flap.down(999.0)
        assert flap.down(1000.0)
        assert flap.down(1099.0)
        assert not flap.down(1100.0)
        # the next period's window
        assert flap.down(1500.0)
        assert not flap.down(1600.0)


class TestCompositeFault:
    def test_all_parts_consulted_in_order(self):
        """Every part sees the frame even after an earlier part dropped
        it, so the draw sequence never depends on outcomes."""
        first = GilbertElliott(p_enter_bad=0.0, loss_good=1.0)
        second = GilbertElliott(p_enter_bad=0.0, loss_good=1.0)
        composite = CompositeFault(parts=(first, second))
        rng = np.random.default_rng(0)
        assert composite.drop(0.0, rng) is True
        # four draws happened: (transition, loss) for each part
        four = np.random.default_rng(0)
        for _ in range(4):
            four.random()
        assert (rng.bit_generator.state["state"]["state"]
                == four.bit_generator.state["state"]["state"])

    def test_latencies_add_and_down_is_any(self):
        composite = CompositeFault(parts=(
            LatencySchedule(schedule=PiecewiseSchedule(points=((0.0, 10.0),))),
            LatencySchedule(schedule=PiecewiseSchedule(points=((0.0, 5.0),))),
            LinkFlap(first_down_ns=0.0, period_ns=100.0, down_ns=50.0),
        ))
        assert composite.extra_latency_ns(1.0) == 15.0
        assert composite.down(10.0)
        assert not composite.down(60.0)

    def test_reset_propagates(self):
        part = GilbertElliott(p_enter_bad=1.0, loss_bad=1.0)
        composite = CompositeFault(parts=(part,))
        composite.drop(0.0, np.random.default_rng(0))
        assert part._bad
        composite.reset()
        assert not part._bad
