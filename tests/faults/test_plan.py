"""Tests for fault plans, the scenario catalogue and the injectors."""

import pytest

from repro.faults import (
    FaultPlan,
    GilbertElliott,
    PauseStorm,
    PauseStormInjector,
    RnrPressure,
    RnrPressureClient,
    SCENARIOS,
    get_scenario,
)
from repro.host import Cluster
from repro.rnic import cx5
from repro.rnic.station import ServiceStation


def make_cluster(seed=0):
    cluster = Cluster(seed=seed)
    server = cluster.add_host("server", spec=cx5())
    client = cluster.add_host("client", spec=cx5())
    return cluster, server, client


class TestCatalogue:
    def test_every_scenario_builds(self):
        for name in SCENARIOS:
            plan = get_scenario(name)
            assert plan.name == name

    def test_unknown_scenario_names_the_known_ones(self):
        with pytest.raises(KeyError, match="bursty-loss"):
            get_scenario("no-such-scenario")

    def test_lookups_are_independent_plans(self):
        assert get_scenario("bursty-loss") is not get_scenario("bursty-loss")

    def test_clean_plan_is_clean(self):
        assert get_scenario("clean").is_clean
        assert not get_scenario("bursty-loss").is_clean
        assert not get_scenario("rnr-pressure").is_clean

    def test_expected_catalogue_members(self):
        assert {"clean", "bursty-loss", "pause-storm",
                "rnr-pressure", "link-flap"} <= set(SCENARIOS)


class TestInstall:
    def test_endpoint_faults_get_fresh_instances(self):
        cluster, server, client = make_cluster()
        plan = FaultPlan(name="loss", endpoint_fault=GilbertElliott)
        plan.install(cluster, server=server, endpoints=[client])
        installed = cluster.network.fault_of(client.rnic)
        assert isinstance(installed, GilbertElliott)
        # a second install arms a different instance (no shared state)
        plan.install(cluster, server=server, endpoints=[client])
        assert cluster.network.fault_of(client.rnic) is not installed

    def test_server_fault_lands_on_server_link(self):
        cluster, server, client = make_cluster()
        plan = FaultPlan(name="loss", server_fault=GilbertElliott)
        plan.install(cluster, server=server, endpoints=[client])
        assert cluster.network.fault_of(server.rnic) is not None
        assert cluster.network.fault_of(client.rnic) is None

    def test_clean_plan_installs_nothing(self):
        cluster, server, client = make_cluster()
        before = cluster.sim.events_fired
        get_scenario("clean").install(cluster, server=server,
                                      endpoints=[client])
        assert cluster.network.fault_of(server.rnic) is None
        assert cluster.network.fault_of(client.rnic) is None
        assert cluster.sim.events_fired == before

    def test_install_without_server_degrades(self):
        """A plan with only server-side parts arms nothing when the
        topology has no server to arm them on."""
        cluster, _, client = make_cluster()
        before = cluster.sim.events_fired
        get_scenario("rnr-pressure").install(cluster, endpoints=[client])
        cluster.sim.run(until=1_000_000.0)
        assert cluster.sim.events_fired == before  # nothing was scheduled


class TestPauseStorm:
    def test_validation(self):
        with pytest.raises(ValueError):
            PauseStorm(period_ns=0.0)
        with pytest.raises(ValueError):
            PauseStorm(pause_ns=-1.0)
        with pytest.raises(ValueError):
            PauseStorm(count=-1)

    def test_storm_stalls_wire_tx_and_counts(self):
        cluster, server, _ = make_cluster()
        storm = PauseStorm(start_ns=1000.0, period_ns=5000.0,
                           pause_ns=2000.0, count=3)
        PauseStormInjector(cluster, [server], storm).start()
        cluster.sim.run(until=50_000.0)
        assert server.rnic.counters.pause_events == 3
        # the last pause ended at 11000 + 2000; service resumed after
        assert server.rnic.wire_tx.admit(20_000.0, 10.0) == 20_010.0

    def test_stall_delays_service_start(self):
        station = ServiceStation("wire_tx")
        station.stall_until(500.0)
        # admitted during the pause: service starts when the pause ends
        assert station.admit(100.0, 10.0) == 510.0
        # a stall never rewinds an existing busy horizon
        station.stall_until(200.0)
        assert station.admit(510.0, 10.0) == 520.0

    def test_count_zero_runs_forever(self):
        cluster, server, _ = make_cluster()
        storm = PauseStorm(start_ns=0.0, period_ns=1000.0, pause_ns=10.0)
        PauseStormInjector(cluster, [server], storm).start()
        cluster.sim.run(until=100_000.0)
        assert server.rnic.counters.pause_events >= 100

    def test_stop_cancels_the_pending_burst(self):
        """An unbounded storm must die with stop(): the pending burst
        is cancelled, so the sim drains instead of pausing forever."""
        cluster, server, _ = make_cluster()
        storm = PauseStorm(start_ns=0.0, period_ns=1000.0, pause_ns=10.0)
        injector = PauseStormInjector(cluster, [server], storm)
        injector.start()
        cluster.sim.run(until=5_500.0)
        injector.stop()
        fired = injector.fired
        cluster.sim.run()                           # drains: queue is empty
        assert injector.fired == fired
        assert cluster.sim.pending == 0

    def test_restart_runs_a_single_storm(self):
        """A stop->start cycle must leave exactly one burst chain: the
        restarted run produces the same burst count as a never-stopped
        control run of the same seeded scenario."""
        def bursts(restart):
            cluster, server, _ = make_cluster()
            storm = PauseStorm(start_ns=5_000.0, period_ns=1000.0,
                               pause_ns=10.0)
            injector = PauseStormInjector(cluster, [server], storm)
            injector.start()
            if restart:
                cluster.sim.run(until=2_000.0)
                injector.stop()
                injector.start()
            cluster.sim.run(until=20_000.0)
            return server.rnic.counters.pause_events

        assert bursts(restart=True) == bursts(restart=False) > 0

    def test_double_start_rejected(self):
        cluster, server, _ = make_cluster()
        injector = PauseStormInjector(cluster, [server], PauseStorm())
        injector.start()
        with pytest.raises(RuntimeError):
            injector.start()


class TestRnrPressure:
    def test_validation(self):
        with pytest.raises(ValueError):
            RnrPressure(depth=0)
        with pytest.raises(ValueError):
            RnrPressure(replenish_ns=0.0)

    def test_pressure_generates_rnr_naks(self):
        cluster, server, _ = make_cluster()
        client = RnrPressureClient(cluster, server, RnrPressure())
        client.start()
        cluster.sim.run(until=2_000_000.0)
        pressure_host = cluster.hosts[RnrPressureClient.HOST_NAME]
        assert pressure_host.rnic.counters.rnr_naks > 0
        assert client.completed > 0  # some SENDs do land between NAKs

    def test_pressure_survives_budget_exhaustion(self):
        """Exhausting the RNR budget flushes the QP; the client
        reconnects and the NAK rate keeps climbing instead of dying."""
        cluster, server, _ = make_cluster()
        client = RnrPressureClient(cluster, server, RnrPressure())
        client.start()
        cluster.sim.run(until=2_000_000.0)
        pressure_host = cluster.hosts[RnrPressureClient.HOST_NAME]
        assert client.reconnects > 0
        naks_mid = pressure_host.rnic.counters.rnr_naks
        cluster.sim.run(until=4_000_000.0)
        assert pressure_host.rnic.counters.rnr_naks > naks_mid

    def test_reconnect_does_not_leak_memory_registrations(self):
        cluster, server, _ = make_cluster()
        client = RnrPressureClient(cluster, server, RnrPressure())
        client.start()
        host = cluster.hosts[RnrPressureClient.HOST_NAME]
        registered = len(host.pd.mrs)
        cluster.sim.run(until=4_000_000.0)
        assert client.reconnects > 0
        assert len(host.pd.mrs) == registered

    def test_stop_quiesces_the_workload(self):
        """stop() cancels the replenish chain and any pending
        reconnect; in-flight work drains and the sim goes idle instead
        of the pressure running forever."""
        cluster, server, _ = make_cluster()
        client = RnrPressureClient(cluster, server, RnrPressure())
        client.start()
        cluster.sim.run(until=500_000.0)
        client.stop()
        cluster.sim.run()                           # must drain
        assert cluster.sim.pending == 0
        completed = client.completed
        naks = cluster.hosts[
            RnrPressureClient.HOST_NAME].rnic.counters.rnr_naks
        cluster.sim.run(until=cluster.sim.now + 1_000_000.0)
        assert client.completed == completed
        assert cluster.hosts[
            RnrPressureClient.HOST_NAME].rnic.counters.rnr_naks == naks


class TestArmedFaults:
    def test_install_returns_stoppable_handles(self):
        cluster, server, client = make_cluster()
        armed = get_scenario("pause-storm").install(
            cluster, server=server, endpoints=[client])
        assert armed.pause_storm is not None
        assert armed.rnr_pressure is None
        cluster.sim.run(until=500_000.0)
        armed.stop()                                # idempotent surface
        armed.stop()
        cluster.sim.run()
        assert cluster.sim.pending == 0

    def test_clean_install_returns_empty_armed_set(self):
        cluster, server, client = make_cluster()
        armed = get_scenario("clean").install(
            cluster, server=server, endpoints=[client])
        assert armed.pause_storm is None and armed.rnr_pressure is None
        armed.stop()                                # no-op, no crash
