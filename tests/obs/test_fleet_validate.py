"""Schema validation for the fleet artifacts: every error must name the
offending line / record index, and ``validate_path`` must dispatch the
three canonical fleet file names."""

import json

from repro.obs.exporters import (
    validate_fleet_jsonl,
    validate_path,
    validate_slo_report,
)

GOOD_METRICS = {"fleet": {"ticks": {"type": "counter", "value": 3.0}}}


def _fleet_line(rev, kind="final", task="alpha", done=1,
                metrics=GOOD_METRICS):
    return json.dumps({"rev": rev, "kind": kind, "task": task,
                       "tasks_done": done, "metrics": metrics},
                      sort_keys=True)


def _write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return path


GOOD_REPORT = {
    "spec": "test", "ticks": 2, "compliant": False,
    "objectives": [
        {"name": "wire", "kind": "error_rate", "good": 100.0, "bad": 3.0,
         "alerts": 1, "compliant": False, "value": 0.03, "budget": 0.01,
         "data": True, "budget_consumed": 3.0,
         "windows": [{"ticks": 1, "threshold": 10.0, "severity": "page",
                      "max_burn_rate": 3.0}]},
    ],
    "alerts": [{"tick": 1, "objective": "wire", "window_ticks": 1,
                "burn_rate": 12.0, "threshold": 10.0,
                "severity": "page"}],
}


class TestFleetJsonl:
    def test_clean_stream(self, tmp_path):
        path = _write(tmp_path, "fleet_snapshots.jsonl",
                      _fleet_line(1, kind="delta", done=0) + "\n"
                      + _fleet_line(2) + "\n")
        assert validate_fleet_jsonl(path) == []

    def test_errors_name_the_line(self, tmp_path):
        path = _write(
            tmp_path, "fleet_snapshots.jsonl",
            _fleet_line(1) + "\n"
            + _fleet_line(1, kind="partial", task="", done=-1) + "\n"
            + "not json\n")
        errors = validate_fleet_jsonl(path)
        line2 = [e for e in errors if f"{path}:2:" in e]
        assert any("'rev' 1 not greater than previous 1" in e
                   for e in line2)
        assert any("'kind' must be 'delta' or 'final'" in e
                   for e in line2)
        assert any("'task' must be a non-empty string" in e
                   for e in line2)
        assert any("'tasks_done'" in e for e in line2)
        assert any(f"{path}:3: invalid JSON" in e for e in errors)

    def test_bad_embedded_metrics_payload(self, tmp_path):
        broken = {"fleet": {"ticks": {"type": "counter"}}}  # no value
        path = _write(tmp_path, "fleet_snapshots.jsonl",
                      _fleet_line(1, metrics=broken) + "\n")
        errors = validate_fleet_jsonl(path)
        assert errors and all(f"{path}:1: metrics" in e for e in errors)

    def test_empty_stream_is_an_error(self, tmp_path):
        path = _write(tmp_path, "fleet_snapshots.jsonl", "")
        assert validate_fleet_jsonl(path) == \
            [f"{path}: empty fleet snapshot stream"]


class TestSloReport:
    def test_clean_report(self, tmp_path):
        path = _write(tmp_path, "slo_report.json",
                      json.dumps(GOOD_REPORT))
        assert validate_slo_report(path) == []

    def test_errors_name_objective_and_alert_index(self, tmp_path):
        payload = json.loads(json.dumps(GOOD_REPORT))
        del payload["objectives"][0]["compliant"]
        payload["objectives"][0]["kind"] = "availability"
        del payload["alerts"][0]["burn_rate"]
        payload["ticks"] = -1
        path = _write(tmp_path, "slo_report.json", json.dumps(payload))
        errors = validate_slo_report(path)
        assert any("objective 0 (wire): missing field 'compliant'" in e
                   for e in errors)
        assert any("objective 0 (wire): 'kind' must be" in e
                   for e in errors)
        assert any("alert 0: missing field 'burn_rate'" in e
                   for e in errors)
        assert any("'ticks' must be a non-negative integer" in e
                   for e in errors)

    def test_top_level_shape(self, tmp_path):
        path = _write(tmp_path, "slo_report.json", "[]")
        assert validate_slo_report(path) == \
            [f"{path}: top level must be an object"]


class TestDispatch:
    def test_fleet_names_route_to_their_validators(self, tmp_path):
        stream = _write(tmp_path, "fleet_snapshots.jsonl",
                        _fleet_line(1) + "\n")
        merged = _write(tmp_path, "fleet_metrics.json",
                        json.dumps(GOOD_METRICS))
        report = _write(tmp_path, "slo_report.json",
                        json.dumps(GOOD_REPORT))
        for path in (stream, merged, report):
            assert validate_path(path) == []

    def test_fleet_metrics_is_not_the_unrecognized_fallthrough(
            self, tmp_path):
        # "fleet_metrics.json" does not end with ".metrics.json" — the
        # dispatcher needs its explicit branch
        path = _write(tmp_path, "fleet_metrics.json", "[]")
        errors = validate_path(path)
        assert errors
        assert not any("unrecognized artifact name" in e for e in errors)
