"""Metrics registry: instruments, collectors, and deterministic
snapshot order."""

import json

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


def test_counter_accumulates_and_rejects_negative():
    counter = Counter()
    counter.inc()
    counter.inc(2.5)
    assert counter.snapshot() == {"type": "counter", "value": 3.5}
    with pytest.raises(ValueError):
        counter.inc(-1.0)


def test_gauge_moves_both_ways():
    gauge = Gauge()
    gauge.set(5.0)
    gauge.add(-2.0)
    assert gauge.snapshot() == {"type": "gauge", "value": 3.0}


def test_histogram_buckets_and_summary():
    hist = Histogram(buckets=(10.0, 100.0))
    for value in (5.0, 50.0, 500.0, 7.0):
        hist.observe(value)
    snap = hist.snapshot()
    assert snap["counts"] == [2, 1, 1]          # <=10, <=100, overflow
    assert snap["count"] == 4
    assert snap["min"] == 5.0 and snap["max"] == 500.0
    assert snap["mean"] == pytest.approx(562.0 / 4)


def test_histogram_empty_snapshot_omits_extrema():
    snap = Histogram().snapshot()
    assert snap["count"] == 0
    assert "min" not in snap and "mean" not in snap


def test_histogram_rejects_unsorted_buckets():
    with pytest.raises(ValueError):
        Histogram(buckets=(10.0, 10.0))
    with pytest.raises(ValueError):
        Histogram(buckets=())


def test_registry_get_or_create_returns_same_instrument():
    registry = MetricsRegistry()
    a = registry.counter("rnic.server", "wqes")
    b = registry.counter("rnic.server", "wqes")
    assert a is b
    assert len(registry) == 1


def test_registry_rejects_type_conflicts():
    registry = MetricsRegistry()
    registry.counter("sim", "events")
    with pytest.raises(TypeError):
        registry.gauge("sim", "events")


def test_collector_values_appear_as_gauges():
    registry = MetricsRegistry()
    registry.register_collector("rnic.server",
                                lambda: {"tx_bytes": 128, "rx_bytes": 64})
    snap = registry.snapshot()
    assert snap["rnic.server"]["tx_bytes"] == \
        {"type": "gauge", "value": 128.0}


def test_instruments_shadow_collector_values():
    registry = MetricsRegistry()
    registry.counter("sim", "events").inc(7)
    registry.register_collector("sim", lambda: {"events": 999})
    assert registry.snapshot()["sim"]["events"]["value"] == 7.0


def test_unregister_collector():
    registry = MetricsRegistry()
    registry.register_collector("x", lambda: {"v": 1})
    registry.unregister_collector("x")
    registry.unregister_collector("x")             # idempotent
    assert registry.snapshot() == {}


def test_snapshot_order_is_deterministic():
    """Insertion order must not leak into the serialized snapshot."""
    forward = MetricsRegistry()
    forward.counter("a", "x").inc()
    forward.gauge("b", "y").set(2.0)
    backward = MetricsRegistry()
    backward.gauge("b", "y").set(2.0)
    backward.counter("a", "x").inc()
    assert json.dumps(forward.snapshot()) == json.dumps(backward.snapshot())
    assert list(forward.snapshot()) == ["a", "b"]
