"""Sampled dispatch tracing: 1-in-N recording with exact accounting."""

import subprocess
import sys

import pytest

from repro import obs
from repro.obs.tracer import Tracer
from repro.sim import Simulator


@pytest.fixture(autouse=True)
def clean_session():
    yield
    obs.uninstall()


def _dispatch(sim, count):
    for t in range(count):
        sim.schedule(float(t + 1), lambda: None)
    sim.run()


def test_sample_rate_validation():
    with pytest.raises(ValueError):
        Tracer(clock=lambda: 0.0, sample_rate=0)
    with pytest.raises(ValueError):
        obs.ObsSession(trace=True, trace_sample_rate=0)
    with pytest.raises(ValueError):
        obs.install(trace=True, trace_sample_rate=-3)


def test_rate_one_records_every_dispatch():
    obs.install(trace=True)
    sim = Simulator()
    _dispatch(sim, 10)
    tracer = obs.tracer_for(sim)
    assert len(tracer.events) == 10
    assert tracer.dispatches_seen == 10
    assert tracer.sampled_out == 0


def test_sampled_dispatch_exact_accounting():
    obs.install(trace=True, trace_sample_rate=4)
    sim = Simulator()
    _dispatch(sim, 103)
    tracer = obs.tracer_for(sim)
    # every 4th dispatch recorded: floor(103 / 4) = 25
    assert len(tracer.events) == 25
    assert tracer.dispatches_seen == 103
    assert tracer.sampled_out == 78
    # the accounting identity: nothing is silently lost
    assert tracer.dispatches_seen == \
        tracer.sampled_out + len(tracer.events) + tracer.dropped
    # recorded timestamps are the Nth dispatches
    assert [e.ts for e in tracer.events[:3]] == [4.0, 8.0, 12.0]


def test_sampling_only_gates_the_dispatch_hook():
    obs.install(trace=True, trace_sample_rate=1000)
    sim = Simulator()
    tracer = obs.tracer_for(sim)
    tracer.instant("covert.bit", ts=1.0)
    tracer.span("wqe", start=2.0, dur=3.0)
    tracer.counter("bw", {"bps": 1.0}, ts=4.0)
    _dispatch(sim, 10)
    # explicit instrumentation always lands; all 10 dispatches sampled out
    assert len(tracer.events) == 3
    assert tracer.sampled_out == 10


def test_stats_surface_sampling_counters():
    session = obs.install(trace=True, trace_sample_rate=5)
    sim = Simulator()
    _dispatch(sim, 20)
    tracer = obs.tracer_for(sim)
    assert tracer.stats() == {
        "events": 4, "dropped": 0, "max_events": tracer.max_events,
        "sample_rate": 5, "dispatches_seen": 20, "sampled_out": 16,
    }
    stats = session.stats()
    assert stats["trace_sample_rate"] == 5
    assert stats["sampled_out"] == 16
    assert stats["events"] == 4


def test_sampled_trace_is_deterministic():
    outcomes = []
    for _ in range(2):
        obs.install(trace=True, trace_sample_rate=3)
        sim = Simulator()
        _dispatch(sim, 30)
        tracer = obs.tracer_for(sim)
        outcomes.append([(e.name, e.ts) for e in tracer.events])
        obs.uninstall()
    assert outcomes[0] == outcomes[1]
    assert len(outcomes[0]) == 10


def test_cli_trace_sample_implies_trace(tmp_path):
    proc = subprocess.run(
        [sys.executable, "-m", "repro.experiments", "table5", "--smoke",
         "--trace-sample", "50", "--out", str(tmp_path)],
        capture_output=True, text=True)
    assert proc.returncode == 0, proc.stderr
    assert (tmp_path / "table5.trace.jsonl").exists()


def test_cli_rejects_bad_sample_rate(tmp_path):
    proc = subprocess.run(
        [sys.executable, "-m", "repro.experiments", "table5", "--smoke",
         "--trace-sample", "0", "--out", str(tmp_path)],
        capture_output=True, text=True)
    assert proc.returncode != 0
    assert "trace-sample" in proc.stderr
