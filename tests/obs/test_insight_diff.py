"""Run-to-run diff: tolerances, regressions, exit codes."""

import json
import subprocess
import sys

import pytest

from repro.obs.insight.diff import diff_runs


def _write_metrics(run_dir, posted=100, lat_sum=500.0):
    (run_dir / "exp.metrics.json").write_text(json.dumps({
        "rnic": {
            "posted": {"type": "counter", "value": posted},
            "lat": {"type": "histogram", "count": 10, "sum": lat_sum,
                    "buckets": [10.0], "counts": [5, 5]},
        },
    }))


def _write_bench(run_dir, ops=1000.0):
    (run_dir / "BENCH_simulator.json").write_text(json.dumps({
        "benches": {"dispatch": {"ops_per_s": ops}}}))


def _make_run(run_dir, posted=100, ops=1000.0, table="bits 42\n"):
    run_dir.mkdir()
    (run_dir / "exp.txt").write_text(table)
    _write_metrics(run_dir, posted=posted)
    _write_bench(run_dir, ops=ops)
    return run_dir


def test_identical_runs_diff_clean(tmp_path):
    a = _make_run(tmp_path / "a")
    b = _make_run(tmp_path / "b")
    result = diff_runs(a, b)
    assert result.ok
    assert not result.regressions
    assert result.render().endswith("diff: ok\n")


def test_metric_drift_beyond_tolerance_regresses(tmp_path):
    a = _make_run(tmp_path / "a", posted=100)
    b = _make_run(tmp_path / "b", posted=150)  # +50% > 20% tolerance
    result = diff_runs(a, b)
    assert not result.ok
    assert any("rnic.posted.value" in r for r in result.regressions)
    # a wider tolerance absorbs the same drift
    assert diff_runs(a, b, tolerance=0.5).ok


def test_missing_metric_regresses(tmp_path):
    a = _make_run(tmp_path / "a")
    b = _make_run(tmp_path / "b")
    (b / "exp.metrics.json").write_text(json.dumps({
        "rnic": {"posted": {"type": "counter", "value": 100}}}))
    result = diff_runs(a, b)
    assert any("only in run A" in r for r in result.regressions)


def test_bench_throughput_regression_and_improvement(tmp_path):
    # the acceptance case: a >20% dispatch-throughput drop must fail
    a = _make_run(tmp_path / "a", ops=1000.0)
    b = _make_run(tmp_path / "b", ops=700.0)
    result = diff_runs(a, b)
    assert not result.ok
    assert any("throughput regressed" in r for r in result.regressions)
    # an improvement is a note, never a regression
    up = diff_runs(b, a)
    assert up.ok
    assert any("improved" in n for n in up.notes)


def test_table_mismatch_regresses(tmp_path):
    a = _make_run(tmp_path / "a", table="bits 42\n")
    b = _make_run(tmp_path / "b", table="bits 41\n")
    result = diff_runs(a, b)
    assert any("experiment table differs" in r for r in result.regressions)


def test_trace_count_drift_is_advisory(tmp_path):
    a = _make_run(tmp_path / "a")
    b = _make_run(tmp_path / "b")
    (a / "exp.trace.jsonl").write_text('{"x": 1}\n{"x": 2}\n')
    (b / "exp.trace.jsonl").write_text('{"x": 1}\n')
    result = diff_runs(a, b)
    assert result.ok  # advisory only
    assert any("event count" in n for n in result.notes)


def test_one_sided_file_is_a_note(tmp_path):
    a = _make_run(tmp_path / "a")
    b = _make_run(tmp_path / "b")
    (a / "extra.txt").write_text("x")
    result = diff_runs(a, b)
    assert any("only in run A" in n for n in result.notes)


def test_prof_txt_is_not_compared(tmp_path):
    a = _make_run(tmp_path / "a")
    b = _make_run(tmp_path / "b")
    (a / "exp.prof.txt").write_text("profile A")
    (b / "exp.prof.txt").write_text("profile B")  # timing-shaped
    assert diff_runs(a, b).ok


def test_missing_dir_raises(tmp_path):
    a = _make_run(tmp_path / "a")
    with pytest.raises(FileNotFoundError):
        diff_runs(a, tmp_path / "nope")


def test_cli_exit_codes(tmp_path):
    a = _make_run(tmp_path / "a")
    b = _make_run(tmp_path / "b", ops=700.0)

    def run_diff(*argv):
        return subprocess.run(
            [sys.executable, "-m", "repro.obs", "diff", *argv],
            capture_output=True, text=True)

    clean = run_diff(str(a), str(a))
    assert clean.returncode == 0, clean.stderr
    assert "diff: ok" in clean.stdout
    regressed = run_diff(str(a), str(b))
    assert regressed.returncode == 1
    assert "REGRESSION" in regressed.stdout
    missing = run_diff(str(a), str(tmp_path / "nope"))
    assert missing.returncode == 2
