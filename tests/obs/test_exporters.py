"""Exporters and validators: round trips, schema failures, CLI."""

import json

from repro.obs import __main__ as obs_cli
from repro.obs.exporters import (
    validate_chrome_trace,
    validate_metrics_json,
    validate_path,
    validate_trace_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_metrics_json,
)
from repro.obs.tracer import PHASE_COUNTER, PHASE_INSTANT, PHASE_SPAN, TraceEvent

EVENTS = [
    TraceEvent("wqe", PHASE_SPAN, 1000.0, "rnic.server", dur=250.0,
               category="rnic", args={"wqe": 1}),
    TraceEvent("bit", PHASE_INSTANT, 1500.0, "covert.tx", args={"bit": 1}),
    TraceEvent("bw", PHASE_COUNTER, 2000.0, "telemetry.bandwidth",
               args={"bps": 3.5}),
]


def test_jsonl_round_trip_validates(tmp_path):
    path = write_jsonl(EVENTS, tmp_path / "run.trace.jsonl")
    assert validate_trace_jsonl(path) == []
    records = [json.loads(line) for line in path.read_text().splitlines()]
    assert [r["ph"] for r in records] == ["X", "i", "C"]
    assert records[0]["dur"] == 250.0


def test_jsonl_empty_file_is_an_error(tmp_path):
    path = tmp_path / "empty.trace.jsonl"
    path.write_text("")
    assert validate_trace_jsonl(path) == [f"{path}: empty trace"]


def test_jsonl_validator_catches_bad_records(tmp_path):
    path = tmp_path / "bad.trace.jsonl"
    path.write_text("\n".join([
        "not json",
        json.dumps({"name": "x", "ph": "Z", "ts": 1.0, "component": "sim"}),
        json.dumps({"name": "x", "ph": "X", "ts": -1.0, "component": "sim"}),
    ]) + "\n")
    errors = validate_trace_jsonl(path)
    assert any("invalid JSON" in e for e in errors)
    assert any("unknown phase 'Z'" in e for e in errors)
    assert any("non-negative 'dur'" in e for e in errors)
    assert any("negative timestamp" in e for e in errors)


def test_chrome_trace_shape_and_us_conversion(tmp_path):
    path = write_chrome_trace(EVENTS, tmp_path / "run.trace.json")
    assert validate_chrome_trace(path) == []
    payload = json.loads(path.read_text())
    events = payload["traceEvents"]
    threads = {e["args"]["name"]: e["tid"] for e in events if e["ph"] == "M"}
    assert set(threads) == {"rnic.server", "covert.tx",
                            "telemetry.bandwidth"}
    span = next(e for e in events if e["ph"] == "X")
    assert span["ts"] == 1.0 and span["dur"] == 0.25   # ns -> us
    assert span["tid"] == threads["rnic.server"]
    instant = next(e for e in events if e["ph"] == "i")
    assert instant["s"] == "t"


def test_chrome_validator_catches_structure_errors(tmp_path):
    path = tmp_path / "bad.trace.json"
    path.write_text(json.dumps({"other": []}))
    assert "traceEvents" in validate_chrome_trace(path)[0]
    path.write_text(json.dumps({"traceEvents": []}))
    assert "non-empty" in validate_chrome_trace(path)[0]
    path.write_text(json.dumps(
        {"traceEvents": [{"ph": "X", "name": "a", "ts": 1, "pid": 0,
                          "tid": 0}]}))
    assert any("missing 'dur'" in e for e in validate_chrome_trace(path))


def test_metrics_round_trip_and_validator(tmp_path):
    snapshot = {"sim": {"events": {"type": "counter", "value": 3.0}}}
    path = write_metrics_json(snapshot, tmp_path / "run.metrics.json")
    assert validate_metrics_json(path) == []
    assert json.loads(path.read_text()) == snapshot

    path.write_text(json.dumps({"sim": {"events": {"type": "mystery"}}}))
    assert any("unknown metric type" in e for e in validate_metrics_json(path))


def test_validate_path_dispatches_on_artifact_name(tmp_path):
    jsonl = write_jsonl(EVENTS, tmp_path / "a.trace.jsonl")
    chrome = write_chrome_trace(EVENTS, tmp_path / "a.trace.json")
    metrics = write_metrics_json({}, tmp_path / "a.metrics.json")
    assert validate_path(jsonl) == []
    assert validate_path(chrome) == []
    assert validate_path(metrics) == []
    stray = tmp_path / "a.csv"
    stray.write_text("x")
    assert "unrecognized artifact name" in validate_path(stray)[0]


def test_cli_validates_and_reports(tmp_path, capsys):
    good = write_jsonl(EVENTS, tmp_path / "ok.trace.jsonl")
    assert obs_cli.main(["validate", str(good)]) == 0
    assert "ok" in capsys.readouterr().out

    bad = tmp_path / "bad.trace.jsonl"
    bad.write_text("nope\n")
    missing = tmp_path / "gone.trace.jsonl"
    assert obs_cli.main(["validate", str(bad), str(missing)]) == 1
    out = capsys.readouterr().out
    assert "invalid JSON" in out and "no such file" in out
