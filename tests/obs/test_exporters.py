"""Exporters and validators: round trips, schema failures, CLI."""

import json

from repro.obs import __main__ as obs_cli
from repro.obs.exporters import (
    validate_chrome_trace,
    validate_metrics_json,
    validate_path,
    validate_trace_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_metrics_json,
)
from repro.obs.tracer import PHASE_COUNTER, PHASE_INSTANT, PHASE_SPAN, TraceEvent

EVENTS = [
    TraceEvent("wqe", PHASE_SPAN, 1000.0, "rnic.server", dur=250.0,
               category="rnic", args={"wqe": 1}),
    TraceEvent("bit", PHASE_INSTANT, 1500.0, "covert.tx", args={"bit": 1}),
    TraceEvent("bw", PHASE_COUNTER, 2000.0, "telemetry.bandwidth",
               args={"bps": 3.5}),
]


def test_jsonl_round_trip_validates(tmp_path):
    path = write_jsonl(EVENTS, tmp_path / "run.trace.jsonl")
    assert validate_trace_jsonl(path) == []
    records = [json.loads(line) for line in path.read_text().splitlines()]
    assert [r["ph"] for r in records] == ["X", "i", "C"]
    assert records[0]["dur"] == 250.0


def test_jsonl_empty_file_is_an_error(tmp_path):
    path = tmp_path / "empty.trace.jsonl"
    path.write_text("")
    assert validate_trace_jsonl(path) == [f"{path}: empty trace"]


def test_jsonl_validator_catches_bad_records(tmp_path):
    path = tmp_path / "bad.trace.jsonl"
    path.write_text("\n".join([
        "not json",
        json.dumps({"name": "x", "ph": "Z", "ts": 1.0, "component": "sim"}),
        json.dumps({"name": "x", "ph": "X", "ts": -1.0, "component": "sim"}),
    ]) + "\n")
    errors = validate_trace_jsonl(path)
    assert any("invalid JSON" in e for e in errors)
    assert any("unknown phase 'Z'" in e for e in errors)
    assert any("non-negative 'dur'" in e for e in errors)
    assert any("negative timestamp" in e for e in errors)


def test_chrome_trace_shape_and_us_conversion(tmp_path):
    path = write_chrome_trace(EVENTS, tmp_path / "run.trace.json")
    assert validate_chrome_trace(path) == []
    payload = json.loads(path.read_text())
    events = payload["traceEvents"]
    threads = {e["args"]["name"]: e["tid"] for e in events if e["ph"] == "M"}
    assert set(threads) == {"rnic.server", "covert.tx",
                            "telemetry.bandwidth"}
    span = next(e for e in events if e["ph"] == "X")
    assert span["ts"] == 1.0 and span["dur"] == 0.25   # ns -> us
    assert span["tid"] == threads["rnic.server"]
    instant = next(e for e in events if e["ph"] == "i")
    assert instant["s"] == "t"


def test_chrome_validator_catches_structure_errors(tmp_path):
    path = tmp_path / "bad.trace.json"
    path.write_text(json.dumps({"other": []}))
    assert "traceEvents" in validate_chrome_trace(path)[0]
    path.write_text(json.dumps({"traceEvents": []}))
    assert "non-empty" in validate_chrome_trace(path)[0]
    path.write_text(json.dumps(
        {"traceEvents": [{"ph": "X", "name": "a", "ts": 1, "pid": 0,
                          "tid": 0}]}))
    assert any("missing 'dur'" in e for e in validate_chrome_trace(path))


def test_metrics_round_trip_and_validator(tmp_path):
    snapshot = {"sim": {"events": {"type": "counter", "value": 3.0}}}
    path = write_metrics_json(snapshot, tmp_path / "run.metrics.json")
    assert validate_metrics_json(path) == []
    assert json.loads(path.read_text()) == snapshot

    path.write_text(json.dumps({"sim": {"events": {"type": "mystery"}}}))
    assert any("unknown metric type" in e for e in validate_metrics_json(path))


def test_validate_path_dispatches_on_artifact_name(tmp_path):
    jsonl = write_jsonl(EVENTS, tmp_path / "a.trace.jsonl")
    chrome = write_chrome_trace(EVENTS, tmp_path / "a.trace.json")
    metrics = write_metrics_json({}, tmp_path / "a.metrics.json")
    assert validate_path(jsonl) == []
    assert validate_path(chrome) == []
    assert validate_path(metrics) == []
    stray = tmp_path / "a.csv"
    stray.write_text("x")
    assert "unrecognized artifact name" in validate_path(stray)[0]


def test_cli_validates_and_reports(tmp_path, capsys):
    good = write_jsonl(EVENTS, tmp_path / "ok.trace.jsonl")
    assert obs_cli.main(["validate", str(good)]) == 0
    assert "ok" in capsys.readouterr().out

    bad = tmp_path / "bad.trace.jsonl"
    bad.write_text("nope\n")
    missing = tmp_path / "gone.trace.jsonl"
    assert obs_cli.main(["validate", str(bad), str(missing)]) == 1
    out = capsys.readouterr().out
    assert "invalid JSON" in out and "no such file" in out


# ----------------------------------------------------------------------
# Edge cases: empty exports, cap overflow, zero-duration spans, and
# record-indexed metrics errors
# ----------------------------------------------------------------------
def test_empty_jsonl_export_is_well_formed_but_invalid(tmp_path):
    """Exporting zero events writes an empty file the validator
    rejects — which is why ObsSession.export omits empty traces."""
    path = write_jsonl([], tmp_path / "none.trace.jsonl")
    assert path.read_text() == ""
    assert validate_trace_jsonl(path) == [f"{path}: empty trace"]


def test_drop_counter_overflow_still_exports_valid_trace(tmp_path):
    """A tracer saturated far past its cap must still export a
    schema-valid (truncated) timeline with exact drop accounting."""
    from repro.obs.tracer import Tracer

    tracer = Tracer(clock=lambda: 0.0, max_events=5)
    hook = tracer.make_dispatch_hook()
    for t in range(10_000):
        hook(float(t), 0, test_drop_counter_overflow_still_exports_valid_trace)
    assert len(tracer.events) == 5
    assert tracer.dropped == 9_995
    assert tracer.dispatches_seen == 10_000
    path = write_jsonl(tracer.events, tmp_path / "cap.trace.jsonl")
    assert validate_trace_jsonl(path) == []


def test_zero_duration_chrome_spans_validate(tmp_path):
    """Instantaneous spans (admit == finish) are legal in both
    formats: dur 0 is non-negative, and Chrome keeps the 'dur' key."""
    events = [TraceEvent("noop", PHASE_SPAN, 1000.0, "rnic", dur=0.0)]
    jsonl = write_jsonl(events, tmp_path / "z.trace.jsonl")
    assert validate_trace_jsonl(jsonl) == []
    chrome = write_chrome_trace(events, tmp_path / "z.trace.json")
    assert validate_chrome_trace(chrome) == []
    span = next(e for e in json.loads(chrome.read_text())["traceEvents"]
                if e["ph"] == "X")
    assert span["dur"] == 0.0


def test_metrics_validator_names_the_offending_record(tmp_path):
    path = tmp_path / "bad.metrics.json"
    path.write_text(json.dumps({
        "b_comp": {"ok_gauge": {"type": "gauge", "value": 1.5}},
        "a_comp": {
            "bad_counter": {"type": "counter", "value": -3},
            "bad_value": {"type": "gauge", "value": "high"},
        },
    }))
    errors = validate_metrics_json(path)
    # flattened index: sorted components, sorted names within each
    assert any("record 0 (a_comp.bad_counter)" in e and "non-negative" in e
               for e in errors)
    assert any("record 1 (a_comp.bad_value)" in e and "numeric" in e
               for e in errors)
    assert not any("record 2" in e for e in errors)  # the gauge is fine


def test_metrics_validator_rejects_bool_and_bad_histograms(tmp_path):
    path = tmp_path / "hist.metrics.json"
    path.write_text(json.dumps({
        "sim": {
            "flag": {"type": "gauge", "value": True},
            "h_counts": {"type": "histogram", "count": 2, "sum": 1.0,
                         "buckets": [1.0, 2.0], "counts": [1, 1]},
            "h_order": {"type": "histogram", "count": 1, "sum": 1.0,
                        "buckets": [2.0, 1.0], "counts": [1, 0, 0]},
            "h_total": {"type": "histogram", "count": 9, "sum": 1.0,
                        "buckets": [1.0], "counts": [1, 1]},
        },
    }))
    errors = validate_metrics_json(path)
    assert any("(sim.flag)" in e and "numeric" in e for e in errors)
    assert any("(sim.h_counts)" in e and "len(buckets)+1" in e
               for e in errors)
    assert any("(sim.h_order)" in e and "strictly" in e for e in errors)
    assert any("(sim.h_total)" in e and "sum of" in e for e in errors)


def test_metrics_validator_accepts_real_histogram_snapshot(tmp_path):
    from repro.obs.metrics import Histogram

    hist = Histogram(buckets=(10.0, 100.0))
    hist.observe(5.0)
    hist.observe(50.0)
    hist.observe(500.0)
    path = write_metrics_json({"sim": {"lat": hist.snapshot()}},
                              tmp_path / "real.metrics.json")
    assert validate_metrics_json(path) == []
