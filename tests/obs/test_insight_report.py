"""Run reports: deterministic markdown from run-directory artifacts."""

import json
import subprocess
import sys

import pytest

from repro.obs.exporters import write_jsonl
from repro.obs.insight.report import discover_runs, render_report
from repro.obs.tracer import PHASE_COUNTER, PHASE_INSTANT, PHASE_SPAN, TraceEvent


def _make_run(run_dir, name="exp"):
    run_dir.mkdir(exist_ok=True)
    (run_dir / f"{name}.txt").write_text("metric  value\nbits    42\n")
    events = []
    for i in range(32):
        dur = 200.0 if i % 2 else 100.0
        events.append(TraceEvent("wqe", PHASE_SPAN, 1000.0 * i,
                                 "rnic.server", dur=dur))
        events.append(TraceEvent("dispatch", PHASE_INSTANT, 1000.0 * i,
                                 "sim0"))
    # a period-16 square wave over 128 samples: modulation the online
    # detectors (ewma shift, periodicity autocorrelation) must flag
    for i in range(128):
        events.append(TraceEvent(
            "bw", PHASE_COUNTER, 1000.0 * i, "telemetry",
            args={"bps": 30.0 if (i // 8) % 2 else 10.0}))
    write_jsonl(events, run_dir / f"{name}.trace.jsonl")
    (run_dir / f"{name}.metrics.json").write_text(json.dumps({
        "rnic": {
            "posted": {"type": "counter", "value": 32},
            "lat": {"type": "histogram", "count": 2, "sum": 30.0,
                    "mean": 15.0, "buckets": [10.0], "counts": [1, 1]},
        },
    }))
    return run_dir


def test_report_sections_and_byte_stability(tmp_path):
    run = _make_run(tmp_path / "run")
    report = render_report(run)
    assert report.startswith("# repro run report\n")
    assert "## exp" in report
    assert "### Station occupancy" in report
    assert "### Span latency" in report
    assert "### Slowest spans" in report
    assert "### Counter series — online detector verdicts" in report
    assert "### Metrics snapshot" in report
    # the experiment table is embedded verbatim
    assert "bits    42" in report
    # the toggling counter must be flagged by at least one detector
    assert "FLAG" in report
    # determinism: rendering twice is byte-identical
    assert render_report(run) == report


def test_report_contains_no_absolute_paths(tmp_path):
    run = _make_run(tmp_path / "run")
    report = render_report(run)
    assert str(tmp_path) not in report
    assert run.name not in report.replace("run report", "")


def test_report_failed_experiment_section(tmp_path):
    run = tmp_path / "run"
    run.mkdir()
    (run / "exp.error.txt").write_text(
        "Traceback (most recent call last):\nValueError: boom\n")
    report = render_report(run)
    assert "**FAILED**" in report
    assert "ValueError: boom" in report


def test_discover_runs_and_names_filter(tmp_path):
    run = tmp_path / "run"
    run.mkdir()
    (run / "a.txt").write_text("x")
    (run / "b.trace.jsonl").write_text("")
    (run / "c.metrics.json").write_text("{}")
    (run / "unrelated.log").write_text("x")
    assert discover_runs(run) == ["a", "b", "c"]
    assert discover_runs(run, names=["b", "zz"]) == ["b"]
    report = render_report(run, names=["a"])
    assert "## a" in report and "## b" not in report


def test_report_empty_run_dir(tmp_path):
    run = tmp_path / "empty"
    run.mkdir()
    assert "No run artifacts found." in render_report(run)


def test_report_history_trend(tmp_path):
    run = _make_run(tmp_path / "run")
    history = tmp_path / "history"
    history.mkdir()
    for stamp, ops in (("20260101T000000Z", 1000.0),
                       ("20260102T000000Z", 1100.0)):
        (history / f"{stamp}.json").write_text(json.dumps({
            "benches": {"dispatch": {"ops_per_s": ops}}}))
    report = render_report(run, history_dir=history)
    assert "## Bench trend" in report
    assert "`20260101T000000Z.json` → `20260102T000000Z.json`" in report
    assert "+10.0%" in report
    # fewer than two archives: no trend section
    (history / "20260101T000000Z.json").unlink()
    assert "## Bench trend" not in render_report(run, history_dir=history)


def test_report_missing_dir_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        render_report(tmp_path / "nope")


def test_cli_report_writes_out_and_exit_codes(tmp_path):
    run = _make_run(tmp_path / "run")
    out = tmp_path / "report.md"
    proc = subprocess.run(
        [sys.executable, "-m", "repro.obs", "report", str(run),
         "--out", str(out)],
        capture_output=True, text=True)
    assert proc.returncode == 0, proc.stderr
    assert out.read_text().startswith("# repro run report")
    missing = subprocess.run(
        [sys.executable, "-m", "repro.obs", "report",
         str(tmp_path / "nope")],
        capture_output=True, text=True)
    assert missing.returncode == 2
