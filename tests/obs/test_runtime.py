"""The process-wide session: install/uninstall, simulator
self-attachment, export, and cross-engine tracing equality."""

import json

import pytest

from repro import obs
from repro.sim import Simulator
from repro.sim.event import PyEventCore
from repro.sim.kernel import make_simulator_class

CORES = [PyEventCore]
try:
    from repro.sim import _speedups
    CORES.append(_speedups.EventCore)
except ImportError:
    pass

SIM_CLASSES = {core.__name__: make_simulator_class(core) for core in CORES}


@pytest.fixture(autouse=True)
def clean_session():
    yield
    obs.uninstall()


def test_accessors_are_none_without_a_session():
    obs.uninstall()
    sim = Simulator()
    assert obs.session() is None
    assert obs.tracer_for(sim) is None
    assert obs.registry() is None
    assert obs.engine_tracer(object(), "verbs") is None


def test_simulators_self_attach_while_tracing():
    session = obs.install(trace=True)
    sim = Simulator()
    tracer = obs.tracer_for(sim)
    assert tracer is not None
    assert tracer.component == "sim0"
    sim.schedule(10.0, lambda: None)
    sim.run()
    assert [e.category for e in tracer.events] == ["dispatch"]
    assert session.stats()["events"] == 1


def test_attach_is_idempotent_and_per_simulator():
    obs.install(trace=True)
    first, second = Simulator(), Simulator()
    obs.attach_simulator(first)                     # re-attach: no-op
    a, b = obs.tracer_for(first), obs.tracer_for(second)
    assert a is not b
    assert (a.component, b.component) == ("sim0", "sim1")
    first.schedule(1.0, lambda: None)
    first.run()
    assert len(a.events) == 1 and len(b.events) == 0


def test_metrics_only_session_skips_tracers():
    session = obs.install(metrics=True)
    sim = Simulator()
    assert obs.tracer_for(sim) is None
    assert obs.registry() is session.metrics is not None


def test_register_rnic_exposes_counters_as_collector():
    obs.install(metrics=True)

    class FakeCounters:
        def snapshot(self):
            return {"tx_bytes": 42}

    class FakeRnic:
        name = "server"
        counters = FakeCounters()

    obs.register_rnic(FakeRnic())
    snap = obs.registry().snapshot()
    assert snap["rnic.server"]["tx_bytes"]["value"] == 42.0


def test_max_events_cap_flows_through_to_tracers():
    obs.install(trace=True, max_events=3)
    sim = Simulator()
    for t in range(10):
        sim.schedule(float(t + 1), lambda: None)
    sim.run()
    tracer = obs.tracer_for(sim)
    assert len(tracer.events) == 3
    assert tracer.dropped == 7
    assert obs.session().stats()["dropped"] == 7


def test_events_merge_sorted_across_tracers():
    session = obs.install(trace=True)
    sim = Simulator()
    obs.tracer_for(sim).instant("late", ts=50.0)
    engine = type("E", (), {"now": 0.0})()
    obs.engine_tracer(engine, "verbs.immediate").instant("early", ts=10.0)
    assert [e.name for e in session.events()] == ["early", "late"]


def test_export_writes_the_enabled_artifact_set(tmp_path):
    session = obs.install(trace=True, metrics=True)
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    obs.registry().counter("sim", "events").inc()
    paths = session.export(tmp_path, "run")
    assert [p.name for p in paths] == \
        ["run.trace.jsonl", "run.trace.json", "run.metrics.json"]
    from repro.obs.exporters import validate_paths
    assert validate_paths(paths) == []
    payload = json.loads((tmp_path / "run.trace.json").read_text())
    assert payload["traceEvents"]

    metrics_only = obs.install(metrics=True)
    assert [p.name for p in metrics_only.export(tmp_path, "m")] == \
        ["m.metrics.json"]


def test_export_omits_trace_files_when_nothing_was_traced(tmp_path):
    """A traced session that recorded no events (pure fluid-flow
    experiments never build a simulator) must not emit empty —
    i.e. schema-invalid — trace files."""
    session = obs.install(trace=True, metrics=True)
    paths = session.export(tmp_path, "quiet")
    assert [p.name for p in paths] == ["quiet.metrics.json"]
    assert not (tmp_path / "quiet.trace.jsonl").exists()


def _drive(sim) -> None:
    """A nested-scheduling workload whose callback qualnames are
    engine-independent (same function objects for every core)."""
    def tick(depth):
        if depth < 3:
            sim.schedule(7.0, tick, depth + 1)

    sim.schedule(10.0, tick, 0)
    sim.schedule(10.0, tick, 3, priority=2)
    sim.run()


@pytest.mark.skipif(len(CORES) < 2,
                    reason="C core not built; nothing to compare")
def test_cross_engine_dispatch_traces_are_identical():
    """The C and pure-Python cores must feed the obs tracer identical
    records through the shared dispatch-hook surface."""
    records = {}
    for name, sim_class in SIM_CLASSES.items():
        obs.install(trace=True)
        sim = sim_class()
        _drive(sim)
        tracer = obs.tracer_for(sim)
        records[name] = [
            (e.name, e.phase, e.ts, e.component, e.category, e.args)
            for e in tracer.events
        ]
        obs.uninstall()
    reference = next(iter(records.values()))
    assert len(reference) == 5
    for name, outcome in records.items():
        assert outcome == reference, name


@pytest.mark.skipif(len(CORES) < 2,
                    reason="C core not built; nothing to compare")
def test_cross_engine_tracing_preserves_digest_equality():
    """Hook multiplexing (digest + obs tracer together) must not break
    the engines' trace-digest agreement."""
    digests = {}
    for name, sim_class in SIM_CLASSES.items():
        obs.install(trace=True)
        sim = sim_class(trace=True)
        _drive(sim)
        digests[name] = sim.trace_digest
        obs.uninstall()
    assert len(set(digests.values())) == 1, digests
