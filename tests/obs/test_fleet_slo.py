"""The declarative SLO engine: spec validation, quantile math, burn
windows, and report determinism."""

import json

import pytest

from repro.obs.fleet import (
    SloEngine,
    SloSpecError,
    evaluate_snapshots,
    histogram_quantile,
    load_spec,
)

VALID_SPEC = {
    "name": "test-slos",
    "objectives": [
        {"name": "wire-errors", "kind": "error_rate",
         "bad": "rnic.*.retransmits", "good": "rnic.*.tx_packets",
         "budget": 0.01,
         "windows": [{"ticks": 1, "burn_rate": 10.0, "severity": "page"},
                     {"ticks": 3, "burn_rate": 2.0,
                      "severity": "ticket"}]},
        {"name": "verdict-p99", "kind": "latency",
         "metric": "defense.*.verdict_ns", "percentile": 0.99,
         "target": 10000.0,
         "windows": [{"ticks": 2, "burn_rate": 5.0}]},
    ],
}


def _snapshot(tx: float, retransmits: float) -> dict:
    return {"rnic.qp0": {
        "tx_packets": {"type": "counter", "value": tx},
        "retransmits": {"type": "counter", "value": retransmits},
    }}


def _histogram_row(counts, buckets=(10.0, 100.0, 1000.0), maximum=5000.0):
    return {"type": "histogram", "count": sum(counts),
            "sum": 1.0, "buckets": list(buckets),
            "counts": list(counts), "min": 1.0, "max": maximum,
            "mean": 1.0}


class TestLoadSpec:
    def test_valid_spec_parses(self):
        spec = load_spec(VALID_SPEC)
        assert spec.name == "test-slos"
        assert [o.name for o in spec.objectives] == ["wire-errors",
                                                     "verdict-p99"]
        assert spec.objectives[0].windows[1].severity == "ticket"
        assert spec.objectives[1].error_budget == pytest.approx(0.01)

    def test_loads_from_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(VALID_SPEC))
        assert load_spec(path).name == "test-slos"

    @pytest.mark.parametrize("mutate, fragment", [
        (lambda s: s.pop("name"), "non-empty 'name'"),
        (lambda s: s.update(objectives=[]), "non-empty 'objectives'"),
        (lambda s: s["objectives"][0].pop("name"),
         "objective 0 (?)"),
        (lambda s: s["objectives"][1].update(kind="availability"),
         "objective 1 (verdict-p99): 'kind'"),
        (lambda s: s["objectives"][0].update(budget=1.5),
         "objective 0 (wire-errors): 'budget' must be in (0, 1)"),
        (lambda s: s["objectives"][1].pop("metric"),
         "latency objectives need a 'metric'"),
        (lambda s: s["objectives"][1].update(percentile=1.0),
         "'percentile' must be in (0, 1)"),
        (lambda s: s["objectives"][0]["windows"][0].update(ticks=0),
         "window 0: 'ticks' must be an integer >= 1"),
        (lambda s: s["objectives"][0]["windows"][1].update(burn_rate=0),
         "window 1: 'burn_rate' must be positive"),
        (lambda s: s["objectives"][1].update(name="wire-errors"),
         "duplicate objective names"),
    ])
    def test_invalid_specs_name_the_offense(self, mutate, fragment):
        spec = json.loads(json.dumps(VALID_SPEC))
        mutate(spec)
        with pytest.raises(SloSpecError) as excinfo:
            load_spec(spec)
        assert fragment in str(excinfo.value)


class TestHistogramQuantile:
    def test_reports_containing_bucket_upper_bound(self):
        # 90 in (-inf,10], 9 in (10,100], 1 in (100,1000]
        row = _histogram_row([90, 9, 1, 0])
        assert histogram_quantile(row, 0.50) == 10.0
        assert histogram_quantile(row, 0.99) == 100.0
        assert histogram_quantile(row, 0.999) == 1000.0

    def test_overflow_bucket_reports_max(self):
        row = _histogram_row([0, 0, 0, 4], maximum=7777.0)
        assert histogram_quantile(row, 0.5) == 7777.0

    def test_empty_histogram_is_none(self):
        assert histogram_quantile(_histogram_row([0, 0, 0, 0]),
                                  0.99) is None


class TestBurnWindows:
    def test_alert_fires_when_window_burn_crosses_threshold(self):
        spec = load_spec(VALID_SPEC)
        engine = SloEngine(spec)
        # tick 0: clean; tick 1: 20 % of the tick's traffic retransmits
        # -> burn 20x over the 1-tick window (budget 1 %), page fires
        assert engine.observe(_snapshot(tx=1000, retransmits=0)) == []
        fired = engine.observe(_snapshot(tx=2000, retransmits=200))
        assert [(a["objective"], a["window_ticks"], a["severity"])
                for a in fired] == [("wire-errors", 1, "page"),
                                    ("wire-errors", 3, "ticket")]
        assert fired[0]["burn_rate"] == pytest.approx(20.0)
        assert fired[0]["tick"] == 1
        assert fired[0]["threshold"] == 10.0

    def test_quiet_stream_never_alerts(self):
        engine = SloEngine(load_spec(VALID_SPEC))
        for tick in range(5):
            assert engine.observe(
                _snapshot(tx=1000.0 * (tick + 1), retransmits=0)) == []
        report = engine.report(_snapshot(tx=5000, retransmits=0))
        assert report["compliant"] is True
        assert report["alerts"] == []
        assert report["objectives"][0]["value"] == 0.0

    def test_bad_events_with_no_good_traffic_burn_at_cap(self):
        engine = SloEngine(load_spec(VALID_SPEC))
        fired = engine.observe(_snapshot(tx=0, retransmits=5))
        assert fired and all(a["burn_rate"] == 1e9 for a in fired)


class TestReport:
    def test_report_shape_and_window_maxima(self):
        spec = load_spec(VALID_SPEC)
        snapshots = [_snapshot(1000, 0), _snapshot(2000, 200),
                     _snapshot(3000, 200)]
        report = evaluate_snapshots(spec, snapshots)
        assert report["spec"] == "test-slos"
        assert report["ticks"] == 3
        assert report["compliant"] is False
        wire = report["objectives"][0]
        # tick 1 fires page + ticket; at tick 2 the 3-tick window still
        # burns at ~6.7x, so the ticket fires again — an int count
        assert wire["alerts"] == 3
        assert wire["value"] == pytest.approx(200 / 3000)
        assert wire["compliant"] is False
        assert wire["windows"][0]["max_burn_rate"] == pytest.approx(20.0)
        latency = report["objectives"][1]
        assert latency["data"] is False      # no histogram in snapshots
        assert latency["value"] is None
        assert latency["compliant"] is True  # vacuously, no data

    def test_latency_objective_reads_percentile(self):
        spec = load_spec(VALID_SPEC)
        snapshot = {"defense.bank": {"verdict_ns": _histogram_row(
            [0, 99, 1, 0], buckets=(1000.0, 10000.0, 20000.0))}}
        report = evaluate_snapshots(spec, [snapshot])
        latency = report["objectives"][1]
        assert latency["value"] == 10000.0
        assert latency["compliant"] is True

    def test_identical_inputs_identical_bytes(self):
        spec = load_spec(VALID_SPEC)
        snapshots = [_snapshot(1000, 0), _snapshot(2000, 200)]
        first = json.dumps(evaluate_snapshots(spec, snapshots),
                           sort_keys=True)
        second = json.dumps(evaluate_snapshots(spec, snapshots),
                            sort_keys=True)
        assert first == second
