"""TraceFrame: loading, indexing and derived series."""

import numpy as np
import pytest

from repro.obs.exporters import write_chrome_trace, write_jsonl
from repro.obs.insight.frame import TraceFrame, resample_uniform
from repro.obs.tracer import PHASE_COUNTER, PHASE_INSTANT, PHASE_SPAN, TraceEvent

EVENTS = [
    TraceEvent("wqe", PHASE_SPAN, 100.0, "rnic.server", dur=50.0),
    TraceEvent("wqe", PHASE_SPAN, 200.0, "rnic.server", dur=150.0),
    TraceEvent("txpu", PHASE_SPAN, 250.0, "rnic.server", dur=50.0),
    TraceEvent("wqe", PHASE_SPAN, 400.0, "rnic.client", dur=30.0),
    TraceEvent("covert.bit", PHASE_INSTANT, 150.0, "covert.tx",
               args={"bit": 1}),
    TraceEvent("bw", PHASE_COUNTER, 300.0, "telemetry", args={"bps": 2.0}),
    TraceEvent("bw", PHASE_COUNTER, 600.0, "telemetry", args={"bps": 4.0}),
]


def test_jsonl_and_chrome_load_to_the_same_frame(tmp_path):
    jsonl = write_jsonl(EVENTS, tmp_path / "a.trace.jsonl")
    chrome = write_chrome_trace(EVENTS, tmp_path / "a.trace.json")
    frame_a = TraceFrame.load(jsonl)
    frame_b = TraceFrame.load(chrome)
    # the Chrome exporter round-trips through µs; both frames must
    # index the same normalized records in ns
    assert frame_a.spans == frame_b.spans
    assert frame_a.counters == frame_b.counters
    assert len(frame_a) == len(EVENTS)
    assert frame_a.components() == ["covert.tx", "rnic.client",
                                    "rnic.server", "telemetry"]
    with pytest.raises(ValueError):
        TraceFrame.load(tmp_path / "a.csv")


def test_summary_and_span_range():
    frame = TraceFrame([e.to_dict() for e in EVENTS])
    info = frame.summary()
    assert info["spans"] == 4 and info["instants"] == 1
    assert info["counter_samples"] == 2
    assert info["start_ns"] == 100.0
    assert info["end_ns"] == 600.0  # the last counter sample


def test_durations_filter_and_latency_summaries():
    frame = TraceFrame([e.to_dict() for e in EVENTS])
    assert list(frame.durations("wqe", component="rnic.server")) == [50.0,
                                                                     150.0]
    summaries = frame.latency_summaries()
    assert list(summaries) == [("rnic.client", "wqe"),
                               ("rnic.server", "txpu"),
                               ("rnic.server", "wqe")]
    assert summaries[("rnic.server", "wqe")].mean == pytest.approx(100.0)


def test_slowest_spans_deterministic_tiebreak():
    frame = TraceFrame([e.to_dict() for e in EVENTS])
    ranked = frame.slowest_spans(top=3)
    assert ranked[0] == (150.0, 200.0, "rnic.server", "wqe")
    # equal durations (50 ns) break ties by earlier timestamp
    assert ranked[1] == (50.0, 100.0, "rnic.server", "wqe")
    assert ranked[2] == (50.0, 250.0, "rnic.server", "txpu")


def test_counter_series_and_keys():
    frame = TraceFrame([e.to_dict() for e in EVENTS])
    assert frame.counter_keys() == [("telemetry", "bw", "bps")]
    times, values = frame.counter_series("bw", "bps")
    assert list(times) == [300.0, 600.0]
    assert list(values) == [2.0, 4.0]


def test_occupancy_back_to_back_spans_do_not_overlap():
    records = [
        TraceEvent("s", PHASE_SPAN, 0.0, "st", dur=10.0).to_dict(),
        TraceEvent("s", PHASE_SPAN, 10.0, "st", dur=10.0).to_dict(),
    ]
    frame = TraceFrame(records)
    _, depths = frame.occupancy("st")
    assert depths.max() == 1  # the end at t=10 sorts before the start


def test_occupancy_depth_and_utilization():
    records = [
        TraceEvent("a", PHASE_SPAN, 0.0, "st", dur=100.0).to_dict(),
        TraceEvent("b", PHASE_SPAN, 50.0, "st", dur=100.0).to_dict(),
        TraceEvent("idle-marker", PHASE_INSTANT, 200.0, "st").to_dict(),
    ]
    frame = TraceFrame(records)
    _, depths = frame.occupancy("st")
    assert depths.max() == 2
    # busy 0..150 of the 0..200 window
    assert frame.utilization("st") == pytest.approx(0.75)
    assert frame.utilization("missing") == 0.0


def test_uli_series_midpoints_and_periods():
    # 64 wqe spans whose duration toggles every 4 spans: period = 8
    # spans = 8 * 1000 ns on the uniform midpoint grid
    records = []
    for i in range(64):
        dur = 200.0 if (i // 4) % 2 else 100.0
        records.append(TraceEvent("wqe", PHASE_SPAN, 1000.0 * i, "rnic",
                                  dur=dur).to_dict())
    frame = TraceFrame(records)
    times, values = frame.uli_series()
    assert times.size == 64
    assert times[0] == pytest.approx(50.0)  # midpoint of the first span
    periods = frame.uli_periods(buckets=64)
    assert periods, "periodic ULI modulation must be discovered"
    assert min(periods, key=lambda p: abs(p - 8000.0)) == pytest.approx(
        8000.0, rel=0.3)


def test_instant_rate_buckets():
    records = [TraceEvent("d", PHASE_INSTANT, 10.0 * i, "sim0").to_dict()
               for i in range(10)]
    frame = TraceFrame(records)
    edges, counts = frame.instant_rate(50.0)
    assert counts.sum() == 10
    assert list(counts) == [5.0, 5.0]
    with pytest.raises(ValueError):
        frame.instant_rate(0.0)


def test_resample_uniform_zero_order_hold():
    times = np.asarray([0.0, 1.0, 9.0])
    values = np.asarray([2.0, 4.0, 8.0])
    grid, means = resample_uniform(times, values, 4)
    assert means.size == 4
    assert means[0] == pytest.approx(3.0)   # bucket mean of 2, 4
    assert means[1] == pytest.approx(3.0)   # empty bucket holds
    assert means[3] == pytest.approx(8.0)
    with pytest.raises(ValueError):
        resample_uniform(times, values, 1)
