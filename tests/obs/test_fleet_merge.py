"""The fleet snapshot delta/merge arithmetic.

The determinism contract rests on two exact properties: a delta is a
changed-row subset with *absolute* values (so ``apply_delta`` is a
float-exact reconstruction, no ``a + (b - a)`` IEEE drift), and a
histogram merge of shards equals the single-process histogram over the
union of observations, bucket count by bucket count.
"""

import json

import pytest

from repro.obs.exporters import validate_metrics_json
from repro.obs.fleet import (
    FleetMergeError,
    apply_delta,
    merge_rows,
    merge_snapshots,
    snapshot_delta,
)
from repro.obs.metrics import MetricsRegistry


def _registry_snapshot(samples) -> dict:
    registry = MetricsRegistry()
    counter = registry.counter("fleet", "events")
    gauge = registry.gauge("fleet", "depth")
    histogram = registry.histogram("fleet", "latency")
    for value in samples:
        counter.inc()
        gauge.set(value)
        histogram.observe(value)
    return registry.snapshot()


class TestDelta:
    def test_round_trip_is_exact(self):
        previous = _registry_snapshot([0.1, 0.2, 0.3])
        current = _registry_snapshot([0.1, 0.2, 0.3, 1e6 + 0.7])
        delta = snapshot_delta(previous, current)
        assert apply_delta(previous, delta) == current

    def test_unchanged_rows_are_omitted(self):
        snapshot = _registry_snapshot([5.0, 50.0])
        assert snapshot_delta(snapshot, snapshot) == {}
        grown = _registry_snapshot([5.0, 50.0, 500.0])
        delta = snapshot_delta(snapshot, grown)
        # every row moved here (count/gauge/histogram all changed), but
        # an untouched extra component must not appear
        assert set(delta) == {"fleet"}

    def test_delta_from_empty_is_the_snapshot(self):
        snapshot = _registry_snapshot([1.0])
        assert apply_delta({}, snapshot_delta({}, snapshot)) == snapshot


class TestMergeRows:
    def test_counters_and_gauges_sum(self):
        row = merge_rows({"type": "counter", "value": 2.0},
                         {"type": "counter", "value": 3.5})
        assert row == {"type": "counter", "value": 5.5}

    def test_type_mismatch_raises(self):
        with pytest.raises(FleetMergeError):
            merge_rows({"type": "counter", "value": 1.0},
                       {"type": "gauge", "value": 1.0}, key="fleet.x")

    def test_histogram_bucket_mismatch_raises(self):
        a = {"type": "histogram", "count": 1, "sum": 1.0,
             "buckets": [1.0, 2.0], "counts": [1, 0, 0]}
        b = {"type": "histogram", "count": 1, "sum": 1.0,
             "buckets": [1.0, 4.0], "counts": [1, 0, 0]}
        with pytest.raises(FleetMergeError, match="bucket"):
            merge_rows(a, b, key="fleet.latency")


class TestHistogramShardProperty:
    def test_merge_of_shards_equals_single_process(self):
        # the union of per-shard observations, histogrammed once,
        # must equal the exact merge of the per-shard histograms
        values = [0.5, 3.0, 12.0, 99.0, 1500.0, 1e7, 42.0, 0.5]
        shards = [values[0::3], values[1::3], values[2::3]]
        merged = merge_snapshots(
            [_registry_snapshot(shard) for shard in shards])
        single = _registry_snapshot(values)
        row_merged = merged["fleet"]["latency"]
        row_single = single["fleet"]["latency"]
        assert row_merged["counts"] == row_single["counts"]
        assert row_merged["count"] == row_single["count"]
        assert row_merged["min"] == row_single["min"]
        assert row_merged["max"] == row_single["max"]
        assert row_merged["sum"] == pytest.approx(row_single["sum"])
        # counters sum across shards; the gauge (cumulative counter
        # semantics in this repo) sums too
        assert merged["fleet"]["events"]["value"] == len(values)

    def test_merge_order_base_cases(self):
        snapshot = _registry_snapshot([1.0, 2.0])
        assert merge_snapshots([]) == {}
        assert merge_snapshots([snapshot]) == snapshot


class TestMergedOutputValidates:
    def test_validate_metrics_json_passes(self, tmp_path):
        merged = merge_snapshots([_registry_snapshot([1.0, 20.0]),
                                  _registry_snapshot([300.0])])
        path = tmp_path / "fleet_metrics.json"
        path.write_text(json.dumps(merged, indent=2, sort_keys=True))
        assert validate_metrics_json(path) == []
