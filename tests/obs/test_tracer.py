"""Tracer behaviour: recording, caps, and the kernel dispatch hook."""

import pytest

from repro.obs.tracer import (
    PHASE_COUNTER,
    PHASE_INSTANT,
    PHASE_SPAN,
    TraceEvent,
    Tracer,
)
from repro.sim import Simulator


def make_tracer(**kwargs):
    clock = {"now": 0.0}
    tracer = Tracer(clock=lambda: clock["now"], **kwargs)
    return tracer, clock


def test_span_records_explicit_window():
    tracer, _ = make_tracer()
    tracer.span("txpu", 120.0, 35.0, category="rnic", wqe=17)
    event = tracer.events[0]
    assert event.phase == PHASE_SPAN
    assert (event.name, event.ts, event.dur) == ("txpu", 120.0, 35.0)
    assert event.args == {"wqe": 17}


def test_instant_defaults_to_clock_now():
    tracer, clock = make_tracer()
    clock["now"] = 42.0
    tracer.instant("bit")
    tracer.instant("late", ts=99.0)
    assert [e.ts for e in tracer.events] == [42.0, 99.0]
    assert all(e.phase == PHASE_INSTANT for e in tracer.events)


def test_counter_copies_values():
    tracer, _ = make_tracer()
    values = {"bps": 1.5}
    tracer.counter("bw", values, ts=10.0)
    values["bps"] = 9.9
    event = tracer.events[0]
    assert event.phase == PHASE_COUNTER
    assert event.args == {"bps": 1.5}


def test_to_dict_includes_dur_only_for_spans():
    span = TraceEvent("a", PHASE_SPAN, 1.0, "sim", dur=2.0)
    instant = TraceEvent("b", PHASE_INSTANT, 1.0, "sim")
    assert span.to_dict()["dur"] == 2.0
    assert "dur" not in instant.to_dict()


def test_component_override_per_event():
    tracer, _ = make_tracer(component="sim0")
    tracer.instant("x", ts=0.0)
    tracer.instant("y", ts=0.0, component="rnic.server")
    assert [e.component for e in tracer.events] == ["sim0", "rnic.server"]


def test_cap_drops_past_max_events():
    tracer, _ = make_tracer(max_events=2)
    for i in range(5):
        tracer.instant(f"e{i}", ts=float(i))
    assert len(tracer) == 2
    assert tracer.dropped == 3
    assert tracer.stats() == {"events": 2, "dropped": 3, "max_events": 2,
                              "sample_rate": 1, "dispatches_seen": 0,
                              "sampled_out": 0}


def test_max_events_must_be_positive():
    with pytest.raises(ValueError):
        Tracer(clock=lambda: 0.0, max_events=0)


def test_dispatch_hook_records_every_fired_event():
    tracer, _ = make_tracer()
    sim = Simulator()
    tracer.install_on(sim)

    def tick():
        pass

    sim.schedule(10.0, tick)
    sim.schedule(20.0, tick, priority=2)
    sim.run()
    assert len(tracer.events) == 2
    first, second = tracer.events
    assert first.ts == 10.0 and first.category == "dispatch"
    assert "tick" in first.name
    assert first.args is None                      # priority 0 elided
    assert second.args == {"priority": 2}


def test_install_on_is_idempotent_per_tracer():
    tracer, _ = make_tracer()
    sim = Simulator()
    tracer.install_on(sim)
    tracer.install_on(sim)                         # replaces, not stacks
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert len(tracer.events) == 1


def test_dispatch_hook_coexists_with_determinism_digest():
    """The obs tracer and the trace digest share the multiplexed hook
    slot; neither must disturb the other (or the digest value)."""
    reference = Simulator(seed=3, trace=True)
    reference.schedule(5.0, lambda: None)
    reference.run()

    traced = Simulator(seed=3, trace=True)
    tracer, _ = make_tracer()
    tracer.install_on(traced)
    traced.schedule(5.0, lambda: None)
    traced.run()

    assert len(tracer.events) == 1
    assert traced.trace_digest == reference.trace_digest
