"""Streaming detectors: alarms on modulation, silence on stationarity."""

import pytest

from repro.obs.insight.detectors import (
    CusumDetector,
    DetectorBank,
    EwmaDetector,
    PeriodicityDetector,
    run_series,
)


def _series(values):
    return list(range(len(values))), [float(v) for v in values]


def test_ewma_flags_level_shift_after_warmup():
    values = [100.0] * 16 + [300.0] * 8
    detection = run_series(EwmaDetector(), *_series(values))
    assert detection.flagged
    assert detection.first_flag_ts == 16  # the first shifted sample
    assert detection.reason


def test_ewma_silent_on_flat_and_on_quantization_noise():
    flat = run_series(EwmaDetector(), *_series([100.0] * 32))
    assert not flat.flagged
    # a counter ticking 1000/1001 is stationary, not an attack: the
    # relative band floor absorbs quantization even though std ~ 0.5
    ticking = run_series(
        EwmaDetector(), *_series([1000, 1001] * 16))
    assert not ticking.flagged


def test_ewma_shielded_baseline_keeps_alarming():
    """Alarming samples must not drag the baseline toward the attack
    level, so a sustained shift keeps flagging (shielded EWMA)."""
    values = [100.0] * 16 + [300.0] * 16
    detection = run_series(EwmaDetector(), *_series(values))
    assert detection.flags == 16


def test_cusum_catches_small_persistent_shift():
    """A +1.5-sigma drift is inside the EWMA band but CUSUM integrates
    it to an alarm — the classic change-point case."""
    base = [100.0, 102.0] * 8              # warmup: mean 101, std ~ 5.2 (floor)
    drifted = [112.0] * 24                  # ~ +2 floored sigma, persistent
    times, values = _series(base + drifted)
    assert not run_series(EwmaDetector(k=6.0), times, values).flagged
    detection = run_series(CusumDetector(), times, values)
    assert detection.flagged
    assert "shift" in detection.reason


def test_cusum_resets_after_alarm_and_retriggers():
    base = [100.0] * 8
    shift = [200.0] * 8
    times, values = _series(base + shift + shift)
    detection = run_series(CusumDetector(), times, values)
    assert detection.flagged
    assert detection.flags >= 2  # restart re-accumulates, re-alarms


def test_periodicity_flags_square_wave_not_flat():
    square = ([10.0] * 8 + [30.0] * 8) * 8
    detection = run_series(PeriodicityDetector(), *_series(square))
    assert detection.flagged
    assert "lag" in detection.reason
    flat = run_series(PeriodicityDetector(), *_series([10.0] * 128))
    assert not flat.flagged  # CoV gate: flat trivially self-correlates


def test_periodicity_power_of_two_restriction():
    """With ``power_of_two_only`` a period-12 square wave (lags 12, 24:
    not powers of two) stays silent, while period 16 still alarms."""
    period12 = ([10.0] * 6 + [30.0] * 6) * 12
    times, values = _series(period12)
    assert run_series(PeriodicityDetector(), times, values).flagged
    assert not run_series(
        PeriodicityDetector(power_of_two_only=True), times, values).flagged
    period16 = ([10.0] * 8 + [30.0] * 8) * 9
    assert run_series(PeriodicityDetector(power_of_two_only=True),
                      *_series(period16)).flagged


def test_detection_bookkeeping_and_flag_rate():
    detector = EwmaDetector()
    times, values = _series([100.0] * 16 + [300.0] * 4)
    detection = run_series(detector, times, values)
    assert detection.samples == 20
    assert detection.flags == 4
    assert detection.flag_rate == pytest.approx(0.2)
    assert detection.detector == "ewma"


def test_parameter_validation():
    with pytest.raises(ValueError):
        EwmaDetector(alpha=0.0)
    with pytest.raises(ValueError):
        EwmaDetector(warmup=1)
    with pytest.raises(ValueError):
        CusumDetector(h=0.0)
    with pytest.raises(ValueError):
        PeriodicityDetector(window=4)
    with pytest.raises(ValueError):
        PeriodicityDetector(stride=0)
    with pytest.raises(ValueError):
        run_series(EwmaDetector(), [1.0, 2.0], [1.0])


def test_bank_runs_all_and_rejects_duplicates():
    bank = DetectorBank()
    for ts, value in zip(*_series([100.0] * 16 + [300.0] * 16)):
        bank.observe(ts, value)
    results = bank.results()
    assert set(results) == {"ewma", "cusum", "periodicity"}
    assert results["ewma"].flagged and results["cusum"].flagged
    with pytest.raises(ValueError):
        DetectorBank([EwmaDetector(), EwmaDetector()])
