"""Capstone integration tests: the full Figure 2 threat model.

Three parties — a server hosting a real application, a victim client
using it, and an attacker client that only issues its own reads — with
the secret crossing between them purely as contention.
"""

import numpy as np
import pytest

from repro.apps.kvstore import KVStoreClient, KVStoreServer, SLOT_SIZE
from repro.covert.lockstep import PipelinedReader
from repro.host import Cluster
from repro.rnic import FluidFlow, cx5
from repro.sim.units import MILLISECONDS
from repro.telemetry import ProbeTarget
from repro.verbs.enums import Opcode


class TestKVStoreHotKeyDetection:
    """Section VI's motivation: access-pattern snooping on a KV store —
    the attacker recovers WHICH key the victim hammers."""

    def run_attack(self, secret_index: int, seed: int = 0,
                   rounds: int = 6) -> int:
        cluster = Cluster(seed=seed)
        server_host = cluster.add_host("server", spec=cx5())
        victim_host = cluster.add_host("victim", spec=cx5())
        attacker_host = cluster.add_host("attacker", spec=cx5())

        store = KVStoreServer(server_host, num_slots=1024)
        candidates = [f"user-{i}".encode() for i in range(8)]
        for key in candidates:
            store.load(key, b"profile-data")

        # victim: pipelined GETs at its secret key's slot
        victim_conn = cluster.connect(victim_host, server_host, max_send_wr=2)
        secret_key = candidates[secret_index]
        secret_offset = store.slot_of(secret_key) * SLOT_SIZE
        victim_target = ProbeTarget(store.mr, secret_offset, 64)
        victim = PipelinedReader(victim_conn, lambda: victim_target, depth=2)
        victim.start()

        # attacker: short probe bursts per candidate (with drains so
        # each burst's head directly follows a victim access), repeated
        # round-robin to cancel drift
        attacker_conn = cluster.connect(attacker_host, server_host,
                                        max_send_wr=2)
        cluster.run_for(200_000)  # let the victim reach steady state

        def burst(offset: int, samples: int = 5) -> float:
            for _ in range(2):
                attacker_conn.post_read(store.mr, offset, 64)
            ulis = []
            while len(ulis) < samples:
                wc = attacker_conn.await_completions(1)[0]
                ulis.append(wc.unit_latency_increase)
                attacker_conn.post_read(store.mr, offset, 64)
            attacker_conn.await_completions(2)
            return float(np.mean(ulis))

        offsets = [store.slot_of(key) * SLOT_SIZE for key in candidates]
        scores = np.zeros(len(candidates))
        for _ in range(rounds):
            for index, offset in enumerate(offsets):
                scores[index] += burst(offset)
        victim.stop()
        # KV slots scatter across 2 KB descriptor segments, so the
        # strongest coupling here is segment affinity: the victim's
        # slot probes FASTER (no segment thrash) while in the paper's
        # single-file setup the in-zone probes are slower.  Either way
        # the secret is the outlier.
        deviation = np.abs(scores - np.median(scores))
        return int(np.argmax(deviation))

    def test_recovers_the_hot_key(self):
        hits = sum(
            int(self.run_attack(secret, seed=secret + 1) == secret)
            for secret in (0, 3, 6)
        )
        assert hits >= 2  # the contention outlier localizes the hot slot


class TestFingerprintingUnderBackgroundTenants:
    def test_detection_survives_a_benign_tenant(self):
        from repro.apps.shuffle_join import OperatorSchedule, ShuffleOperator
        from repro.side.fingerprint import (
            ShuffleJoinFingerprinter,
            calibrate_templates,
        )

        templates = calibrate_templates(cx5())
        attacker = ShuffleJoinFingerprinter(templates, spec=cx5())

        def schedule(node):
            # a benign tenant streams constantly next to the database
            benign = FluidFlow(opcode=Opcode.RDMA_READ, msg_size=8192,
                               qp_num=2, demand_bps=5e9, label="benign")
            node.host.rnic.add_fluid_flow(benign)
            s = OperatorSchedule(node)
            s.add("shuffle", ShuffleOperator(), 25 * MILLISECONDS)
            return s

        result = attacker.run(schedule, seed=11)
        assert result.detection_rate == 1.0


class TestAttackDuringLiveRPCService:
    def test_intra_mr_channel_coexists_with_rpc_tenant(self):
        """A two-sided RPC service runs on the shared server while the
        covert channel operates — the mixed-workload reality of a
        multi-tenant host."""
        from repro.apps.rpc import RPCServer
        from repro.covert.intra_mr import IntraMRChannel, IntraMRConfig
        from repro.covert import random_bits
        from repro.covert.uli_channel import _Session

        channel = IntraMRChannel(cx5(), IntraMRConfig.best_for("CX-5"))
        bits = random_bits(48, seed=2)

        # run a session manually so we can attach the RPC tenant
        session = _Session(channel, seed=3)
        server_host = session.cluster.hosts["server"]
        rpc_host = session.cluster.add_host("rpc-client", spec=cx5())
        rpc = RPCServer(session.cluster, server_host)
        rpc_client = rpc.accept(rpc_host)
        rpc.start()

        inter = session.warm_up(channel.config.warmup_completions)
        period = channel.config.samples_per_bit * inter
        frame = channel.config.preamble + bits
        start = session.run_frame(frame, period, tail_ns=1.5 * period)
        decoded = channel._demodulate(
            session.receiver.samples_after(start), start, period, frame
        )[len(channel.config.preamble):]

        from repro.covert import bit_error_rate

        assert bit_error_rate(bits, decoded) < 0.25
        # the RPC service still works afterwards
        assert rpc_client.call(b"still alive") == b"still alive"
