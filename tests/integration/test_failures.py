"""Failure injection: error paths through the full stack."""

import pytest

from repro.apps.sherman import ShermanClient, ShermanMemoryServer
from repro.apps.sherman.client import TreeError
from repro.covert.lockstep import PipelinedReader
from repro.host import Cluster
from repro.rnic import cx5
from repro.sim.units import MEBIBYTE
from repro.telemetry import ProbeTarget
from repro.verbs import Opcode, SendWR, WCStatus
from repro.verbs.enums import QPState


def two_hosts(seed=0, **connect_kwargs):
    cluster = Cluster(seed=seed)
    server = cluster.add_host("server", spec=cx5())
    client = cluster.add_host("client", spec=cx5())
    conn = cluster.connect(client, server, **connect_kwargs)
    return cluster, server, client, conn


class TestRemoteFaults:
    def test_bad_rkey_fails_cleanly_through_pipeline(self):
        cluster, server, client, conn = two_hosts()
        mr = server.reg_mr(4096)
        conn.qp.post_send(SendWR(
            opcode=Opcode.RDMA_READ, local_addr=conn.local_mr.addr,
            length=8, remote_addr=mr.addr, rkey=0xDEAD,
        ))
        wc = conn.await_completions(1)[0]
        assert wc.status is WCStatus.REM_ACCESS_ERR
        assert conn.qp.state is QPState.ERR

    def test_deregistered_mr_faults_in_flight_traffic(self):
        cluster, server, client, conn = two_hosts()
        mr = server.reg_mr(4096)
        conn.post_read(mr, 0, 8)
        mr.deregister()      # deregister while the read is in flight
        wc = conn.await_completions(1)[0]
        assert wc.status is WCStatus.REM_ACCESS_ERR

    def test_qp_in_err_rejects_new_work(self):
        from repro.verbs import QPStateError

        cluster, server, client, conn = two_hosts()
        mr = server.reg_mr(4096)
        conn.qp.post_send(SendWR(
            opcode=Opcode.RDMA_READ, local_addr=conn.local_mr.addr,
            length=8, remote_addr=mr.addr, rkey=0xBAD,
        ))
        conn.await_completions(1)
        with pytest.raises(QPStateError):
            conn.post_read(mr, 0, 8)

    def test_qp_recovers_via_reset_cycle(self):
        cluster, server, client, conn = two_hosts()
        mr = server.reg_mr(4096)
        conn.qp.post_send(SendWR(
            opcode=Opcode.RDMA_READ, local_addr=conn.local_mr.addr,
            length=8, remote_addr=mr.addr, rkey=0xBAD,
        ))
        conn.await_completions(1)
        # reconnect both ends through the state machine
        conn.qp.modify(QPState.RESET)
        conn.server_qp.modify(QPState.RESET)
        conn.qp.connect(conn.server_qp)
        wc = conn.read_blocking(mr, 0, 8)
        assert wc.ok


class TestClientRobustness:
    def test_await_completions_times_out(self):
        cluster, server, client, conn = two_hosts()
        with pytest.raises(TimeoutError):
            conn.await_completions(1, timeout_ns=1000.0)

    def test_pipelined_reader_surfaces_failures(self):
        cluster, server, client, conn = two_hosts(max_send_wr=4)
        mr = server.reg_mr(4096)
        target = ProbeTarget(mr, 0, 64)
        reader = PipelinedReader(conn, lambda: target, depth=2)
        reader.start()
        cluster.run_for(50_000)
        mr.deregister()
        with pytest.raises(RuntimeError):
            cluster.run_for(200_000)


class TestShermanFaults:
    def test_region_exhaustion_raises(self):
        cluster = Cluster(seed=0)
        ms = cluster.add_host("ms", spec=cx5())
        cs = cluster.add_host("cs", spec=cx5())
        # a tiny region: superblock + root + a handful of nodes
        server = ShermanMemoryServer(ms, region_size=8192)
        client = ShermanClient(cluster.connect(cs, ms), server)
        with pytest.raises((TreeError, MemoryError)):
            for key in range(1, 400):
                client.insert(key, b"x")

    def test_lock_timeout_when_peer_wedges(self):
        """If another client dies holding a node lock, waiters fail with
        a bounded TreeError instead of hanging forever."""
        cluster = Cluster(seed=0)
        ms = cluster.add_host("ms", spec=cx5())
        cs = cluster.add_host("cs", spec=cx5())
        server = ShermanMemoryServer(ms)
        client = ShermanClient(cluster.connect(cs, ms), server, client_id=1)
        client.insert(1, b"v")
        # wedge: acquire the root leaf's lock and never release it
        root = server.root_offset
        ms.memory.write_u64(server.mr.addr + root, 99)   # lock word = 99
        with pytest.raises(TreeError):
            client.insert(2, b"w")
