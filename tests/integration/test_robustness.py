"""Cross-device and cross-seed robustness of the attacks."""

import numpy as np
import pytest

from repro.covert import InterMRChannel, IntraMRChannel, random_bits
from repro.covert.inter_mr import InterMRConfig
from repro.covert.intra_mr import IntraMRConfig
from repro.rnic import cx4, cx5, cx6


class TestHeterogeneousClusters:
    """The paper's testbed mixes hosts (Table II); the channels depend
    on the *server's* NIC, where the contention lives."""

    def test_inter_mr_works_on_mixed_generations(self):
        # the channel object pins one spec for all hosts; emulate a
        # slower server by running the whole channel on CX-4 while the
        # tuned parameters came from CX-5
        bits = random_bits(64, seed=1)
        channel = InterMRChannel(cx4(), InterMRConfig.best_for("CX-5"))
        result = channel.transmit(bits, seed=2)
        assert result.error_rate < 0.2

    def test_intra_mr_offsets_transfer_across_devices(self):
        """CX-6's tuned offset (257) still decodes on CX-5 and vice
        versa — the offset effect is the same mechanism everywhere."""
        bits = random_bits(64, seed=3)
        crossed = IntraMRChannel(cx5(), IntraMRConfig.best_for("CX-6"))
        result = crossed.transmit(bits, seed=1)
        assert result.error_rate < 0.2


class TestSeedStability:
    def test_channel_quality_is_stable_across_seeds(self):
        bits = random_bits(96, seed=4)
        errors = []
        for seed in range(4):
            channel = IntraMRChannel(cx5(), IntraMRConfig.best_for("CX-5"))
            errors.append(channel.transmit(bits, seed=seed).error_rate)
        assert max(errors) < 0.15
        assert float(np.mean(errors)) < 0.08

    def test_determinism_same_seed_same_result(self):
        bits = random_bits(48, seed=5)

        def run():
            channel = InterMRChannel(cx5(), InterMRConfig.best_for("CX-5"))
            result = channel.transmit(bits, seed=9)
            return result.decoded, result.duration_ns

        first = run()
        second = run()
        assert first == second

    def test_different_seeds_differ(self):
        bits = random_bits(48, seed=5)

        def run(seed):
            channel = InterMRChannel(cx5(), InterMRConfig.best_for("CX-5"))
            return channel.transmit(bits, seed=seed).duration_ns

        assert run(1) != run(2)


class TestSnoopRobustness:
    def test_synthesizer_separates_adjacent_candidates(self):
        """Adjacent candidates (64 B apart) are the hardest pair; their
        traces must still be statistically distinguishable."""
        from repro.analysis import normalized_cross_correlation
        from repro.side import TraceSynthesizer

        synthesizer = TraceSynthesizer(seed=0)
        same = [
            normalized_cross_correlation(
                synthesizer.trace(512), synthesizer.trace(512)
            )
            for _ in range(3)
        ]
        cross = [
            normalized_cross_correlation(
                synthesizer.trace(512), synthesizer.trace(576)
            )
            for _ in range(3)
        ]
        assert np.mean(same) > np.mean(cross)

    def test_bump_present_for_every_candidate(self):
        from repro.side import CANDIDATE_OFFSETS, OBSERVATION_OFFSETS, TraceSynthesizer

        synthesizer = TraceSynthesizer(seed=1)
        obs = np.asarray(OBSERVATION_OFFSETS)
        for victim in CANDIDATE_OFFSETS[:-1]:   # 1024 has 1 sample only
            trace = synthesizer.trace(victim)
            zone = (obs >= victim) & (obs < victim + 64)
            assert trace[zone].mean() > trace[~zone].mean(), victim
