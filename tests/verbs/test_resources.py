"""Unit tests for PD / MR / CQ resource semantics."""

import pytest

from repro.verbs import (
    AccessFlags,
    CompletionQueue,
    Context,
    CQOverflowError,
    Opcode,
    RemoteAccessError,
    ResourceError,
    WCStatus,
    WorkCompletion,
)


def make_wc(**overrides):
    defaults = dict(
        wr_id=1,
        status=WCStatus.SUCCESS,
        opcode=Opcode.RDMA_READ,
        byte_len=64,
        qp_num=7,
        post_time=0.0,
        complete_time=100.0,
        queue_ahead=0,
    )
    defaults.update(overrides)
    return WorkCompletion(**defaults)


class TestProtectionDomain:
    def test_alloc_and_destroy(self):
        ctx = Context()
        pd = ctx.alloc_pd()
        assert pd in ctx.pds
        pd.destroy()
        assert pd.destroyed
        assert pd not in ctx.pds

    def test_destroy_with_live_mr_fails(self):
        ctx = Context()
        pd = ctx.alloc_pd()
        mr = ctx.reg_mr(pd, 4096)
        with pytest.raises(ResourceError):
            pd.destroy()
        mr.deregister()
        pd.destroy()

    def test_double_destroy_fails(self):
        ctx = Context()
        pd = ctx.alloc_pd()
        pd.destroy()
        with pytest.raises(ResourceError):
            pd.destroy()


class TestMemoryRegion:
    def test_register_allocates_memory(self):
        ctx = Context()
        pd = ctx.alloc_pd()
        mr = ctx.reg_mr(pd, 4096)
        assert mr.length == 4096
        assert ctx.memory.base <= mr.addr < ctx.memory.end
        assert ctx.mr_by_rkey(mr.rkey) is mr

    def test_huge_page_alignment(self):
        ctx = Context()
        pd = ctx.alloc_pd()
        mr = ctx.reg_mr(pd, 4096, huge_pages=True)
        assert mr.addr % (2 * 1024 * 1024) == 0

    def test_unique_rkeys(self):
        ctx = Context()
        pd = ctx.alloc_pd()
        keys = {ctx.reg_mr(pd, 64).rkey for _ in range(10)}
        assert len(keys) == 10

    def test_offset_of(self):
        ctx = Context()
        pd = ctx.alloc_pd()
        mr = ctx.reg_mr(pd, 4096)
        assert mr.offset_of(mr.addr) == 0
        assert mr.offset_of(mr.addr + 257) == 257
        with pytest.raises(RemoteAccessError):
            mr.offset_of(mr.addr - 1)

    def test_check_remote_bounds(self):
        ctx = Context()
        pd = ctx.alloc_pd()
        mr = ctx.reg_mr(pd, 4096)
        mr.check_remote(mr.addr, 4096, AccessFlags.REMOTE_READ)
        with pytest.raises(RemoteAccessError):
            mr.check_remote(mr.addr + 1, 4096, AccessFlags.REMOTE_READ)

    def test_check_remote_permissions(self):
        ctx = Context()
        pd = ctx.alloc_pd()
        mr = ctx.reg_mr(pd, 4096, access=AccessFlags.REMOTE_READ)
        mr.check_remote(mr.addr, 64, AccessFlags.REMOTE_READ)
        with pytest.raises(RemoteAccessError):
            mr.check_remote(mr.addr, 64, AccessFlags.REMOTE_WRITE)

    def test_deregistered_mr_rejects_access(self):
        ctx = Context()
        pd = ctx.alloc_pd()
        mr = ctx.reg_mr(pd, 4096)
        mr.deregister()
        with pytest.raises(RemoteAccessError):
            ctx.mr_by_rkey(mr.rkey)

    def test_zero_length_mr_rejected(self):
        ctx = Context()
        pd = ctx.alloc_pd()
        with pytest.raises(ResourceError):
            ctx.reg_mr(pd, 0)

    def test_foreign_pd_rejected(self):
        ctx_a, ctx_b = Context(), Context()
        pd_b = ctx_b.alloc_pd()
        with pytest.raises(ResourceError):
            ctx_a.reg_mr(pd_b, 64)


class TestCompletionQueue:
    def test_push_poll_fifo(self):
        cq = CompletionQueue(capacity=8)
        for i in range(3):
            cq.push(make_wc(wr_id=i))
        polled = cq.poll(max_entries=2)
        assert [wc.wr_id for wc in polled] == [0, 1]
        assert [wc.wr_id for wc in cq.poll(10)] == [2]

    def test_overflow_raises(self):
        cq = CompletionQueue(capacity=2)
        cq.push(make_wc())
        cq.push(make_wc())
        with pytest.raises(CQOverflowError):
            cq.push(make_wc())

    def test_callback_invoked(self):
        cq = CompletionQueue(capacity=4)
        seen = []
        cq.on_completion = seen.append
        wc = make_wc()
        cq.push(wc)
        assert seen == [wc]

    def test_drain(self):
        cq = CompletionQueue(capacity=4)
        cq.push(make_wc(wr_id=1))
        cq.push(make_wc(wr_id=2))
        assert [wc.wr_id for wc in cq.drain()] == [1, 2]
        assert len(cq) == 0

    def test_wc_latency_and_uli(self):
        wc = make_wc(post_time=100.0, complete_time=400.0, queue_ahead=2)
        assert wc.latency == 300.0
        assert wc.unit_latency_increase == 100.0

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ResourceError):
            CompletionQueue(capacity=0)
