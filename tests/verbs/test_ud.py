"""Tests for the UD (unreliable datagram) transport."""

import pytest

from repro.host import Cluster
from repro.rnic import cx5
from repro.verbs import (
    GRH_BYTES,
    AddressHandle,
    Opcode,
    QPStateError,
    QPType,
    RecvWR,
    SendWR,
)
from repro.verbs.qp import QPCapabilities


def make_ud_endpoints(count=2, seed=0):
    """``count`` hosts, each with one ready UD QP + a message buffer."""
    cluster = Cluster(seed=seed)
    endpoints = []
    for i in range(count):
        host = cluster.add_host(f"h{i}", spec=cx5())
        cq = host.context.create_cq()
        qp = host.context.create_qp(host.pd, cq, qp_type=QPType.UD,
                                    cap=QPCapabilities(max_send_wr=8))
        qp.ready()
        buf = host.reg_mr(4096)
        endpoints.append((host, qp, cq, buf))
    return cluster, endpoints


def test_ready_brings_ud_to_rts():
    from repro.verbs.enums import QPState

    cluster, ((_, qp, _, _), _) = make_ud_endpoints()
    assert qp.state is QPState.RTS


def test_rc_qp_cannot_use_ready():
    cluster = Cluster(seed=0)
    host = cluster.add_host("h", spec=cx5())
    qp = host.context.create_qp(host.pd, host.context.create_cq())
    with pytest.raises(QPStateError):
        qp.ready()


def test_ah_targets_ud_only():
    cluster = Cluster(seed=0)
    host = cluster.add_host("h", spec=cx5())
    rc_qp = host.context.create_qp(host.pd, host.context.create_cq())
    with pytest.raises(ValueError):
        AddressHandle(remote_qp=rc_qp)


def test_ud_send_delivers_with_grh():
    cluster, endpoints = make_ud_endpoints()
    (sender_host, sender_qp, sender_cq, sender_buf) = endpoints[0]
    (recv_host, recv_qp, recv_cq, recv_buf) = endpoints[1]
    recv_qp.post_recv(RecvWR(local_addr=recv_buf.addr, length=256, wr_id=9))
    sender_host.memory.write(sender_buf.addr, b"datagram!")
    sender_qp.post_send(SendWR(
        opcode=Opcode.SEND, local_addr=sender_buf.addr, length=9,
        ah=AddressHandle(remote_qp=recv_qp),
    ))
    cluster.run_for(100_000)
    send_wcs = sender_cq.poll(4)
    assert send_wcs and send_wcs[0].ok
    recv_wcs = recv_cq.poll(4)
    assert recv_wcs and recv_wcs[0].wr_id == 9
    # the payload sits after the 40 B GRH
    assert recv_wcs[0].byte_len == 9 + GRH_BYTES
    assert recv_host.memory.read(recv_buf.addr + GRH_BYTES, 9) == b"datagram!"


def test_ud_one_qp_reaches_many_destinations():
    cluster, endpoints = make_ud_endpoints(count=4)
    sender_host, sender_qp, sender_cq, sender_buf = endpoints[0]
    sender_host.memory.write(sender_buf.addr, b"fanout")
    for _, recv_qp, _, recv_buf in endpoints[1:]:
        recv_qp.post_recv(RecvWR(local_addr=recv_buf.addr, length=128))
        sender_qp.post_send(SendWR(
            opcode=Opcode.SEND, local_addr=sender_buf.addr, length=6,
            ah=AddressHandle(remote_qp=recv_qp),
        ))
    cluster.run_for(200_000)
    for recv_host, _, recv_cq, recv_buf in endpoints[1:]:
        assert recv_cq.poll(1)
        assert recv_host.memory.read(recv_buf.addr + GRH_BYTES, 6) == b"fanout"


def test_ud_rejects_rdma_ops():
    cluster, endpoints = make_ud_endpoints()
    _, sender_qp, _, sender_buf = endpoints[0]
    _, recv_qp, _, _ = endpoints[1]
    with pytest.raises(QPStateError):
        sender_qp.post_send(SendWR(
            opcode=Opcode.RDMA_WRITE, local_addr=sender_buf.addr, length=8,
            remote_addr=0, rkey=0, ah=AddressHandle(remote_qp=recv_qp),
        ))


def test_ud_send_requires_ah():
    cluster, endpoints = make_ud_endpoints()
    _, sender_qp, _, sender_buf = endpoints[0]
    with pytest.raises(QPStateError):
        sender_qp.post_send(SendWR(
            opcode=Opcode.SEND, local_addr=sender_buf.addr, length=8,
        ))


def test_ud_recv_buffer_must_cover_grh():
    cluster, endpoints = make_ud_endpoints()
    sender_host, sender_qp, sender_cq, sender_buf = endpoints[0]
    _, recv_qp, recv_cq, recv_buf = endpoints[1]
    # a buffer that fits the payload but not payload + GRH
    recv_qp.post_recv(RecvWR(local_addr=recv_buf.addr, length=16))
    sender_qp.post_send(SendWR(
        opcode=Opcode.SEND, local_addr=sender_buf.addr, length=10,
        ah=AddressHandle(remote_qp=recv_qp),
    ))
    cluster.run_for(100_000)
    assert recv_cq.poll(1) == []   # dropped: buffer too small
