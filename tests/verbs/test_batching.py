"""Tests for doorbell batching (ibv_post_send's list form)."""

import numpy as np
import pytest

from repro.host import Cluster
from repro.rnic import cx5
from repro.verbs import Opcode, QueueFullError, SendWR


def make_conn(max_send_wr=16):
    cluster = Cluster(seed=0)
    server = cluster.add_host("server", spec=cx5())
    client = cluster.add_host("client", spec=cx5())
    conn = cluster.connect(client, server, max_send_wr=max_send_wr)
    mr = server.reg_mr(2 * 1024 * 1024)
    return cluster, conn, mr


def make_reads(conn, mr, count):
    return [
        SendWR(opcode=Opcode.RDMA_READ, local_addr=conn.local_mr.addr,
               length=64, remote_addr=mr.addr + 64 * i, rkey=mr.rkey)
        for i in range(count)
    ]


def test_batch_completes_all():
    cluster, conn, mr = make_conn()
    conn.qp.post_send_batch(make_reads(conn, mr, 8))
    wcs = conn.await_completions(8)
    assert all(wc.ok for wc in wcs)


def test_batch_atomic_rejection_posts_nothing():
    cluster, conn, mr = make_conn()
    wrs = make_reads(conn, mr, 3)
    wrs[1] = SendWR(opcode=Opcode.RDMA_READ, local_addr=conn.local_mr.addr,
                    length=64)  # missing remote_addr: invalid
    from repro.verbs import QPStateError

    with pytest.raises(QPStateError):
        conn.qp.post_send_batch(wrs)
    assert conn.qp.outstanding_send == 0


def test_batch_capacity_checked_up_front():
    cluster, conn, mr = make_conn(max_send_wr=4)
    with pytest.raises(QueueFullError):
        conn.qp.post_send_batch(make_reads(conn, mr, 5))
    assert conn.qp.outstanding_send == 0


def test_empty_batch_rejected():
    cluster, conn, mr = make_conn()
    with pytest.raises(ValueError):
        conn.qp.post_send_batch([])


def test_batching_amortizes_the_doorbell():
    """Posting N WQEs as a batch costs one doorbell; the last
    completion lands earlier than with N separate posts."""

    def total_time(batched):
        cluster, conn, mr = make_conn()
        wrs = make_reads(conn, mr, 8)
        if batched:
            conn.qp.post_send_batch(wrs)
        else:
            for wr in wrs:
                conn.qp.post_send(wr)
        conn.await_completions(8)
        return cluster.sim.now

    assert total_time(batched=True) < total_time(batched=False)


def test_queue_ahead_sequence_in_batch():
    cluster, conn, mr = make_conn()
    wrs = make_reads(conn, mr, 4)
    conn.qp.post_send_batch(wrs)
    assert [wr.queue_ahead for wr in wrs] == [0, 1, 2, 3]
    conn.await_completions(4)
