"""Unit tests for the host memory model."""

import pytest

from repro.host import HostMemory
from repro.sim.units import MEBIBYTE


def test_alloc_returns_increasing_addresses():
    mem = HostMemory()
    a = mem.alloc(64)
    b = mem.alloc(64)
    assert b >= a + 64


def test_alloc_alignment():
    mem = HostMemory()
    mem.alloc(3)
    addr = mem.alloc(16, align=256)
    assert addr % 256 == 0


def test_alloc_huge_is_2mb_aligned():
    mem = HostMemory(size=16 * MEBIBYTE)
    addr = mem.alloc_huge(4096)
    assert addr % (2 * MEBIBYTE) == 0


def test_read_write_roundtrip():
    mem = HostMemory()
    addr = mem.alloc(16)
    mem.write(addr, b"ragnar-lodbrok!!")
    assert mem.read(addr, 16) == b"ragnar-lodbrok!!"


def test_u64_roundtrip():
    mem = HostMemory()
    addr = mem.alloc(8)
    mem.write_u64(addr, 0xDEADBEEFCAFEBABE)
    assert mem.read_u64(addr) == 0xDEADBEEFCAFEBABE


def test_u64_wraps_modulo_2_64():
    mem = HostMemory()
    addr = mem.alloc(8)
    mem.write_u64(addr, 2**64 + 5)
    assert mem.read_u64(addr) == 5


def test_fill():
    mem = HostMemory()
    addr = mem.alloc(32)
    mem.fill(addr, 32, 0xAB)
    assert mem.read(addr, 32) == bytes([0xAB]) * 32


def test_out_of_bounds_read_raises():
    mem = HostMemory(size=1024)
    with pytest.raises(IndexError):
        mem.read(mem.end - 4, 8)


def test_below_base_raises():
    mem = HostMemory()
    with pytest.raises(IndexError):
        mem.read(0, 1)


def test_exhaustion_raises():
    mem = HostMemory(size=1024)
    with pytest.raises(MemoryError):
        mem.alloc(2048)


def test_bad_alignment_rejected():
    mem = HostMemory()
    with pytest.raises(ValueError):
        mem.alloc(8, align=3)


def test_zero_length_alloc_rejected():
    mem = HostMemory()
    with pytest.raises(ValueError):
        mem.alloc(0)
