"""Unit tests for verbs enumerations and their derived properties."""

from repro.verbs import AccessFlags, Opcode, QPType
from repro.verbs.enums import QP_TRANSITIONS, REQUIRED_REMOTE_ACCESS, QPState


def test_one_sided_opcodes():
    assert Opcode.RDMA_READ.is_one_sided
    assert Opcode.RDMA_WRITE.is_one_sided
    assert Opcode.ATOMIC_FETCH_ADD.is_one_sided
    assert Opcode.ATOMIC_CMP_SWP.is_one_sided
    assert not Opcode.SEND.is_one_sided
    assert not Opcode.RECV.is_one_sided


def test_atomic_opcodes():
    assert Opcode.ATOMIC_FETCH_ADD.is_atomic
    assert Opcode.ATOMIC_CMP_SWP.is_atomic
    assert not Opcode.RDMA_READ.is_atomic


def test_payload_direction():
    # writes carry payload in the request, reads in the response
    assert Opcode.RDMA_WRITE.carries_request_payload
    assert not Opcode.RDMA_WRITE.response_carries_payload
    assert Opcode.RDMA_READ.response_carries_payload
    assert not Opcode.RDMA_READ.carries_request_payload
    # atomics carry operands both ways but tiny; we model as no payload
    assert not Opcode.ATOMIC_FETCH_ADD.carries_request_payload


def test_qp_type_capabilities():
    assert QPType.RC.supports_rdma_read
    assert QPType.RC.supports_atomics
    assert QPType.RC.acks_requests
    assert not QPType.UC.supports_rdma_read
    assert not QPType.UD.supports_atomics
    assert not QPType.UD.acks_requests


def test_access_flags_all_remote():
    flags = AccessFlags.all_remote()
    assert flags & AccessFlags.REMOTE_READ
    assert flags & AccessFlags.REMOTE_WRITE
    assert flags & AccessFlags.REMOTE_ATOMIC
    assert flags & AccessFlags.LOCAL_WRITE


def test_required_remote_access_covers_one_sided_ops():
    for opcode in Opcode:
        if opcode.is_one_sided:
            assert opcode in REQUIRED_REMOTE_ACCESS


def test_state_machine_is_closed():
    # every reachable state has an outgoing rule and ERR always resets
    for state, targets in QP_TRANSITIONS.items():
        assert isinstance(state, QPState)
        for target in targets:
            assert isinstance(target, QPState)
    assert QPState.RESET in QP_TRANSITIONS[QPState.ERR]
