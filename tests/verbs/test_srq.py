"""Tests for shared receive queues."""

import pytest

from repro.host import Cluster
from repro.rnic import cx5
from repro.verbs import (
    Opcode,
    QPStateError,
    QueueFullError,
    RecvWR,
    ResourceError,
    SendWR,
    SharedReceiveQueue,
    WCStatus,
)


def build_server_with_srq(num_clients=2, srq_capacity=8):
    cluster = Cluster(seed=0)
    server = cluster.add_host("server", spec=cx5())
    srq = server.context.create_srq(capacity=srq_capacity)
    server_cq = server.context.create_cq()
    buf = server.reg_mr(64 * 1024)
    connections = []
    for index in range(num_clients):
        client = cluster.add_host(f"client{index}", spec=cx5())
        client_cq = client.context.create_cq()
        client_qp = client.context.create_qp(client.pd, client_cq)
        server_qp = server.context.create_qp(server.pd, server_cq, srq=srq)
        client_qp.connect(server_qp)
        client_mr = client.reg_mr(4096)
        connections.append((client, client_qp, client_cq, client_mr))
    return cluster, server, srq, server_cq, buf, connections


class TestSRQBasics:
    def test_capacity_enforced(self):
        srq = SharedReceiveQueue(capacity=2)
        srq.post_recv(RecvWR(local_addr=0x10000, length=64))
        srq.post_recv(RecvWR(local_addr=0x10040, length=64))
        with pytest.raises(QueueFullError):
            srq.post_recv(RecvWR(local_addr=0x10080, length=64))

    def test_take_fifo(self):
        srq = SharedReceiveQueue(capacity=4)
        srq.post_recv(RecvWR(local_addr=1, length=64, wr_id=1))
        srq.post_recv(RecvWR(local_addr=2, length=64, wr_id=2))
        assert srq.take().wr_id == 1
        assert srq.take().wr_id == 2
        with pytest.raises(QueueFullError):
            srq.take()

    def test_low_watermark(self):
        srq = SharedReceiveQueue(capacity=8)
        for i in range(4):
            srq.post_recv(RecvWR(local_addr=i, length=64))
        srq.take()
        srq.take()
        assert srq.low_watermark == 2

    def test_destroy(self):
        srq = SharedReceiveQueue(capacity=2)
        srq.destroy()
        with pytest.raises(ResourceError):
            srq.post_recv(RecvWR(local_addr=0, length=64))
        with pytest.raises(ResourceError):
            srq.destroy()

    def test_bad_capacity(self):
        with pytest.raises(ResourceError):
            SharedReceiveQueue(capacity=0)


class TestSRQIntegration:
    def test_sends_from_many_clients_share_one_pool(self):
        cluster, server, srq, server_cq, buf, conns = build_server_with_srq()
        for i in range(4):
            srq.post_recv(RecvWR(local_addr=buf.addr + 256 * i, length=256,
                                 wr_id=100 + i))
        for index, (client, qp, cq, mr) in enumerate(conns):
            client.memory.write(mr.addr, f"msg-{index}".encode())
            qp.post_send(SendWR(opcode=Opcode.SEND, local_addr=mr.addr,
                                length=5))
        cluster.run_for(200_000)
        wcs = server_cq.poll(8)
        recv_wcs = [wc for wc in wcs if wc.opcode is Opcode.RECV]
        assert len(recv_wcs) == 2
        assert {wc.wr_id for wc in recv_wcs} <= {100, 101, 102, 103}

    def test_qp_with_srq_rejects_direct_post_recv(self):
        cluster, server, srq, server_cq, buf, conns = build_server_with_srq()
        server_qp = conns[0][1].remote_qp
        with pytest.raises(QPStateError):
            server_qp.post_recv(RecvWR(local_addr=buf.addr, length=64))

    def test_empty_srq_gives_rnr(self):
        cluster, server, srq, server_cq, buf, conns = build_server_with_srq()
        client, qp, cq, mr = conns[0]
        qp.post_send(SendWR(opcode=Opcode.SEND, local_addr=mr.addr, length=4))
        # rnr_retry backoffs of min_rnr_timer each must elapse before
        # the budget-exhausted completion arrives
        cluster.run_for(500_000)
        wcs = cq.poll(2)
        assert wcs and wcs[0].status is WCStatus.RNR_RETRY_EXC_ERR
