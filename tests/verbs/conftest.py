"""Shared fixtures: a connected pair of contexts on ImmediateEngine."""

import pytest

from repro.verbs import (
    AccessFlags,
    Context,
    ImmediateEngine,
    QPCapabilities,
)


class ConnectedPair:
    """Two contexts (client/server) with a connected RC QP pair and one
    remotely accessible MR on each side."""

    def __init__(self, latency: float = 0.0, max_send_wr: int = 128):
        engine = ImmediateEngine(latency=latency)
        self.engine = engine
        self.client = Context(engine=engine, name="client")
        self.server = Context(engine=engine, name="server")
        self.client_pd = self.client.alloc_pd()
        self.server_pd = self.server.alloc_pd()
        self.client_cq = self.client.create_cq()
        self.server_cq = self.server.create_cq()
        self.client_qp = self.client.create_qp(
            self.client_pd,
            self.client_cq,
            cap=QPCapabilities(max_send_wr=max_send_wr),
        )
        self.server_qp = self.server.create_qp(
            self.server_pd,
            self.server_cq,
            cap=QPCapabilities(max_send_wr=max_send_wr),
        )
        self.client_qp.connect(self.server_qp)
        self.client_mr = self.client.reg_mr(self.client_pd, 4096)
        self.server_mr = self.server.reg_mr(
            self.server_pd, 4096, access=AccessFlags.all_remote()
        )


@pytest.fixture
def pair():
    return ConnectedPair()
