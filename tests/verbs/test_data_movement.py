"""Integration tests: RDMA semantics through the ImmediateEngine."""

import pytest

from repro.verbs import (
    AccessFlags,
    Opcode,
    RecvWR,
    SendWR,
    WCStatus,
)

from tests.verbs.conftest import ConnectedPair


@pytest.fixture
def pair():
    return ConnectedPair(latency=100.0)


def post_and_poll(pair, wr):
    pair.client_qp.post_send(wr)
    wcs = pair.client_cq.poll()
    assert len(wcs) == 1
    return wcs[0]


def test_rdma_write_moves_bytes(pair):
    payload = b"volatile-channel"
    pair.client.memory.write(pair.client_mr.addr, payload)
    wc = post_and_poll(
        pair,
        SendWR(
            opcode=Opcode.RDMA_WRITE,
            local_addr=pair.client_mr.addr,
            length=len(payload),
            remote_addr=pair.server_mr.addr,
            rkey=pair.server_mr.rkey,
        ),
    )
    assert wc.ok
    assert pair.server.memory.read(pair.server_mr.addr, len(payload)) == payload


def test_rdma_read_moves_bytes(pair):
    payload = b"sherman-btree-64"
    pair.server.memory.write(pair.server_mr.addr + 64, payload)
    wc = post_and_poll(
        pair,
        SendWR(
            opcode=Opcode.RDMA_READ,
            local_addr=pair.client_mr.addr,
            length=len(payload),
            remote_addr=pair.server_mr.addr + 64,
            rkey=pair.server_mr.rkey,
        ),
    )
    assert wc.ok
    assert pair.client.memory.read(pair.client_mr.addr, len(payload)) == payload


def test_fetch_add_returns_old_value(pair):
    pair.server.memory.write_u64(pair.server_mr.addr, 41)
    wc = post_and_poll(
        pair,
        SendWR(
            opcode=Opcode.ATOMIC_FETCH_ADD,
            local_addr=pair.client_mr.addr,
            remote_addr=pair.server_mr.addr,
            rkey=pair.server_mr.rkey,
            compare_add=1,
        ),
    )
    assert wc.ok
    assert pair.client.memory.read_u64(pair.client_mr.addr) == 41
    assert pair.server.memory.read_u64(pair.server_mr.addr) == 42


def test_cmp_swp_success_and_failure(pair):
    addr = pair.server_mr.addr
    pair.server.memory.write_u64(addr, 7)
    # matching compare swaps
    wc = post_and_poll(
        pair,
        SendWR(
            opcode=Opcode.ATOMIC_CMP_SWP,
            local_addr=pair.client_mr.addr,
            remote_addr=addr,
            rkey=pair.server_mr.rkey,
            compare_add=7,
            swap=99,
        ),
    )
    assert wc.ok
    assert pair.server.memory.read_u64(addr) == 99
    # mismatching compare leaves value, returns current
    wc = post_and_poll(
        pair,
        SendWR(
            opcode=Opcode.ATOMIC_CMP_SWP,
            local_addr=pair.client_mr.addr,
            remote_addr=addr,
            rkey=pair.server_mr.rkey,
            compare_add=7,
            swap=123,
        ),
    )
    assert wc.ok
    assert pair.server.memory.read_u64(addr) == 99
    assert pair.client.memory.read_u64(pair.client_mr.addr) == 99


def test_send_recv(pair):
    msg = b"two-sided"
    recv_buf = pair.server.memory.alloc(64)
    pair.server_qp.post_recv(RecvWR(local_addr=recv_buf, length=64, wr_id=55))
    pair.client.memory.write(pair.client_mr.addr, msg)
    wc = post_and_poll(
        pair,
        SendWR(
            opcode=Opcode.SEND,
            local_addr=pair.client_mr.addr,
            length=len(msg),
        ),
    )
    assert wc.ok
    recv_wcs = pair.server_cq.poll()
    assert len(recv_wcs) == 1
    assert recv_wcs[0].wr_id == 55
    assert recv_wcs[0].byte_len == len(msg)
    assert pair.server.memory.read(recv_buf, len(msg)) == msg


def test_send_without_posted_recv_fails(pair):
    wc = post_and_poll(
        pair,
        SendWR(opcode=Opcode.SEND, local_addr=pair.client_mr.addr, length=8),
    )
    assert wc.status is WCStatus.RNR_RETRY_EXC_ERR


def test_remote_access_error_out_of_bounds(pair):
    wc = post_and_poll(
        pair,
        SendWR(
            opcode=Opcode.RDMA_READ,
            local_addr=pair.client_mr.addr,
            length=8,
            remote_addr=pair.server_mr.end - 4,
            rkey=pair.server_mr.rkey,
        ),
    )
    assert wc.status is WCStatus.REM_ACCESS_ERR


def test_remote_access_error_bad_rkey(pair):
    wc = post_and_poll(
        pair,
        SendWR(
            opcode=Opcode.RDMA_READ,
            local_addr=pair.client_mr.addr,
            length=8,
            remote_addr=pair.server_mr.addr,
            rkey=0xDEAD,
        ),
    )
    assert wc.status is WCStatus.REM_ACCESS_ERR


def test_write_to_read_only_mr_fails():
    pair = ConnectedPair()
    ro_mr = pair.server.reg_mr(
        pair.server_pd, 4096, access=AccessFlags.REMOTE_READ
    )
    pair.client_qp.post_send(
        SendWR(
            opcode=Opcode.RDMA_WRITE,
            local_addr=pair.client_mr.addr,
            length=8,
            remote_addr=ro_mr.addr,
            rkey=ro_mr.rkey,
        )
    )
    wc = pair.client_cq.poll()[0]
    assert wc.status is WCStatus.REM_ACCESS_ERR


def test_failed_wqe_moves_qp_to_err():
    from repro.verbs.enums import QPState

    pair = ConnectedPair()
    pair.client_qp.post_send(
        SendWR(
            opcode=Opcode.RDMA_READ,
            local_addr=pair.client_mr.addr,
            length=8,
            remote_addr=pair.server_mr.addr,
            rkey=0xBAD,
        )
    )
    assert pair.client_qp.state is QPState.ERR


def test_latency_reflected_in_completion():
    pair = ConnectedPair(latency=250.0)
    pair.client_qp.post_send(
        SendWR(
            opcode=Opcode.RDMA_READ,
            local_addr=pair.client_mr.addr,
            length=8,
            remote_addr=pair.server_mr.addr,
            rkey=pair.server_mr.rkey,
        )
    )
    wc = pair.client_cq.poll()[0]
    assert wc.latency == pytest.approx(250.0)


def test_unsignaled_wqe_produces_no_cqe():
    pair = ConnectedPair()
    pair.client_qp.post_send(
        SendWR(
            opcode=Opcode.RDMA_READ,
            local_addr=pair.client_mr.addr,
            length=8,
            remote_addr=pair.server_mr.addr,
            rkey=pair.server_mr.rkey,
            signaled=False,
        )
    )
    assert pair.client_cq.poll() == []
    assert pair.client_qp.outstanding_send == 0
