"""Unit tests for QP state machine and posting rules."""

import pytest

from repro.verbs import (
    Context,
    Opcode,
    QPCapabilities,
    QPStateError,
    QPType,
    QueueFullError,
    RecvWR,
    SendWR,
)
from repro.verbs.enums import QPState

from tests.verbs.conftest import ConnectedPair


def make_pair(**kwargs):
    return ConnectedPair(**kwargs)


class TestStateMachine:
    def test_fresh_qp_is_reset(self):
        ctx = Context()
        pd = ctx.alloc_pd()
        qp = ctx.create_qp(pd, ctx.create_cq())
        assert qp.state is QPState.RESET

    def test_connect_brings_both_to_rts(self):
        pair = make_pair()
        assert pair.client_qp.state is QPState.RTS
        assert pair.server_qp.state is QPState.RTS
        assert pair.client_qp.remote_qp is pair.server_qp
        assert pair.server_qp.remote_qp is pair.client_qp

    def test_illegal_transition_rejected(self):
        ctx = Context()
        pd = ctx.alloc_pd()
        qp = ctx.create_qp(pd, ctx.create_cq())
        with pytest.raises(QPStateError):
            qp.modify(QPState.RTS)  # RESET -> RTS skips INIT/RTR

    def test_transport_mismatch_rejected(self):
        ctx_a, ctx_b = Context(), Context()
        qp_a = ctx_a.create_qp(ctx_a.alloc_pd(), ctx_a.create_cq(), qp_type=QPType.RC)
        qp_b = ctx_b.create_qp(ctx_b.alloc_pd(), ctx_b.create_cq(), qp_type=QPType.UC)
        with pytest.raises(QPStateError):
            qp_a.connect(qp_b)

    def test_reconnect_of_connected_qp_rejected(self):
        pair = make_pair()
        ctx = Context()
        other = ctx.create_qp(ctx.alloc_pd(), ctx.create_cq())
        with pytest.raises(QPStateError):
            pair.client_qp.connect(other)

    def test_err_state_recovers_via_reset(self):
        ctx = Context()
        pd = ctx.alloc_pd()
        qp = ctx.create_qp(pd, ctx.create_cq())
        qp.modify(QPState.ERR)
        qp.modify(QPState.RESET)
        assert qp.state is QPState.RESET


class TestPostingRules:
    def test_post_before_rts_rejected(self):
        ctx = Context()
        pd = ctx.alloc_pd()
        qp = ctx.create_qp(pd, ctx.create_cq())
        with pytest.raises(QPStateError):
            qp.post_send(SendWR(opcode=Opcode.RDMA_READ, remote_addr=0, rkey=0))

    def test_send_queue_capacity_enforced(self):
        pair = make_pair(max_send_wr=4)
        # ImmediateEngine completes synchronously, so fill pressure is
        # invisible; use an engine stub that never completes.
        class BlackHoleEngine:
            now = 0.0

            def post_send(self, qp, wr):
                wr.post_time = 0.0

        pair.client.engine = BlackHoleEngine()
        mr = pair.server_mr
        for _ in range(4):
            pair.client_qp.post_send(
                SendWR(
                    opcode=Opcode.RDMA_READ,
                    local_addr=pair.client_mr.addr,
                    length=8,
                    remote_addr=mr.addr,
                    rkey=mr.rkey,
                )
            )
        assert pair.client_qp.outstanding_send == 4
        assert pair.client_qp.send_queue_free == 0
        with pytest.raises(QueueFullError):
            pair.client_qp.post_send(
                SendWR(
                    opcode=Opcode.RDMA_READ,
                    local_addr=pair.client_mr.addr,
                    length=8,
                    remote_addr=mr.addr,
                    rkey=mr.rkey,
                )
            )

    def test_queue_ahead_recorded(self):
        pair = make_pair(max_send_wr=8)

        class BlackHoleEngine:
            now = 0.0
            posted = []

            def post_send(self, qp, wr):
                self.posted.append(wr)

        engine = BlackHoleEngine()
        pair.client.engine = engine
        mr = pair.server_mr
        for _ in range(3):
            pair.client_qp.post_send(
                SendWR(
                    opcode=Opcode.RDMA_READ,
                    local_addr=pair.client_mr.addr,
                    length=8,
                    remote_addr=mr.addr,
                    rkey=mr.rkey,
                )
            )
        assert [wr.queue_ahead for wr in engine.posted] == [0, 1, 2]

    def test_read_requires_remote_addr(self):
        pair = make_pair()
        with pytest.raises(QPStateError):
            pair.client_qp.post_send(SendWR(opcode=Opcode.RDMA_READ, length=8))

    def test_uc_rejects_rdma_read(self):
        ctx_a, ctx_b = Context(), Context()
        qp_a = ctx_a.create_qp(ctx_a.alloc_pd(), ctx_a.create_cq(), qp_type=QPType.UC)
        qp_b = ctx_b.create_qp(ctx_b.alloc_pd(), ctx_b.create_cq(), qp_type=QPType.UC)
        qp_a.connect(qp_b)
        with pytest.raises(QPStateError):
            qp_a.post_send(SendWR(opcode=Opcode.RDMA_READ, remote_addr=1, rkey=1, length=8))

    def test_recv_queue_capacity(self):
        pair = make_pair()
        cap = pair.server_qp.cap.max_recv_wr
        for _ in range(cap):
            pair.server_qp.post_recv(RecvWR(local_addr=pair.server_mr.addr, length=64))
        with pytest.raises(QueueFullError):
            pair.server_qp.post_recv(RecvWR(local_addr=pair.server_mr.addr, length=64))

    def test_atomic_length_forced_to_8(self):
        wr = SendWR(opcode=Opcode.ATOMIC_FETCH_ADD, remote_addr=0, rkey=0, length=64)
        assert wr.length == 8

    def test_recv_opcode_rejected_in_send_wr(self):
        with pytest.raises(ValueError):
            SendWR(opcode=Opcode.RECV)

    def test_destroy_with_outstanding_rejected(self):
        pair = make_pair()

        class BlackHoleEngine:
            now = 0.0

            def post_send(self, qp, wr):
                pass

        pair.client.engine = BlackHoleEngine()
        pair.client_qp.post_send(
            SendWR(
                opcode=Opcode.RDMA_READ,
                local_addr=pair.client_mr.addr,
                length=8,
                remote_addr=pair.server_mr.addr,
                rkey=pair.server_mr.rkey,
            )
        )
        from repro.verbs import ResourceError

        with pytest.raises(ResourceError):
            pair.client_qp.destroy()

    def test_qp_capabilities_validation(self):
        from repro.verbs import ResourceError

        with pytest.raises(ResourceError):
            QPCapabilities(max_send_wr=0)
