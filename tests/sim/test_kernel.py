"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import Simulator, SimulationError


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(30.0, fired.append, "c")
    sim.schedule(10.0, fired.append, "a")
    sim.schedule(20.0, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 30.0


def test_equal_time_events_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for tag in range(5):
        sim.schedule(100.0, fired.append, tag)
    sim.run()
    assert fired == [0, 1, 2, 3, 4]


def test_priority_breaks_time_ties():
    sim = Simulator()
    fired = []
    sim.schedule(100.0, fired.append, "low", priority=1)
    sim.schedule(100.0, fired.append, "high", priority=-1)
    sim.run()
    assert fired == ["high", "low"]


def test_schedule_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_past_raises():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5.0, lambda: None)


def test_run_until_advances_clock_to_horizon():
    sim = Simulator()
    sim.schedule(50.0, lambda: None)
    sim.schedule(500.0, lambda: None)
    sim.run(until=100.0)
    assert sim.now == 100.0
    # the t=500 event is still pending
    sim.run()
    assert sim.now == 500.0


def test_run_max_events():
    sim = Simulator()
    fired = []
    for t in range(10):
        sim.schedule(float(t), fired.append, t)
    sim.run(max_events=4)
    assert fired == [0, 1, 2, 3]


def test_events_can_schedule_events():
    sim = Simulator()
    fired = []

    def first():
        fired.append("first")
        sim.schedule(5.0, lambda: fired.append("second"))

    sim.schedule(1.0, first)
    sim.run()
    assert fired == ["first", "second"]
    assert sim.now == 6.0


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(10.0, fired.append, "x")
    sim.cancel(handle)
    sim.schedule(20.0, fired.append, "y")
    sim.run()
    assert fired == ["y"]


def test_stop_halts_run():
    sim = Simulator()
    fired = []

    def stopper():
        fired.append("stop")
        sim.stop()

    sim.schedule(1.0, stopper)
    sim.schedule(2.0, fired.append, "after")
    sim.run()
    assert fired == ["stop"]
    # remaining event still pending and can be run later
    sim.run()
    assert fired == ["stop", "after"]


def test_reset_clears_queue_and_clock():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run()
    sim.schedule(5.0, lambda: None)
    sim.reset()
    assert sim.now == 0.0
    assert sim.pending == 0


def test_events_fired_counter():
    sim = Simulator()
    for t in range(7):
        sim.schedule(float(t), lambda: None)
    sim.run()
    assert sim.events_fired == 7
