"""Engine-equivalence tests: the C event core and the pure-Python core
must be behaviourally identical — event order, clocks, counters, and
determinism trace digests.  Every test here runs against each available
core via :func:`repro.sim.kernel.make_simulator_class`.
"""

import pytest

from repro.sim.errors import SimulationError
from repro.sim.event import PyEventCore
from repro.sim.kernel import make_simulator_class

CORES = [PyEventCore]
try:
    from repro.sim import _speedups
    CORES.append(_speedups.EventCore)
except ImportError:
    pass

SIM_CLASSES = {core.__name__: make_simulator_class(core) for core in CORES}


@pytest.fixture(params=sorted(SIM_CLASSES), ids=sorted(SIM_CLASSES))
def sim_class(request):
    return SIM_CLASSES[request.param]


def _drive(sim) -> list:
    """A workload mixing everything the engines must agree on: time
    ordering, equal-time FIFO, priorities, nested scheduling, args, and
    cancellation (incl. idempotent double-cancel)."""
    fired = []

    def worker(tag):
        fired.append((sim.now, tag))
        if tag < 40:
            sim.schedule(7.0, worker, tag + 10)

    for tag in range(5):
        sim.schedule(50.0, worker, tag)
    sim.schedule(50.0, worker, 90, priority=-2)
    sim.schedule(50.0, worker, 91, priority=3)
    doomed = sim.schedule(10.0, worker, 99)
    sim.cancel(doomed)
    sim.cancel(doomed)
    sim.schedule(80.0, worker, 7)
    sim.run()
    return fired


class TestPerEngine:
    def test_workload_shape(self, sim_class):
        sim = sim_class()
        fired = _drive(sim)
        tags = [tag for _, tag in fired]
        assert 99 not in tags                      # cancelled
        assert tags[0] == 90 and tags[6] == 91     # priority brackets FIFO
        assert tags[1:6] == [0, 1, 2, 3, 4]        # equal-time FIFO
        assert sim.pending == 0
        assert sim.events_fired == len(fired)

    def test_pending_excludes_cancelled(self, sim_class):
        sim = sim_class()
        handles = [sim.schedule(float(t + 1), lambda: None)
                   for t in range(5)]
        assert sim.pending == 5
        sim.cancel(handles[1])
        sim.cancel(handles[3])
        assert sim.pending == 3
        sim.cancel(handles[3])                     # idempotent
        assert sim.pending == 3
        sim.run()
        assert sim.events_fired == 3
        assert sim.pending == 0

    def test_pending_tracks_partial_run(self, sim_class):
        sim = sim_class()
        for t in range(10):
            sim.schedule(float(t), lambda: None)
        sim.run(max_events=4)
        assert sim.pending == 6
        assert sim.events_fired == 4

    def test_recycling_stress(self, sim_class):
        """Fire and re-schedule in waves; a core recycling event structs
        must never confuse a fresh event with a dead handle."""
        sim = sim_class()
        fired = []
        for wave in range(5):
            handles = [
                sim.schedule(float(i % 3), fired.append, (wave, i))
                for i in range(200)
            ]
            for handle in handles[::7]:
                sim.cancel(handle)
            sim.run()
            assert sim.pending == 0
        expected_per_wave = 200 - len(range(0, 200, 7))
        assert len(fired) == 5 * expected_per_wave
        assert sim.events_fired == len(fired)
        # within a wave, equal-time events keep scheduling order
        wave0 = [i for w, i in fired if w == 0]
        assert wave0 == sorted(wave0, key=lambda i: (i % 3, i))

    def test_validation_matches(self, sim_class):
        sim = sim_class()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule(1.0, lambda: None, priority=2 ** 30)
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_trace_digest_reproducible(self, sim_class):
        digests = []
        for _ in range(2):
            sim = sim_class(trace=True)
            _drive(sim)
            digests.append(sim.trace_digest)
        assert digests[0] == digests[1]
        # a different workload must not collide
        other = sim_class(trace=True)
        other.schedule(1.0, lambda: None)
        other.run()
        assert other.trace_digest != digests[0]


@pytest.mark.skipif(len(CORES) < 2,
                    reason="C core not built; nothing to compare")
class TestCrossEngine:
    def test_engines_agree(self):
        results = {}
        for name, sim_class in SIM_CLASSES.items():
            sim = sim_class(trace=True)
            fired = _drive(sim)
            results[name] = (
                fired, sim.now, sim.events_fired, sim.trace_digest
            )
        reference = next(iter(results.values()))
        for name, outcome in results.items():
            assert outcome == reference, name

    def test_engines_agree_on_bounded_runs(self):
        outcomes = {}
        for name, sim_class in SIM_CLASSES.items():
            sim = sim_class()
            fired = []
            for t in range(20):
                sim.schedule(float(10 * t), fired.append, t)
            sim.run(until=45.0)
            mid = (list(fired), sim.now, sim.pending)
            sim.run(max_events=3)
            outcomes[name] = (mid, list(fired), sim.now, sim.pending)
        reference = next(iter(outcomes.values()))
        for name, outcome in outcomes.items():
            assert outcome == reference, name
