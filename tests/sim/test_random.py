"""Unit tests for named random streams."""

from repro.sim import RandomStreams


def test_same_name_same_stream_object():
    streams = RandomStreams(seed=1)
    assert streams.stream("pcie") is streams.stream("pcie")


def test_streams_reproducible_across_instances():
    a = RandomStreams(seed=42).stream("noise").random(8)
    b = RandomStreams(seed=42).stream("noise").random(8)
    assert (a == b).all()


def test_different_names_independent():
    streams = RandomStreams(seed=42)
    a = streams.stream("a").random(8)
    b = streams.stream("b").random(8)
    assert not (a == b).all()


def test_different_seeds_differ():
    a = RandomStreams(seed=1).stream("x").random(8)
    b = RandomStreams(seed=2).stream("x").random(8)
    assert not (a == b).all()


def test_reset_replays_sequence():
    streams = RandomStreams(seed=7)
    first = streams.stream("x").random(4)
    streams.reset("x")
    replay = streams.stream("x").random(4)
    assert (first == replay).all()


def test_draws_on_one_stream_do_not_shift_another():
    base = RandomStreams(seed=3)
    expected = base.stream("b").random(4)

    perturbed = RandomStreams(seed=3)
    perturbed.stream("a").random(100)  # extra draws on an unrelated stream
    got = perturbed.stream("b").random(4)
    assert (expected == got).all()


def test_spawn_is_independent_but_deterministic():
    child1 = RandomStreams(seed=5).spawn("worker").stream("x").random(4)
    child2 = RandomStreams(seed=5).spawn("worker").stream("x").random(4)
    parent = RandomStreams(seed=5).stream("x").random(4)
    assert (child1 == child2).all()
    assert not (child1 == parent).all()
