"""Unit tests for time/size/rate conversion helpers."""

import pytest

from repro.sim import units


def test_transfer_time_100gbps():
    # 1250 bytes at 100 Gbps = 10000 bits / 100e9 bps = 100 ns
    assert units.transfer_time_ns(1250, units.gbps(100)) == pytest.approx(100.0)


def test_rate_to_ns_per_byte():
    # 1 byte at 1 Gbps = 8 ns
    assert units.rate_to_ns_per_byte(units.gbps(1)) == pytest.approx(8.0)


def test_zero_rate_rejected():
    with pytest.raises(ValueError):
        units.rate_to_ns_per_byte(0.0)


def test_negative_bytes_rejected():
    with pytest.raises(ValueError):
        units.transfer_time_ns(-1, units.gbps(1))


def test_bits_bytes_roundtrip():
    assert units.bits_to_bytes(units.bytes_to_bits(123.0)) == pytest.approx(123.0)


def test_second_constants_consistent():
    assert units.SECONDS == 1000 * units.MILLISECONDS
    assert units.MILLISECONDS == 1000 * units.MICROSECONDS
    assert units.MICROSECONDS == 1000 * units.NANOSECONDS


def test_size_constants():
    assert units.MEBIBYTE == 1024 * units.KIBIBYTE
    assert units.GIBIBYTE == 1024 * units.MEBIBYTE
