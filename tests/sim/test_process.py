"""Unit tests for generator-based processes."""

import pytest

from repro.sim import Simulator, Timeout, Waiter
from repro.sim.process import Process, spawn


def test_timeout_sleeps_for_given_delay():
    sim = Simulator()
    times = []

    def proc():
        times.append(sim.now)
        yield Timeout(100.0)
        times.append(sim.now)
        yield Timeout(50.0)
        times.append(sim.now)

    spawn(sim, proc())
    sim.run()
    assert times == [0.0, 100.0, 150.0]


def test_process_result_captured():
    sim = Simulator()

    def proc():
        yield Timeout(1.0)
        return 42

    p = spawn(sim, proc())
    sim.run()
    assert p.finished
    assert p.result == 42


def test_waiter_resumes_with_value():
    sim = Simulator()
    waiter = Waiter()
    got = []

    def consumer():
        value = yield waiter
        got.append((sim.now, value))

    spawn(sim, consumer())
    sim.schedule(500.0, waiter.wake, "payload")
    sim.run()
    assert got == [(500.0, "payload")]


def test_waiter_woken_before_await_does_not_lose_value():
    sim = Simulator()
    waiter = Waiter()
    waiter.wake("early")
    got = []

    def consumer():
        value = yield waiter
        got.append(value)

    spawn(sim, consumer())
    sim.run()
    assert got == ["early"]


def test_waiter_double_wake_raises():
    waiter = Waiter()
    waiter.wake(1)
    with pytest.raises(RuntimeError):
        waiter.wake(2)


def test_waiter_double_await_raises():
    sim = Simulator()
    waiter = Waiter()

    def consumer():
        yield waiter

    spawn(sim, consumer())
    spawn(sim, consumer())
    with pytest.raises(RuntimeError):
        sim.run()


def test_negative_timeout_rejected():
    with pytest.raises(ValueError):
        Timeout(-5.0)


def test_yielding_garbage_raises_type_error():
    sim = Simulator()

    def proc():
        yield "not a command"

    spawn(sim, proc())
    with pytest.raises(TypeError):
        sim.run()


def test_two_processes_interleave():
    sim = Simulator()
    order = []

    def proc(name, delay):
        for _ in range(3):
            yield Timeout(delay)
            order.append((name, sim.now))

    spawn(sim, proc("fast", 10.0))
    spawn(sim, proc("slow", 25.0))
    sim.run()
    assert order == [
        ("fast", 10.0),
        ("fast", 20.0),
        ("slow", 25.0),
        ("fast", 30.0),
        ("slow", 50.0),
        ("slow", 75.0),
    ]


def test_process_class_name_default():
    sim = Simulator()

    def named():
        yield Timeout(1.0)

    p = Process(sim, named())
    sim.run()
    assert p.finished
