"""Tests for per-QP Grain-III telemetry and the QP-level profile path."""

import pytest

from repro.defense import HarmonicDetector, TenantProfile
from repro.host import Cluster
from repro.rnic import cx5
from repro.sim.units import SECONDS
from repro.verbs.enums import Opcode


def build_conn(max_send_wr=16):
    cluster = Cluster(seed=0)
    server = cluster.add_host("server", spec=cx5())
    client = cluster.add_host("client", spec=cx5())
    conn = cluster.connect(client, server, max_send_wr=max_send_wr)
    mr = server.reg_mr(2 * 1024 * 1024)
    return cluster, conn, mr


class TestQPCounters:
    def test_counts_accumulate_per_qp(self):
        _, conn, mr = build_conn()
        for _ in range(7):
            conn.read_blocking(mr, 0, 1024)
        conn.post_write(mr, 0, 4096)
        conn.await_completions(1)
        qp = conn.qp
        assert qp.opcode_counts[Opcode.RDMA_READ] == 7
        assert qp.opcode_counts[Opcode.RDMA_WRITE] == 1
        assert qp.size_counts == {1024: 7, 4096: 1}
        assert qp.bytes_posted == 7 * 1024 + 4096

    def test_batch_posts_accounted(self):
        from repro.verbs import SendWR

        _, conn, mr = build_conn()
        wrs = [
            SendWR(opcode=Opcode.RDMA_READ, local_addr=conn.local_mr.addr,
                   length=64, remote_addr=mr.addr, rkey=mr.rkey)
            for _ in range(4)
        ]
        conn.qp.post_send_batch(wrs)
        conn.await_completions(4)
        assert conn.qp.opcode_counts[Opcode.RDMA_READ] == 4


class TestProfileFromQPs:
    def test_profile_aggregates_multiple_qps(self):
        cluster = Cluster(seed=0)
        server = cluster.add_host("server", spec=cx5())
        client = cluster.add_host("client", spec=cx5())
        conns = [cluster.connect(client, server) for _ in range(3)]
        mr = server.reg_mr(2 * 1024 * 1024)
        for conn in conns:
            for _ in range(5):
                conn.read_blocking(mr, 0, 512)
        profile = TenantProfile.from_qps(
            "tenant", [c.qp for c in conns], duration_ns=1 * SECONDS
        )
        assert profile.qp_count == 3
        assert profile.opcode_counts[Opcode.RDMA_READ] == 15
        assert profile.mean_msg_size == pytest.approx(512)
        assert profile.total_bytes == 15 * 512

    def test_measured_ragnar_sender_passes_harmonic_via_qp_path(self):
        """Exact per-QP histograms (not estimates) still show nothing
        anomalous about the Grain-IV sender."""
        _, conn, mr = build_conn()
        for i in range(60):
            conn.read_blocking(mr, 255 if i % 2 else 0, 512)
        profile = TenantProfile.from_qps("ragnar", [conn.qp],
                                         duration_ns=1 * SECONDS)
        assert profile.msg_size_counts == {512: 60}
        assert not HarmonicDetector(cx5()).inspect(profile).flagged

    def test_empty_qp_list(self):
        profile = TenantProfile.from_qps("idle", [], duration_ns=1 * SECONDS)
        assert profile.total_messages == 0
        assert profile.qp_count == 1  # a tenant has at least one QP
