"""Unit tests for the Grain-I..III detectors and Table I's claims."""

import pytest

from repro.defense import CacheGuard, Grain1Detector, HarmonicDetector, TenantProfile
from repro.rnic import cx5
from repro.verbs.enums import Opcode
from repro.sim.units import SECONDS


def profile(**overrides) -> TenantProfile:
    """A benign baseline tenant: moderate 4 KB reads on one MR."""
    defaults = dict(
        tenant="t1",
        duration_ns=1 * SECONDS,
        bytes_per_tc={0: 10**9},     # 8 Gbps
        opcode_counts={Opcode.RDMA_READ: 250_000},
        msg_size_counts={4096: 250_000},
        qp_count=2,
        mr_count=1,
        pd_count=1,
        cache_accesses=250_000,
        cache_misses=50,
        cache_evictions=10,
    )
    defaults.update(overrides)
    return TenantProfile(**defaults)


class TestGrain1:
    def test_benign_passes(self):
        detector = Grain1Detector(cx5())
        assert not detector.inspect(profile()).flagged

    def test_saturating_tenant_flagged(self):
        detector = Grain1Detector(cx5())
        bully = profile(bytes_per_tc={0: int(90e9 / 8)})  # 90 Gbps on a 50% share
        verdict = detector.inspect(bully)
        assert verdict.flagged
        assert "exceeds" in verdict.reason

    def test_share_validation(self):
        with pytest.raises(ValueError):
            Grain1Detector(cx5(), tc_share=0.0)


class TestHarmonic:
    def test_benign_passes(self):
        detector = HarmonicDetector(cx5())
        assert not detector.inspect(profile()).flagged

    def test_pps_flood_flagged(self):
        detector = HarmonicDetector(cx5())
        flood = profile(
            opcode_counts={Opcode.RDMA_WRITE: 80_000_000},
            msg_size_counts={64: 80_000_000},
        )
        assert detector.inspect(flood).flagged

    def test_atomic_flood_flagged(self):
        detector = HarmonicDetector(cx5())
        atomics = profile(
            opcode_counts={Opcode.ATOMIC_FETCH_ADD: 2_000_000},
            msg_size_counts={8: 2_000_000},
        )
        assert detector.inspect(atomics).flagged

    def test_resource_churn_flagged(self):
        detector = HarmonicDetector(cx5())
        churner = profile(mr_count=500)
        assert detector.inspect(churner).flagged

    def test_tiny_write_flood_flagged(self):
        detector = HarmonicDetector(cx5())
        tiny = profile(
            opcode_counts={Opcode.RDMA_WRITE: 10_000_000},
            msg_size_counts={64: 10_000_000},
        )
        assert detector.inspect(tiny).flagged

    def test_ragnar_intra_mr_profile_passes(self):
        """The Grain-IV sender: plain 512 B reads, one MR, moderate
        rate — HARMONIC's envelopes see nothing (Table I)."""
        detector = HarmonicDetector(cx5())
        ragnar = profile(
            opcode_counts={Opcode.RDMA_READ: 1_500_000},
            msg_size_counts={512: 1_500_000},
            bytes_per_tc={0: 1_500_000 * 512},
            mr_count=1,
        )
        assert not detector.inspect(ragnar).flagged

    def test_ragnar_inter_mr_profile_passes(self):
        detector = HarmonicDetector(cx5())
        ragnar = profile(
            opcode_counts={Opcode.RDMA_READ: 1_500_000},
            msg_size_counts={512: 1_500_000},
            mr_count=2,
        )
        assert not detector.inspect(ragnar).flagged


class TestCacheGuard:
    def test_benign_passes(self):
        assert not CacheGuard().inspect(profile()).flagged

    def test_eviction_storm_flagged(self):
        pythia = profile(
            cache_accesses=100_000,
            cache_misses=60_000,
            cache_evictions=55_000,
        )
        verdict = CacheGuard().inspect(pythia)
        assert verdict.flagged
        assert "eviction" in verdict.reason

    def test_warm_cache_heavy_traffic_passes(self):
        """Ragnar hammers two MRs but they stay cache-resident."""
        ragnar = profile(
            cache_accesses=3_000_000,
            cache_misses=4,
            cache_evictions=0,
        )
        assert not CacheGuard().inspect(ragnar).flagged

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            CacheGuard(miss_rate_threshold=1.5)


class TestProfileProperties:
    def test_rates(self):
        p = profile()
        assert p.avg_rate_bps == pytest.approx(8e9)
        assert p.avg_pps == pytest.approx(250_000)
        assert p.mean_msg_size == pytest.approx(4096)

    def test_fractions(self):
        p = profile(opcode_counts={Opcode.RDMA_WRITE: 30, Opcode.RDMA_READ: 70})
        assert p.write_fraction == pytest.approx(0.3)
        p = profile(opcode_counts={Opcode.ATOMIC_CMP_SWP: 10})
        assert p.atomic_fraction == 1.0

    def test_window_validation(self):
        with pytest.raises(ValueError):
            profile(duration_ns=0)
