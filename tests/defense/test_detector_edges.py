"""Detector edge cases: degenerate baselines, restart behaviour,
multi-series combination, and sampling-window boundaries.

The first two tests are regression tests for real bugs:

* the EWMA *dead zone* — an idle tenant's zero-variance, zero-mean
  warm-up collapsed the alarm band to exactly 0.0, and a ``band > 0``
  guard then suppressed the alarm on the very first level shift while
  that sample polluted the baseline;
* ``watch_all`` picked its "earliest" alarm by comparing per-trace
  ``detection_latency_ns`` values, which are relative to each trace's
  own window start — wrong whenever series start at different times,
  and nondeterministic on ties.
"""

import pytest

from repro.defense import (
    CounterTrace,
    OnlineCounterDefense,
    sample_counts,
)
from repro.obs.insight.detectors import (
    CusumDetector,
    DetectorBank,
    EwmaDetector,
    PeriodicityDetector,
    periodicity_score,
    run_series,
)


def _series(values):
    return [float(i) for i in range(len(values))], [float(v) for v in values]


def _trace(values, tenant="t0", key="k", start=1000.0, step=1000.0):
    return CounterTrace(
        tenant=tenant, key=key,
        times_ns=tuple(start + step * i for i in range(len(values))),
        values=tuple(float(v) for v in values))


# ----------------------------------------------------------------------
# EWMA dead zone (regression)
# ----------------------------------------------------------------------
def test_ewma_idle_then_active_dead_zone():
    """An idle tenant (all-zero warm-up) must alarm on the very first
    nonzero sample: zero variance AND zero mean used to collapse the
    band to 0.0, which the old ``band > 0`` guard read as 'never
    alarm' — exactly where a defender most wants sensitivity."""
    values = [0.0] * 12 + [50.0] * 6
    detection = run_series(EwmaDetector(), *_series(values))
    assert detection.flagged
    assert detection.first_flag_ts == 12.0  # the first level shift
    # shielded baseline: every shifted sample keeps alarming, so the
    # attack level never polluted the idle baseline
    assert detection.flags == 6


def test_ewma_idle_then_tiny_activity_still_alarms():
    """The epsilon floor is absolute, so even a sub-unit blip off a
    degenerate zero baseline is a residual the detector can see."""
    values = [0.0] * 16 + [0.5] * 4
    detection = run_series(EwmaDetector(), *_series(values))
    assert detection.flagged
    assert detection.first_flag_ts == 16.0


def test_ewma_min_abs_band_validation():
    with pytest.raises(ValueError):
        EwmaDetector(min_abs_band=0.0)
    with pytest.raises(ValueError):
        EwmaDetector(min_abs_band=-1.0)


# ----------------------------------------------------------------------
# Constant / degenerate baselines
# ----------------------------------------------------------------------
def test_constant_series_every_detector_silent():
    times, values = _series([7.7] * 96)
    bank = DetectorBank()
    for ts, value in zip(times, values):
        bank.observe(ts, value)
    for name, detection in bank.results().items():
        assert not detection.flagged, name
        assert detection.flags == 0 and detection.samples == 96


def test_constant_zero_series_silent():
    """All-zero forever is idle, not an attack: the epsilon floor must
    not turn a flat zero series into alarms."""
    times, values = _series([0.0] * 64)
    bank = DetectorBank()
    for ts, value in zip(times, values):
        bank.observe(ts, value)
    assert not any(d.flagged for d in bank.results().values())


def test_cusum_zero_baseline_flags_first_shift():
    """A zero-mean warm-up floors the standardization scale at 1e-12,
    so the first shifted sample standardizes to an enormous z and
    alarms immediately instead of dividing by zero."""
    values = [0.0] * 8 + [1.0] * 4
    detection = run_series(CusumDetector(), *_series(values))
    assert detection.flagged
    assert detection.first_flag_ts == 8.0


# ----------------------------------------------------------------------
# CUSUM restart
# ----------------------------------------------------------------------
def test_cusum_post_alarm_restart_retriggers_periodically():
    """After an alarm both CUSUM statistics reset, so a *sustained*
    shift re-accumulates and re-alarms on a fixed cadence instead of
    saturating into one sticky alarm.  +3 floored-sigma with k=0.5
    accumulates 2.5 sigma/sample against h=6: alarm every 3rd sample."""
    values = [100.0] * 8 + [115.0] * 24
    detector = CusumDetector()
    alarm_indices = [index for index, (ts, value)
                     in enumerate(zip(*_series(values)))
                     if detector.observe(float(ts), value)]
    assert alarm_indices == [10, 13, 16, 19, 22, 25, 28, 31]
    assert detector.finish().flags == 8


# ----------------------------------------------------------------------
# watch_all combination (regression)
# ----------------------------------------------------------------------
def test_watch_all_judges_absolute_time_not_relative_latency():
    """Series windows that start at different times: the series whose
    alarm fires first on the shared sim clock must win, even when the
    other's *relative* latency is smaller."""
    defense = OnlineCounterDefense()
    # alarms at its 17th sample: absolute ts 117_000, latency 16_000
    late_window = _trace([100.0] * 16 + [900.0] * 16,
                         tenant="late-window", key="late",
                         start=101_000.0)
    # alarms at its 25th sample: absolute ts 25_000, latency 24_000
    early_window = _trace([100.0] * 24 + [900.0] * 8,
                          tenant="early-window", key="early",
                          start=1_000.0)
    late = defense.watch(late_window)
    early = defense.watch(early_window)
    assert late.detection_latency_ns < early.detection_latency_ns
    verdict = defense.watch_all([late_window, early_window])
    assert verdict.tenant == "early-window"
    assert verdict.detection_latency_ns == pytest.approx(24_000.0)


def test_watch_all_tie_breaks_deterministically_on_key():
    """Identical series in identical windows alarm at the same absolute
    time with the same detector; the counter key must break the tie
    the same way regardless of input order."""
    defense = OnlineCounterDefense()
    values = [100.0] * 16 + [900.0] * 16
    first = _trace(values, tenant="tenant-a", key="aaa_bytes")
    second = _trace(values, tenant="tenant-b", key="bbb_bytes")
    forward = defense.watch_all([first, second])
    backward = defense.watch_all([second, first])
    assert forward.tenant == backward.tenant == "tenant-a"


# ----------------------------------------------------------------------
# Periodicity buffer (perf fix: deque ring, O(1) eviction)
# ----------------------------------------------------------------------
class _ListBufferPeriodicity(PeriodicityDetector):
    """The pre-fix O(window)-shift buffer, as an equivalence oracle."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self._buffer = []  # plain list, del [0] eviction

    def _alarm(self, ts, value):
        self._buffer.append(value)
        if len(self._buffer) > self.window:
            del self._buffer[0]
        if len(self._buffer) < self.window or self._samples % self.stride:
            return False
        best_score, best_lag = periodicity_score(
            self._buffer, self.min_cov, self.power_of_two_only)
        if best_score > self.score_threshold:
            if not self._reason:
                self._reason = (f"periodic modulation at lag {best_lag} "
                                f"(acf {best_score:.2f})")
            return True
        return False


@pytest.mark.parametrize("seed", [0, 1])
def test_periodicity_deque_matches_list_reference(seed):
    import numpy as np

    rng = np.random.default_rng(seed)
    square = (([10.0] * 8 + [30.0] * 8) * 10)
    noisy = (100.0 + rng.normal(0.0, 5.0, 160)).tolist()
    ramp = (np.arange(160) % 24 * 3.0 + 50.0).tolist()
    for values in (square, noisy, ramp):
        fast = PeriodicityDetector()
        reference = _ListBufferPeriodicity()
        times, series = _series(values)
        fast_alarms = [fast.observe(ts, v) for ts, v in zip(times, series)]
        ref_alarms = [reference.observe(ts, v)
                      for ts, v in zip(times, series)]
        assert fast_alarms == ref_alarms
        assert fast.finish() == reference.finish()


# ----------------------------------------------------------------------
# sample_counts boundaries
# ----------------------------------------------------------------------
def test_sample_counts_boundary_events():
    """Half-open window [start, end): an event exactly at window_end is
    dropped, exactly at window_start counted, and just below
    window_end lands in the last bucket (not one past it)."""
    times = [0.0, 100.0, 99.999999, 10.0, 20.0]
    edges, counts = sample_counts(times, 0.0, 100.0, 10)
    assert sum(counts) == 4.0           # ts=100.0 == window_end dropped
    assert counts[0] == 1.0             # ts=0.0 == window_start kept
    assert counts[9] == 1.0             # just-below-end clamps into last
    # an event exactly on an interior bucket edge opens the next bucket
    assert counts[1] == 1.0 and counts[2] == 1.0


def test_sample_counts_all_events_outside_window():
    edges, counts = sample_counts([-5.0, 200.0], 0.0, 100.0, 4)
    assert sum(counts) == 0.0
    assert len(edges) == len(counts) == 4
