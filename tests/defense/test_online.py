"""The online counter-stream defense: modulation flagged, stationary
series silent."""

import pytest

from repro.defense import (
    CounterTrace,
    OnlineCounterDefense,
    OnlineVerdict,
    sample_counts,
)
from repro.obs.insight.detectors import EwmaDetector


def _trace(values, tenant="t0", key="rx_pps", step=1000.0):
    return CounterTrace(
        tenant=tenant, key=key,
        times_ns=tuple(step * (i + 1) for i in range(len(values))),
        values=tuple(float(v) for v in values))


def test_counter_trace_validation():
    with pytest.raises(ValueError):
        CounterTrace("t", "k", (1.0, 2.0), (1.0,))
    with pytest.raises(ValueError):
        CounterTrace("t", "k", (1.0,), (1.0,))
    with pytest.raises(ValueError):
        CounterTrace("t", "k", (2.0, 1.0), (1.0, 1.0))


def test_toggling_series_is_flagged_with_latency():
    defense = OnlineCounterDefense()
    verdict = defense.watch(_trace([100.0] * 16 + [900.0] * 16))
    assert verdict.flagged and bool(verdict)
    assert verdict.detector
    # alarm at the 17th sample (ts 17000), window starts at ts 1000
    assert verdict.detection_latency_ns == pytest.approx(16000.0)
    assert verdict.flag_rate > 0.0
    assert verdict.reason
    assert set(verdict.detections) == {"ewma", "cusum", "periodicity"}


def test_stationary_series_stays_silent():
    defense = OnlineCounterDefense()
    verdict = defense.watch(_trace([500.0] * 64))
    assert not verdict.flagged and not bool(verdict)
    assert verdict.detector == ""
    assert verdict.detection_latency_ns is None
    assert "stationary" in verdict.reason


def test_fresh_detectors_per_watch():
    """One alarming tenant must not poison the next tenant's baseline."""
    defense = OnlineCounterDefense()
    assert defense.watch(_trace([100.0] * 16 + [900.0] * 16)).flagged
    assert not defense.watch(_trace([500.0] * 64)).flagged


def test_watch_all_earliest_alarm_wins():
    defense = OnlineCounterDefense()
    late = _trace([100.0] * 24 + [900.0] * 8, key="late")
    early = _trace([100.0] * 10 + [900.0] * 22, key="early")
    verdict = defense.watch_all([late, early])
    assert verdict.flagged
    assert verdict.detection_latency_ns == pytest.approx(10000.0)
    quiet = defense.watch_all([_trace([500.0] * 32)])
    assert isinstance(quiet, OnlineVerdict) and not quiet.flagged
    with pytest.raises(ValueError):
        defense.watch_all([])


def test_custom_detector_suite():
    defense = OnlineCounterDefense([lambda: EwmaDetector(k=3.0)])
    verdict = defense.watch(_trace([100.0] * 16 + [900.0] * 16))
    assert verdict.flagged
    assert verdict.detector == "ewma"
    with pytest.raises(ValueError):
        OnlineCounterDefense([])


def test_sample_counts_buckets_and_drops():
    times = [5.0, 15.0, 16.0, 95.0, 150.0, -2.0]  # last two out of window
    edges, counts = sample_counts(times, 0.0, 100.0, 10)
    assert edges == tuple(10.0 * (i + 1) for i in range(10))
    assert counts[0] == 1.0
    assert counts[1] == 2.0
    assert counts[9] == 1.0
    assert sum(counts) == 4.0
    with pytest.raises(ValueError):
        sample_counts(times, 0.0, 100.0, 1)
    with pytest.raises(ValueError):
        sample_counts(times, 100.0, 100.0, 4)
