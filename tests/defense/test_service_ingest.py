"""The obs-artifact ingestion adapters: trace-JSONL counter records and
metrics-registry snapshots flowing into a live DetectorBankService."""

import json

from repro.defense import (
    DetectorBankService,
    ingest_metrics_snapshots,
    ingest_trace_jsonl,
)


def _counter_record(ts, component, name, args):
    return {"ph": "C", "ts": ts, "component": component,
            "name": name, "args": args}


def test_trace_jsonl_streams_and_staleness(tmp_path):
    records = [
        _counter_record(1000.0, "telemetry.srv", "rx",
                        {"bytes": 100, "pps": 10}),
        {"ph": "X", "ts": 1500.0, "component": "rnic.server",
         "name": "span", "dur": 5.0},  # non-counter: ignored
        _counter_record(2000.0, "telemetry.srv", "rx",
                        {"bytes": 180, "pps": 11}),
        # duplicated sampler tick: same ts again -> dropped, not raised
        _counter_record(2000.0, "telemetry.srv", "rx",
                        {"bytes": 180, "pps": 11}),
        _counter_record(2000.0, "covert.tx", "bits",
                        {"sent": 4, "label": "frame0"}),  # non-numeric arg
    ]
    path = tmp_path / "run.trace.jsonl"
    path.write_text("\n".join(json.dumps(r) for r in records) + "\n")

    service = DetectorBankService()
    summary = ingest_trace_jsonl(service, path)
    assert summary == {"streams": 3, "samples": 5, "dropped": 2}
    assert "telemetry.srv/rx/bytes" in service
    assert "telemetry.srv/rx/pps" in service
    assert "covert.tx/bits/sent" in service
    assert "covert.tx/bits/label" not in service
    verdict = service.verdict("telemetry.srv/rx/bytes")
    assert verdict.tenant == "telemetry.srv"
    assert verdict.detections["ewma"].samples == 2


def test_trace_jsonl_component_filter(tmp_path):
    path = tmp_path / "run.trace.jsonl"
    path.write_text("\n".join(json.dumps(r) for r in [
        _counter_record(1.0, "telemetry.srv", "rx", {"bytes": 1}),
        _counter_record(1.0, "covert.tx", "bits", {"sent": 1}),
    ]) + "\n")
    service = DetectorBankService()
    summary = ingest_trace_jsonl(
        service, path, component_filter=lambda c: c.startswith("telemetry"))
    assert summary["streams"] == 1
    assert "covert.tx/bits/sent" not in service


def test_metrics_snapshots_skip_histograms():
    snapshots = [
        (float(tick), {
            "rnic.server": {
                "mpt_hits": {"type": "counter", "value": 10 * tick},
                "latency": {"type": "histogram",
                            "value": {"count": 5, "sum": 1.0}},
            },
            "covert.tx": {"depth": {"type": "gauge", "value": 3.0}},
        })
        for tick in range(1, 9)
    ]
    service = DetectorBankService()
    summary = ingest_metrics_snapshots(service, snapshots)
    assert summary == {"streams": 2, "samples": 16, "dropped": 0}
    assert "rnic.server/mpt_hits" in service
    assert "covert.tx/depth" in service
    assert "rnic.server/latency" not in service
    assert service.verdict("covert.tx/depth").detections["ewma"].samples == 8


def test_metrics_snapshots_drop_stale_ticks():
    snapshot = {"c": {"n": {"type": "counter", "value": 1.0}}}
    service = DetectorBankService()
    summary = ingest_metrics_snapshots(
        service, [(1.0, snapshot), (1.0, snapshot), (2.0, snapshot)])
    assert summary["samples"] == 2
    assert summary["dropped"] == 1
