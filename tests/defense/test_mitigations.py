"""Tests for the Section VII mitigations (noise, partitioning)."""

import dataclasses

import numpy as np
import pytest

from repro.covert import IntraMRChannel, random_bits
from repro.covert.intra_mr import IntraMRConfig
from repro.defense import (
    PartitionedTranslationUnit,
    with_noise_mitigation,
    with_partitioning,
)
from repro.defense.noise import mean_latency_overhead
from repro.rnic import TranslationUnit, cx5


class TestNoiseMitigation:
    def test_zero_scale_is_identity(self):
        spec = cx5()
        assert with_noise_mitigation(spec, 0.0) is spec

    def test_scales_noise_parameters(self):
        spec = cx5()
        noisy = with_noise_mitigation(spec, 1.0)
        assert noisy.jitter_frac > spec.jitter_frac
        assert noisy.spike_prob > spec.spike_prob

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            with_noise_mitigation(cx5(), -1.0)

    def test_overhead_grows_with_scale(self):
        spec = cx5()
        overheads = [
            mean_latency_overhead(spec, with_noise_mitigation(spec, s))
            for s in (0.5, 1.0, 2.0, 4.0)
        ]
        assert all(a < b for a, b in zip(overheads, overheads[1:]))
        assert overheads[0] > 0

    def test_noise_degrades_covert_channel(self):
        """Section VII: noise obscures ULI — error rate rises with the
        noise scale while the honest overhead grows."""
        bits = random_bits(64, seed=1)
        quiet = IntraMRChannel(cx5(), IntraMRConfig.best_for("CX-5"))
        noisy_spec = with_noise_mitigation(cx5(), 6.0)
        noisy = IntraMRChannel(noisy_spec, IntraMRConfig.best_for("CX-5"))
        err_quiet = quiet.transmit(bits, seed=2).error_rate
        err_noisy = noisy.transmit(bits, seed=2).error_rate
        assert err_noisy > err_quiet


class TestPartitioning:
    def test_tenants_get_separate_units(self):
        unit = with_partitioning(cx5(), num_partitions=2)
        unit.admit(0.0, "mr", 0, 64, tenant="a")
        unit.admit(0.0, "mr", 0, 64, tenant="b")
        assert set(unit.tenants) == {"a", "b"}

    def test_partition_budget_enforced(self):
        unit = PartitionedTranslationUnit(cx5(), num_partitions=1)
        unit.admit(0.0, "mr", 0, 64, tenant="a")
        with pytest.raises(ValueError):
            unit.admit(0.0, "mr", 0, 64, tenant="b")

    def test_too_many_partitions_rejected(self):
        with pytest.raises(ValueError):
            PartitionedTranslationUnit(cx5(), num_partitions=64)

    def test_cross_tenant_coupling_removed(self):
        """A victim hammering a line no longer delays another tenant's
        probe on the same bank (offset 2048 aliases the victim's bank)."""
        spec = dataclasses.replace(cx5(), jitter_frac=0.0, spike_prob=0.0)

        def probe_latency(unit):
            # warm the attacker's caches/segment with a far line first
            unit.admit(0.0, "mr", 3072, 64, tenant="attacker")
            now = 1e6
            for _ in range(4):
                now, _ = unit.admit(now, "mr", 0, 64, tenant="victim")
            start = now
            finish, _ = unit.admit(start, "mr", 2048, 64, tenant="attacker")
            return finish - start

        shared = probe_latency(_SharedAdapter(TranslationUnit(spec)))
        partitioned = probe_latency(PartitionedTranslationUnit(spec, 2))
        assert shared > partitioned

    def test_partition_overhead_charged(self):
        spec = dataclasses.replace(cx5(), jitter_frac=0.0, spike_prob=0.0)
        shared = TranslationUnit(spec)
        partitioned = PartitionedTranslationUnit(spec, 2)
        t_shared, _ = shared.admit(0.0, "mr", 0, 64)
        t_part, _ = partitioned.admit(0.0, "mr", 0, 64, tenant="a")
        assert t_part > t_shared

    def test_fewer_banks_hurt_solo_tenant(self):
        """The performance cost: a single tenant with many in-flight
        lines conflicts more on its bank slice."""
        spec = dataclasses.replace(cx5(), jitter_frac=0.0, spike_prob=0.0)
        shared = TranslationUnit(spec)
        partitioned = PartitionedTranslationUnit(spec, num_partitions=8)

        def run(admit):
            now = 0.0
            for i in range(64):
                now = admit(now, i * 64)
            return now

        t_shared = run(lambda now, off: shared.admit(now, "mr", off, 64)[0])
        t_part = run(
            lambda now, off: partitioned.admit(now, "mr", off, 64, tenant="a")[0]
        )
        assert t_part > t_shared


class _SharedAdapter:
    """Give the shared unit the tenant-kwarg interface for the test."""

    def __init__(self, unit: TranslationUnit) -> None:
        self.unit = unit

    def admit(self, now, mr_key, offset, size, tenant=None):
        return self.unit.admit(now, mr_key, offset, size)
