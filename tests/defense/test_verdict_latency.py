"""The per-stream verdict-latency SLO tracker (ROADMAP item 5).

Wall time never enters the service (RAG001): the tracker runs on an
*injected* clock, so these tests drive it with a deterministic fake and
check the percentile arithmetic agrees with
``benchmarks/bench_defense_throughput.py`` to the last digit.
"""

import statistics

import pytest

from repro.defense import VerdictLatencyTracker
from repro.defense.service import DetectorBankService

LEVEL_SHIFT = [100.0] * 16 + [300.0] * 16
FLAT = [500.0] * 64


def _fake_clock(step_s: float = 1e-6):
    """A monotonic clock advancing ``step_s`` per call — every timed
    verdict reads it twice, so each latency is exactly ``step_s``."""
    state = {"now": 0.0}

    def clock() -> float:
        state["now"] += step_s
        return state["now"]

    return clock


def _service_with(series_by_stream):
    service = DetectorBankService()
    service.admit_many(sorted(series_by_stream))
    length = max(len(v) for v in series_by_stream.values())
    for i in range(length):
        ids = [s for s, values in sorted(series_by_stream.items())
               if i < len(values)]
        service.ingest(ids, 1000.0 * (i + 1),
                       [series_by_stream[s][i] for s in ids])
    return service


class TestTracker:
    def test_bench_percentile_agreement(self):
        # awkward sample count + spread: median interpolates, p99 ranks
        tracker = VerdictLatencyTracker()
        samples = [5e-6, 1e-6, 9e-6, 3e-6, 2e-6, 8e-6, 4e-6]
        for sample in samples:
            tracker.observe(sample)
        assert tracker.count == len(samples)
        assert tracker.samples == samples      # raw, arrival order
        ordered = sorted(samples)
        n = len(ordered)
        bench_p50 = round(statistics.median(samples) * 1e6, 2)
        bench_p99 = round(ordered[min(n - 1, int(n * 0.99))] * 1e6, 2)
        summary = tracker.summary()
        assert summary == {"count": n, "p50_us": bench_p50,
                           "p99_us": bench_p99}

    def test_empty_summary_and_quantile_validation(self):
        tracker = VerdictLatencyTracker()
        assert tracker.summary() == {"count": 0, "p50_us": None,
                                     "p99_us": None}
        with pytest.raises(ValueError, match="no verdict latencies"):
            tracker.quantile(0.5)
        tracker.observe(1e-6)
        with pytest.raises(ValueError, match="quantile must be in"):
            tracker.quantile(1.5)
        assert tracker.quantile(0.0) == 1e-6
        assert tracker.quantile(1.0) == 1e-6


class TestServiceIntegration:
    def test_armed_verdicts_are_timed_with_injected_clock(self):
        service = _service_with({"s0": FLAT, "s1": LEVEL_SHIFT})
        tracker = service.enable_verdict_latency(_fake_clock(2e-6))
        for _ in range(3):
            service.verdict("s0")
            service.verdict("s1")
        assert tracker.count == 6
        assert tracker.samples == pytest.approx([2e-6] * 6)
        assert tracker.summary()["p50_us"] == 2.0

    def test_rearming_replaces_the_tracker(self):
        service = _service_with({"s0": FLAT})
        first = service.enable_verdict_latency(_fake_clock())
        service.verdict("s0")
        second = service.enable_verdict_latency(_fake_clock())
        service.verdict("s0")
        assert first.count == 1
        assert second.count == 1
        assert service.verdict_latency is second

    def test_unarmed_service_never_tracks(self):
        service = _service_with({"s0": FLAT})
        service.verdict("s0")
        assert service.verdict_latency is None

    def test_detection_latencies_skip_tracker_and_quiet_streams(self):
        service = _service_with({"calm": FLAT, "shift": LEVEL_SHIFT})
        tracker = service.enable_verdict_latency(_fake_clock())
        latencies = service.detection_latencies()
        assert set(latencies) == {"shift"}
        assert latencies["shift"] > 0
        assert tracker.count == 0   # bulk readouts bypass the tracker


class TestDetectionLatencySlo:
    def test_no_flagged_streams_is_trivially_compliant(self):
        service = _service_with({"calm": FLAT})
        slo = service.detection_latency_slo(budget_ns=1.0)
        assert slo["compliant"] is True
        assert slo["flagged"] == 0
        assert slo["value_ns"] == 0.0
        assert slo["violating_streams"] == []

    def test_budget_verdicts(self):
        service = _service_with({"shift": LEVEL_SHIFT})
        latency = service.detection_latencies()["shift"]
        within = service.detection_latency_slo(budget_ns=latency)
        assert within["compliant"] is True
        assert within["value_ns"] == latency
        assert within["violations"] == 0
        blown = service.detection_latency_slo(budget_ns=latency / 2)
        assert blown["compliant"] is False
        assert blown["violations"] == 1
        assert blown["violating_streams"] == ["shift"]

    def test_validation(self):
        service = _service_with({"calm": FLAT})
        with pytest.raises(ValueError, match="budget_ns must be positive"):
            service.detection_latency_slo(budget_ns=0.0)
        with pytest.raises(ValueError, match="percentile must be in"):
            service.detection_latency_slo(budget_ns=1.0, percentile=0.0)
