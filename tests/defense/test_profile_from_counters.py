"""Tests for building tenant profiles from NIC counter deltas — the
defender's actual data path (per-tenant VF counters)."""

import pytest

from repro.defense import Grain1Detector, HarmonicDetector, TenantProfile
from repro.host import Cluster
from repro.rnic import cx5
from repro.sim.units import SECONDS
from repro.verbs.enums import Opcode


def measured_profile(workload, duration_guess=None):
    """Run ``workload(conn, mr)`` and profile the client NIC's deltas."""
    cluster = Cluster(seed=0)
    server = cluster.add_host("server", spec=cx5())
    client = cluster.add_host("client", spec=cx5())
    conn = cluster.connect(client, server, max_send_wr=16)
    mr = server.reg_mr(2 * 1024 * 1024)
    before = client.rnic.counters.snapshot()
    start = cluster.sim.now
    workload(conn, mr)
    duration = max(cluster.sim.now - start, 1.0)
    after = client.rnic.counters.snapshot()
    return TenantProfile.from_counter_delta(
        "tenant", before, after,
        duration_ns=duration_guess if duration_guess else duration,
        qp_count=1, mr_count=1,
    )


def test_profile_reconstructs_opcode_mix():
    def workload(conn, mr):
        for _ in range(10):
            conn.read_blocking(mr, 0, 1024)
        for _ in range(5):
            conn.post_write(mr, 0, 1024)
            conn.await_completions(1)

    profile = measured_profile(workload)
    assert profile.opcode_counts[Opcode.RDMA_READ] == 10
    assert profile.opcode_counts[Opcode.RDMA_WRITE] == 5
    assert profile.total_messages == 15


def test_profile_rates_reflect_traffic():
    def workload(conn, mr):
        for _ in range(20):
            conn.read_blocking(mr, 0, 4096)

    profile = measured_profile(workload)
    assert profile.avg_pps > 0
    assert profile.total_bytes > 0


def test_measured_benign_profile_passes_detectors():
    def workload(conn, mr):
        for i in range(30):
            conn.read_blocking(mr, 64 * (i % 16), 4096)

    profile = measured_profile(workload)
    assert not Grain1Detector(cx5()).inspect(profile).flagged
    assert not HarmonicDetector(cx5()).inspect(profile).flagged


def test_measured_ragnar_sender_profile_passes_harmonic():
    """Straight from the wire: an intra-MR-style probe stream (constant
    512 B reads at one MR) profiles as benign."""

    def workload(conn, mr):
        for i in range(60):
            conn.read_blocking(mr, 255 if i % 2 else 0, 512)

    profile = measured_profile(workload)
    assert not HarmonicDetector(cx5()).inspect(profile).flagged


def test_empty_delta():
    profile = TenantProfile.from_counter_delta(
        "idle", {"tx_bytes": 5}, {"tx_bytes": 5}, duration_ns=1 * SECONDS
    )
    assert profile.total_messages == 0
    assert profile.mean_msg_size == 0
    assert profile.avg_rate_bps == 0.0
