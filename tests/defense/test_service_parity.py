"""Cross-implementation equivalence: the vectorized
:class:`~repro.defense.service.DetectorBankService` must be
*byte-identical* to the scalar :mod:`repro.obs.insight.detectors`
suite — flags, flag counts, first-alarm timestamps, latencies, and
reason strings — on every series family, in every multiplexing shape
(whole-trace, tick-interleaved, duplicate-ids-in-one-batch, slot
reuse after retirement).  Same contract shape as the engine
equivalence suite in ``tests/sim/test_engines.py``: two
implementations, one behaviour.
"""

import numpy as np
import pytest

from repro.defense.online import CounterTrace, OnlineCounterDefense
from repro.defense.service import BatchedCounterDefense, DetectorBankService
from repro.obs.insight.detectors import (
    CusumDetector,
    EwmaDetector,
    PeriodicityDetector,
    run_series,
)

_RNG = np.random.default_rng(20260808)

#: One representative series per behaviour class the detectors carve
#: out: silent, level shift, slow drift, square-wave modulation, the
#: idle-tenant dead-zone shape, quantization noise, and plain noise.
SERIES = {
    "flat": [500.0] * 64,
    "quantized": [1000.0, 1001.0] * 32,
    "level_shift": [100.0] * 16 + [300.0] * 16,
    "idle_then_active": [0.0] * 12 + [50.0] * 8,
    "square_wave": ([10.0] * 8 + [30.0] * 8) * 8,
    "noise": (100.0 + _RNG.normal(0.0, 3.0, 130)).tolist(),
    "drift": (100.0 + np.arange(120) * 0.8
              + _RNG.normal(0.0, 1.0, 120)).tolist(),
    "impulse": [200.0] * 40 + [900.0] + [200.0] * 40,
}


def _trace(values, tenant="tenant", key="counter", start=1000.0,
           step=1000.0):
    return CounterTrace(
        tenant=tenant, key=key,
        times_ns=tuple(start + step * i for i in range(len(values))),
        values=tuple(float(v) for v in values))


def _assert_verdicts_identical(scalar, batched):
    assert scalar.flagged == batched.flagged
    assert scalar.detector == batched.detector
    assert scalar.detection_latency_ns == batched.detection_latency_ns
    assert scalar.flag_rate == batched.flag_rate
    assert scalar.reason == batched.reason
    assert set(scalar.detections) == set(batched.detections)
    for name in scalar.detections:
        # Detection is a frozen dataclass: == covers flags, samples,
        # first_flag_ts (exact), and the reason string
        assert scalar.detections[name] == batched.detections[name], name


@pytest.fixture(params=sorted(SERIES), ids=sorted(SERIES))
def family(request):
    return request.param


def test_watch_verdict_byte_identical(family):
    trace = _trace(SERIES[family])
    scalar = OnlineCounterDefense().watch(trace)
    batched = BatchedCounterDefense().watch(trace)
    assert scalar.tenant == batched.tenant
    _assert_verdicts_identical(scalar, batched)


def test_custom_tuned_detectors_vectorize(family):
    factories = (
        lambda: EwmaDetector(alpha=0.5, k=3.0, warmup=4,
                             min_rel_band=0.1),
        lambda: CusumDetector(k=0.25, h=3.0, warmup=4),
        lambda: PeriodicityDetector(window=16, stride=4,
                                    power_of_two_only=True),
    )
    trace = _trace(SERIES[family])
    scalar = OnlineCounterDefense(factories).watch(trace)
    batched = BatchedCounterDefense(factories).watch(trace)
    _assert_verdicts_identical(scalar, batched)


def test_multiplexed_interleaved_matches_scalar():
    """Many streams of different lengths advanced tick-by-tick through
    ONE service — the production shape — against stream-at-a-time
    scalar runs."""
    rng = np.random.default_rng(11)
    streams = {}
    for index in range(40):
        length = int(rng.integers(70, 130))
        base = float(rng.uniform(50.0, 150.0))
        shift = float(rng.choice([0.0, 0.0, 40.0, 120.0]))
        values = base + rng.normal(0.0, 2.0, length)
        values[length // 2:] += shift
        streams[f"s{index:02d}"] = values.tolist()

    service = DetectorBankService(capacity=8)  # force growth too
    service.admit_many(sorted(streams))
    longest = max(len(v) for v in streams.values())
    for tick in range(longest):
        active = sorted(s for s, v in streams.items() if tick < len(v))
        service.ingest(
            active, 1000.0 * (tick + 1),
            [streams[s][tick] for s in active])

    scalar = OnlineCounterDefense()
    for stream_id in sorted(streams):
        trace = _trace(streams[stream_id], tenant=stream_id,
                       key=stream_id)
        expected = scalar.watch(trace)
        got = service.verdict(stream_id)
        _assert_verdicts_identical(expected, got)
    # and the bulk readout agrees with the per-stream one
    everything = service.verdicts()
    assert sorted(everything) == sorted(streams)
    for stream_id, verdict in everything.items():
        _assert_verdicts_identical(service.verdict(stream_id), verdict)


def test_duplicate_ids_in_one_batch_preserve_order():
    """A batch carrying several samples for the same stream must apply
    them in position order (sequential rounds), matching a sample-at-a-
    time scalar feed."""
    values = SERIES["level_shift"]
    service = DetectorBankService()
    service.admit("dup")
    ids = ["dup"] * len(values)
    times = [1000.0 * (i + 1) for i in range(len(values))]
    service.ingest(ids, times, values)
    expected = OnlineCounterDefense().watch(
        _trace(values, tenant="dup", key="dup"))
    _assert_verdicts_identical(expected, service.verdict("dup"))


def test_retire_returns_final_verdict_and_reuses_slot():
    service = DetectorBankService(capacity=1)
    service.admit("hot", tenant="t0", key="evictions")
    values = SERIES["level_shift"]
    service.ingest(["hot"] * len(values),
                   [1000.0 * (i + 1) for i in range(len(values))], values)
    final = service.retire("hot")
    assert final.flagged and final.tenant == "t0"
    assert "hot" not in service
    with pytest.raises(KeyError):
        service.verdict("hot")
    # the freed slot is reused with fully reset state
    service.admit("cold")
    assert service.capacity == 1
    flat = SERIES["flat"]
    service.ingest(["cold"] * len(flat),
                   [1000.0 * (i + 1) for i in range(len(flat))], flat)
    verdict = service.verdict("cold")
    assert not verdict.flagged
    assert verdict.reason == f"cold series stationary over {len(flat)} samples"
    for detection in verdict.detections.values():
        assert detection.flags == 0 and detection.samples == len(flat)
        assert detection.first_flag_ts is None and detection.reason == ""


def test_stationary_reason_matches_scalar_watch():
    trace = _trace(SERIES["flat"], tenant="quiet", key="rx_pps")
    scalar = OnlineCounterDefense().watch(trace)
    batched = BatchedCounterDefense().watch(trace)
    assert "stationary" in batched.reason
    assert scalar.reason == batched.reason


def test_watch_all_matches_scalar_combination():
    scalar = OnlineCounterDefense()
    batched = BatchedCounterDefense()
    traces = [
        _trace(SERIES["level_shift"], key="late", start=50_000.0),
        _trace(SERIES["square_wave"], key="early", start=1_000.0),
        _trace(SERIES["flat"], key="quiet", start=1_000.0),
    ]
    _assert_verdicts_identical(scalar.watch_all(traces),
                               batched.watch_all(traces))


def test_single_detector_suites_match(family):
    for factory in (EwmaDetector, CusumDetector, PeriodicityDetector):
        trace = _trace(SERIES[family])
        scalar_detection = run_series(
            factory(), list(trace.times_ns), list(trace.values))
        batched = BatchedCounterDefense((factory,)).watch(trace)
        assert batched.detections[factory.name] == scalar_detection


def test_ingest_validation():
    service = DetectorBankService()
    service.admit("a")
    with pytest.raises(ValueError):
        service.ingest(["a"], [1.0, 2.0], [1.0])  # shape mismatch
    service.ingest(["a"], 5.0, [1.0])
    with pytest.raises(ValueError):
        service.ingest(["a"], 5.0, [2.0])  # time must advance
    with pytest.raises(KeyError):
        service.ingest(["ghost"], 6.0, [1.0])  # never admitted
    with pytest.raises(KeyError):
        service.ingest_slots(np.asarray([99]), 6.0, [1.0])  # bad slot
    with pytest.raises(ValueError):
        service.admit("a")  # double admission
    with pytest.raises(ValueError):
        DetectorBankService(())
    with pytest.raises(ValueError):
        DetectorBankService(capacity=0)


def test_unsupported_detector_type_raises():
    class Exotic(EwmaDetector):
        name = "exotic"

    with pytest.raises(TypeError):
        DetectorBankService((Exotic,))


def test_admit_missing_auto_admits():
    service = DetectorBankService()
    service.ingest(["x", "y"], 1000.0, [1.0, 2.0], admit_missing=True)
    assert "x" in service and "y" in service
    assert service.stream_count == 2
    assert service.ingested == 2
