"""Tests for HARMONIC enforcement: policing restores victims, spares
Ragnar (the full Table I story)."""

import pytest

from repro.defense import HarmonicDetector, HarmonicIsolation, TenantProfile
from repro.host import Cluster
from repro.rnic import FluidFlow, cx5
from repro.sim.units import SECONDS
from repro.verbs.enums import Opcode


def perf_attacker_profile() -> TenantProfile:
    count = 60_000_000
    return TenantProfile(
        tenant="bully",
        duration_ns=1 * SECONDS,
        bytes_per_tc={0: count * 64},
        opcode_counts={Opcode.RDMA_WRITE: count},
        msg_size_counts={64: count},
        qp_count=16,
    )


def benign_profile(name="victim") -> TenantProfile:
    return TenantProfile(
        tenant=name,
        duration_ns=1 * SECONDS,
        bytes_per_tc={0: 10**9},
        opcode_counts={Opcode.RDMA_READ: 250_000},
        msg_size_counts={4096: 250_000},
        qp_count=2,
    )


@pytest.fixture
def nic():
    cluster = Cluster(seed=0)
    return cluster.add_host("server", spec=cx5()).rnic


class TestPolicing:
    def test_victim_recovers_when_bully_policed(self, nic):
        victim_flow = FluidFlow(opcode=Opcode.RDMA_READ, msg_size=4096,
                                qp_num=4)
        bully_flow = FluidFlow(opcode=Opcode.RDMA_WRITE, msg_size=32768,
                               qp_num=16)
        nic.add_fluid_flow(victim_flow)
        solo = nic.fluid_bandwidth(victim_flow)
        nic.add_fluid_flow(bully_flow)
        contended = nic.fluid_bandwidth(victim_flow)
        assert contended < 0.7 * solo

        bully_profile = perf_attacker_profile()
        policer = HarmonicIsolation(HarmonicDetector(cx5()), cap_bps=1e9)
        verdicts = policer.police(nic, {
            "bully": (bully_profile, [bully_flow]),
            "victim": (benign_profile(), [victim_flow]),
        })
        assert verdicts["bully"].flagged
        assert not verdicts["victim"].flagged
        assert nic.fluid_bandwidth(bully_flow) <= 1e9 * 1.001
        restored = nic.fluid_bandwidth(victim_flow)
        assert restored > contended

    def test_benign_tenants_never_capped(self, nic):
        flow = FluidFlow(opcode=Opcode.RDMA_READ, msg_size=4096, qp_num=4)
        nic.add_fluid_flow(flow)
        before = nic.fluid_bandwidth(flow)
        policer = HarmonicIsolation(HarmonicDetector(cx5()))
        policer.police(nic, {"tenant": (benign_profile(), [flow])})
        assert nic.fluid_bandwidth(flow) == pytest.approx(before)

    def test_ragnar_sender_profile_is_not_policed(self, nic):
        """The intra-MR sender's profile passes HARMONIC, so policing
        leaves the covert channel's traffic untouched (Table I)."""
        ragnar_profile = TenantProfile(
            tenant="ragnar",
            duration_ns=1 * SECONDS,
            bytes_per_tc={0: 1_500_000 * 512},
            opcode_counts={Opcode.RDMA_READ: 1_500_000},
            msg_size_counts={512: 1_500_000},
            qp_count=1,
            mr_count=1,
        )
        flow = FluidFlow(opcode=Opcode.RDMA_READ, msg_size=512, qp_num=1)
        nic.add_fluid_flow(flow)
        before = nic.fluid_bandwidth(flow)
        policer = HarmonicIsolation(HarmonicDetector(cx5()))
        verdicts = policer.police(nic, {"ragnar": (ragnar_profile, [flow])})
        assert not verdicts["ragnar"].flagged
        assert nic.fluid_bandwidth(flow) == pytest.approx(before)

    def test_cap_validation(self):
        with pytest.raises(ValueError):
            HarmonicIsolation(HarmonicDetector(cx5()), cap_bps=0)


class TestPythiaOracle:
    def test_oracle_detects_victim_touches(self):
        from repro.baselines import PythiaChannel

        accuracy = PythiaChannel(cx5()).side_channel_oracle(trials=30, seed=1)
        assert accuracy > 0.9

    def test_oracle_validation(self):
        from repro.baselines import PythiaChannel

        with pytest.raises(ValueError):
            PythiaChannel(cx5()).side_channel_oracle(trials=0)
