"""Deterministic backoff: same (seed, name, attempt) ⇒ same delay."""

import math

import pytest

from repro.runtime import RetryPolicy


class TestRetryPolicy:
    def test_delay_is_deterministic(self):
        policy = RetryPolicy(retries=3)
        first = policy.delay(7, "fig13", 2)
        again = RetryPolicy(retries=3).delay(7, "fig13", 2)
        assert first == again

    def test_delay_varies_with_key(self):
        policy = RetryPolicy(retries=3)
        base = policy.delay(7, "fig13", 1)
        assert policy.delay(8, "fig13", 1) != base      # seed
        assert policy.delay(7, "table5", 1) != base     # name
        assert policy.delay(7, "fig13", 2) != base      # attempt

    def test_exponential_growth_with_cap(self):
        policy = RetryPolicy(retries=6, base_delay=0.1, factor=2.0,
                             max_delay=0.5, jitter=0.0)
        delays = policy.schedule(0, "x")
        assert delays[:3] == [0.1, 0.2, 0.4]
        assert all(math.isclose(d, 0.5) for d in delays[3:])

    def test_jitter_bounded(self):
        policy = RetryPolicy(retries=1, base_delay=1.0, jitter=0.5)
        for attempt in range(1, 20):
            delay = policy.delay(0, "t", attempt)
            bounded = min(policy.max_delay,
                          policy.base_delay * policy.factor ** (attempt - 1))
            assert bounded <= delay < bounded * 1.5

    def test_schedule_length_matches_retries(self):
        assert RetryPolicy(retries=0).schedule(0, "x") == []
        assert len(RetryPolicy(retries=4).schedule(0, "x")) == 4

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(retries=1).delay(0, "x", 0)
