"""Spawn-importable task functions for the supervised-runtime chaos
tests.

These must live in a real module (not a test body): the supervisor's
spawn workers re-import task functions by qualified name, exactly like
the experiments registry.  Several tasks coordinate across attempts
through a sentinel file — the first attempt misbehaves (crashes, kills
itself, SIGSTOPs itself), later attempts find the sentinel and
succeed, which is how the tests prove retry actually recovers.
"""

from __future__ import annotations

import os
import pathlib
import signal
import time


def ok_task(tag: str) -> str:
    return f"done:{tag}"


def crash_task(message: str) -> None:
    raise RuntimeError(message)


def flaky_task(sentinel: str) -> str:
    """Crash on the first attempt, succeed once the sentinel exists."""
    path = pathlib.Path(sentinel)
    if not path.exists():
        path.write_text("attempted")
        raise RuntimeError("first attempt crashes")
    return "recovered"


def selfkill_task(sentinel: str) -> str:
    """SIGKILL our own worker process on the first attempt — the
    supervisor must classify the death from the exitcode."""
    path = pathlib.Path(sentinel)
    if not path.exists():
        path.write_text("attempted")
        os.kill(os.getpid(), signal.SIGKILL)
    return "survived"


def selfstop_task(sentinel: str) -> str:
    """SIGSTOP our own worker on the first attempt: the process stays
    alive but every thread (heartbeats included) freezes — the
    canonical silent hang the liveness check exists for."""
    path = pathlib.Path(sentinel)
    if not path.exists():
        path.write_text("attempted")
        os.kill(os.getpid(), signal.SIGSTOP)
    return "resumed"


def sleep_task(seconds: float) -> str:
    """Overrun any short deadline while beating happily."""
    time.sleep(seconds)
    return "slept"


def moody_task(sentinel: str) -> str:
    """Return a value the caller's result_failure hook rejects until
    the sentinel exists."""
    path = pathlib.Path(sentinel)
    if not path.exists():
        path.write_text("attempted")
        return "bad"
    return "good"


def write_task(target: str, payload: str) -> str:
    """Write a file — lets ordering/manifest tests see side effects."""
    path = pathlib.Path(target)
    path.write_text(payload)
    return str(path)


def metered_task(ticks: int = 5) -> int:
    """Maintain a live metrics registry while working, so an armed
    telemetry pipe has real deltas to ship; sleeps between ticks give
    the shipper thread a chance to flush mid-flight."""
    from repro import obs
    obs.install(metrics=True)
    try:
        registry = obs.registry()
        counter = registry.counter("chaos.metered", "ticks")
        histogram = registry.histogram("chaos.metered", "tick_ns")
        total = 0
        for i in range(ticks):
            counter.inc()
            histogram.observe(float(100 * (i + 1)))
            total += i
            time.sleep(0.02)
        return total
    finally:
        obs.uninstall()
