"""The dedicated telemetry pipe under the supervised runtime.

Live telemetry is timing-shaped (how many deltas ship depends on
scheduling), so these tests assert the *protocol invariants* — record
kinds, per-task seq monotonicity, delta-chain == final snapshot — and
leave byte-determinism to the canonical artifacts
(tests/experiments/test_fleet_parallel.py).
"""

from __future__ import annotations

import collections

from repro.obs.fleet import FleetAggregator, apply_delta
from repro.runtime import Supervisor, SupervisorConfig, TaskSpec

from tests.runtime.chaos_tasks import metered_task, ok_task

#: Ship fast relative to the ~0.1 s metered task so deltas actually
#: flow mid-flight (the production default of 0.5 s would only ever
#: see the final flush).
CONFIG = SupervisorConfig(max_workers=2, heartbeat_interval=0.05,
                          telemetry_interval=0.01)


def _run_metered(names, sink):
    supervisor = Supervisor(CONFIG)
    specs = [TaskSpec(name=name, fn=metered_task, kwargs={"ticks": 4})
             for name in names]
    results = supervisor.run(specs, telemetry=sink)
    assert all(result.ok for result in results.values())
    return supervisor


class TestTelemetryPipe:
    def test_delta_chain_reconstructs_final_snapshot(self):
        records = collections.defaultdict(list)
        _run_metered(["alpha", "beta"],
                     lambda task, record: records[task].append(record))
        for task in ("alpha", "beta"):
            metric_records = [r for r in records[task]
                              if r.get("kind") in ("delta", "final")]
            assert metric_records, f"no telemetry shipped for {task}"
            assert metric_records[-1]["kind"] == "final"
            seqs = [r["seq"] for r in metric_records]
            assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
            state: dict = {}
            for record in metric_records:
                state = apply_delta(state, record["delta"])
            # the final record carries the cumulative snapshot; the
            # applied delta chain must land on exactly the same state
            assert state == metric_records[-1]["snapshot"]
            ticks = state["chaos.metered"]["ticks"]["value"]
            assert 1 <= ticks <= 4

    def test_lifecycle_events_are_forwarded(self):
        records = collections.defaultdict(list)
        supervisor = _run_metered(
            ["solo"], lambda task, record: records[task].append(record))
        events = [r["event"]["event"] for r in records["solo"]
                  if r.get("kind") == "event"]
        assert "launch" in events and "ok" in events
        # forwarding mirrors (not replaces) the supervisor's own log
        assert len(events) == len(supervisor.events)

    def test_telemetry_none_path_unchanged(self):
        supervisor = Supervisor(CONFIG)
        results = supervisor.run(
            [TaskSpec(name="plain", fn=ok_task, args=("t",))])
        assert results["plain"].ok
        assert results["plain"].value == "done:t"

    def test_sink_exposed_after_run_is_cleared(self):
        supervisor = _run_metered(["one"], lambda task, record: None)
        assert supervisor._telemetry_sink is None


class TestAggregatorIntegration:
    def test_live_aggregator_over_real_workers(self, tmp_path):
        live = tmp_path / "fleet_snapshots.jsonl"
        names = ["left", "right"]
        aggregator = FleetAggregator(tasks=names, live_path=live,
                                     progress_every=1)
        supervisor = Supervisor(CONFIG)
        specs = [TaskSpec(name=name, fn=metered_task,
                          kwargs={"ticks": 3}) for name in names]
        try:
            results = supervisor.run(specs, telemetry=aggregator.sink)
        finally:
            aggregator.close()
        assert all(result.ok for result in results.values())
        assert aggregator.tasks_done() == 2
        assert aggregator.revision >= 2
        fleet = aggregator.fleet_snapshot()
        assert fleet["chaos.metered"]["ticks"]["value"] >= 2
        assert {e["event"] for e in aggregator.events} >= {"launch", "ok"}
        assert live.exists()
        assert len(live.read_text().splitlines()) == aggregator.revision
