"""Checkpoint/resume: an interrupted sweep continues via ``--resume``
to artifacts byte-identical with an uninterrupted run.

Two layers: the in-process tests exercise manifest skip/rerun logic
with controllable registries; the chaos test SIGKILLs the whole driver
process group mid-sweep — the acceptance scenario — and proves the
resumed artifacts match a reference run byte for byte.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.experiments.__main__ import main
from repro.experiments.result import ExperimentResult

REPO_SRC = str(pathlib.Path(repro.__file__).resolve().parents[1])


def ok_result(name):
    return ExperimentResult(experiment=name, title=f"{name} table",
                            rows=[{"value": 1}])


def artifact_bytes(path) -> dict:
    """Result files only — the manifest records attempt counts and the
    error sidecars record interruption details, so neither is part of
    the byte-identity contract."""
    return {
        p.name: p.read_bytes()
        for p in sorted(pathlib.Path(path).iterdir())
        if p.name != "run_manifest.json" and ".error." not in p.name
    }


@pytest.fixture
def registry(monkeypatch):
    def install(runners):
        monkeypatch.setattr("repro.experiments.__main__.REGISTRY", runners)

    return install


class TestSerialResume:
    def test_resume_reruns_only_the_unfinished(self, registry, tmp_path,
                                               capsys):
        runs = {"good": 0, "flaky": 0}
        healthy = {"flaky": False}

        def good(seed=0):
            runs["good"] += 1
            return ok_result("good")

        def flaky(seed=0):
            runs["flaky"] += 1
            if not healthy["flaky"]:
                raise RuntimeError("interrupted")
            return ok_result("flaky")

        registry({"good": good, "flaky": flaky})
        out = tmp_path / "out"
        assert main(["--all", "--out", str(out)]) == 1
        assert runs == {"good": 1, "flaky": 1}

        healthy["flaky"] = True
        assert main(["--all", "--out", str(out), "--resume"]) == 0
        captured = capsys.readouterr()
        assert "[good: already complete; skipped (--resume)]" in captured.out
        assert runs == {"good": 1, "flaky": 2}   # good was not rerun

        reference = tmp_path / "reference"
        assert main(["--all", "--out", str(reference)]) == 0
        assert artifact_bytes(out) == artifact_bytes(reference)

    def test_resume_with_changed_config_rejected(self, registry, tmp_path,
                                                 capsys):
        registry({"good": lambda seed=0: ok_result("good")})
        assert main(["--all", "--out", str(tmp_path)]) == 0
        assert main(["--all", "--out", str(tmp_path), "--resume",
                     "--seed", "7"]) == 2
        assert "config" in capsys.readouterr().err

    def test_fully_complete_resume_runs_nothing(self, registry, tmp_path,
                                                capsys):
        runs = []
        registry({"good": lambda seed=0: (runs.append(1),
                                          ok_result("good"))[1]})
        assert main(["--all", "--out", str(tmp_path)]) == 0
        assert main(["--all", "--out", str(tmp_path), "--resume"]) == 0
        assert len(runs) == 1

    def test_tampered_output_is_rerun(self, registry, tmp_path, capsys):
        runs = []
        registry({"good": lambda seed=0: (runs.append(1),
                                          ok_result("good"))[1]})
        assert main(["--all", "--out", str(tmp_path)]) == 0
        pristine = (tmp_path / "good.txt").read_bytes()
        (tmp_path / "good.txt").write_text("corrupted")
        assert main(["--all", "--out", str(tmp_path), "--resume"]) == 0
        assert len(runs) == 2
        assert (tmp_path / "good.txt").read_bytes() == pristine


class TestDriverKillResume:
    """The acceptance chaos scenario: SIGKILL the whole sweep (driver
    and its workers) mid-flight, then ``--resume``."""

    EXPERIMENTS = ["table1", "fig4"]

    def test_sigkilled_sweep_resumes_byte_identical(self, tmp_path,
                                                    capsys):
        chaos = tmp_path / "chaos"
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.experiments", *self.EXPERIMENTS,
             "--jobs", "2", "--out", str(chaos)],
            env={**os.environ, "PYTHONPATH": REPO_SRC},
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            start_new_session=True,   # one process group to kill
        )
        try:
            # let it get some real work done: wait for the first
            # checkpointed artifact (or natural exit — the kill then
            # just proves an idempotent no-op resume)
            while process.poll() is None:
                manifest = chaos / "run_manifest.json"
                if manifest.exists() and json.loads(
                        manifest.read_text())["tasks"]:
                    break
                time.sleep(0.01)
            if process.poll() is None:
                os.killpg(process.pid, signal.SIGKILL)
        finally:
            process.wait(timeout=60)

        assert main([*self.EXPERIMENTS, "--jobs", "2", "--out", str(chaos),
                     "--resume"]) == 0
        capsys.readouterr()

        reference = tmp_path / "reference"
        assert main([*self.EXPERIMENTS, "--jobs", "2", "--out",
                     str(reference)]) == 0
        capsys.readouterr()
        assert artifact_bytes(chaos) == artifact_bytes(reference)

        manifest = json.loads((chaos / "run_manifest.json").read_text())
        assert {name: entry["status"]
                for name, entry in manifest["tasks"].items()} == {
                    "table1": "ok", "fig4": "ok"}
