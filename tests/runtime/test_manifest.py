"""The sweep checkpoint manifest: transactional saves, digest checks,
resume queries."""

import json

import pytest

from repro.runtime import (
    ManifestConfigMismatch,
    RunManifest,
    TaskFailure,
    config_digest,
)

CONFIG = {"seed": 0, "smoke": True}


class TestConfigDigest:
    def test_stable_and_order_free(self):
        assert config_digest({"a": 1, "b": 2}) == \
            config_digest({"b": 2, "a": 1})

    def test_sensitive_to_values(self):
        assert config_digest({"seed": 0}) != config_digest({"seed": 1})


class TestRecording:
    def test_ok_records_relative_paths_and_digests(self, tmp_path):
        artifact = tmp_path / "demo.txt"
        artifact.write_text("table")
        manifest = RunManifest(tmp_path, CONFIG)
        manifest.record_ok("demo", attempts=2, outputs=[str(artifact)])
        entry = manifest.entry("demo")
        assert entry["status"] == "ok"
        assert entry["attempts"] == 2
        assert list(entry["outputs"]) == ["demo.txt"]
        assert entry["outputs"]["demo.txt"].startswith("sha256:")

    def test_failure_and_skip_records(self, tmp_path):
        manifest = RunManifest(tmp_path, CONFIG)
        manifest.record_failure("boom", TaskFailure(
            kind="timeout", message="deadline", attempts=3))
        manifest.record_skipped("late", "circuit breaker open")
        assert manifest.entry("boom")["status"] == "failed"
        assert manifest.entry("boom")["failure"]["kind"] == "timeout"
        assert manifest.entry("late")["status"] == "skipped"
        assert not manifest.can_skip("boom")
        assert not manifest.can_skip("late")


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        artifact = tmp_path / "demo.txt"
        artifact.write_text("table")
        manifest = RunManifest(tmp_path, CONFIG)
        manifest.record_ok("demo", 1, [str(artifact)])
        manifest.save()
        loaded = RunManifest.open(tmp_path, CONFIG, resume=True)
        assert loaded.can_skip("demo")
        assert loaded.entry("demo") == manifest.entry("demo")

    def test_save_is_transactional(self, tmp_path):
        manifest = RunManifest(tmp_path, CONFIG)
        manifest.record_skipped("x", "because")
        manifest.save()
        # no torn temp file left behind, and the file is valid JSON
        assert not list(tmp_path.glob("*.tmp"))
        data = json.loads((tmp_path / "run_manifest.json").read_text())
        assert data["config_digest"] == config_digest(CONFIG)

    def test_resume_with_other_config_rejected(self, tmp_path):
        manifest = RunManifest(tmp_path, CONFIG)
        manifest.save()
        with pytest.raises(ManifestConfigMismatch):
            RunManifest.open(tmp_path, {"seed": 1, "smoke": True},
                             resume=True)

    def test_fresh_open_ignores_existing_state(self, tmp_path):
        manifest = RunManifest(tmp_path, CONFIG)
        manifest.record_skipped("x", "because")
        manifest.save()
        fresh = RunManifest.open(tmp_path, CONFIG, resume=False)
        assert fresh.tasks == {}


class TestCanSkip:
    def test_requires_outputs_to_verify(self, tmp_path):
        artifact = tmp_path / "demo.txt"
        artifact.write_text("table")
        manifest = RunManifest(tmp_path, CONFIG)
        manifest.record_ok("demo", 1, [str(artifact)])
        assert manifest.can_skip("demo")
        artifact.write_text("tampered")      # digest mismatch
        assert not manifest.can_skip("demo")
        artifact.unlink()                    # missing file
        assert not manifest.can_skip("demo")

    def test_unknown_task_not_skippable(self, tmp_path):
        assert not RunManifest(tmp_path, CONFIG).can_skip("nope")
