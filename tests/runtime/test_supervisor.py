"""The supervisor's happy paths, failure classification, retry, and
the circuit breaker — chaos (kill/stop) scenarios included.

Worker startup is real process spawn (a few hundred ms each), so the
tests keep batches small and heartbeat windows tight.
"""

import pytest

from repro import obs
from repro.runtime import (
    RetryPolicy,
    Supervisor,
    SupervisorConfig,
    TaskFailure,
    TaskSpec,
)
from tests.runtime import chaos_tasks

FAST_RETRY = RetryPolicy(retries=1, base_delay=0.01, max_delay=0.05)


def spec(name, fn, *args):
    return TaskSpec(name=name, fn=fn, args=args)


class TestHappyPath:
    def test_batch_completes(self):
        supervisor = Supervisor(SupervisorConfig(max_workers=2))
        results = supervisor.run([
            spec("a", chaos_tasks.ok_task, "a"),
            spec("b", chaos_tasks.ok_task, "b"),
            spec("c", chaos_tasks.ok_task, "c"),
        ])
        assert {n: r.value for n, r in results.items()} == {
            "a": "done:a", "b": "done:b", "c": "done:c"}
        assert all(r.ok and r.attempts == 1 for r in results.values())
        snapshot = supervisor.metrics.snapshot()["runtime"]
        assert snapshot["tasks_launched"]["value"] == 3
        assert snapshot["tasks_ok"]["value"] == 3

    def test_on_complete_fires_once_per_task(self):
        seen = []
        supervisor = Supervisor(SupervisorConfig(max_workers=2))
        supervisor.run(
            [spec(f"t{i}", chaos_tasks.ok_task, str(i)) for i in range(3)],
            on_complete=lambda result: seen.append(result.name))
        assert sorted(seen) == ["t0", "t1", "t2"]

    def test_duplicate_names_rejected(self):
        supervisor = Supervisor()
        with pytest.raises(ValueError):
            supervisor.run([spec("x", chaos_tasks.ok_task, "1"),
                            spec("x", chaos_tasks.ok_task, "2")])

    def test_empty_batch(self):
        assert Supervisor().run([]) == {}


class TestCrashClassification:
    def test_crash_captures_type_and_traceback(self):
        supervisor = Supervisor()
        results = supervisor.run(
            [spec("boom", chaos_tasks.crash_task, "injected")])
        failure = results["boom"].failure
        assert failure.kind == "crash"
        assert failure.exc_type == "RuntimeError"
        assert "injected" in failure.traceback
        assert failure.attempts == 1

    def test_retry_rescues_flaky_task(self, tmp_path):
        supervisor = Supervisor(SupervisorConfig(retry=FAST_RETRY))
        results = supervisor.run([spec(
            "flaky", chaos_tasks.flaky_task, str(tmp_path / "sentinel"))])
        result = results["flaky"]
        assert result.ok
        assert result.value == "recovered"
        assert result.attempts == 2
        assert len(result.retry_delays) == 1
        # the backoff actually drawn matches the deterministic policy
        assert result.retry_delays[0] == FAST_RETRY.delay(0, "flaky", 1)
        assert any("retrying in" in line for line in result.logs)

    def test_result_failure_hook_drives_retry(self, tmp_path):
        supervisor = Supervisor(SupervisorConfig(retry=FAST_RETRY))
        results = supervisor.run(
            [spec("moody", chaos_tasks.moody_task,
                  str(tmp_path / "sentinel"))],
            result_failure=lambda value: None if value == "good"
            else TaskFailure(kind="crash", message=f"rejected {value!r}"))
        assert results["moody"].ok
        assert results["moody"].value == "good"
        assert results["moody"].attempts == 2


class TestSignalDeath:
    def test_sigkilled_worker_classified_and_retried(self, tmp_path):
        supervisor = Supervisor(SupervisorConfig(retry=FAST_RETRY))
        results = supervisor.run([spec(
            "victim", chaos_tasks.selfkill_task,
            str(tmp_path / "sentinel"))])
        result = results["victim"]
        assert result.ok
        assert result.value == "survived"
        assert result.attempts == 2
        kinds = [e for e in supervisor.events if e["event"] == "signal"]
        assert kinds and kinds[0]["task"] == "victim"
        snapshot = supervisor.metrics.snapshot()["runtime"]
        assert snapshot["tasks_signal"]["value"] == 1
        assert snapshot["retries"]["value"] == 1

    def test_sigkill_without_retries_is_final(self, tmp_path):
        supervisor = Supervisor()
        results = supervisor.run([spec(
            "victim", chaos_tasks.selfkill_task,
            str(tmp_path / "sentinel"))])
        failure = results["victim"].failure
        assert failure.kind == "signal"
        assert failure.signal_name == "SIGKILL"
        assert failure.exitcode == -9


class TestTimeouts:
    def test_deadline_overrun_killed_and_classified(self):
        supervisor = Supervisor(SupervisorConfig(
            deadline=0.5, heartbeat_interval=0.05))
        results = supervisor.run([spec("sleepy", chaos_tasks.sleep_task,
                                       30.0)])
        failure = results["sleepy"].failure
        assert failure.kind == "timeout"
        assert "deadline" in failure.message
        assert results["sleepy"].elapsed < 10.0

    def test_heartbeat_silent_hang_killed_and_retried(self, tmp_path):
        """The acceptance scenario: a SIGSTOPped (hence heartbeat-
        silent) worker is killed well before any deadline, classified
        ``timeout``, and the deterministic retry recovers it."""
        supervisor = Supervisor(SupervisorConfig(
            heartbeat_interval=0.05, heartbeat_timeout=0.5,
            deadline=60.0, retry=FAST_RETRY))
        results = supervisor.run([spec(
            "hung", chaos_tasks.selfstop_task,
            str(tmp_path / "sentinel"))])
        result = results["hung"]
        assert result.ok
        assert result.value == "resumed"
        assert result.attempts == 2
        timeouts = [e for e in supervisor.events
                    if e["event"] == "timeout"]
        assert timeouts and "heartbeat" in timeouts[0]["detail"]
        assert result.retry_delays == [FAST_RETRY.delay(0, "hung", 1)]


class TestCircuitBreaker:
    def test_max_failures_skips_the_rest(self, tmp_path):
        supervisor = Supervisor(SupervisorConfig(
            max_workers=1, max_failures=1))
        results = supervisor.run([
            spec("boom", chaos_tasks.crash_task, "first failure"),
            spec("late1", chaos_tasks.ok_task, "x"),
            spec("late2", chaos_tasks.ok_task, "y"),
        ])
        assert results["boom"].failure.kind == "crash"
        assert results["late1"].failure.kind == "skipped"
        assert results["late2"].failure.kind == "skipped"
        snapshot = supervisor.metrics.snapshot()["runtime"]
        assert snapshot["tasks_skipped"]["value"] == 2
        # the skipped tasks never launched a worker
        assert snapshot["tasks_launched"]["value"] == 1


class TestObsIntegration:
    def test_supervisor_events_reach_installed_registry(self):
        obs.install(metrics=True)
        try:
            Supervisor().run([spec("a", chaos_tasks.ok_task, "a")])
            snapshot = obs.registry().snapshot()["runtime"]
        finally:
            obs.uninstall()
        assert snapshot["tasks_launched"]["value"] == 1
        assert snapshot["tasks_ok"]["value"] == 1
        assert snapshot["task_seconds"]["count"] == 1
