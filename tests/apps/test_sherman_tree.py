"""Integration and property tests for the Sherman-style B+ tree."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.sherman import ShermanClient, ShermanMemoryServer
from repro.apps.sherman.layout import NodeHeader
from repro.host import Cluster
from repro.rnic import cx5
from repro.sim.units import MEBIBYTE


def make_tree(num_clients=1, region=8 * MEBIBYTE):
    cluster = Cluster(seed=0)
    ms = cluster.add_host("ms", spec=cx5())
    server = ShermanMemoryServer(ms, region_size=region)
    clients = []
    for i in range(num_clients):
        cs = cluster.add_host(f"cs{i}", spec=cx5())
        clients.append(
            ShermanClient(cluster.connect(cs, ms), server, client_id=i + 1)
        )
    return cluster, server, clients


class TestBasicOps:
    def test_empty_tree_search(self):
        _, _, (client,) = make_tree()
        assert client.search(42) is None

    def test_insert_and_search(self):
        _, _, (client,) = make_tree()
        client.insert(42, b"answer")
        assert client.search(42) == b"answer"
        assert client.search(43) is None

    def test_insert_overwrites(self):
        _, _, (client,) = make_tree()
        client.insert(1, b"a")
        client.insert(1, b"b")
        assert client.search(1) == b"b"

    def test_update_existing(self):
        _, _, (client,) = make_tree()
        client.insert(10, b"old")
        assert client.update(10, b"new") is True
        assert client.search(10) == b"new"

    def test_update_missing_returns_false(self):
        _, _, (client,) = make_tree()
        assert client.update(10, b"x") is False

    def test_delete(self):
        _, _, (client,) = make_tree()
        client.insert(5, b"v")
        assert client.delete(5) is True
        assert client.search(5) is None
        assert client.delete(5) is False

    def test_key_bounds_rejected(self):
        _, _, (client,) = make_tree()
        with pytest.raises(ValueError):
            client.insert(0, b"v")

    def test_bad_client_id(self):
        cluster, server, (client,) = make_tree()
        with pytest.raises(ValueError):
            ShermanClient(client.conn, server, client_id=0)


class TestSplits:
    def test_leaf_split_preserves_all_keys(self):
        _, _, (client,) = make_tree()
        keys = list(range(1, 40))
        for k in keys:
            client.insert(k, f"v{k}".encode())
        for k in keys:
            assert client.search(k) == f"v{k}".encode(), k

    def test_root_grows(self):
        _, server, (client,) = make_tree()
        for k in range(1, 40):
            client.insert(k, b"v")
        root = NodeHeader.unpack(server.read_node_local(server.root_offset))
        assert root.level >= 1

    def test_deep_tree(self):
        _, server, (client,) = make_tree(region=16 * MEBIBYTE)
        rng = random.Random(3)
        keys = rng.sample(range(1, 10**6), 1200)
        for k in keys:
            client.insert(k, str(k).encode())
        root = NodeHeader.unpack(server.read_node_local(server.root_offset))
        assert root.level >= 2
        for k in rng.sample(keys, 100):
            assert client.search(k) == str(k).encode()

    def test_sequential_and_reverse_inserts(self):
        for ordering in (range(1, 200), range(199, 0, -1)):
            _, _, (client,) = make_tree()
            for k in ordering:
                client.insert(k, b"x")
            assert all(client.search(k) == b"x" for k in range(1, 200))


class TestRangeScan:
    def test_scan_across_leaves(self):
        _, _, (client,) = make_tree()
        for k in range(1, 100):
            client.insert(k, str(k).encode())
        result = client.range_scan(20, 50)
        assert [k for k, _ in result] == list(range(20, 50))

    def test_scan_empty_range(self):
        _, _, (client,) = make_tree()
        client.insert(5, b"v")
        assert client.range_scan(10, 10) == []
        assert client.range_scan(6, 9) == []


class TestMultiClient:
    def test_two_clients_see_each_other(self):
        _, _, (a, b) = make_tree(num_clients=2)
        a.insert(1, b"from-a")
        assert b.search(1) == b"from-a"
        b.insert(2, b"from-b")
        assert a.search(2) == b"from-b"

    def test_interleaved_inserts(self):
        _, _, (a, b) = make_tree(num_clients=2)
        for k in range(1, 120):
            (a if k % 2 else b).insert(k, str(k).encode())
        for k in range(1, 120):
            assert a.search(k) == str(k).encode()
            assert b.search(k) == str(k).encode()

    def test_stale_cache_recovery(self):
        """Client A caches the tree shape, B splits nodes under it; A
        must still find every key via fence-key fallback."""
        _, _, (a, b) = make_tree(num_clients=2)
        for k in range(1, 30):
            a.insert(k, b"a")          # A warms its cache
        for k in range(1000, 1200):
            b.insert(k, b"b")          # B forces splits on the right
        for k in range(1000, 1200):
            assert a.search(k) == b"b"


class TestVictimHelpers:
    def test_locate_entry_is_64_byte_aligned(self):
        _, _, (client,) = make_tree()
        for k in range(1, 12):
            client.insert(k, b"v")
        node_offset, entry_offset = client.locate_entry(5)
        assert entry_offset % 64 == 0
        assert entry_offset >= 64  # past the header

    def test_read_entry_at(self):
        _, _, (client,) = make_tree()
        client.insert(7, b"seven")
        node_offset, entry_offset = client.locate_entry(7)
        entry = client.read_entry_at(node_offset, entry_offset)
        assert entry.key == 7
        assert entry.value == b"seven"

    def test_locate_missing_key(self):
        _, _, (client,) = make_tree()
        with pytest.raises(KeyError):
            client.locate_entry(12345)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(st.integers(min_value=1, max_value=10**9),
                min_size=1, max_size=60, unique=True))
def test_property_inserted_keys_are_found(keys):
    """Property: after inserting any unique key set, every key is
    retrievable and absent keys stay absent."""
    _, _, (client,) = make_tree()
    for k in keys:
        client.insert(k, (k % 251).to_bytes(1, "little"))
    for k in keys:
        assert client.search(k) == (k % 251).to_bytes(1, "little")
    absent = max(keys) + 1
    assert client.search(absent) is None


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(st.integers(min_value=1, max_value=500),
                min_size=2, max_size=80, unique=True))
def test_property_range_scan_is_sorted_and_complete(keys):
    _, _, (client,) = make_tree()
    for k in keys:
        client.insert(k, b"v")
    scan = client.range_scan(1, 501)
    assert [k for k, _ in scan] == sorted(keys)
