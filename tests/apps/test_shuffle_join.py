"""Tests for the shuffle/join operator traffic shapes (Figure 12)."""

import numpy as np
import pytest

from repro.apps.shuffle_join import (
    DatabaseNode,
    JoinOperator,
    OperatorSchedule,
    ShuffleOperator,
)
from repro.host import Cluster
from repro.rnic import FluidFlow, cx5
from repro.sim.units import MILLISECONDS
from repro.telemetry import BandwidthMonitor
from repro.verbs.enums import Opcode


def make_node():
    cluster = Cluster(seed=0)
    host = cluster.add_host("dbserver", spec=cx5())
    return cluster, DatabaseNode(cluster, host)


def attach_monitor(cluster, node, interval=MILLISECONDS):
    flow = FluidFlow(opcode=Opcode.RDMA_READ, msg_size=65536, qp_num=1,
                     demand_bps=200e6, label="attacker-monitor")
    node.host.rnic.add_fluid_flow(flow)
    monitor = BandwidthMonitor(cluster.sim, node.host.rnic, flow,
                               interval_ns=interval)
    monitor.start()
    return monitor


def test_shuffle_produces_plateau_dip():
    cluster, node = make_node()
    monitor = attach_monitor(cluster, node)
    op = ShuffleOperator(duration_ns=20 * MILLISECONDS)
    op.run(node, start_ns=10 * MILLISECONDS)
    cluster.run_for(40 * MILLISECONDS)
    values = np.array(monitor.values)
    before = values[:9].mean()
    during = values[11:29].mean()
    after = values[31:].mean()
    assert during < 0.7 * before
    assert after == pytest.approx(before, rel=0.05)
    # plateau: low variance inside the dip
    assert values[12:28].std() < 0.1 * before


def test_join_produces_teeth():
    cluster, node = make_node()
    monitor = attach_monitor(cluster, node)
    op = JoinOperator(rounds=4, burst_ns=4 * MILLISECONDS, gap_ns=4 * MILLISECONDS)
    op.run(node, start_ns=5 * MILLISECONDS)
    cluster.run_for(5 * MILLISECONDS + op.duration_ns + 5 * MILLISECONDS)
    values = np.array(monitor.values)
    baseline = values[:4].mean()
    dips = (values < 0.8 * baseline).astype(int)
    # count falling edges: one per round
    transitions = int(((dips[1:] == 1) & (dips[:-1] == 0)).sum())
    assert transitions == 4


def test_shuffle_and_join_shapes_differ():
    def trace(op, duration):
        cluster, node = make_node()
        monitor = attach_monitor(cluster, node)
        op.run(node, start_ns=5 * MILLISECONDS)
        cluster.run_for(duration)
        return np.array(monitor.values)

    shuffle = trace(ShuffleOperator(duration_ns=24 * MILLISECONDS),
                    34 * MILLISECONDS)
    join = trace(JoinOperator(rounds=3, burst_ns=4 * MILLISECONDS,
                              gap_ns=4 * MILLISECONDS), 34 * MILLISECONDS)
    # the join trace oscillates; the shuffle trace has one long dip
    assert np.abs(np.diff(join)).sum() > np.abs(np.diff(shuffle)).sum()


def test_operator_schedule_records_truth():
    cluster, node = make_node()
    schedule = OperatorSchedule(node)
    end1 = schedule.add("shuffle", ShuffleOperator(), 0.0)
    schedule.add("join", JoinOperator(), end1 + MILLISECONDS)
    truth = schedule.truth()
    assert [name for name, _, _ in truth] == ["shuffle", "join"]
    assert truth[0][2] <= truth[1][1]


def test_stop_all_removes_flows():
    cluster, node = make_node()
    node.start_flow(Opcode.RDMA_WRITE, 1024, 4, "x")
    node.start_flow(Opcode.RDMA_READ, 2048, 2, "y")
    node.stop_all()
    assert node.host.rnic.fluid_flows == []
