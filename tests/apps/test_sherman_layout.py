"""Unit tests for the Sherman node layout."""

import pytest

from repro.apps.sherman import (
    INTERNAL_CAPACITY,
    LEAF_CAPACITY,
    NODE_SIZE,
    InternalNode,
    LeafEntry,
    LeafNode,
    NodeHeader,
)
from repro.apps.sherman.layout import KEY_MAX, LEAF_ENTRY_SIZE


def test_capacities():
    assert NODE_SIZE == 1024
    assert LEAF_ENTRY_SIZE == 64       # the paper's 64 B KV store
    assert LEAF_CAPACITY == 15
    assert INTERNAL_CAPACITY == 60


def test_header_roundtrip():
    header = NodeHeader(lock=7, level=2, count=3, low_key=10, high_key=99,
                        right_sibling=2048, version=5)
    decoded = NodeHeader.unpack(header.pack())
    assert decoded == header


def test_header_covers():
    header = NodeHeader(low_key=100, high_key=200)
    assert header.covers(100)
    assert header.covers(199)
    assert not header.covers(200)
    assert not header.covers(99)
    top = NodeHeader(low_key=0, high_key=KEY_MAX)
    assert top.covers(KEY_MAX)


def test_leaf_roundtrip():
    leaf = LeafNode(
        header=NodeHeader(level=0, low_key=0, high_key=1000),
        entries=[LeafEntry(key=5, value=b"five"), LeafEntry(key=9, value=b"nine")],
    )
    raw = leaf.pack()
    assert len(raw) == NODE_SIZE
    decoded = LeafNode.unpack(raw)
    assert decoded.header.count == 2
    assert decoded.find(5).value == b"five"
    assert decoded.find(9).value == b"nine"
    assert decoded.find(7) is None


def test_leaf_overflow_rejected():
    leaf = LeafNode(
        header=NodeHeader(level=0),
        entries=[LeafEntry(key=i, value=b"") for i in range(LEAF_CAPACITY + 1)],
    )
    with pytest.raises(ValueError):
        leaf.pack()


def test_leaf_value_too_long():
    with pytest.raises(ValueError):
        LeafEntry(key=1, value=b"x" * 49).pack()


def test_entry_offset_is_64_byte_grid():
    assert LeafNode.entry_offset(0) == 64
    assert LeafNode.entry_offset(1) == 128
    with pytest.raises(ValueError):
        LeafNode.entry_offset(LEAF_CAPACITY)


def test_internal_roundtrip():
    node = InternalNode(
        header=NodeHeader(level=1, low_key=0, high_key=KEY_MAX),
        keys=[0, 100, 200],
        children=[1024, 2048, 3072],
    )
    decoded = InternalNode.unpack(node.pack())
    assert decoded.keys == [0, 100, 200]
    assert decoded.children == [1024, 2048, 3072]


def test_internal_routing():
    node = InternalNode(
        header=NodeHeader(level=1),
        keys=[0, 100, 200],
        children=[10, 20, 30],
    )
    assert node.route(0) == 10
    assert node.route(99) == 10
    assert node.route(100) == 20
    assert node.route(150) == 20
    assert node.route(200) == 30
    assert node.route(10**9) == 30


def test_internal_level_zero_rejected():
    node = InternalNode(header=NodeHeader(level=0), keys=[0], children=[1])
    with pytest.raises(ValueError):
        node.pack()


def test_internal_mismatched_pairs_rejected():
    node = InternalNode(header=NodeHeader(level=1), keys=[0, 1], children=[1])
    with pytest.raises(ValueError):
        node.pack()


def test_empty_internal_route_rejected():
    node = InternalNode(header=NodeHeader(level=1), keys=[], children=[])
    with pytest.raises(ValueError):
        node.route(5)
