"""Tests for the tree-invariant validator (and via it, deeper checks of
the tree implementation itself)."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.sherman import (
    ShermanClient,
    ShermanMemoryServer,
    TreeInvariantError,
    validate_tree,
)
from repro.host import Cluster
from repro.rnic import cx5
from repro.sim.units import MEBIBYTE


def make_tree(region=16 * MEBIBYTE):
    cluster = Cluster(seed=0)
    ms = cluster.add_host("ms", spec=cx5())
    cs = cluster.add_host("cs", spec=cx5())
    server = ShermanMemoryServer(ms, region_size=region)
    client = ShermanClient(cluster.connect(cs, ms), server)
    return server, client


def test_empty_tree_is_valid():
    server, _ = make_tree()
    stats = validate_tree(server)
    assert stats.leaves == 1
    assert stats.entries == 0
    assert stats.height == 0


def test_large_random_tree_is_valid():
    server, client = make_tree()
    rng = random.Random(5)
    keys = rng.sample(range(1, 10**6), 900)
    for key in keys:
        client.insert(key, b"v")
    stats = validate_tree(server)
    assert stats.entries == 900
    assert stats.height >= 2
    assert stats.leaves > 50


def test_validator_catches_corruption():
    server, client = make_tree()
    for key in range(1, 100):
        client.insert(key, b"v")
    # corrupt: flip a leaf's fence
    root = server.root_offset
    from repro.apps.sherman.layout import InternalNode

    node = InternalNode.unpack(server.read_node_local(root))
    victim_leaf = node.children[0]
    raw = bytearray(server.read_node_local(victim_leaf))
    raw[16:24] = (12345).to_bytes(8, "little")   # low_key field
    server.host.memory.write(server.mr.addr + victim_leaf, bytes(raw))
    with pytest.raises(TreeInvariantError):
        validate_tree(server)


def test_validator_catches_held_lock():
    server, client = make_tree()
    client.insert(1, b"v")
    server.host.memory.write_u64(server.mr.addr + server.root_offset, 5)
    with pytest.raises(TreeInvariantError):
        validate_tree(server)


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(
    st.tuples(st.sampled_from(["insert", "delete"]),
              st.integers(min_value=1, max_value=300)),
    min_size=1, max_size=80,
))
def test_property_tree_always_valid_after_any_op_sequence(ops):
    server, client = make_tree()
    entries = set()
    for op, key in ops:
        if op == "insert":
            client.insert(key, b"x")
            entries.add(key)
        else:
            client.delete(key)
            entries.discard(key)
    stats = validate_tree(server)
    assert stats.entries == len(entries)
