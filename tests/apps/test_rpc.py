"""Tests for the SEND/RECV RPC service (SRQ + server process)."""

import pytest

from repro.apps.rpc import SLOT, RPCClient, RPCServer
from repro.host import Cluster
from repro.rnic import cx5


def build(handler=None, num_clients=1):
    cluster = Cluster(seed=0)
    server_host = cluster.add_host("server", spec=cx5())
    server = RPCServer(cluster, server_host, handler=handler)
    clients = [
        server.accept(cluster.add_host(f"client{i}", spec=cx5()))
        for i in range(num_clients)
    ]
    server.start()
    return cluster, server, clients


def test_echo_roundtrip():
    _, server, (client,) = build()
    assert client.call(b"hello rpc") == b"hello rpc"
    assert server.served == 1


def test_handler_transforms_request():
    _, server, (client,) = build(handler=lambda b: b.upper())
    assert client.call(b"shout") == b"SHOUT"


def test_many_sequential_calls_reuse_slots():
    _, server, (client,) = build()
    for i in range(200):  # far more calls than SRQ slots
        assert client.call(f"req-{i}".encode()) == f"req-{i}".encode()
    assert server.served == 200


def test_multiple_clients_served():
    _, server, clients = build(handler=lambda b: b + b"!", num_clients=3)
    for index, client in enumerate(clients):
        assert client.call(f"c{index}".encode()) == f"c{index}!".encode()
    assert server.served == 3


def test_interleaved_clients():
    _, server, clients = build(num_clients=2)
    for round_index in range(20):
        client = clients[round_index % 2]
        payload = f"{round_index}".encode()
        assert client.call(payload) == payload


def test_oversized_request_rejected():
    _, _, (client,) = build()
    with pytest.raises(ValueError):
        client.call(b"x" * (SLOT + 1))


def test_stopped_server_times_out():
    cluster, server, (client,) = build()
    client.call(b"warm")
    server.stop()
    cluster.run_for(10_000)  # let the server process exit
    with pytest.raises(TimeoutError):
        client.call(b"anyone?", timeout_ns=2e6)


def test_double_start_rejected():
    _, server, _ = build()
    with pytest.raises(RuntimeError):
        server.start()


def test_rpc_latency_is_microseconds():
    cluster, server, (client,) = build()
    client.call(b"warmup")
    start = cluster.sim.now
    client.call(b"timed")
    latency = cluster.sim.now - start
    assert 2_000 < latency < 100_000  # a few us round trip + polling
