"""Unit/integration tests for the RDMA KV store."""

import pytest

from repro.apps.kvstore import (
    MAX_VALUE,
    SLOT_SIZE,
    KVStoreClient,
    KVStoreServer,
    build_kv_pair,
)
from repro.host import Cluster
from repro.rnic import cx5


@pytest.fixture
def kv():
    cluster = Cluster(seed=0)
    server_host = cluster.add_host("server", spec=cx5())
    client_host = cluster.add_host("client", spec=cx5())
    server, client = build_kv_pair(cluster, server_host, client_host)
    return cluster, server, client


def test_get_missing_key_returns_none(kv):
    _, _, client = kv
    assert client.get(b"nope") is None


def test_server_load_then_get(kv):
    _, server, client = kv
    server.load(b"alpha", b"value-1")
    assert client.get(b"alpha") == b"value-1"


def test_put_then_get(kv):
    _, _, client = kv
    client.put(b"k1", b"hello world")
    assert client.get(b"k1") == b"hello world"


def test_put_overwrites(kv):
    _, _, client = kv
    client.put(b"k1", b"first")
    client.put(b"k1", b"second")
    assert client.get(b"k1") == b"second"


def test_many_keys(kv):
    _, _, client = kv
    for i in range(50):
        client.put(f"key{i}".encode(), f"value{i}".encode())
    for i in range(50):
        assert client.get(f"key{i}".encode()) == f"value{i}".encode()


def test_collision_returns_none(kv):
    """A different key hashing to the same slot must not be returned."""
    _, server, client = kv
    server.load(b"occupant", b"data")
    slot = server.slot_of(b"occupant")
    # craft a second key landing in the same slot
    other = None
    for i in range(100_000):
        candidate = f"probe{i}".encode()
        if server.slot_of(candidate) == slot and candidate != b"occupant":
            other = candidate
            break
    assert other is not None
    assert client.get(other) is None


def test_value_too_long_rejected(kv):
    _, _, client = kv
    with pytest.raises(ValueError):
        client.put(b"k", b"x" * (MAX_VALUE + 1))


def test_key_too_long_rejected(kv):
    _, _, client = kv
    with pytest.raises(ValueError):
        client.put(b"k" * 33, b"v")


def test_slot_count_must_be_power_of_two():
    cluster = Cluster(seed=0)
    host = cluster.add_host("server", spec=cx5())
    with pytest.raises(ValueError):
        KVStoreServer(host, num_slots=1000)


def test_two_clients_share_store():
    cluster = Cluster(seed=0)
    server_host = cluster.add_host("server", spec=cx5())
    a_host = cluster.add_host("a", spec=cx5())
    b_host = cluster.add_host("b", spec=cx5())
    server, a = build_kv_pair(cluster, server_host, a_host)
    b = KVStoreClient(cluster.connect(b_host, server_host), server)
    a.put(b"shared", b"from-a")
    assert b.get(b"shared") == b"from-a"


def test_get_counts(kv):
    _, server, client = kv
    server.load(b"x", b"y")
    client.get(b"x")
    client.get(b"x")
    assert client.gets == 2
