"""Unit tests for the ULI probe."""

import numpy as np
import pytest

from repro.host import Cluster
from repro.rnic import cx5
from repro.telemetry import ProbeTarget, ULIProbe


def setup_probe(max_send_wr=8, depth=None, targets=None, seed=0):
    cluster = Cluster(seed=seed)
    server = cluster.add_host("server", spec=cx5())
    client = cluster.add_host("client", spec=cx5())
    conn = cluster.connect(client, server, max_send_wr=max_send_wr)
    mr = server.reg_mr(2 * 1024 * 1024)
    if targets is None:
        targets = [ProbeTarget(mr, 0, 64)]
    probe = ULIProbe(conn, targets, depth=depth)
    return cluster, server, conn, mr, probe


def test_measure_returns_requested_samples():
    _, _, _, _, probe = setup_probe()
    samples = probe.measure(50)
    assert samples.shape == (50,)
    assert (samples > 0).all()


def test_queue_depth_maintained():
    _, _, conn, _, probe = setup_probe(max_send_wr=8)
    probe.measure(30)
    assert conn.qp.outstanding_send == 8


def test_alternating_targets_cycle():
    cluster = Cluster(seed=1)
    server = cluster.add_host("server", spec=cx5())
    client = cluster.add_host("client", spec=cx5())
    conn = cluster.connect(client, server, max_send_wr=4)
    mr = server.reg_mr(2 * 1024 * 1024)
    # alternating same/different bank targets, as in Figures 6-8
    targets = [ProbeTarget(mr, 0, 64), ProbeTarget(mr, 1024, 64)]
    probe = ULIProbe(conn, targets)
    samples = probe.measure(40)
    assert samples.shape == (40,)


def test_misaligned_target_has_higher_uli():
    """The offset effect must be visible through the full pipeline."""
    _, _, _, mr, probe_aligned = setup_probe(
        targets=None, max_send_wr=8
    )
    aligned = probe_aligned.measure(120).mean()

    cluster2 = Cluster(seed=0)
    server2 = cluster2.add_host("server", spec=cx5())
    client2 = cluster2.add_host("client", spec=cx5())
    conn2 = cluster2.connect(client2, server2, max_send_wr=8)
    mr2 = server2.reg_mr(2 * 1024 * 1024)
    probe_misaligned = ULIProbe(conn2, [ProbeTarget(mr2, 255, 64)])
    misaligned = probe_misaligned.measure(120).mean()
    assert misaligned > aligned


def test_depth_validation():
    cluster = Cluster(seed=0)
    server = cluster.add_host("server", spec=cx5())
    client = cluster.add_host("client", spec=cx5())
    conn = cluster.connect(client, server, max_send_wr=4)
    mr = server.reg_mr(4096)
    with pytest.raises(ValueError):
        ULIProbe(conn, [ProbeTarget(mr, 0, 64)], depth=8)
    with pytest.raises(ValueError):
        ULIProbe(conn, [ProbeTarget(mr, 0, 64)], depth=0)


def test_target_validation():
    cluster = Cluster(seed=0)
    server = cluster.add_host("server", spec=cx5())
    mr = server.reg_mr(4096)
    with pytest.raises(ValueError):
        ProbeTarget(mr, 4090, 64)   # escapes the MR
    with pytest.raises(ValueError):
        ProbeTarget(mr, -1, 64)


def test_empty_targets_rejected():
    cluster = Cluster(seed=0)
    server = cluster.add_host("server", spec=cx5())
    client = cluster.add_host("client", spec=cx5())
    conn = cluster.connect(client, server)
    with pytest.raises(ValueError):
        ULIProbe(conn, [])


def test_measure_validation():
    _, _, _, _, probe = setup_probe()
    with pytest.raises(ValueError):
        probe.measure(0)


def test_consecutive_measures_reuse_pipeline():
    _, _, _, _, probe = setup_probe()
    first = probe.measure(20)
    second = probe.measure(20)
    assert first.shape == second.shape == (20,)
