"""Unit tests for bandwidth monitors and counter samplers."""

import pytest

from repro.host import Cluster
from repro.rnic import FluidFlow, cx5
from repro.sim.units import MILLISECONDS, SECONDS
from repro.telemetry import BandwidthMonitor, CounterSampler
from repro.verbs.enums import Opcode


def setup_cluster():
    cluster = Cluster(seed=0)
    server = cluster.add_host("server", spec=cx5())
    client = cluster.add_host("client", spec=cx5())
    return cluster, server, client


def test_monitor_samples_at_interval():
    cluster, server, _ = setup_cluster()
    flow = FluidFlow(opcode=Opcode.RDMA_READ, msg_size=4096, qp_num=4)
    server.rnic.add_fluid_flow(flow)
    monitor = BandwidthMonitor(cluster.sim, server.rnic, flow,
                               interval_ns=10 * MILLISECONDS)
    monitor.start()
    cluster.run_for(105 * MILLISECONDS)
    assert len(monitor.samples) == 10
    assert all(v > 0 for v in monitor.values)


def test_monitor_sees_bandwidth_drop_when_bully_appears():
    cluster, server, _ = setup_cluster()
    victim = FluidFlow(opcode=Opcode.RDMA_READ, msg_size=4096, qp_num=4)
    server.rnic.add_fluid_flow(victim)
    monitor = BandwidthMonitor(cluster.sim, server.rnic, victim,
                               interval_ns=10 * MILLISECONDS)
    monitor.start()
    bully = FluidFlow(opcode=Opcode.RDMA_WRITE, msg_size=32768, qp_num=16)
    cluster.sim.schedule(50 * MILLISECONDS, server.rnic.add_fluid_flow, bully)
    cluster.run_for(100 * MILLISECONDS)
    values = monitor.values
    assert values[-1] < values[0]


def test_monitor_stop():
    cluster, server, _ = setup_cluster()
    flow = FluidFlow(opcode=Opcode.RDMA_READ, msg_size=4096)
    server.rnic.add_fluid_flow(flow)
    monitor = BandwidthMonitor(cluster.sim, server.rnic, flow,
                               interval_ns=MILLISECONDS)
    monitor.start()
    cluster.run_for(5 * MILLISECONDS)
    monitor.stop()
    count = len(monitor.samples)
    cluster.run_for(5 * MILLISECONDS)
    assert len(monitor.samples) == count


def test_monitor_restart_runs_a_single_tick_chain():
    """The regression this module's lifecycle fix targets: stop() used
    to leave the pending tick alive, so a stop->start cycle ran TWO
    chains and doubled the sample rate.  A restarted monitor must
    sample at exactly the configured interval."""
    import numpy as np

    cluster, server, _ = setup_cluster()
    flow = FluidFlow(opcode=Opcode.RDMA_READ, msg_size=4096)
    server.rnic.add_fluid_flow(flow)
    monitor = BandwidthMonitor(cluster.sim, server.rnic, flow,
                               interval_ns=MILLISECONDS)
    monitor.start()
    cluster.run_for(3.5 * MILLISECONDS)            # ticks at 1, 2, 3 ms
    monitor.stop()
    monitor.start()                                # next tick at 4.5 ms
    cluster.run_for(5 * MILLISECONDS)
    # 3 samples before the restart, 5 after — not 3 + 2x5 from a
    # doubled chain
    assert len(monitor.samples) == 8
    spacing = np.diff(monitor.times)
    # monotone spacing == interval everywhere except the restart gap;
    # a leaked second chain would interleave sub-interval gaps instead
    assert np.allclose(np.delete(spacing, 2), MILLISECONDS)
    assert spacing.min() >= MILLISECONDS - 1e-6


def test_monitor_stop_before_first_tick_cancels_it():
    cluster, server, _ = setup_cluster()
    flow = FluidFlow(opcode=Opcode.RDMA_READ, msg_size=64)
    server.rnic.add_fluid_flow(flow)
    monitor = BandwidthMonitor(cluster.sim, server.rnic, flow,
                               interval_ns=MILLISECONDS)
    monitor.start()
    monitor.stop()
    monitor.stop()                                 # idempotent
    cluster.run_for(3 * MILLISECONDS)
    assert monitor.samples == []
    assert cluster.sim.pending == 0                # nothing left queued


def test_monitor_double_start_rejected():
    cluster, server, _ = setup_cluster()
    flow = FluidFlow(opcode=Opcode.RDMA_READ, msg_size=64)
    server.rnic.add_fluid_flow(flow)
    monitor = BandwidthMonitor(cluster.sim, server.rnic, flow)
    monitor.start()
    with pytest.raises(RuntimeError):
        monitor.start()


def test_monitor_bad_interval():
    cluster, server, _ = setup_cluster()
    flow = FluidFlow(opcode=Opcode.RDMA_READ, msg_size=64)
    with pytest.raises(ValueError):
        BandwidthMonitor(cluster.sim, server.rnic, flow, interval_ns=0)


def test_counter_sampler_measures_rates():
    cluster, server, client = setup_cluster()
    conn = cluster.connect(client, server, max_send_wr=32)
    mr = server.reg_mr(1024 * 1024)
    sampler = CounterSampler(cluster.sim, client.rnic,
                             interval_ns=MILLISECONDS)
    sampler.start()

    def pump():
        while conn.cq.poll(8):
            pass
        while conn.qp.outstanding_send < 32:
            conn.post_read(mr, 0, 4096)
        cluster.sim.schedule(50_000.0, pump)

    cluster.sim.schedule(0.0, pump)
    cluster.run_for(10 * MILLISECONDS)
    rx_bps = sampler.series("rx_bps")
    assert len(rx_bps) >= 9
    assert max(rx_bps) > 0


def test_counter_sampler_restart_runs_a_single_tick_chain():
    """Same lifecycle regression as the bandwidth monitor, with an
    extra twist: two interleaved chains also race on ``_last`` and halve
    every reported rate.  After a restart the sampler must tick exactly
    once per interval."""
    import numpy as np

    cluster, server, _ = setup_cluster()
    sampler = CounterSampler(cluster.sim, server.rnic,
                             interval_ns=MILLISECONDS)
    sampler.start()
    cluster.run_for(3.5 * MILLISECONDS)
    sampler.stop()
    sampler.start()
    cluster.run_for(5 * MILLISECONDS)
    assert len(sampler.rates) == 8
    times = [r["time"] for r in sampler.rates]
    spacing = np.diff(times)
    assert np.allclose(np.delete(spacing, 2), MILLISECONDS)
    assert spacing.min() >= MILLISECONDS - 1e-6


def test_counter_sampler_rejects_unclassifiable_keys():
    """Explicit keys are validated at construction: a key the rate
    math cannot classify must fail loudly, not be silently misreported
    at the first tick."""
    cluster, server, _ = setup_cluster()
    with pytest.raises(ValueError, match="cannot classify"):
        CounterSampler(cluster.sim, server.rnic,
                       keys=["tx_bytes", "pause_events"])


def test_counter_sampler_selected_keys():
    cluster, server, _ = setup_cluster()
    sampler = CounterSampler(cluster.sim, server.rnic,
                             interval_ns=MILLISECONDS,
                             keys=["tx_bytes"])
    sampler.start()
    cluster.run_for(3 * MILLISECONDS)
    assert all(set(r) == {"time", "tx_bps"} for r in sampler.rates)


class TestStationProbeTrain:
    def test_sweep_does_not_perturb_station(self):
        from repro.rnic import ServiceStation
        from repro.telemetry import StationProbeTrain

        st = ServiceStation("wire_tx")
        st.set_background_utilization(0.4)
        st.admit(0.0, 500.0)
        before = (st.busy_until, st.served, st.busy_ns, st.wait_ns)
        train = StationProbeTrain(st, probe_ns=64.0)
        train.sweep(start=100.0, count=50, gap_ns=10.0)
        assert (st.busy_until, st.served, st.busy_ns, st.wait_ns) == before

    def test_sweep_matches_scalar_station(self):
        import numpy as np

        from repro.rnic import ServiceStation
        from repro.telemetry import StationProbeTrain

        st = ServiceStation("wire_tx")
        st.set_background_utilization(0.25)
        st.admit(0.0, 300.0)

        train = StationProbeTrain(st, probe_ns=64.0)
        got = train.sweep(start=50.0, count=20, gap_ns=40.0)

        ref = ServiceStation("ref")
        ref.set_background_utilization(0.25)
        ref.stall_until(st.busy_until)
        expected = [
            ref.admit(50.0 + 40.0 * i, 64.0) - (50.0 + 40.0 * i)
            for i in range(20)
        ]
        assert np.allclose(got, expected)

    def test_saturated_train_latency_grows(self):
        from repro.rnic import ServiceStation
        from repro.telemetry import StationProbeTrain

        st = ServiceStation("wire_tx")
        train = StationProbeTrain(st, probe_ns=100.0)
        # gap shorter than service: queue builds, latency ramps
        lat = train.sweep(start=0.0, count=50, gap_ns=10.0)
        assert lat[-1] > lat[0]

    def test_validation(self):
        import pytest

        from repro.rnic import ServiceStation
        from repro.telemetry import StationProbeTrain

        st = ServiceStation("wire_tx")
        with pytest.raises(ValueError):
            StationProbeTrain(st, probe_ns=0.0)
        train = StationProbeTrain(st)
        with pytest.raises(ValueError):
            train.sweep(0.0, 0, 10.0)
        with pytest.raises(ValueError):
            train.sweep(0.0, 5, -1.0)
