"""Unit tests for signal helpers."""

import numpy as np
import pytest

from repro.analysis import fold, moving_average, normalize, zscore


def test_moving_average_smooths():
    noisy = np.array([0, 10, 0, 10, 0, 10], dtype=float)
    smooth = moving_average(noisy, 2)
    assert smooth.std() < noisy.std()
    assert smooth.shape == noisy.shape


def test_moving_average_window_one_is_identity():
    arr = np.array([1.0, 5.0, 2.0])
    assert (moving_average(arr, 1) == arr).all()


def test_moving_average_bad_window():
    with pytest.raises(ValueError):
        moving_average([1.0], 0)


def test_normalize_range():
    out = normalize([5.0, 10.0, 15.0])
    assert out.min() == 0.0
    assert out.max() == 1.0
    assert out[1] == pytest.approx(0.5)


def test_normalize_constant_input():
    out = normalize([3.0, 3.0, 3.0])
    assert (out == 0.0).all()


def test_zscore():
    out = zscore([1.0, 2.0, 3.0])
    assert out.mean() == pytest.approx(0.0)
    assert out.std() == pytest.approx(1.0)


def test_fold_recovers_periodic_pattern():
    pattern = np.array([1.0, 1.0, 5.0, 5.0])
    signal = np.tile(pattern, 8) + np.random.default_rng(0).normal(0, 0.1, 32)
    folded = fold(signal, 4)
    assert folded.shape == (4,)
    assert folded[2] > folded[0] + 3.0


def test_fold_partial_tail():
    folded = fold([1.0, 2.0, 3.0, 10.0, 20.0], 3)
    assert folded[0] == pytest.approx(5.5)   # (1+10)/2
    assert folded[1] == pytest.approx(11.0)  # (2+20)/2
    assert folded[2] == pytest.approx(3.0)   # only one occurrence


def test_fold_bad_period():
    with pytest.raises(ValueError):
        fold([1.0], 0)
