"""Unit tests for periodicity detection."""

import numpy as np
import pytest

from repro.analysis import (
    alignment_contrast,
    autocorrelation,
    dominant_periods,
    power_of_two_score,
)


def test_autocorrelation_lag0_is_one():
    acf = autocorrelation([1.0, 3.0, 2.0, 5.0])
    assert acf[0] == pytest.approx(1.0)


def test_autocorrelation_periodic_signal():
    signal = np.tile([0.0, 1.0, 0.0, -1.0], 16)
    acf = autocorrelation(signal)
    assert acf[4] > 0.8   # strong peak at the true period
    assert acf[2] < 0.0   # anti-phase at half period


def test_dominant_periods_finds_true_period():
    signal = np.tile([0.0, 0.0, 5.0, 0.0, 0.0, 0.0, 0.0, 0.0], 32)
    periods = dominant_periods(signal, step=1, top=3)
    assert 8 in periods


def test_dominant_periods_with_step_scaling():
    # sweep sampled every 64 bytes; period of 2048 bytes = lag 32
    signal = np.tile(np.sin(np.linspace(0, 2 * np.pi, 32, endpoint=False)), 8)
    periods = dominant_periods(signal, step=64, top=2)
    assert 2048 in periods


def test_power_of_two_score():
    signal = np.tile([1.0, 0.0], 64)
    assert power_of_two_score(signal, step=1, period=2) > 0.9
    assert power_of_two_score(signal, step=1, period=3) < 0.5


def test_power_of_two_score_validation():
    with pytest.raises(ValueError):
        power_of_two_score([1.0, 2.0, 1.0, 2.0], step=3, period=4)
    with pytest.raises(ValueError):
        power_of_two_score([1.0, 2.0], step=1, period=10)


def test_alignment_contrast_detects_aligned_drops():
    offsets = np.arange(0, 256, 4)
    values = np.where(offsets % 8 == 0, 100.0, 150.0)
    contrast = alignment_contrast(values, offsets, 8)
    assert contrast == pytest.approx(50.0)


def test_alignment_contrast_requires_both_classes():
    offsets = np.array([0, 8, 16])
    with pytest.raises(ValueError):
        alignment_contrast([1.0, 2.0, 3.0], offsets, 8)


def test_periodogram_finds_dominant_period():
    from repro.analysis import dominant_period_fft, periodogram

    signal = np.tile(np.sin(np.linspace(0, 2 * np.pi, 32, endpoint=False)), 8)
    assert dominant_period_fft(signal, step=64) == pytest.approx(2048.0)
    periods, power = periodogram(signal, step=64)
    assert periods.shape == power.shape
    assert (power >= 0).all()


def test_periodogram_validation():
    from repro.analysis import periodogram

    with pytest.raises(ValueError):
        periodogram([1.0, 2.0])
    with pytest.raises(ValueError):
        periodogram([1.0, 2.0, 3.0, 4.0], step=0)


def test_fft_and_autocorrelation_agree_on_sweep_data():
    """Both period detectors must find the translation unit's 2048 B
    structure in a real measured sweep."""
    from repro.analysis import dominant_period_fft
    from repro.revengine import absolute_offset_sweep
    from repro.rnic import cx4

    sweep = absolute_offset_sweep(
        spec=cx4(), offsets=range(2048, 2048 + 8192, 128),
        msg_size=64, samples=30,
    )
    fft_period = dominant_period_fft(sweep.means, step=128)
    assert 1700 <= fft_period <= 2400
