"""Unit tests for statistics helpers."""

import numpy as np
import pytest

from repro.analysis import pearson, percentile_band, summarize


def test_summarize_basic():
    stats = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
    assert stats.mean == pytest.approx(3.0)
    assert stats.count == 5
    assert stats.p10 <= stats.mean <= stats.p90


def test_summarize_empty_rejected():
    with pytest.raises(ValueError):
        summarize([])


def test_percentile_band_default_10_90():
    values = np.arange(101, dtype=float)
    low, high = percentile_band(values)
    assert low == pytest.approx(10.0)
    assert high == pytest.approx(90.0)


def test_percentile_band_bad_range():
    with pytest.raises(ValueError):
        percentile_band([1, 2, 3], low=90, high=10)


def test_pearson_perfect_linear():
    x = np.arange(10, dtype=float)
    assert pearson(x, 3 * x + 1) == pytest.approx(1.0)
    assert pearson(x, -2 * x) == pytest.approx(-1.0)


def test_pearson_independent_near_zero():
    rng = np.random.default_rng(0)
    x = rng.normal(size=10000)
    y = rng.normal(size=10000)
    assert abs(pearson(x, y)) < 0.05


def test_pearson_constant_rejected():
    with pytest.raises(ValueError):
        pearson([1, 1, 1], [1, 2, 3])


def test_pearson_shape_mismatch():
    with pytest.raises(ValueError):
        pearson([1, 2], [1, 2, 3])
