"""Unit tests for 1-D clustering / thresholding."""

import numpy as np
import pytest

from repro.analysis import otsu_threshold, two_means


def bimodal(rng, low=100.0, high=200.0, n=500, sigma=10.0):
    return np.concatenate([
        rng.normal(low, sigma, n),
        rng.normal(high, sigma, n),
    ])


def test_two_means_separates_bimodal():
    rng = np.random.default_rng(1)
    data = bimodal(rng)
    low, high, threshold = two_means(data)
    assert 90 < low < 110
    assert 190 < high < 210
    assert 130 < threshold < 170


def test_two_means_constant_input():
    low, high, threshold = two_means([5.0, 5.0, 5.0])
    assert low == high == threshold == 5.0


def test_two_means_needs_two_values():
    with pytest.raises(ValueError):
        two_means([1.0])


def test_otsu_separates_bimodal():
    rng = np.random.default_rng(2)
    data = bimodal(rng)
    threshold = otsu_threshold(data)
    assert 120 < threshold < 180


def test_otsu_agrees_with_two_means_roughly():
    rng = np.random.default_rng(3)
    data = bimodal(rng, low=0.0, high=1.0, sigma=0.05)
    _, _, km = two_means(data)
    ot = otsu_threshold(data)
    assert abs(km - ot) < 0.2


def test_otsu_constant_input():
    assert otsu_threshold([2.0, 2.0]) == 2.0
