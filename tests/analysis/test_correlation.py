"""Unit tests for template correlation (Algorithm 1's detector)."""

import numpy as np
import pytest

from repro.analysis import (
    CorrelationDetector,
    normalized_cross_correlation,
    sliding_correlation,
)


def test_ncc_self_is_one():
    sig = np.array([1.0, 5.0, 2.0, 8.0])
    assert normalized_cross_correlation(sig, sig) == pytest.approx(1.0)


def test_ncc_inverted_is_minus_one():
    sig = np.array([1.0, 5.0, 2.0, 8.0])
    assert normalized_cross_correlation(sig, -sig) == pytest.approx(-1.0)


def test_ncc_scale_invariant():
    sig = np.array([1.0, 5.0, 2.0, 8.0])
    assert normalized_cross_correlation(sig, 100 * sig + 7) == pytest.approx(1.0)


def test_ncc_shape_mismatch():
    with pytest.raises(ValueError):
        normalized_cross_correlation([1.0, 2.0], [1.0, 2.0, 3.0])


def test_sliding_correlation_peaks_at_embedding():
    template = np.array([0.0, 5.0, 0.0, -5.0, 0.0])
    signal = np.concatenate([np.zeros(10), template, np.zeros(10)])
    scores = sliding_correlation(signal + 0.01, template)
    assert int(np.argmax(scores)) == 10


def test_detector_identifies_correct_pattern():
    rng = np.random.default_rng(0)
    plateau = np.concatenate([np.ones(5) * 10, np.ones(10) * 2, np.ones(5) * 10])
    tooth = 10.0 - 8.0 * (np.arange(20) % 4 < 2)
    detector = CorrelationDetector({"shuffle": plateau, "join": tooth}, threshold=0.5)

    window = np.concatenate([np.ones(8) * 10, plateau + rng.normal(0, 0.3, 20)])
    assert detector.detect(window) == "shuffle"

    window = np.concatenate([np.ones(8) * 10, tooth + rng.normal(0, 0.3, 20)])
    assert detector.detect(window) == "join"


def test_detector_returns_none_below_threshold():
    detector = CorrelationDetector({"x": np.array([1.0, -1.0, 1.0, -1.0])},
                                   threshold=0.9)
    flat = np.random.default_rng(1).normal(0, 1, 50)
    # random noise occasionally correlates, so use a smooth window
    assert detector.detect(np.linspace(0, 1, 50)) is None


def test_detector_scores_diagnostics():
    detector = CorrelationDetector({"a": np.array([1.0, 2.0, 3.0])})
    scores = detector.scores(np.array([1.0, 2.0, 3.0, 4.0]))
    assert scores["a"] == pytest.approx(1.0)


def test_detector_validation():
    with pytest.raises(ValueError):
        CorrelationDetector({})
    with pytest.raises(ValueError):
        CorrelationDetector({"a": np.array([1.0, 2.0])}, threshold=0.0)
