"""--trace/--metrics/--profile artifacts from the experiments CLI.

The end-to-end observability contract: running an experiment with the
obs flags writes schema-valid trace/metrics files next to the table,
the Chrome trace is loadable, and a crashed attempt's partial trace
never leaks into a retry's export.
"""

import json

import pytest

from repro import obs
from repro.experiments import table5
from repro.experiments.__main__ import main
from repro.experiments.runner import run_task
from repro.obs.exporters import validate_path, validate_paths


@pytest.fixture(autouse=True)
def clean_session():
    yield
    obs.uninstall()


def test_cli_trace_and_metrics_write_valid_artifacts(tmp_path, capsys):
    code = main(["table1", "--trace", "--metrics",
                 "--out", str(tmp_path)])
    assert code == 0
    artifacts = [tmp_path / "table1.trace.jsonl",
                 tmp_path / "table1.trace.json",
                 tmp_path / "table1.metrics.json"]
    assert all(p.exists() for p in artifacts)
    assert validate_paths(artifacts) == []
    out = capsys.readouterr().out
    for artifact in artifacts:
        assert str(artifact) in out
    # the session must not outlive the run
    assert obs.session() is None


def test_cli_profile_writes_stats(tmp_path, capsys):
    code = main(["table1", "--profile", "--out", str(tmp_path)])
    assert code == 0
    prof = tmp_path / "table1.prof.txt"
    assert prof.exists()
    assert "cumulative" in prof.read_text()
    # no obs flags -> no trace/metrics artifacts
    assert not (tmp_path / "table1.trace.jsonl").exists()


def test_table5_trace_is_chrome_loadable(tmp_path):
    """The acceptance bar: a Table V covert-channel run under --trace
    yields a Chrome-trace-event file that loads and carries the covert
    codec's spans (a tiny payload keeps the test fast; the CLI path is
    identical)."""
    outcome = run_task(
        "table5", 0, False, False, 0, str(tmp_path),
        registry={"table5": lambda seed=0: table5.run(payload_bits=16,
                                                      seed=seed)},
        trace=True, metrics=True,
    )
    assert outcome.ok, outcome.error
    chrome = tmp_path / "table5.trace.json"
    assert str(chrome) in outcome.extras
    assert validate_path(chrome) == []
    payload = json.loads(chrome.read_text())
    events = payload["traceEvents"]
    assert payload["displayTimeUnit"] == "ns"
    names = {e["name"] for e in events}
    threads = {e["args"]["name"] for e in events if e["ph"] == "M"}
    assert "covert.bit" in names                    # codec instrumentation
    assert any(t.startswith("rnic.") for t in threads)
    assert any(e["ph"] == "X" for e in events)      # pipeline spans
    assert validate_path(tmp_path / "table5.metrics.json") == []


def test_retry_gets_a_fresh_session(tmp_path):
    """A crashed attempt's partial trace must not leak into the
    retry's export."""
    calls = []

    def flaky(seed=0):
        from repro.sim import Simulator
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        calls.append(seed)
        if len(calls) == 1:
            raise RuntimeError("first attempt dies after tracing")
        from repro.experiments.result import ExperimentResult
        return ExperimentResult(experiment="flaky", title="t",
                                rows=[{"v": 1}])

    outcome = run_task("flaky", 0, False, False, 1, str(tmp_path),
                       registry={"flaky": flaky}, trace=True)
    assert outcome.ok
    lines = (tmp_path / "flaky.trace.jsonl").read_text().splitlines()
    # exactly the second attempt's one dispatch record
    assert len(lines) == 1
    assert obs.session() is None


def test_failed_run_exports_nothing(tmp_path):
    def boom(seed=0):
        raise RuntimeError("dead")

    outcome = run_task("boom", 0, False, False, 0, str(tmp_path),
                       registry={"boom": boom}, trace=True, metrics=True)
    assert not outcome.ok
    assert outcome.extras == []
    assert not (tmp_path / "boom.trace.jsonl").exists()
    assert obs.session() is None


def test_report_flag_renders_markdown_next_to_the_table(tmp_path):
    outcome = run_task(
        "table5", 0, False, False, 0, str(tmp_path),
        registry={"table5": lambda seed=0: table5.run(payload_bits=16,
                                                      seed=seed)},
        trace=True, metrics=True, report=True,
    )
    assert outcome.ok, outcome.error
    report = tmp_path / "table5.report.md"
    assert str(report) in outcome.extras
    text = report.read_text()
    assert text.startswith("# repro run report")
    assert "## table5" in text
    assert "### Span latency" in text


def test_cli_report_flag(tmp_path):
    code = main(["table5", "--smoke", "--trace", "--report",
                 "--out", str(tmp_path)])
    assert code == 0
    assert (tmp_path / "table5.report.md").exists()


def test_trace_sample_writes_fewer_dispatch_records(tmp_path):
    registry = {"table5": lambda seed=0: table5.run(payload_bits=16,
                                                    seed=seed)}
    full = run_task("table5", 0, False, False, 0,
                    str(tmp_path / "full"), registry=registry, trace=True)
    sampled = run_task("table5", 0, False, False, 0,
                       str(tmp_path / "sampled"), registry=registry,
                       trace=True, trace_sample=100)
    assert full.ok and sampled.ok

    def dispatch_count(path):
        return sum(1 for line in path.read_text().splitlines()
                   if json.loads(line).get("cat") == "dispatch")

    full_count = dispatch_count(tmp_path / "full" / "table5.trace.jsonl")
    sampled_count = dispatch_count(
        tmp_path / "sampled" / "table5.trace.jsonl")
    # each tracer floors its own 1-in-100 count, so the merged total
    # sits just below full/100
    assert full_count // 100 - 10 <= sampled_count <= full_count // 100
    # both artifacts remain schema-valid
    assert validate_path(tmp_path / "sampled" / "table5.trace.jsonl") == []
