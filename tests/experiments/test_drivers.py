"""Smoke tests for the experiment drivers at reduced parameters.

The benchmarks run each driver at evaluation scale; these make sure
``pytest tests/`` alone exercises every driver's code path, with
shape-level assertions.
"""

import numpy as np
import pytest

from repro.experiments import (
    fig5,
    fig12,
    mitigation,
    pythia_cmp,
    stealth,
    table1,
    table5,
    uli_linearity,
)
from repro.experiments.fig6_7_8 import run_fig8
from repro.experiments.fig9_10_11 import run_fig9


class TestDriversSmoke:
    def test_table1(self):
        result = table1.run()
        assert len(result.rows) == 5
        assert all("undetected" in row for row in result.rows)

    def test_table5_reduced(self):
        result = table5.run(payload_bits=48)
        assert len(result.rows) == 9
        channels = {row["channel"] for row in result.rows}
        assert channels == {"inter-traffic-class", "inter-mr", "intra-mr"}
        # every row carries the paper's reference value for comparison
        assert all(np.isfinite(row["paper_bw_bps"]) for row in result.rows)

    def test_fig5_reduced(self):
        result = fig5.run(samples=40)
        assert all(row["diff_minus_same_ns"] > 0 for row in result.rows)

    def test_fig8_reduced(self):
        result = run_fig8(samples=20)
        assert result.series["metrics"]["same_line_lock_ns"] > 0

    def test_fig9(self):
        result = run_fig9()
        assert all(row["error_rate"] == 0.0 for row in result.rows)

    def test_fig12(self):
        result = fig12.run()
        assert result.series["detection_rate"] == 1.0

    def test_pythia_cmp_reduced(self):
        result = pythia_cmp.run(payload_bits=48)
        assert result.series["ratio"] > 1.5

    def test_linearity_reduced(self):
        result = uli_linearity.run(samples_per_depth=40)
        assert all(row["pearson_r"] > 0.99 for row in result.rows)

    def test_mitigation_partition(self):
        result = mitigation.run_partition()
        shared, partitioned = result.rows
        assert shared["cross_tenant_coupling_ns"] > partitioned[
            "cross_tenant_coupling_ns"
        ]

    def test_stealth(self):
        result = stealth.run()
        rows = {row["attack"]: row for row in result.rows}
        assert rows["perf-grain2"]["operational_stealth"] == "low"
        assert rows["ragnar-intra-mr"]["operational_stealth"] in (
            "high", "undetectable"
        )

    def test_faults_reduced(self):
        from repro.experiments import faults

        result = faults.run(smoke=True,
                            scenarios=("clean", "bursty-loss"))
        channels = {row["channel"] for row in result.rows}
        assert channels == {"inter-traffic-class", "inter-mr",
                            "intra-mr", "inter-mr+arq"}
        assert len(result.rows) == 8  # 2 scenarios x 4 channel rows
        # the fluid-layer priority channel shrugs off packet faults
        for row in result.rows:
            if row["channel"] == "inter-traffic-class":
                assert row["error_rate"] == 0

    def test_every_driver_result_is_saveable(self, tmp_path):
        result = table1.run()
        path = result.save(str(tmp_path))
        assert path.exists()
        assert "table1" in path.read_text()
