"""Tests for experiment isolation in the CLI runner.

A crashing experiment must not abort the batch: its traceback is
captured to ``<out>/<name>.error.txt``, the remaining experiments
still run, ``--retries`` re-attempts before giving up, and the exit
status plus a summary report the failures.
"""

import pytest

from repro.experiments.__main__ import REGISTRY, main
from repro.experiments.result import ExperimentResult


def ok_result(name="ok"):
    return ExperimentResult(experiment=name, title="fine",
                            rows=[{"value": 1}])


@pytest.fixture
def registry(monkeypatch):
    """Replace the registry with controllable runners."""

    def install(runners):
        monkeypatch.setattr("repro.experiments.__main__.REGISTRY", runners)

    return install


class TestCrashIsolation:
    def test_crash_does_not_abort_the_batch(self, registry, tmp_path,
                                            capsys):
        ran = []

        def boom(seed=0):
            raise RuntimeError("injected crash")

        def fine(seed=0):
            ran.append(seed)
            return ok_result()

        registry({"boom": boom, "fine": fine})
        exit_code = main(["--all", "--out", str(tmp_path)])
        assert exit_code == 1
        assert ran, "the healthy experiment never ran"
        captured = capsys.readouterr()
        assert "injected crash" in captured.err
        assert "1 of 2 experiments failed" in captured.err
        assert "fine" in captured.out  # its table still printed

    def test_traceback_written_next_to_results(self, registry, tmp_path,
                                               capsys):
        def boom(seed=0):
            raise ValueError("look for me")

        registry({"boom": boom})
        assert main(["boom", "--out", str(tmp_path)]) == 1
        error_file = tmp_path / "boom.error.txt"
        assert error_file.exists()
        text = error_file.read_text()
        assert "look for me" in text
        assert "Traceback" in text

    def test_all_green_exits_zero(self, registry, tmp_path, capsys):
        registry({"fine": lambda seed=0: ok_result()})
        assert main(["--all", "--out", str(tmp_path)]) == 0
        assert not list(tmp_path.glob("*.error.txt"))

    def test_retries_rescue_a_flaky_experiment(self, registry, tmp_path,
                                               capsys):
        attempts = []

        def flaky(seed=0):
            attempts.append(seed)
            if len(attempts) < 2:
                raise RuntimeError("first attempt fails")
            return ok_result("flaky")

        registry({"flaky": flaky})
        exit_code = main(["flaky", "--retries", "1", "--out",
                          str(tmp_path)])
        assert exit_code == 0
        assert len(attempts) == 2
        assert not (tmp_path / "flaky.error.txt").exists()

    def test_retries_exhausted_still_fails(self, registry, tmp_path,
                                           capsys):
        attempts = []

        def hopeless(seed=0):
            attempts.append(seed)
            raise RuntimeError("always fails")

        registry({"hopeless": hopeless})
        assert main(["hopeless", "--retries", "2", "--out",
                     str(tmp_path)]) == 1
        assert len(attempts) == 3

    def test_negative_retries_rejected(self, registry, tmp_path):
        registry({"fine": lambda seed=0: ok_result()})
        with pytest.raises(SystemExit):
            main(["fine", "--retries", "-1", "--out", str(tmp_path)])


class TestSignatureDispatch:
    def test_seedless_runner_supported(self, registry, tmp_path, capsys):
        def no_seed():
            return ok_result()

        registry({"noseed": no_seed})
        assert main(["noseed", "--out", str(tmp_path)]) == 0

    def test_smoke_only_passed_when_accepted(self, registry, tmp_path,
                                             capsys):
        seen = {}

        def with_smoke(seed=0, smoke=False):
            seen["smoke"] = smoke
            return ok_result()

        def without_smoke(seed=0):
            return ok_result()

        registry({"a": with_smoke, "b": without_smoke})
        assert main(["--all", "--smoke", "--out", str(tmp_path)]) == 0
        assert seen["smoke"] is True

    def test_faults_experiment_is_registered(self):
        assert "faults" in REGISTRY
