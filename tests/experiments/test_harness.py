"""Tests for the experiment harness: result rendering, saving, CLI."""

import pathlib

import pytest

from repro.experiments.result import ExperimentResult
from repro.experiments.__main__ import REGISTRY, main


def make_result():
    return ExperimentResult(
        experiment="demo",
        title="Demo table",
        rows=[
            {"name": "a", "value": 1.5, "flag": True},
            {"name": "b", "value": 123456.0, "flag": False},
        ],
        notes="a note",
    )


class TestExperimentResult:
    def test_format_contains_all_cells(self):
        text = make_result().format_table()
        assert "Demo table" in text
        assert "1.50" in text
        assert "yes" in text and "no" in text
        assert "a note" in text

    def test_format_empty(self):
        empty = ExperimentResult("x", "Empty", rows=[])
        assert "(no rows)" in empty.format_table()

    def test_row_truncation(self):
        result = ExperimentResult(
            "x", "Big", rows=[{"i": i} for i in range(100)]
        )
        text = result.format_table(max_rows=10)
        assert "90 more rows" in text

    def test_scientific_formatting(self):
        result = ExperimentResult("x", "t", rows=[{"v": 1.5e8}, {"v": 0.0001}])
        text = result.format_table()
        assert "1.5e+08" in text
        assert "0.0001" in text

    def test_save(self, tmp_path):
        result = make_result()
        target = result.save(str(tmp_path))
        assert target == tmp_path / "demo.txt"
        assert "Demo table" in target.read_text()


class TestCLI:
    def test_registry_covers_all_paper_artifacts(self):
        expected = {
            "table1", "table5", "fig4", "fig5", "fig6", "fig7", "fig8",
            "fig9", "fig10", "fig11", "fig12", "fig13", "pythia", "stealth",
            "linearity", "mitigation-noise", "mitigation-partition",
            "faults",
        }
        assert set(REGISTRY) == expected

    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table5" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["not-an-experiment"])

    def test_no_args_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_runs_one_experiment(self, tmp_path, capsys):
        assert main(["table1", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Attack-vs-defense" in out
        assert (tmp_path / "table1.txt").exists()
