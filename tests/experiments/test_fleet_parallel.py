"""Serial vs ``--jobs N`` equivalence of the fleet telemetry plane.

The live stream is timing-shaped, but the *canonical* fleet artifacts
(``fleet_metrics.json``, the rewritten ``fleet_snapshots.jsonl``,
``slo_report.json``) are rebuilt post-batch from the committed per-task
metrics in sorted task order — so a serial run, a ``--jobs`` run, and a
rerun of either must agree byte-for-byte.  The faults experiment's
injected retransmits/RNR-NAKs are the demonstrably-firing burn-rate
alert the SLO acceptance demands.
"""

import json
import pathlib

from repro.experiments.__main__ import main
from repro.obs.__main__ import main as obs_main

SPEC = str(pathlib.Path(__file__).resolve().parents[2]
           / "examples" / "slo_spec.json")
EXPERIMENTS = ["table5", "faults", "--smoke"]
FLEET_ARTIFACTS = ("fleet_metrics.json", "fleet_snapshots.jsonl",
                   "slo_report.json")


def _fleet_bytes(path) -> dict:
    return {name: (pathlib.Path(path) / name).read_bytes()
            for name in FLEET_ARTIFACTS}


class TestFleetParallel:
    def test_serial_jobs_and_rerun_byte_identical(self, tmp_path, capsys):
        ser = tmp_path / "serial"
        par = tmp_path / "parallel"
        rerun = tmp_path / "rerun"
        for out, jobs in ((ser, []), (par, ["--jobs", "2"]),
                          (rerun, ["--jobs", "2"])):
            assert main([*EXPERIMENTS, *jobs, "--slo", SPEC,
                         "--out", str(out)]) == 0
            capsys.readouterr()
        serial_bytes = _fleet_bytes(ser)
        assert serial_bytes == _fleet_bytes(par)
        assert serial_bytes == _fleet_bytes(rerun)

        report = json.loads(serial_bytes["slo_report.json"])
        assert report["spec"] == "ragnar-fleet"
        # the injected faults burn the wire-error budget: alerts fire
        assert report["alerts"], "expected burn-rate alerts on faults"
        assert report["compliant"] is False
        fired = {alert["objective"] for alert in report["alerts"]}
        assert "wire-errors" in fired

    def test_fleet_metrics_without_slo(self, tmp_path, capsys):
        assert main(["table5", "--smoke", "--fleet-metrics",
                     "--out", str(tmp_path)]) == 0
        capsys.readouterr()
        merged = json.loads((tmp_path / "fleet_metrics.json").read_text())
        per_task = json.loads(
            (tmp_path / "table5.metrics.json").read_text())
        # one task: the merge is that task's snapshot verbatim
        assert merged == per_task
        assert (tmp_path / "fleet_snapshots.jsonl").exists()
        assert not (tmp_path / "slo_report.json").exists()

    def test_obs_slo_reevaluation_matches_run_report(self, tmp_path,
                                                     capsys):
        run = tmp_path / "run"
        assert main([*EXPERIMENTS, "--slo", SPEC, "--out", str(run)]) == 0
        capsys.readouterr()
        out = tmp_path / "reevaluated.json"
        # exit 1: the faults run violates the spec — that IS the signal
        assert obs_main(["slo", str(run), "--spec", SPEC,
                         "--out", str(out)]) == 1
        capsys.readouterr()
        assert out.read_bytes() == (run / "slo_report.json").read_bytes()
