"""Failure classification and reporting in the experiment CLI.

Covers the structured ``<name>.error.json`` sidecar, buffered
attempt-log ordering, ``_invoke`` signature-dispatch edge cases, the
``--retries`` exhaustion summary, and the supervised ``--timeout`` /
``--max-failures`` paths.
"""

import json

import pytest

from repro.experiments.__main__ import main
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import _invoke, run_task


def ok_result(name="ok"):
    return ExperimentResult(experiment=name, title="fine",
                            rows=[{"value": 1}])


@pytest.fixture
def registry(monkeypatch):
    def install(runners):
        monkeypatch.setattr("repro.experiments.__main__.REGISTRY", runners)

    return install


class TestInvokeDispatch:
    def test_var_keyword_runner_gets_seed_and_smoke(self):
        seen = {}

        def runner(**kwargs):
            seen.update(kwargs)
            return "ran"

        assert _invoke(runner, 7, True, {"payload_bits": 64}) == "ran"
        assert seen == {"seed": 7, "smoke": True, "payload_bits": 64}

    def test_var_keyword_runner_without_smoke_flag(self):
        seen = {}

        def runner(**kwargs):
            seen.update(kwargs)

        _invoke(runner, 7, False, {})
        assert seen == {"seed": 7}   # smoke=False is never forwarded

    def test_runner_rejecting_smoke_not_passed_smoke(self):
        seen = {}

        def runner(seed=0):
            seen["seed"] = seed
            return "ran"

        assert _invoke(runner, 3, True, {}) == "ran"
        assert seen == {"seed": 3}

    def test_seedless_runner_supported(self):
        def runner():
            return "bare"

        assert _invoke(runner, 3, False, {}) == "bare"

    def test_full_scale_kwargs_forwarded(self):
        seen = {}

        def runner(seed=0, payload_bits=8):
            seen["payload_bits"] = payload_bits
            return "ran"

        _invoke(runner, 0, False, {"payload_bits": 1024})
        assert seen == {"payload_bits": 1024}


class TestErrorSidecar:
    def test_crash_writes_structured_sidecar(self, registry, tmp_path,
                                             capsys):
        def boom(seed=0):
            raise ValueError("look for me")

        registry({"boom": boom})
        assert main(["boom", "--retries", "1",
                     "--out", str(tmp_path)]) == 1
        capsys.readouterr()
        sidecar = json.loads((tmp_path / "boom.error.json").read_text())
        assert sidecar["name"] == "boom"
        assert sidecar["kind"] == "crash"
        assert sidecar["exc_type"] == "ValueError"
        assert sidecar["attempts"] == 2
        assert sidecar["error_file"] == "boom.error.txt"
        # the traceback lives in the .txt, not duplicated in the json
        assert "traceback" not in sidecar
        assert "look for me" in (tmp_path / "boom.error.txt").read_text()

    def test_timeout_classified_in_sidecar(self, tmp_path, capsys):
        # a real experiment under an unmeetable deadline: the worker is
        # killed and the sidecar records the timeout classification
        assert main(["table1", "--timeout", "0.05",
                     "--out", str(tmp_path)]) == 1
        capsys.readouterr()
        sidecar = json.loads((tmp_path / "table1.error.json").read_text())
        assert sidecar["kind"] == "timeout"
        assert "deadline" in sidecar["message"]

    def test_no_sidecar_on_success(self, registry, tmp_path, capsys):
        registry({"fine": lambda seed=0: ok_result("fine")})
        assert main(["fine", "--out", str(tmp_path)]) == 0
        assert not (tmp_path / "fine.error.json").exists()


class TestAttemptLogBuffering:
    def test_run_task_buffers_instead_of_printing(self, tmp_path, capsys):
        calls = []

        def flaky(seed=0):
            calls.append(seed)
            if len(calls) < 2:
                raise RuntimeError("transient")
            return ok_result("flaky")

        outcome = run_task("flaky", 0, False, False, 1, str(tmp_path),
                           registry={"flaky": flaky})
        # nothing printed from inside the task...
        captured = capsys.readouterr()
        assert captured.out == "" and captured.err == ""
        # ...the notice is buffered on the outcome instead
        assert outcome.ok
        assert outcome.attempts == 2
        assert outcome.attempt_logs == [
            "[flaky: attempt 1 crashed (RuntimeError); retrying]"]

    def test_notices_emitted_in_submission_order(self, registry, tmp_path,
                                                 capsys):
        state = {"a": 0, "b": 0}

        def make(name):
            def runner(seed=0):
                state[name] += 1
                if state[name] < 2:
                    raise RuntimeError(f"{name} transient")
                return ok_result(name)

            return runner

        registry({"a": make("a"), "b": make("b")})
        assert main(["--all", "--retries", "1",
                     "--out", str(tmp_path)]) == 0
        err_lines = [line for line in
                     capsys.readouterr().err.splitlines() if line]
        assert err_lines == [
            "[a: attempt 1 crashed (RuntimeError); retrying]",
            "[b: attempt 1 crashed (RuntimeError); retrying]"]


class TestRetriesExhausted:
    def test_exhaustion_reports_attempts_and_exits_nonzero(
            self, registry, tmp_path, capsys):
        def hopeless(seed=0):
            raise RuntimeError("always fails")

        registry({"hopeless": hopeless, "fine": lambda seed=0:
                  ok_result("fine")})
        assert main(["--all", "--retries", "2",
                     "--out", str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert "[hopeless: FAILED after 3 attempt(s)" in err
        assert "1 of 2 experiments failed (1 completed): hopeless" in err


class TestCircuitBreaker:
    def test_serial_circuit_breaker_skips_and_reports(self, registry,
                                                      tmp_path, capsys):
        ran = []

        def boom(seed=0):
            raise RuntimeError("first failure")

        def fine(seed=0):
            ran.append(seed)
            return ok_result("fine")

        registry({"boom": boom, "later1": fine, "later2": fine})
        assert main(["--all", "--max-failures", "1",
                     "--out", str(tmp_path)]) == 1
        assert ran == []   # everything after the trip was skipped
        err = capsys.readouterr().err
        assert "circuit breaker" in err
        assert "2 skipped by the --max-failures circuit breaker: " \
               "later1, later2" in err
        manifest = json.loads(
            (tmp_path / "run_manifest.json").read_text())
        statuses = {name: entry["status"]
                    for name, entry in manifest["tasks"].items()}
        assert statuses == {"boom": "failed", "later1": "skipped",
                            "later2": "skipped"}
