"""Serial vs ``--jobs N`` equivalence of the experiment runner.

The parallel runner's contract is strict: fanning a batch out over
worker processes must change nothing observable — saved result files
byte-identical, stdout identical up to wall-clock timing lines, and
simulator trace digests identical across processes (worker processes
have different ``PYTHONHASHSEED`` values, which is exactly the hazard
the deterministic cache-key mapping exists to neutralize).
"""

import concurrent.futures
import multiprocessing
import pathlib

from repro.experiments.__main__ import main

FAST_EXPERIMENTS = ["table1", "fig4", "stealth"]


def _dir_bytes(path) -> dict:
    return {
        p.name: p.read_bytes()
        for p in sorted(pathlib.Path(path).iterdir())
    }


def _strip_timing(stdout: str) -> list:
    """Drop the ``[name: 1.2s -> path]`` lines, whose wall times vary."""
    return [
        line for line in stdout.splitlines()
        if not (line.startswith("[") and "s -> " in line)
    ]


def _trace_digest_worker(seed: int) -> str:
    """Drive a small cluster workload with tracing on; returns the
    event-trace digest.  Runs in a spawned process with its own random
    hash seed."""
    from repro.host.cluster import Cluster
    from repro.sim.units import MEBIBYTE

    cluster = Cluster(seed=seed)
    cluster.sim.enable_tracing()
    server = cluster.add_host("server", memory_size=4 * MEBIBYTE)
    client = cluster.add_host("client")
    conn = cluster.connect(client, server, max_send_wr=8)
    mr = server.reg_mr(1 * MEBIBYTE)
    for i in range(64):
        conn.post_read(mr, (i * 192) % 4096, 64)
        conn.await_completions(1)
    return cluster.sim.trace_digest


class TestParallelRunner:
    def test_jobs_output_byte_identical_to_serial(self, tmp_path, capsys):
        ser = tmp_path / "serial"
        par = tmp_path / "parallel"
        assert main([*FAST_EXPERIMENTS, "--out", str(ser)]) == 0
        serial_out = capsys.readouterr().out
        assert main([*FAST_EXPERIMENTS, "--jobs", "4",
                     "--out", str(par)]) == 0
        parallel_out = capsys.readouterr().out

        assert _dir_bytes(ser) == _dir_bytes(par)
        assert _strip_timing(serial_out) == _strip_timing(parallel_out)

    def test_more_jobs_than_tasks(self, tmp_path, capsys):
        # worker count is clamped to the batch size; a wide pool on a
        # narrow batch must not hang or duplicate work
        assert main(["table1", "--jobs", "8", "--out", str(tmp_path)]) == 0
        capsys.readouterr()
        assert (tmp_path / "table1.txt").exists()


class TestCrossProcessDigests:
    def test_trace_digest_identical_across_worker_processes(self):
        context = multiprocessing.get_context("spawn")
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=2, mp_context=context, max_tasks_per_child=1,
        ) as pool:
            digests = list(pool.map(_trace_digest_worker, [11, 11]))
        assert digests[0] == digests[1]
        # and a different seed must give a different trace
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=1, mp_context=context,
        ) as pool:
            other = pool.submit(_trace_digest_worker, 12).result()
        assert other != digests[0]
