"""Conformance of the Grain-III/IV microbenchmark setup to TABLE IV.

The paper pins its fine-grained experiments to a specific
configuration: MRs on 2 MB huge pages, 2 QPs, one PD, DDIO disabled —
ruling out address-translation and cache confounds.  These tests assert
our experiment harness actually runs under the same conditions.
"""

from repro.host import Cluster
from repro.rnic import cx4, cx5
from repro.sim.units import MEBIBYTE


def test_mrs_default_to_2mb_huge_pages():
    cluster = Cluster(seed=0)
    host = cluster.add_host("h", spec=cx5())
    mr = host.reg_mr(2 * MEBIBYTE)
    assert mr.huge_pages
    assert mr.addr % (2 * MEBIBYTE) == 0


def test_ddio_disabled_by_default():
    for spec in (cx4(), cx5()):
        assert spec.ddio_enabled is False


def test_sweep_resources_share_one_pd():
    """The offset sweeps put every resource in the same PD."""
    cluster = Cluster(seed=0)
    server = cluster.add_host("server", spec=cx4())
    client = cluster.add_host("client", spec=cx4())
    conn = cluster.connect(client, server, max_send_wr=2)
    mr = server.reg_mr(2 * MEBIBYTE)
    assert mr.pd is server.pd
    assert conn.server_qp.pd is server.pd


def test_sweep_uses_queue_depth_2():
    """TABLE IV's 2-QP configuration maps to queue depth 2 probes."""
    import inspect

    from repro.revengine import offset_sweep

    signature = inspect.signature(offset_sweep.absolute_offset_sweep)
    assert signature.parameters["depth"].default == 2
    signature = inspect.signature(offset_sweep.relative_offset_sweep)
    assert signature.parameters["depth"].default == 2


def test_mr_size_is_2mb():
    """Figures 5-8 use 2 MB MRs."""
    import inspect

    from repro.revengine import mr_sweep, offset_sweep

    source = inspect.getsource(offset_sweep._measure_pair)
    assert "2 * MEBIBYTE" in source
    source = inspect.getsource(mr_sweep.mr_contention_sweep)
    assert "2 * MEBIBYTE" in source
