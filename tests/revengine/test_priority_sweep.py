"""Tests for the Grain-I/II priority study (Figure 4)."""

import pytest

from repro.revengine import PrioritySweep, classify_outcome
from repro.revengine.priority_sweep import (
    HALF_DROP,
    INCREASE,
    NO_DROP,
    SLIGHT_DROP,
)
from repro.rnic import cx5
from repro.verbs.enums import Opcode


@pytest.fixture(scope="module")
def sweep():
    return PrioritySweep(cx5())


def test_classify_outcome_boundaries():
    assert classify_outcome(1.2) == INCREASE
    assert classify_outcome(1.0) == NO_DROP
    assert classify_outcome(0.7) == SLIGHT_DROP
    assert classify_outcome(0.4) == HALF_DROP


def test_blue_box_write_vs_read_flip(sweep):
    """Figure 4's blue-outlined observation: the Read indicator is fine
    against small Writes but collapses against >=512 B Writes."""
    small = sweep.compete(Opcode.RDMA_WRITE, 128, Opcode.RDMA_READ, 65536)
    big = sweep.compete(Opcode.RDMA_WRITE, 2048, Opcode.RDMA_READ, 65536)
    assert small.outcome == NO_DROP
    assert big.outcome in (HALF_DROP, SLIGHT_DROP)
    assert big.ratio < small.ratio


def test_orange_box_atomic_behaviour(sweep):
    """Figure 4's orange-outlined observation: atomics mirror the
    small-write trend against reads."""
    atomic = sweep.compete(Opcode.ATOMIC_FETCH_ADD, 8, Opcode.RDMA_READ, 2048)
    write = sweep.compete(Opcode.RDMA_WRITE, 128, Opcode.RDMA_READ, 2048)
    assert atomic.outcome in (SLIGHT_DROP, HALF_DROP)
    assert write.outcome in (SLIGHT_DROP, HALF_DROP)


def test_green_box_mutual_increase(sweep):
    """Figure 4's green-outlined observation: small-write pairs boost."""
    result = sweep.compete(
        Opcode.RDMA_WRITE, 128, Opcode.RDMA_WRITE, 128,
        inducer_qps=2, indicator_qps=2,
    )
    assert result.outcome == INCREASE


def test_yellow_box_write_vs_reverse_read(sweep):
    """Figure 4's yellow-outlined observation: a Write indicator and a
    (reverse-path) Read indicator with identical parameters fare
    differently against the same Write inducer."""
    as_write = sweep.compete(Opcode.RDMA_WRITE, 4096, Opcode.RDMA_WRITE, 256)
    as_read = sweep.compete(Opcode.RDMA_WRITE, 4096, Opcode.RDMA_READ, 256)
    assert as_write.ratio != pytest.approx(as_read.ratio, rel=0.05)


def test_sweep_covers_over_6000_combinations(sweep):
    results = sweep.sweep()
    assert len(results) > 6000


def test_sweep_histogram_contains_all_classes(sweep):
    results = sweep.sweep(
        sizes=(64, 128, 2048, 65536), qp_nums=(2, 8)
    )
    hist = PrioritySweep.outcome_histogram(results)
    assert hist[NO_DROP] > 0
    assert hist[HALF_DROP] > 0
    assert hist[INCREASE] > 0


def test_result_ratio_and_solo_positive(sweep):
    result = sweep.compete(Opcode.RDMA_WRITE, 1024, Opcode.RDMA_READ, 1024)
    assert result.indicator_solo_bps > 0
    assert 0 < result.ratio <= 1.5
