"""Tests for the ULI-based reverse-engineering experiments
(Figures 5-8, footnotes 7-8)."""

import numpy as np
import pytest

from repro.analysis import alignment_contrast, power_of_two_score
from repro.revengine import (
    absolute_offset_sweep,
    measure_linearity,
    mr_contention_sweep,
    relative_offset_sweep,
)
from repro.rnic import cx4


class TestLinearity:
    @pytest.fixture(scope="class")
    def fit(self):
        return measure_linearity(depths=(8, 16, 24, 32), samples_per_depth=60)

    def test_high_pearson(self, fit):
        """Footnote 8: the linear fit is near-perfect (paper: 0.9998)."""
        assert fit.pearson_r > 0.999

    def test_intercept_negligible(self, fit):
        """Footnote 8: C can be neglected."""
        assert fit.relative_intercept < 0.05

    def test_slope_positive_microsecond_scale(self, fit):
        assert 100 < fit.slope_k < 10_000  # ns per queued WQE

    def test_too_few_depths_rejected(self):
        with pytest.raises(ValueError):
            measure_linearity(depths=(8, 16))


class TestMRSweep:
    @pytest.fixture(scope="class")
    def results(self):
        return mr_contention_sweep(sizes=(64, 1024), samples=100)

    def test_different_mr_has_higher_uli(self, results):
        """Figure 5: MR alternation is visible in ULI at every size."""
        by_key = {(r.msg_size, r.same_mr): r.uli.mean for r in results}
        for size in (64, 1024):
            assert by_key[(size, False)] > by_key[(size, True)]

    def test_uli_grows_with_message_size(self, results):
        by_key = {(r.msg_size, r.same_mr): r.uli.mean for r in results}
        assert by_key[(1024, True)] > by_key[(64, True)]

    def test_percentile_band_ordering(self, results):
        for r in results:
            assert r.uli.p10 <= r.uli.mean <= r.uli.p90


class TestAbsoluteOffsetSweep:
    @pytest.fixture(scope="class")
    def fine_sweep(self):
        """Sub-8 B sampling over a few lines, for alignment contrast."""
        return absolute_offset_sweep(
            offsets=range(64, 576, 4), msg_size=64, samples=50
        )

    @pytest.fixture(scope="class")
    def coarse_sweep(self):
        """64 B sampling beyond the anchor's segment, for periodicity
        (the anchor at offset 0 makes segment 0 special)."""
        return absolute_offset_sweep(
            offsets=range(2048, 2048 + 8192, 64), msg_size=64, samples=50
        )

    def test_aligned_8_drops(self, fine_sweep):
        """Key Finding 4: stable ULI drops at 8 B-aligned addresses."""
        offs = np.asarray(fine_sweep.offsets)
        contrast = alignment_contrast(fine_sweep.means, offs, 8)
        assert contrast > 0

    def test_aligned_64_drops_more(self, fine_sweep):
        offs = np.asarray(fine_sweep.offsets)
        means = fine_sweep.means
        aligned64 = means[offs % 64 == 0].mean()
        aligned8_not64 = means[(offs % 8 == 0) & (offs % 64 != 0)].mean()
        unaligned = means[offs % 8 != 0].mean()
        assert aligned64 < aligned8_not64 < unaligned

    def test_2048_periodicity(self, coarse_sweep):
        """Key Finding 4: apparent periodicity at 2048 B intervals."""
        score = power_of_two_score(coarse_sweep.means, step=64, period=2048)
        off_period = power_of_two_score(coarse_sweep.means, step=64, period=1472)
        assert score > 0.5
        assert score > off_period

    def test_mode_marker(self, fine_sweep):
        assert fine_sweep.mode == "absolute"


class TestRelativeOffsetSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return relative_offset_sweep(
            deltas=range(0, 4352, 64), msg_size=64, samples=50
        )

    def test_segment_boundary_jump(self, sweep):
        """Crossing the 2 KB descriptor segment between consecutive
        reads costs a refill — visible as a step at delta = 2048."""
        deltas = np.asarray(sweep.offsets)
        means = sweep.means
        within = means[(deltas > 0) & (deltas < 2048)].mean()
        across = means[deltas >= 2048].mean()
        assert across > within

    def test_delta_zero_is_distinct(self, sweep):
        """Back-to-back same-line reads hit the line lock."""
        deltas = np.asarray(sweep.offsets)
        means = sweep.means
        at_zero = means[deltas == 0][0]
        neighbours = means[(deltas >= 64) & (deltas <= 512)].mean()
        assert at_zero > neighbours

    def test_differs_from_absolute_pattern(self, sweep):
        """Figures 6 vs 8: absolute and relative offsets have distinct
        signatures (the paper's third bullet in IV-C).  The relative
        sweep anchors mid-segment, so its segment-crossing breakpoint
        shifts relative to the absolute sweep's."""
        absolute = absolute_offset_sweep(
            offsets=range(0, 4352, 64), msg_size=64, samples=50
        )
        from repro.analysis import normalized_cross_correlation

        ncc = normalized_cross_correlation(absolute.means, sweep.means)
        assert ncc < 0.9
