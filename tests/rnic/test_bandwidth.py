"""Unit tests for the fluid contention model against Figure 4's
observations and Key Findings 1-3."""

import math

import pytest

from repro.rnic import BandwidthAllocator, FluidFlow, cx4, cx5, cx6
from repro.verbs.enums import Opcode


def alloc_pair(allocator, a, b):
    result = allocator.allocate([a, b])
    return result[a.flow_id], result[b.flow_id]


@pytest.fixture
def allocator():
    return BandwidthAllocator(cx5())


def read_flow(size, qp=8, **kw):
    return FluidFlow(opcode=Opcode.RDMA_READ, msg_size=size, qp_num=qp, **kw)


def write_flow(size, qp=8, **kw):
    return FluidFlow(opcode=Opcode.RDMA_WRITE, msg_size=size, qp_num=qp, **kw)


def atomic_flow(qp=8, **kw):
    return FluidFlow(opcode=Opcode.ATOMIC_FETCH_ADD, msg_size=8, qp_num=qp, **kw)


class TestSoloBandwidth:
    def test_small_messages_are_pps_bound(self, allocator):
        small = allocator.solo_bandwidth(read_flow(64, qp=1))
        large = allocator.solo_bandwidth(read_flow(65536, qp=1))
        assert small < large

    def test_solo_increases_with_qp_count(self, allocator):
        one = allocator.solo_bandwidth(read_flow(64, qp=1))
        many = allocator.solo_bandwidth(read_flow(64, qp=8))
        assert many > one

    def test_solo_capped_by_demand(self, allocator):
        flow = read_flow(4096, demand_bps=1e6)
        assert allocator.solo_bandwidth(flow) == pytest.approx(1e6)

    def test_large_flow_capped_by_pcie_on_cx5(self, allocator):
        flow = write_flow(65536, qp=16)
        solo = allocator.solo_bandwidth(flow)
        assert solo <= cx5().pcie.usable_rate_bps

    def test_device_ordering(self):
        flow = read_flow(4096, qp=16)
        bw = [BandwidthAllocator(s).solo_bandwidth(flow) for s in (cx4(), cx5(), cx6())]
        assert bw[0] < bw[1] < bw[2]


class TestKeyFinding1:
    """Non-monotonic Write-vs-Read contention (Observation 1)."""

    def test_small_write_loses_over_half(self, allocator):
        write = write_flow(128)
        read = read_flow(4096)
        w_alone = allocator.solo_bandwidth(write)
        w_contended, _ = alloc_pair(allocator, write, read)
        assert w_contended < 0.5 * w_alone * 1.01

    def test_small_write_hurts_only_medium_reads(self, allocator):
        write = write_flow(128)
        for size, expect_drop in ((64, False), (2048, True), (65536, False)):
            read = read_flow(size)
            r_alone = allocator.solo_bandwidth(read)
            _, r_contended = alloc_pair(allocator, write, read)
            drop = 1.0 - r_contended / r_alone
            if expect_drop:
                assert drop > 0.3, f"medium read should drop, got {drop:.2f}"
            else:
                assert drop < 0.15, f"read {size} should be ~unaffected, got {drop:.2f}"

    def test_large_write_crushes_reads_30_to_80pct(self, allocator):
        read = read_flow(4096)
        r_alone = allocator.solo_bandwidth(read)
        for wsize in (512, 4096, 32768):
            write = write_flow(wsize)
            _, r_contended = alloc_pair(allocator, write, read)
            drop = 1.0 - r_contended / r_alone
            assert 0.25 <= drop <= 0.85, f"wsize={wsize}: drop={drop:.2f}"

    def test_drop_deepens_with_write_size(self, allocator):
        read = read_flow(4096)
        drops = []
        for wsize in (512, 4096, 32768):
            _, r = alloc_pair(allocator, write_flow(wsize), read)
            drops.append(r)
        assert drops[0] > drops[1] > drops[2]

    def test_flip_at_512_bytes(self, allocator):
        """The write flow's fortunes reverse at the 512 B boundary."""
        read = read_flow(4096)
        w_small = write_flow(256)
        w_big = write_flow(1024)
        ws_alone = allocator.solo_bandwidth(w_small)
        wb_alone = allocator.solo_bandwidth(w_big)
        ws, _ = alloc_pair(allocator, w_small, read)
        wb, _ = alloc_pair(allocator, w_big, read)
        assert ws / ws_alone < wb / wb_alone


class TestKeyFinding2:
    """Abnormal bandwidth increment for dueling small writes
    (Observation 3: total can exceed 200 % of a single flow)."""

    def test_small_writes_boost_each_other(self, allocator):
        # pps-bound flows (few QPs): NoC activation raises the message-
        # rate ceiling, so both flows exceed their solo bandwidth
        a = write_flow(128, qp=2)
        b = write_flow(128, qp=2)
        solo = allocator.solo_bandwidth(a)
        bw_a, bw_b = alloc_pair(allocator, a, b)
        assert bw_a + bw_b > 2.0 * solo

    def test_no_boost_for_large_writes(self, allocator):
        a = write_flow(65536)
        b = write_flow(65536)
        solo = allocator.solo_bandwidth(a)
        bw_a, bw_b = alloc_pair(allocator, a, b)
        assert bw_a + bw_b <= 2.0 * solo * 1.001


class TestKeyFinding3:
    """Tx arbiter outranks Rx arbiter: read responses beat inbound
    writes of identical shape (Observation 4)."""

    def test_write_vs_reverse_read_asymmetric(self, allocator):
        competitor = write_flow(4096)
        # same wire shape, different arbiter
        inbound_write = write_flow(256)
        reverse_read = read_flow(256)
        w_alone = allocator.solo_bandwidth(inbound_write)
        r_alone = allocator.solo_bandwidth(reverse_read)
        w, _ = alloc_pair(allocator, inbound_write, competitor)
        r, _ = alloc_pair(allocator, reverse_read, competitor)
        # the Tx-arbited read keeps a larger fraction than the write
        assert r / r_alone > w / w_alone


class TestAtomics:
    """Observation 2: atomics behave like small writes in contention."""

    def test_atomic_hurts_medium_read(self, allocator):
        read = read_flow(2048)
        r_alone = allocator.solo_bandwidth(read)
        _, r = alloc_pair(allocator, atomic_flow(), read)
        assert r < 0.8 * r_alone

    def test_atomic_loses_to_large_write(self, allocator):
        atomic = atomic_flow()
        a_alone = allocator.solo_bandwidth(atomic)
        a, _ = alloc_pair(allocator, atomic, write_flow(32768))
        assert a < 0.6 * a_alone


class TestQPScaling:
    def test_interference_grows_with_competitor_qps(self, allocator):
        read = read_flow(4096)
        weak = write_flow(4096, qp=1)
        strong = write_flow(4096, qp=16)
        _, r_weak = alloc_pair(allocator, weak, read)
        _, r_strong = alloc_pair(allocator, strong, read)
        assert r_strong < r_weak


class TestAllocatorMechanics:
    def test_empty_allocation(self, allocator):
        assert allocator.allocate([]) == {}

    def test_single_flow_gets_solo(self, allocator):
        flow = read_flow(4096)
        alloc = allocator.allocate([flow])
        assert alloc[flow.flow_id] == pytest.approx(allocator.solo_bandwidth(flow))

    def test_capacity_never_exceeded(self, allocator):
        flows = [write_flow(65536, qp=16) for _ in range(4)]
        alloc = allocator.allocate(flows)
        assert sum(alloc.values()) <= cx5().pcie.usable_rate_bps * 1.001

    def test_utilizations_bounded(self, allocator):
        flows = [write_flow(65536, qp=16), read_flow(64, qp=16)]
        util = allocator.utilizations(flows)
        for key, value in util.items():
            assert 0.0 <= value <= 1.0, key

    def test_flow_validation(self):
        with pytest.raises(ValueError):
            FluidFlow(opcode=Opcode.RDMA_READ, msg_size=0)
        with pytest.raises(ValueError):
            FluidFlow(opcode=Opcode.RDMA_READ, msg_size=64, qp_num=0)

    def test_atomic_flow_size_forced_to_8(self):
        flow = FluidFlow(opcode=Opcode.ATOMIC_CMP_SWP, msg_size=512)
        assert flow.msg_size == 8

    def test_demand_limited_flow_still_suffers_interference(self, allocator):
        """The Figure 9 receiver: a tiny monitored flow must still see
        its bandwidth move when a bully appears."""
        monitor = read_flow(2048, qp=1, demand_bps=50e6)
        bully = write_flow(32768, qp=16)
        alone = allocator.allocate([monitor])[monitor.flow_id]
        contended, _ = alloc_pair(allocator, monitor, bully)
        assert contended < alone
