"""Unit tests for the set-associative LRU cache."""

import pytest

from repro.rnic import SetAssocCache


def test_miss_then_hit():
    cache = SetAssocCache(entries=8, ways=2)
    assert cache.access("a") is False
    assert cache.access("a") is True
    assert cache.hits == 1 and cache.misses == 1


def test_lru_eviction_within_set():
    # direct-mapped-like: 1 set, 2 ways
    cache = SetAssocCache(entries=2, ways=2)
    cache.access("a")
    cache.access("b")
    cache.access("a")          # a becomes MRU
    cache.access("c")          # evicts b (LRU)
    assert cache.probe("a")
    assert not cache.probe("b")
    assert cache.probe("c")
    assert cache.evictions == 1


def test_probe_does_not_update_state():
    cache = SetAssocCache(entries=2, ways=2)
    cache.access("a")
    cache.access("b")
    cache.probe("a")           # must NOT refresh a's LRU position
    hits, misses = cache.hits, cache.misses
    cache.access("c")          # evicts a, the true LRU
    assert not cache.probe("a")
    assert cache.hits == hits and cache.misses == misses + 1


def test_invalidate():
    cache = SetAssocCache(entries=4, ways=2)
    cache.access("x")
    assert cache.invalidate("x") is True
    assert cache.invalidate("x") is False
    assert not cache.probe("x")


def test_flush_and_occupancy():
    cache = SetAssocCache(entries=16, ways=4)
    for key in range(10):
        cache.access(key)
    assert cache.occupancy == 10
    cache.flush()
    assert cache.occupancy == 0


def test_hit_rate():
    cache = SetAssocCache(entries=4, ways=4)
    cache.access("k")
    for _ in range(9):
        cache.access("k")
    assert cache.hit_rate == pytest.approx(0.9)


def test_capacity_respected():
    cache = SetAssocCache(entries=16, ways=4)
    for key in range(100):
        cache.access(key)
    assert cache.occupancy <= 16


def test_bad_geometry_rejected():
    with pytest.raises(ValueError):
        SetAssocCache(entries=10, ways=4)
    with pytest.raises(ValueError):
        SetAssocCache(entries=0, ways=1)


def test_reset_stats():
    cache = SetAssocCache(entries=4, ways=2)
    cache.access("a")
    cache.access("a")
    cache.reset_stats()
    assert cache.hits == cache.misses == cache.evictions == 0
    assert cache.probe("a")  # contents retained
