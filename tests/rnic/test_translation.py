"""Unit tests for the Translation & Protection Unit — the offset effect.

These tests pin down the microarchitectural behaviours that Section IV-C
reverse engineers (Key Finding 4): alignment-dependent service times,
2048 B bank periodicity, MR-switch penalties, and cross-requester
coupling through bank occupancy.
"""

import dataclasses

import numpy as np
import pytest

from repro.rnic import TranslationUnit, cx5


def quiet_spec():
    """CX-5 with noise disabled for deterministic latency assertions."""
    return dataclasses.replace(cx5(), jitter_frac=0.0, spike_prob=0.0)


def make_unit():
    return TranslationUnit(quiet_spec(), rng=np.random.default_rng(0))


def service_of(unit, offset, size=64, mr="mr0", gap=1e6):
    """Service latency of an isolated request (spaced far apart so no
    bank/pipeline carryover).  Warms the MPT/MTT caches and segment
    register with an access to another line of the same segment so that
    only the offset-dependent components differ between calls."""
    warm_offset = (offset // 2048) * 2048 + ((offset + 1024) % 2048 // 64) * 64
    unit.admit(unit._pipe_busy + gap, mr, warm_offset, 8)
    now = unit._pipe_busy + gap
    finish, bd = unit.admit(now, mr, offset, size, want_breakdown=True)
    return finish - now, bd


class TestGeometry:
    def test_bank_mapping_repeats_every_2048(self):
        unit = make_unit()
        assert unit.bank_of(0) == unit.bank_of(2048) == unit.bank_of(4096)
        assert unit.bank_of(64) == unit.bank_of(2048 + 64)
        assert unit.bank_of(0) != unit.bank_of(64)

    def test_lines_touched_spans(self):
        unit = make_unit()
        assert list(unit.lines_touched(0, 64)) == [0]
        assert list(unit.lines_touched(0, 65)) == [0, 1]
        assert list(unit.lines_touched(60, 8)) == [0, 1]
        assert len(list(unit.lines_touched(0, 1024))) == 16

    def test_segment_of(self):
        unit = make_unit()
        assert unit.segment_of(0) == 0
        assert unit.segment_of(2047) == 0
        assert unit.segment_of(2048) == 1


class TestAlignmentPenalties:
    def test_unaligned8_slower_than_aligned(self):
        unit = make_unit()
        aligned, _ = service_of(unit, 0)
        unaligned, bd = service_of(unit, 255)
        assert bd.alignment == unit.spec.tpu_sub8_penalty_ns
        assert unaligned > aligned

    def test_8_aligned_but_not_64_pays_smaller_penalty(self):
        unit = make_unit()
        _, bd8 = service_of(unit, 8)
        _, bd64 = service_of(unit, 64)
        _, bd255 = service_of(unit, 255)
        assert bd64.alignment == 0.0
        assert bd8.alignment == unit.spec.tpu_sub64_penalty_ns
        assert bd255.alignment == unit.spec.tpu_sub8_penalty_ns
        assert bd255.alignment > bd8.alignment > bd64.alignment

    def test_stat_counters(self):
        unit = make_unit()
        service_of(unit, 255)
        service_of(unit, 8)
        service_of(unit, 0)
        # warm-up accesses inside service_of are 64 B-aligned, so only
        # the measured requests contribute to the alignment counters
        assert unit.stats.unaligned8 == 1
        assert unit.stats.unaligned64 == 1
        assert unit.stats.requests == 6  # 3 measured + 3 warm-ups


class TestPeriodicWave:
    def test_wave_has_2048_period(self):
        unit = make_unit()
        _, a = service_of(unit, 512)
        _, b = service_of(unit, 512 + 2048)
        assert a.wave == pytest.approx(b.wave)

    def test_wave_zero_at_segment_start_max_at_middle(self):
        unit = make_unit()
        _, start = service_of(unit, 0)
        _, middle = service_of(unit, 1024)
        assert start.wave == pytest.approx(0.0)
        assert middle.wave == pytest.approx(unit.spec.tpu_segment_wave_ns)


class TestHistoryEffects:
    def test_mr_switch_penalty(self):
        unit = make_unit()
        unit.admit(0.0, "mrA", 0, 64)
        _, bd_same = unit.admit(1e6, "mrA", 64, 64, want_breakdown=True)
        _, bd_diff = unit.admit(2e6, "mrB", 0, 64, want_breakdown=True)
        assert bd_same.mr_switch == 0.0
        assert bd_diff.mr_switch == unit.spec.tpu_mr_switch_ns
        assert unit.stats.mr_switches == 1

    def test_segment_switch_penalty(self):
        unit = make_unit()
        unit.admit(0.0, "mr", 0, 64)
        _, same_seg = unit.admit(1e6, "mr", 128, 64, want_breakdown=True)
        _, diff_seg = unit.admit(2e6, "mr", 4096, 64, want_breakdown=True)
        assert same_seg.segment == 0.0
        assert diff_seg.segment == unit.spec.tpu_segment_miss_ns

    def test_same_line_lock(self):
        unit = make_unit()
        unit.admit(0.0, "mr", 0, 64)
        _, repeat = unit.admit(1e6, "mr", 0, 64, want_breakdown=True)
        assert repeat.line_lock == unit.spec.tpu_same_line_lock_ns
        _, other = unit.admit(2e6, "mr", 128, 64, want_breakdown=True)
        assert other.line_lock == 0.0


class TestBankContention:
    def test_same_bank_back_to_back_serializes(self):
        spec = quiet_spec()
        unit_same = TranslationUnit(spec, rng=np.random.default_rng(0))
        # two immediate requests to the same bank (2048 apart)
        f1, _ = unit_same.admit(0.0, "mr", 0, 64)
        f2, bd = unit_same.admit(f1, "mr", 2048, 64, want_breakdown=True)
        assert bd.bank_wait > 0.0

        unit_diff = TranslationUnit(spec, rng=np.random.default_rng(0))
        g1, _ = unit_diff.admit(0.0, "mr", 0, 64)
        g2, bd2 = unit_diff.admit(g1, "mr", 512, 64, want_breakdown=True)
        assert bd2.bank_wait == 0.0
        assert f2 > g2

    def test_cross_requester_coupling(self):
        """A victim hammering one line raises an attacker's latency on
        the same bank but not on a distant bank — the core of the
        Section VI-B snooping attack."""
        spec = quiet_spec()

        def probe_latency(victim_offset, probe_offset):
            unit = TranslationUnit(spec, rng=np.random.default_rng(1))
            now = 0.0
            # victim floods its line
            for _ in range(4):
                now, _ = unit.admit(now, "mr", victim_offset, 64)
            start = now
            finish, _ = unit.admit(start, "mr", probe_offset, 64)
            return finish - start

        same_bank = probe_latency(0, 2048)   # same bank, different line
        far_bank = probe_latency(0, 1024)    # distant bank
        assert same_bank > far_bank

    def test_mtt_miss_penalty_on_cold_segment(self):
        unit = make_unit()
        _, cold = unit.admit(0.0, "mr", 0, 64, want_breakdown=True)
        _, warm = unit.admit(1e6, "mr", 8, 64, want_breakdown=True)
        assert cold.cache_miss > 0.0
        assert warm.cache_miss == 0.0


class TestPipelineSerialization:
    def test_back_to_back_requests_queue(self):
        unit = make_unit()
        f1, _ = unit.admit(0.0, "mr", 0, 64)
        # second request arrives immediately; must wait for the pipe
        f2, _ = unit.admit(0.0, "mr", 512, 64)
        assert f2 >= f1

    def test_reset_history_clears_state(self):
        unit = make_unit()
        unit.admit(0.0, "mrA", 0, 64)
        unit.reset_history()
        _, bd = unit.admit(0.0, "mrB", 0, 64, want_breakdown=True)
        assert bd.mr_switch == 0.0
        assert bd.bank_wait == 0.0


class TestJitter:
    def test_jitter_disabled_is_deterministic(self):
        unit = make_unit()
        lat1, _ = service_of(unit, 64)
        unit2 = make_unit()
        lat2, _ = service_of(unit2, 64)
        assert lat1 == lat2

    def test_jitter_enabled_varies(self):
        spec = cx5()
        unit = TranslationUnit(spec, rng=np.random.default_rng(7))
        lats = set()
        for i in range(10):
            lat, _ = service_of(unit, 64 * (i + 1) * 3)
            lats.add(round(lat, 3))
        assert len(lats) > 1

    def test_jitter_never_makes_service_negative(self):
        spec = dataclasses.replace(cx5(), jitter_frac=5.0, spike_prob=0.5)
        unit = TranslationUnit(spec, rng=np.random.default_rng(3))
        for i in range(200):
            lat, _ = service_of(unit, 64 * i)
            assert lat > 0.0
