"""Tests for ETS (mlnx_qos-style) scheduling and its interaction with
the arbitration quirks — the Section IV-B setup."""

import pytest

from repro.rnic import BandwidthAllocator, FluidFlow, cx5
from repro.verbs.enums import Opcode


def read_flow(size, tc, qp=8, **kw):
    return FluidFlow(opcode=Opcode.RDMA_READ, msg_size=size, qp_num=qp,
                     traffic_class=tc, **kw)


def write_flow(size, tc, qp=8, **kw):
    return FluidFlow(opcode=Opcode.RDMA_WRITE, msg_size=size, qp_num=qp,
                     traffic_class=tc, **kw)


class TestETSValidation:
    def test_bad_weights_rejected(self):
        with pytest.raises(ValueError):
            BandwidthAllocator(cx5(), ets_weights={})
        with pytest.raises(ValueError):
            BandwidthAllocator(cx5(), ets_weights={0: 0.0, 1: 1.0})


class TestETSGuarantees:
    def test_floor_lifts_starved_class(self):
        """Two saturating read flows: without ETS the big-message flow
        wins; 50/50 ETS lifts the loser to ~half of PCIe-out."""
        small = read_flow(1024, tc=0, qp=16)
        large = read_flow(65536, tc=1, qp=16)
        capacity = cx5().pcie.usable_rate_bps

        plain = BandwidthAllocator(cx5()).allocate([small, large])
        ets = BandwidthAllocator(
            cx5(), ets_weights={0: 0.5, 1: 0.5}
        ).allocate([small, large])
        # ETS never gives the small flow less than plain arbitration
        assert ets[small.flow_id] >= plain[small.flow_id] - 1.0
        # and the guaranteed class reaches a meaningful share
        assert ets[small.flow_id] >= 0.4 * capacity * 0.5

    def test_work_conserving_when_unsaturated(self):
        """A demand-limited tenant doesn't strand its ETS share."""
        tiny = read_flow(4096, tc=0, qp=2, demand_bps=1e9)
        big = read_flow(65536, tc=1, qp=16)
        ets = BandwidthAllocator(
            cx5(), ets_weights={0: 0.5, 1: 0.5}
        ).allocate([tiny, big])
        # the tiny tenant gets its demand (modulo the read-vs-read
        # arbitration quirk, which ETS cannot see)
        assert ets[tiny.flow_id] >= 0.85e9
        # the big flow takes far more than its 50% share
        assert ets[big.flow_id] > 0.6 * cx5().pcie.usable_rate_bps

    def test_unsaturated_nic_has_no_floors(self):
        a = read_flow(4096, tc=0, qp=1, demand_bps=2e9)
        b = read_flow(4096, tc=1, qp=1, demand_bps=2e9)
        plain = BandwidthAllocator(cx5()).allocate([a, b])
        ets = BandwidthAllocator(
            cx5(), ets_weights={0: 0.9, 1: 0.1}
        ).allocate([a, b])
        assert ets[a.flow_id] == pytest.approx(plain[a.flow_id])
        assert ets[b.flow_id] == pytest.approx(plain[b.flow_id])


class TestPaperSetup:
    def test_quirks_survive_5050_ets(self):
        """Section IV-B: 'each allocated 50% of the bandwidth —
        however, we observe unbalanced bandwidth'.  A big write flow
        still crushes a read flow well below its ETS half when the read
        cannot use its guarantee (opposite PCIe directions mean the NIC
        is not Rx-saturated, so no floor applies — the quirk rules)."""
        read = read_flow(2048, tc=0)
        write = write_flow(32768, tc=1)
        allocator = BandwidthAllocator(cx5(), ets_weights={0: 0.5, 1: 0.5})
        alloc = allocator.allocate([read, write])
        solo = allocator.solo_bandwidth(read)
        # the quirk-driven drop persists despite the 50/50 configuration
        assert alloc[read.flow_id] < 0.6 * solo

    def test_priority_covert_channel_survives_ets(self):
        """The Figure 9 receiver still sees two distinct levels when
        the defender configures strict 50/50 ETS."""
        monitor = read_flow(65536, tc=0, qp=1, demand_bps=200e6)
        allocator = BandwidthAllocator(cx5(), ets_weights={0: 0.5, 1: 0.5})
        levels = {}
        for label, size in (("bit1", 128), ("bit0", 2048)):
            tx = write_flow(size, tc=1, qp=16)
            alloc = allocator.allocate([monitor, tx])
            levels[label] = alloc[monitor.flow_id]
        assert levels["bit1"] > 1.3 * levels["bit0"]
