"""Integration tests: the full RNIC pipeline through the cluster."""

import numpy as np
import pytest

from repro.host import Cluster
from repro.rnic import FluidFlow, cx4, cx5, cx6
from repro.sim.units import MILLISECONDS
from repro.verbs.enums import Opcode


def small_cluster(spec_factory=cx5, seed=0, max_send_wr=16):
    cluster = Cluster(seed=seed)
    server = cluster.add_host("server", spec=spec_factory())
    client = cluster.add_host("client", spec=spec_factory())
    conn = cluster.connect(client, server, max_send_wr=max_send_wr)
    mr = server.reg_mr(2 * 1024 * 1024)
    return cluster, server, client, conn, mr


class TestPipelineLatency:
    def test_read_latency_is_microseconds(self):
        _, _, _, conn, mr = small_cluster()
        wc = conn.read_blocking(mr, 0, 64)
        assert wc.ok
        # a small read over one switch should be a few microseconds
        assert 1_000 < wc.latency < 20_000

    def test_larger_reads_take_longer(self):
        _, _, _, conn, mr = small_cluster()
        small = conn.read_blocking(mr, 0, 64).latency
        large = conn.read_blocking(mr, 0, 65536).latency
        assert large > small

    def test_devices_ordered_by_speed(self):
        latencies = {}
        for factory in (cx4, cx5, cx6):
            _, _, _, conn, mr = small_cluster(spec_factory=factory)
            # average a few to smooth jitter
            lats = [conn.read_blocking(mr, 64 * i, 64).latency for i in range(10)]
            latencies[factory().name] = np.mean(lats)
        assert latencies["CX-4"] > latencies["CX-5"] > latencies["CX-6"]

    def test_write_completes_and_moves_data(self):
        cluster, server, client, conn, mr = small_cluster()
        client.memory.write(conn.local_mr.addr, b"paper-reproduction")
        conn.post_write(mr, 128, 18)
        wcs = conn.await_completions(1)
        assert wcs[0].ok
        assert server.memory.read(mr.addr + 128, 18) == b"paper-reproduction"

    def test_atomic_through_pipeline(self):
        cluster, server, client, conn, mr = small_cluster()
        server.memory.write_u64(mr.addr, 10)
        conn.post_atomic(mr, 0, fetch_add=5)
        wcs = conn.await_completions(1)
        assert wcs[0].ok
        assert server.memory.read_u64(mr.addr) == 15


class TestULIBehaviour:
    def test_uli_converges_at_depth(self):
        """Lat_total grows ~linearly with queue depth once the queue is
        the bottleneck (the footnote-7 argument)."""
        means = {}
        for depth in (8, 16, 32):
            _, _, _, conn, mr = small_cluster(max_send_wr=depth)
            for _ in range(depth):
                conn.post_read(mr, 0, 64)
            lats = []
            for i in range(150):
                wc = conn.await_completions(1)[0]
                if i >= 50:
                    lats.append(wc.latency)
                conn.post_read(mr, 0, 64)
            means[depth] = np.mean(lats)
        # doubling the depth should roughly double the latency
        assert 1.6 < means[16] / means[8] < 2.4
        assert 1.6 < means[32] / means[16] < 2.4

    def test_contending_client_raises_uli(self):
        """Two clients on one server: the probe's ULI rises when the
        other client starts hammering the translation unit."""
        cluster = Cluster(seed=5)
        server = cluster.add_host("server", spec=cx5())
        probe_host = cluster.add_host("probe", spec=cx5())
        bully_host = cluster.add_host("bully", spec=cx5())
        probe_conn = cluster.connect(probe_host, server, max_send_wr=8)
        bully_conn = cluster.connect(bully_host, server, max_send_wr=32)
        mr = server.reg_mr(2 * 1024 * 1024)

        def measure(n=100):
            out = []
            while probe_conn.qp.outstanding_send < 8:
                probe_conn.post_read(mr, 0, 64)
            for _ in range(n):
                wc = probe_conn.await_completions(1)[0]
                out.append(wc.unit_latency_increase)
                probe_conn.post_read(mr, 0, 64)
            return np.mean(out[20:])

        quiet = measure()
        # bully saturates its queue with reads to scattered offsets
        for i in range(32):
            bully_conn.post_read(mr, (i * 192) % (1024 * 1024), 256)
        bully_running = True

        def keep_bullying():
            nonlocal bully_running
            while bully_conn.cq.poll(16):
                pass
            # re-arm
            while bully_conn.qp.outstanding_send < 32 and bully_running:
                bully_conn.post_read(mr, np.random.randint(0, 1024) * 256, 256)
            if bully_running:
                cluster.sim.schedule(5000.0, keep_bullying)

        cluster.sim.schedule(0.0, keep_bullying)
        loud = measure()
        bully_running = False
        assert loud > 1.3 * quiet


class TestCounters:
    def test_counters_accumulate(self):
        cluster, server, client, conn, mr = small_cluster()
        before = client.rnic.counters.snapshot()
        for _ in range(10):
            conn.read_blocking(mr, 0, 1024)
        after = client.rnic.counters.snapshot()
        assert after["tx_packets"] - before["tx_packets"] >= 10
        assert after["rx_bytes"] - before["rx_bytes"] >= 10 * 1024
        assert after["op_rdma_read"] == 10

    def test_traffic_class_attribution(self):
        cluster = Cluster(seed=1)
        server = cluster.add_host("server", spec=cx5())
        client = cluster.add_host("client", spec=cx5())
        conn = cluster.connect(client, server, traffic_class=3)
        mr = server.reg_mr(4096)
        conn.read_blocking(mr, 0, 64)
        snap = client.rnic.counters.snapshot()
        assert snap["tx_prio3_packets"] > 0
        assert snap["tx_prio0_packets"] == 0


class TestFluidIntegration:
    def test_fluid_flow_inflates_probe_latency(self):
        cluster, server, client, conn, mr = small_cluster()

        def mean_latency(n=20):
            # aligned targets in one warm segment; average out jitter
            return np.mean([
                conn.read_blocking(mr, 64 * (i % 8), 64).latency
                for i in range(n)
            ])

        mean_latency(5)  # warm the MPT/MTT caches
        base = mean_latency()
        flow = FluidFlow(opcode=Opcode.RDMA_WRITE, msg_size=65536, qp_num=16)
        server.rnic.add_fluid_flow(flow)
        loaded = mean_latency()
        server.rnic.remove_fluid_flow(flow)
        recovered = mean_latency()
        assert loaded > 1.05 * base
        assert recovered < loaded

    def test_fluid_bandwidth_query(self):
        cluster, server, _, _, _ = small_cluster()
        flow = FluidFlow(opcode=Opcode.RDMA_READ, msg_size=4096, qp_num=8)
        server.rnic.add_fluid_flow(flow)
        bw = server.rnic.fluid_bandwidth(flow)
        assert bw > 0
        server.rnic.remove_fluid_flow(flow)
        with pytest.raises(ValueError):
            server.rnic.fluid_bandwidth(flow)

    def test_duplicate_flow_rejected(self):
        cluster, server, _, _, _ = small_cluster()
        flow = FluidFlow(opcode=Opcode.RDMA_READ, msg_size=4096)
        server.rnic.add_fluid_flow(flow)
        with pytest.raises(ValueError):
            server.rnic.add_fluid_flow(flow)


class TestFabric:
    def test_transit_time_between_hosts(self):
        cluster, server, client, _, _ = small_cluster()
        transit = cluster.network.transit_ns(client.rnic, server.rnic)
        spec = client.rnic.spec
        assert transit == pytest.approx(2 * 200.0 + 300.0)

    def test_loopback_is_free(self):
        cluster, server, _, _, _ = small_cluster()
        assert cluster.network.transit_ns(server.rnic, server.rnic) == 0.0

    def test_unattached_endpoint_rejected(self):
        cluster, server, _, _, _ = small_cluster()
        with pytest.raises(KeyError):
            cluster.network.transit_ns(server.rnic, object())
