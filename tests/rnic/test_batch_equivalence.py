"""Equivalence suite for the batched message-descriptor fast path.

The contract under test: for every workload where the planner engages,
the batched path is *byte-identical* to the scalar per-message pipeline
— CQE payloads and order, NIC counters, station accumulators,
translation state (including its RNG stream), host memory bytes and the
final clock.  Where the planner cannot prove that (faults, loss,
mixed-validity cohorts, observability hooks), it must decline and the
scalar path must produce exactly what it always did.

Every test runs against each available engine core (the pure-Python
event core and, when built, the C extension) via
:func:`repro.sim.kernel.make_simulator_class`; one subprocess test
additionally pins the ``REPRO_SIM_ENGINE=python`` configuration, which
also routes the translation unit's serial tail through its pure-Python
twin.
"""

import hashlib
import os
import subprocess
import sys

import pytest

import repro.rnic.batch as batch
import repro.rnic.rnic as rnic_mod
from repro.faults.plan import get_scenario
from repro.host import Cluster
from repro.rnic import cx5
from repro.sim.event import PyEventCore
from repro.sim.kernel import make_simulator_class
from repro.verbs import Opcode, SendWR
from repro.verbs.engine import precheck_one_sided
from repro.verbs.enums import WCStatus

CORES = [PyEventCore]
try:
    from repro.sim import _speedups

    CORES.append(_speedups.EventCore)
except ImportError:
    pass

SIM_CLASSES = {core.__name__: make_simulator_class(core) for core in CORES}


@pytest.fixture(params=sorted(SIM_CLASSES), ids=sorted(SIM_CLASSES))
def sim_class(request):
    return SIM_CLASSES[request.param]


@pytest.fixture
def fast_path(monkeypatch):
    """Force the fast path ON and spy on every planner verdict."""
    verdicts = []
    real = batch.try_fast_path

    def spy(rnic, qp, wrs):
        took = real(rnic, qp, wrs)
        verdicts.append(took)
        return took

    monkeypatch.setattr(batch, "FAST_PATH_ENABLED", True)
    monkeypatch.setattr(rnic_mod, "try_fast_path", spy)
    return verdicts


def build(sim_class, seed=0, max_send_wr=512):
    cluster = Cluster(seed=seed)
    cluster.sim = sim_class(seed=seed)  # swap the core before any host
    server = cluster.add_host("server", spec=cx5())
    client = cluster.add_host("client", spec=cx5())
    conn = cluster.connect(client, server, max_send_wr=max_send_wr)
    mr = server.reg_mr(1 << 20)
    return cluster, server, client, conn, mr


def fingerprint(cluster, client, server, conn, cqes):
    """Everything the two paths must agree on, hashed and raw.

    The digest plays the role the kernel's determinism trace plays for
    the engine-equivalence suite: one opaque value that moves if any
    byte of the observable outcome moves.
    """
    stations = []
    for nic in (client.rnic, server.rnic):
        for st in (nic.pcie, nic.txpu, nic.rxpu, nic.wire_tx):
            stations.append(
                (st.name, st.busy_until, st.served, st.busy_ns, st.wait_ns)
            )
    state = (
        [
            (c.wr_id, c.status, c.opcode, c.byte_len, c.post_time,
             c.complete_time, c.queue_ahead)
            for c in cqes
        ],
        repr(client.rnic.counters.snapshot()),
        repr(server.rnic.counters.snapshot()),
        stations,
        repr(server.rnic.translation.stats),
        server.rnic.translation.rng.bit_generator.state,
        cluster.sim.now,
        server.memory.read(server.memory.base, 4096),
    )
    return state, hashlib.sha256(repr(state).encode()).hexdigest()


def run_uniform(sim_class, enabled, rounds=4, width=64, signal_every=1):
    cluster, server, client, conn, mr = build(sim_class)
    batch.FAST_PATH_ENABLED = enabled
    cqes = []
    for r in range(rounds):
        offs = [((r * 37 + i * 97) % 4096) * 8 for i in range(width)]
        wrs = conn.post_read_batch(mr, offs, signal_every=signal_every)
        nsig = sum(1 for w in wrs if w.signaled)
        cqes.extend(conn.await_completions(nsig))
        cluster.sim.run()  # drain any trailing unsignaled completions
    return fingerprint(cluster, client, server, conn, cqes), \
        cluster.sim.events_fired


def mixed_cohort(conn, mr, count=24):
    wrs = []
    for i in range(count):
        kind = i % 3
        if kind == 0:
            wrs.append(SendWR(
                opcode=Opcode.RDMA_READ, local_addr=conn.local_mr.addr,
                length=256, remote_addr=mr.addr + i * 64, rkey=mr.rkey,
                wr_id=100 + i))
        elif kind == 1:
            wrs.append(SendWR(
                opcode=Opcode.RDMA_WRITE, local_addr=conn.local_mr.addr,
                length=96, remote_addr=mr.addr + i * 64, rkey=mr.rkey,
                wr_id=100 + i))
        else:
            wrs.append(SendWR(
                opcode=Opcode.ATOMIC_FETCH_ADD,
                local_addr=conn.local_mr.addr,
                remote_addr=mr.addr + 2048 + i * 8, rkey=mr.rkey,
                compare_add=3, wr_id=100 + i))
    return wrs


class TestByteIdentity:
    def test_uniform_read_cohorts(self, sim_class, fast_path):
        (scalar, _), fired_scalar = run_uniform(sim_class, enabled=False)
        (batched, _), fired_batched = run_uniform(sim_class, enabled=True)
        assert fast_path.count(True) == 4
        assert batched == scalar
        # the point of the plan: the kernel dispatches only completion
        # events, not the ~10-events-per-message scalar pipeline
        assert fired_batched < fired_scalar / 3

    def test_selective_signaling(self, sim_class, fast_path):
        (scalar, dig_s), _ = run_uniform(
            sim_class, enabled=False, signal_every=16)
        (batched, dig_b), _ = run_uniform(
            sim_class, enabled=True, signal_every=16)
        assert fast_path.count(True) == 4
        assert dig_b == dig_s and batched == scalar

    def test_mixed_opcode_cohort(self, sim_class, fast_path):
        def run(enabled):
            cluster, server, client, conn, mr = build(sim_class)
            batch.FAST_PATH_ENABLED = enabled
            conn.qp.post_send_batch(mixed_cohort(conn, mr))
            cqes = conn.await_completions(24)
            return fingerprint(cluster, client, server, conn, cqes)

        scalar, dig_s = run(False)
        batched, dig_b = run(True)
        assert fast_path == [False, True]  # kill switch off, then on
        assert dig_b == dig_s and batched == scalar

    def test_back_to_back_cohorts_accumulate_history(self, sim_class,
                                                     fast_path):
        """Station horizons, translation caches and RNG streams carry
        across cohorts; a second cohort must replay scalar history, not
        restart from a clean slate."""
        (scalar, _), _ = run_uniform(sim_class, enabled=False, rounds=6,
                                     width=32)
        (batched, _), _ = run_uniform(sim_class, enabled=True, rounds=6,
                                      width=32)
        assert fast_path.count(True) == 6
        assert batched == scalar


class TestFallback:
    def test_planner_declines_are_harmless(self, sim_class, fast_path):
        """A cohort the planner rejects (here: below MIN_BATCH after a
        quiescence failure is impossible, so use an in-flight post)
        still completes exactly like the scalar path."""

        def run(enabled):
            cluster, server, client, conn, mr = build(sim_class)
            batch.FAST_PATH_ENABLED = enabled
            conn.post_read(mr, 0, 64)  # leaves the simulator non-quiescent
            conn.post_read_batch(mr, [64 * i for i in range(16)])
            cqes = conn.await_completions(17)
            return fingerprint(cluster, client, server, conn, cqes)

        scalar, _ = run(False)
        batched, _ = run(True)
        assert True not in fast_path  # quiescence check declined both
        assert batched == scalar

    def test_faulted_wqe_mid_batch_forces_scalar_fallback(self, sim_class,
                                                          fast_path):
        """A WQE that would complete with an error CQE sits mid-cohort:
        the planner must decline (its eligibility proof fails on that
        WQE) and the scalar path delivers the error + flush sequence —
        identically with the fast path enabled or disabled."""

        def run(enabled):
            cluster, server, client, conn, mr = build(sim_class)
            batch.FAST_PATH_ENABLED = enabled
            wrs = [
                SendWR(opcode=Opcode.RDMA_READ,
                       local_addr=conn.local_mr.addr, length=64,
                       remote_addr=mr.addr + 64 * i, rkey=mr.rkey,
                       wr_id=i)
                for i in range(12)
            ]
            # out-of-bounds remote address in the middle of the cohort
            wrs[5] = SendWR(opcode=Opcode.RDMA_READ,
                            local_addr=conn.local_mr.addr, length=64,
                            remote_addr=mr.end - 8, rkey=mr.rkey, wr_id=5)
            conn.qp.post_send_batch(wrs)
            cqes = conn.await_completions(12)
            return fingerprint(cluster, client, server, conn, cqes)

        scalar, _ = run(False)
        batched, _ = run(True)
        assert True not in fast_path
        assert batched == scalar
        statuses = [c[1] for c in scalar[0]]
        assert WCStatus.REM_ACCESS_ERR in statuses
        assert WCStatus.WR_FLUSH_ERR in statuses

    def test_trace_digest_pins_the_scalar_event_stream(self, sim_class,
                                                       fast_path):
        """With the determinism trace enabled the planner must decline:
        the digest folds every dispatched event, and the fast path
        deliberately does not dispatch the scalar stream."""
        cluster, server, client, conn, mr = build(sim_class)
        cluster.sim.enable_tracing()
        conn.post_read_batch(mr, [64 * i for i in range(16)])
        conn.await_completions(16)
        assert True not in fast_path
        assert cluster.sim.trace_digest is not None

    @pytest.mark.parametrize("scenario",
                             ["bursty-loss", "pause-storm", "rnr-pressure"])
    def test_fault_scenarios_complete_via_fallback(self, sim_class,
                                                   fast_path, scenario):
        """Armed fault plans (loss, PFC storms, RNR pressure) make the
        path unprovable; cohorts must fall back and still complete."""
        cluster, server, client, conn, mr = build(sim_class)
        plan = get_scenario(scenario)
        armed = plan.install(cluster, server=server, endpoints=[client])
        cqes = []
        for r in range(3):
            conn.post_read_batch(mr, [64 * i for i in range(16)])
            cqes.extend(conn.await_completions(16))
        armed.stop()
        assert len(cqes) == 48
        assert all(c.ok for c in cqes)
        # loss/storm scenarios taint the network or leave injector
        # events pending; RNR pressure keeps the sim non-quiescent
        assert True not in fast_path


class TestPrecheckAgreement:
    """The fused eligibility proof inside the planner and
    :func:`precheck_one_sided` are twins; they must agree on every
    would-be remote fault."""

    @staticmethod
    def eligible_pair(conn, mr, bad_wr):
        good = SendWR(opcode=Opcode.RDMA_READ,
                      local_addr=conn.local_mr.addr, length=64,
                      remote_addr=mr.addr, rkey=mr.rkey, wr_id=1)
        return [good, bad_wr]

    @pytest.mark.parametrize("fault", ["oob_low", "oob_high", "bad_flags"])
    def test_remote_faults_decline(self, sim_class, fast_path, fault):
        cluster, server, client, conn, mr = build(sim_class)
        from repro.verbs.enums import AccessFlags

        if fault == "bad_flags":
            target = server.reg_mr(4096, access=AccessFlags.LOCAL_WRITE)
            wr = SendWR(opcode=Opcode.RDMA_READ,
                        local_addr=conn.local_mr.addr, length=64,
                        remote_addr=target.addr, rkey=target.rkey, wr_id=2)
        elif fault == "oob_low":
            wr = SendWR(opcode=Opcode.RDMA_READ,
                        local_addr=conn.local_mr.addr, length=64,
                        remote_addr=mr.addr - 8, rkey=mr.rkey, wr_id=2)
        else:
            wr = SendWR(opcode=Opcode.RDMA_READ,
                        local_addr=conn.local_mr.addr, length=128,
                        remote_addr=mr.end - 64, rkey=mr.rkey, wr_id=2)
        assert precheck_one_sided(conn.qp, wr) is not WCStatus.SUCCESS
        took = batch.try_fast_path(
            client.rnic, conn.qp, self.eligible_pair(conn, mr, wr))
        assert took is False

    def test_success_precheck_accepts(self, sim_class, fast_path):
        cluster, server, client, conn, mr = build(sim_class)
        wr = SendWR(opcode=Opcode.RDMA_READ,
                    local_addr=conn.local_mr.addr, length=64,
                    remote_addr=mr.addr + 128, rkey=mr.rkey, wr_id=2)
        assert precheck_one_sided(conn.qp, wr) is WCStatus.SUCCESS
        conn.qp.post_send_batch(self.eligible_pair(conn, mr, wr))
        assert fast_path == [True]
        cluster.sim.run()  # drain the committed cohort


def test_python_engine_configuration_is_identical():
    """The full REPRO_SIM_ENGINE=python configuration (pure-Python event
    core *and* pure-Python translation serial tail) produces the same
    scalar/batched agreement, in a pinned subprocess."""
    code = (
        "import repro.rnic.batch as batch\n"
        "from repro.sim.kernel import KERNEL_ENGINE\n"
        "assert KERNEL_ENGINE == 'python', KERNEL_ENGINE\n"
        "from tests.rnic.test_batch_equivalence import run_uniform\n"
        "from repro.sim.kernel import Simulator\n"
        "(s, _), _ = run_uniform(Simulator, False, rounds=2, width=32)\n"
        "(b, _), _ = run_uniform(Simulator, True, rounds=2, width=32)\n"
        "assert b == s, 'python-engine scalar/batched divergence'\n"
        "print('ok')\n"
    )
    env = dict(os.environ)
    env["REPRO_SIM_ENGINE"] = "python"
    root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(root, "src"), root]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    out = subprocess.run([sys.executable, "-c", code], env=env,
                         capture_output=True, text=True, timeout=300)
    assert out.returncode == 0, out.stderr
    assert out.stdout.strip() == "ok"
