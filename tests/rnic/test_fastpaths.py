"""Tests for the inline-data fast path and the DDIO model."""

import dataclasses

import numpy as np
import pytest

from repro.host import Cluster
from repro.rnic import cx5
from repro.verbs import Opcode, QPStateError, SendWR


def small_cluster(spec=None, seed=0):
    cluster = Cluster(seed=seed)
    server = cluster.add_host("server", spec=spec if spec else cx5())
    client = cluster.add_host("client", spec=spec if spec else cx5())
    conn = cluster.connect(client, server, max_send_wr=8)
    mr = server.reg_mr(2 * 1024 * 1024)
    return cluster, server, client, conn, mr


def write_latency(conn, mr, inline, n=20, length=64):
    latencies = []
    for i in range(n):
        wr = SendWR(
            opcode=Opcode.RDMA_WRITE,
            local_addr=conn.local_mr.addr,
            length=length,
            remote_addr=mr.addr + 64 * (i % 8),
            rkey=mr.rkey,
            inline=inline,
        )
        conn.qp.post_send(wr)
        latencies.append(conn.await_completions(1)[0].latency)
    return float(np.mean(latencies[5:]))


class TestInlineData:
    def test_inline_write_is_faster(self):
        """IBV_SEND_INLINE skips the payload-gather DMA round trip."""
        _, _, _, conn, mr = small_cluster()
        regular = write_latency(conn, mr, inline=False)
        inline = write_latency(conn, mr, inline=True)
        assert inline < regular - 200  # at least the TLP round trip

    def test_inline_data_still_moves(self):
        cluster, server, client, conn, mr = small_cluster()
        client.memory.write(conn.local_mr.addr, b"inline-payload")
        wr = SendWR(
            opcode=Opcode.RDMA_WRITE,
            local_addr=conn.local_mr.addr,
            length=14,
            remote_addr=mr.addr,
            rkey=mr.rkey,
            inline=True,
        )
        conn.qp.post_send(wr)
        assert conn.await_completions(1)[0].ok
        assert server.memory.read(mr.addr, 14) == b"inline-payload"

    def test_inline_length_capped(self):
        _, _, _, conn, mr = small_cluster()
        limit = conn.qp.cap.max_inline_data
        wr = SendWR(
            opcode=Opcode.RDMA_WRITE,
            local_addr=conn.local_mr.addr,
            length=limit + 1,
            remote_addr=mr.addr,
            rkey=mr.rkey,
            inline=True,
        )
        with pytest.raises(QPStateError):
            conn.qp.post_send(wr)

    def test_inline_read_rejected(self):
        """Reads carry no request payload — nothing to inline."""
        _, _, _, conn, mr = small_cluster()
        wr = SendWR(
            opcode=Opcode.RDMA_READ,
            local_addr=conn.local_mr.addr,
            length=8,
            remote_addr=mr.addr,
            rkey=mr.rkey,
            inline=True,
        )
        with pytest.raises(QPStateError):
            conn.qp.post_send(wr)


class TestDDIO:
    @staticmethod
    def read_latencies(spec, n=60, seed=3):
        _, _, _, conn, mr = small_cluster(spec=spec, seed=seed)
        out = []
        for i in range(n):
            out.append(conn.read_blocking(mr, 64 * (i % 8), 64).latency)
        return np.asarray(out[10:])

    def test_disabled_by_default_like_the_paper(self):
        assert cx5().ddio_enabled is False

    def test_ddio_reduces_mean_latency(self):
        off = self.read_latencies(cx5())
        on = self.read_latencies(dataclasses.replace(cx5(), ddio_enabled=True))
        assert on.mean() < off.mean()

    def test_ddio_adds_variance(self):
        """The reason TABLE IV disables DDIO: bimodal DMA latency widens
        the measurement distribution."""
        quiet = dataclasses.replace(cx5(), jitter_frac=0.0, spike_prob=0.0)
        off = self.read_latencies(quiet)
        on = self.read_latencies(dataclasses.replace(quiet, ddio_enabled=True))
        assert on.std() > off.std() + 10.0
