"""Unit tests for FIFO service stations."""

import pytest

from repro.rnic import ServiceStation


def test_idle_station_serves_immediately():
    st = ServiceStation("pcie")
    assert st.admit(100.0, 50.0) == 150.0


def test_busy_station_queues():
    st = ServiceStation("pcie")
    st.admit(0.0, 100.0)
    finish = st.admit(10.0, 100.0)   # arrives mid-service
    assert finish == 200.0
    assert st.wait_ns == pytest.approx(90.0)


def test_gap_resets_queue():
    st = ServiceStation("pcie")
    st.admit(0.0, 100.0)
    assert st.admit(500.0, 100.0) == 600.0


def test_background_inflation():
    st = ServiceStation("pcie")
    st.set_background_utilization(0.5)
    assert st.inflation == pytest.approx(2.0)
    assert st.admit(0.0, 100.0) == pytest.approx(200.0)


def test_background_clamped_below_one():
    st = ServiceStation("pcie")
    st.set_background_utilization(1.0)
    assert st.inflation < 100.0  # finite


def test_negative_background_rejected():
    st = ServiceStation("pcie")
    with pytest.raises(ValueError):
        st.set_background_utilization(-0.1)


def test_negative_service_rejected():
    st = ServiceStation("pcie")
    with pytest.raises(ValueError):
        st.admit(0.0, -1.0)


def test_stats_accumulate():
    st = ServiceStation("pcie")
    st.admit(0.0, 10.0)
    st.admit(0.0, 10.0)
    assert st.served == 2
    assert st.busy_ns == pytest.approx(20.0)


def test_reset():
    st = ServiceStation("pcie")
    st.admit(0.0, 10.0)
    st.reset()
    assert st.busy_until == 0.0
    assert st.served == 0


class TestAdmitMany:
    def test_matches_scalar_admits(self):
        import numpy as np

        rng = np.random.default_rng(3)
        arrivals = np.sort(rng.uniform(0.0, 5000.0, size=200))
        service = rng.uniform(1.0, 120.0, size=200)

        scalar = ServiceStation("scalar")
        scalar.set_background_utilization(0.3)
        expected = np.array(
            [scalar.admit(t, s) for t, s in zip(arrivals, service)]
        )

        batched = ServiceStation("batched")
        batched.set_background_utilization(0.3)
        got = batched.admit_many(arrivals, service)

        assert np.allclose(got, expected)
        assert batched.busy_until == pytest.approx(scalar.busy_until)
        assert batched.served == scalar.served
        assert batched.busy_ns == pytest.approx(scalar.busy_ns)
        assert batched.wait_ns == pytest.approx(scalar.wait_ns)

    def test_queues_behind_existing_work(self):
        import numpy as np

        st = ServiceStation("pcie")
        st.admit(0.0, 1000.0)  # busy until t=1000
        finish = st.admit_many(
            np.array([10.0, 20.0]), np.array([100.0, 100.0])
        )
        assert finish[0] == pytest.approx(1100.0)
        assert finish[1] == pytest.approx(1200.0)

    def test_empty_batch(self):
        import numpy as np

        st = ServiceStation("pcie")
        out = st.admit_many(np.array([]), np.array([]))
        assert out.size == 0
        assert st.served == 0

    def test_shape_mismatch_rejected(self):
        import numpy as np

        st = ServiceStation("pcie")
        with pytest.raises(ValueError):
            st.admit_many(np.array([1.0, 2.0]), np.array([1.0]))

    def test_negative_service_rejected(self):
        import numpy as np

        st = ServiceStation("pcie")
        with pytest.raises(ValueError):
            st.admit_many(np.array([0.0]), np.array([-1.0]))
