"""Unit tests for the device parameter sheets (Table III)."""

import pytest

from repro.rnic import cx4, cx5, cx6, get_spec, SPEC_REGISTRY
from repro.sim.units import gbps


def test_table3_line_rates():
    assert cx4().line_rate_bps == gbps(25)
    assert cx5().line_rate_bps == gbps(100)
    assert cx6().line_rate_bps == gbps(200)


def test_table3_pcie_interfaces():
    assert cx4().pcie.generation == 3 and cx4().pcie.lanes == 8
    assert cx5().pcie.generation == 3 and cx5().pcie.lanes == 8
    assert cx6().pcie.generation == 4 and cx6().pcie.lanes == 16


def test_generation_speedups_monotonic():
    # newer silicon is faster in every latency knob that matters
    c4, c5, c6 = cx4(), cx5(), cx6()
    for field in ("tpu_base_ns", "txpu_ns", "rxpu_ns", "tpu_mr_switch_ns",
                  "tpu_sub8_penalty_ns", "tpu_bank_busy_ns"):
        assert getattr(c4, field) > getattr(c5, field) > getattr(c6, field), field
    assert c4.per_qp_mps < c5.per_qp_mps < c6.per_qp_mps


def test_bank_geometry_produces_2048_periodicity():
    # banks * line size must equal the observed 2048 B period (Fig 6)
    for spec in (cx4(), cx5(), cx6()):
        assert spec.tpu_banks * spec.tpu_line_bytes == spec.tpu_segment_bytes == 2048


def test_wire_bytes_includes_headers():
    spec = cx5()
    assert spec.wire_bytes(64) == 64 + spec.header_bytes


def test_serialize_ns_scales_with_size():
    spec = cx5()
    assert spec.serialize_ns(2048) > spec.serialize_ns(64)


def test_pcie_dma_time_monotonic_in_size():
    pcie = cx5().pcie
    times = [pcie.dma_time_ns(n) for n in (0, 64, 256, 1024, 4096)]
    assert times[0] == 0.0
    assert all(a < b for a, b in zip(times[1:], times[2:]))


def test_pcie_usable_below_raw():
    pcie = cx6().pcie
    assert pcie.usable_rate_bps < pcie.raw_rate_bps


def test_get_spec_lookup():
    assert get_spec("CX-5").name == "CX-5"
    assert set(SPEC_REGISTRY) == {"CX-4", "CX-5", "CX-6"}
    with pytest.raises(KeyError):
        get_spec("CX-7")


def test_pcie_is_bottleneck_on_cx5():
    # the real CX-5 on gen3 x8 cannot sustain line rate through PCIe —
    # the model preserves this well-known property
    spec = cx5()
    assert spec.pcie.usable_rate_bps < spec.line_rate_bps
