"""Tests for packet loss and RC retransmission."""

import dataclasses

import pytest

from repro.fabric import Link
from repro.host import Cluster
from repro.rnic import cx5
from repro.verbs import Opcode, QPType, SendWR, WCStatus
from repro.verbs.qp import QPCapabilities


def lossy_cluster(loss, seed=0, spec=None):
    cluster = Cluster(seed=seed)
    server = cluster.add_host("server", spec=spec if spec else cx5())
    client = cluster.add_host("client", spec=spec if spec else cx5(),
                              link=Link(loss_probability=loss))
    conn = cluster.connect(client, server, max_send_wr=8)
    mr = server.reg_mr(2 * 1024 * 1024)
    return cluster, server, client, conn, mr


class TestLinkValidation:
    def test_loss_probability_bounds(self):
        with pytest.raises(ValueError):
            Link(loss_probability=1.0)
        with pytest.raises(ValueError):
            Link(loss_probability=-0.1)

    def test_path_loss_combines_links(self):
        from repro.fabric import Network

        network = Network()
        network.attach("a", Link(loss_probability=0.1))
        network.attach("b", Link(loss_probability=0.2))
        assert network.loss_probability("a", "b") == pytest.approx(0.28)
        assert network.loss_probability("a", "a") == 0.0


class TestRCRetransmission:
    def test_lossless_path_never_retransmits(self):
        cluster, server, client, conn, mr = lossy_cluster(0.0)
        for i in range(30):
            assert conn.read_blocking(mr, 64 * (i % 8), 64).ok
        assert client.rnic.counters.retransmits == 0

    def test_reads_survive_moderate_loss(self):
        """RC retries mask loss: every read eventually succeeds, and
        the retransmit counter shows the recovery work."""
        cluster, server, client, conn, mr = lossy_cluster(0.1, seed=3)
        for i in range(50):
            wc = conn.read_blocking(mr, 64 * (i % 8), 64)
            assert wc.ok
        assert client.rnic.counters.retransmits > 0

    def test_retried_reads_take_longer(self):
        import numpy as np

        def mean_latency(loss, seed):
            _, _, _, conn, mr = lossy_cluster(loss, seed=seed)
            return np.mean([
                conn.read_blocking(mr, 64 * (i % 8), 64).latency
                for i in range(60)
            ])

        assert mean_latency(0.15, seed=1) > 1.2 * mean_latency(0.0, seed=1)

    def test_retry_budget_exhaustion(self):
        """On a nearly-dead link the retry budget runs out and the WQE
        completes with RETRY_EXC_ERR."""
        spec = dataclasses.replace(cx5(), retry_count=2)
        cluster, server, client, conn, mr = lossy_cluster(0.95, seed=5,
                                                          spec=spec)
        statuses = []
        for i in range(10):
            conn.post_read(mr, 0, 64)
            statuses.append(conn.await_completions(1)[0].status)
            if statuses[-1] is not WCStatus.SUCCESS:
                break
        assert WCStatus.RETRY_EXC_ERR in statuses

    def test_atomics_not_double_executed_on_response_loss(self):
        """The responder's replay cache must make retried atomics
        idempotent: N successful FAAs add exactly N."""
        cluster, server, client, conn, mr = lossy_cluster(0.15, seed=7)
        server.memory.write_u64(mr.addr, 0)
        successes = 0
        for _ in range(40):
            conn.post_atomic(mr, 0, fetch_add=1)
            if conn.await_completions(1)[0].ok:
                successes += 1
        assert client.rnic.counters.retransmits > 0
        assert server.memory.read_u64(mr.addr) == successes


class TestUnreliableTransport:
    def make_uc_pair(self, loss, seed=0):
        cluster = Cluster(seed=seed)
        server = cluster.add_host("server", spec=cx5())
        client = cluster.add_host("client", spec=cx5(),
                                  link=Link(loss_probability=loss))
        client_cq = client.context.create_cq()
        server_cq = server.context.create_cq()
        qp_c = client.context.create_qp(client.pd, client_cq,
                                        qp_type=QPType.UC,
                                        cap=QPCapabilities(max_send_wr=8))
        qp_s = server.context.create_qp(server.pd, server_cq,
                                        qp_type=QPType.UC,
                                        cap=QPCapabilities(max_send_wr=8))
        qp_c.connect(qp_s)
        mr = server.reg_mr(4096)
        buf = client.reg_mr(4096)
        return cluster, server, client, qp_c, client_cq, mr, buf

    def test_uc_write_completes_locally_even_when_lost(self):
        cluster, server, client, qp, cq, mr, buf = self.make_uc_pair(0.9, seed=2)
        losses = 0
        for i in range(20):
            client.memory.write(buf.addr, bytes([i]))
            qp.post_send(SendWR(
                opcode=Opcode.RDMA_WRITE, local_addr=buf.addr, length=1,
                remote_addr=mr.addr + i, rkey=mr.rkey,
            ))
            cluster.sim.run(until=cluster.sim.now + 100_000)
            wcs = cq.poll(4)
            assert wcs and all(wc.ok for wc in wcs)
            if server.memory.read(mr.addr + i, 1) != bytes([i]):
                losses += 1
        # fire-and-forget: completions all succeed, but data silently
        # vanished on most attempts
        assert losses > 5
        assert client.rnic.counters.retransmits == 0
