"""Error-path transport semantics: RNR NAKs, flushes, counters.

The robustness subsystem leans on three verbs-contract behaviours:
SENDs against an empty RQ ride the RNR NAK / min_rnr_timer path on
their own ``rnr_retry`` budget; a failing WQE moves the QP to ERROR
and flushes the rest with ``WR_FLUSH_ERR``; and NICCounters records
each recovery mechanism separately so telemetry can tell a pause storm
from a loss burst from RQ starvation.
"""

import dataclasses

import pytest

from repro.fabric import Link
from repro.host import Cluster
from repro.rnic import cx5
from repro.verbs import Opcode, QPState, RecvWR, SendWR, WCStatus
from repro.verbs.qp import QPCapabilities


def send_pair(spec=None, max_send_wr=8, seed=0):
    cluster = Cluster(seed=seed)
    spec = spec if spec else cx5()
    server = cluster.add_host("server", spec=spec)
    client = cluster.add_host("client", spec=spec)
    client_cq = client.context.create_cq()
    server_cq = server.context.create_cq()
    qp_c = client.context.create_qp(
        client.pd, client_cq, cap=QPCapabilities(max_send_wr=max_send_wr))
    qp_s = server.context.create_qp(
        server.pd, server_cq, cap=QPCapabilities(max_send_wr=max_send_wr))
    qp_c.connect(qp_s)
    send_mr = client.reg_mr(4096)
    recv_mr = server.reg_mr(4096)
    return cluster, client, server, qp_c, qp_s, client_cq, send_mr, recv_mr


class TestRNRSemantics:
    def test_late_recv_recovers_via_rnr_backoff(self):
        """A SEND that first meets an empty RQ succeeds once a recv is
        posted within the RNR budget, and counters show the NAKs."""
        (cluster, client, server, qp_c, qp_s,
         cq, send_mr, recv_mr) = send_pair()
        qp_c.post_send(SendWR(opcode=Opcode.SEND,
                              local_addr=send_mr.addr, length=64))
        # two backoff periods later, provide the buffer
        spec = client.rnic.spec
        cluster.sim.schedule(
            2.5 * spec.min_rnr_timer_ns,
            lambda: qp_s.post_recv(RecvWR(local_addr=recv_mr.addr,
                                          length=64)))
        cluster.run_for(20 * spec.min_rnr_timer_ns)
        wcs = cq.poll()
        assert len(wcs) == 1 and wcs[0].status is WCStatus.SUCCESS
        assert client.rnic.counters.rnr_naks >= 2
        assert client.rnic.counters.retransmits >= 2
        # the RNR path is NAK-driven, not timeout-driven
        assert client.rnic.counters.timeouts == 0

    def test_rnr_budget_separate_from_timeout_budget(self):
        """rnr_retry=1 exhausts after two attempts even though the ACK
        retry_count budget is untouched."""
        spec = dataclasses.replace(cx5(), rnr_retry=1, retry_count=7)
        (cluster, client, server, qp_c, qp_s,
         cq, send_mr, recv_mr) = send_pair(spec=spec)
        qp_c.post_send(SendWR(opcode=Opcode.SEND,
                              local_addr=send_mr.addr, length=64))
        cluster.run_for(50 * spec.min_rnr_timer_ns)
        wcs = cq.poll()
        assert len(wcs) == 1
        assert wcs[0].status is WCStatus.RNR_RETRY_EXC_ERR
        assert client.rnic.counters.rnr_naks == 2  # initial + 1 retry

    def test_rnr_backoff_honours_min_rnr_timer(self):
        """Completion cannot arrive before the budgeted backoffs have
        elapsed."""
        spec = dataclasses.replace(cx5(), rnr_retry=3)
        (cluster, client, server, qp_c, qp_s,
         cq, send_mr, recv_mr) = send_pair(spec=spec)
        qp_c.post_send(SendWR(opcode=Opcode.SEND,
                              local_addr=send_mr.addr, length=64))
        cluster.run_for(2 * spec.min_rnr_timer_ns)
        assert cq.poll() == []  # still backing off
        cluster.run_for(50 * spec.min_rnr_timer_ns)
        wcs = cq.poll()
        assert wcs and wcs[0].status is WCStatus.RNR_RETRY_EXC_ERR


class TestFlushSemantics:
    def lossy_reads(self, loss, retry_count, posts, seed=0):
        cluster = Cluster(seed=seed)
        spec = dataclasses.replace(cx5(), retry_count=retry_count)
        server = cluster.add_host("server", spec=spec)
        client = cluster.add_host("client", spec=spec,
                                  link=Link(loss_probability=loss))
        conn = cluster.connect(client, server, max_send_wr=posts)
        mr = server.reg_mr(4096)
        for i in range(posts):
            conn.post_read(mr, 0, 64)
        return cluster, client, conn

    def test_error_flushes_rest_of_queue(self):
        cluster, client, conn = self.lossy_reads(
            loss=0.98, retry_count=1, posts=6, seed=2)
        wcs = conn.await_completions(6)
        statuses = [wc.status for wc in wcs]
        assert WCStatus.RETRY_EXC_ERR in statuses
        first_error = statuses.index(WCStatus.RETRY_EXC_ERR)
        # every WQE behind the failing one flushes, error CQE first
        assert all(s is WCStatus.WR_FLUSH_ERR
                   for s in statuses[first_error + 1:])
        assert statuses[first_error + 1:], "nothing was flushed"
        assert conn.qp.state is QPState.ERR
        assert client.rnic.counters.flushed_wqes == len(statuses) - (
            first_error + 1)

    def test_modify_to_error_flushes_outstanding(self):
        (cluster, client, server, qp_c, qp_s,
         cq, send_mr, recv_mr) = send_pair()
        for _ in range(3):
            qp_c.post_send(SendWR(opcode=Opcode.SEND,
                                  local_addr=send_mr.addr, length=64))
        qp_c.modify(QPState.ERR)
        wcs = cq.drain()
        assert len(wcs) == 3
        assert all(wc.status is WCStatus.WR_FLUSH_ERR for wc in wcs)
        assert qp_c.outstanding_send == 0

    def test_flush_is_idempotent(self):
        (cluster, client, server, qp_c, qp_s,
         cq, send_mr, recv_mr) = send_pair()
        qp_c.post_send(SendWR(opcode=Opcode.SEND,
                              local_addr=send_mr.addr, length=64))
        qp_c.modify(QPState.ERR)
        assert qp_c.flush() == 0  # already empty
        assert len(cq.poll()) == 1

    def test_timeouts_counted_separately_from_rnr(self):
        cluster, client, conn = self.lossy_reads(
            loss=0.4, retry_count=7, posts=4, seed=3)
        conn.await_completions(4)
        assert client.rnic.counters.timeouts > 0
        assert client.rnic.counters.rnr_naks == 0
        assert client.rnic.counters.retransmits >= \
            client.rnic.counters.timeouts


class TestByteAccountingSymmetry:
    """Regression: response bytes were accounted with the *requester's*
    header geometry; with asymmetric specs the books didn't balance."""

    def run_reads(self, client_spec, server_spec, reads=20):
        cluster = Cluster(seed=1)
        server = cluster.add_host("server", spec=server_spec)
        client = cluster.add_host("client", spec=client_spec)
        conn = cluster.connect(client, server, max_send_wr=4)
        mr = server.reg_mr(4096)
        for i in range(reads):
            assert conn.read_blocking(mr, 64 * (i % 8), 256).ok
        return client.rnic.counters, server.rnic.counters

    def test_asymmetric_headers_balance(self):
        small = cx5()
        big = dataclasses.replace(cx5(), header_bytes=small.header_bytes + 38)
        client_counters, server_counters = self.run_reads(small, big)
        # responses: built by the server, received by the client
        assert client_counters.rx.bytes == server_counters.tx.bytes
        # requests: built by the client, received by the server
        assert client_counters.tx.bytes == server_counters.rx.bytes

    def test_symmetric_specs_balance_too(self):
        client_counters, server_counters = self.run_reads(cx5(), cx5())
        assert client_counters.rx.bytes == server_counters.tx.bytes
        assert client_counters.tx.bytes == server_counters.rx.bytes
