"""Tests for the Pythia and Kim-PCIe baselines."""

import pytest

from repro.baselines import (
    KimPCIeProbe,
    PythiaChannel,
    PythiaConfig,
    find_eviction_set,
)
from repro.covert import random_bits
from repro.rnic import SetAssocCache, cx5
from repro.rnic.translation import mr_cache_id


class TestEvictionSet:
    def test_finds_colliding_keys(self):
        cache = SetAssocCache(entries=64, ways=4)
        target = 1000
        candidates = list(range(2000, 4000))
        eviction_set = find_eviction_set(cache, target, candidates)
        assert len(eviction_set) == 4
        target_set = cache.set_index(mr_cache_id(target))
        for rkey in eviction_set:
            assert cache.set_index(mr_cache_id(rkey)) == target_set

    def test_eviction_set_actually_evicts(self):
        cache = SetAssocCache(entries=64, ways=4)
        target = 1000
        eviction_set = find_eviction_set(cache, target, list(range(2000, 4000)))
        cache.access(mr_cache_id(target))
        for rkey in eviction_set:
            cache.access(mr_cache_id(rkey))
        assert not cache.probe(mr_cache_id(target))


class TestPythiaChannel:
    def test_transmits_with_low_error(self):
        bits = random_bits(48, seed=1)
        result = PythiaChannel(cx5()).transmit(bits)
        assert result.error_rate < 0.1

    def test_bandwidth_tens_of_kbps(self):
        """The paper quotes 20 Kbps on CX-5; the model lands in the
        same decade."""
        bits = random_bits(48, seed=2)
        result = PythiaChannel(cx5()).transmit(bits)
        assert 10_000 < result.bandwidth_bps < 100_000

    def test_slower_than_ragnar_inter_mr(self):
        """Section I's headline: Ragnar ~3x Pythia on CX-5."""
        from repro.covert import InterMRChannel
        from repro.covert.inter_mr import InterMRConfig

        bits = random_bits(64, seed=3)
        pythia = PythiaChannel(cx5()).transmit(bits)
        ragnar = InterMRChannel(
            cx5(), InterMRConfig.best_for("CX-5")
        ).transmit(bits)
        ratio = ragnar.effective_bandwidth_bps / pythia.effective_bandwidth_bps
        assert ratio > 1.8

    def test_cache_telemetry_shows_eviction_storm(self):
        """What the cache guard sees: Pythia's misses/evictions."""
        telemetry = PythiaChannel(cx5()).cache_telemetry(random_bits(32, seed=4))
        assert telemetry["misses"] > 0.25 * telemetry["accesses"]
        assert telemetry["evictions"] > 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PythiaConfig(mr_pool=8)

    def test_empty_bits_rejected(self):
        with pytest.raises(ValueError):
            PythiaChannel(cx5()).transmit([])


class TestKimPCIe:
    def test_detects_activity(self):
        result = KimPCIeProbe(cx5()).detect_activity([1, 0, 1, 1, 0, 0, 1, 0])
        assert result.detection_accuracy >= 0.875
        assert result.separation > 0

    def test_cannot_recover_addresses(self):
        """Footnote 4: PCIe contention is not fine-grained enough —
        address recovery sits at chance (Ragnar's gets 95 %+)."""
        candidates = list(range(0, 1025, 64))
        accuracy = KimPCIeProbe(cx5()).address_recovery_accuracy(
            candidates, trials=34, seed=1
        )
        assert accuracy < 3.0 / len(candidates)

    def test_phase_validation(self):
        with pytest.raises(ValueError):
            KimPCIeProbe(cx5()).detect_activity([])
        with pytest.raises(ValueError):
            KimPCIeProbe(cx5()).address_recovery_accuracy([0], trials=0)
