"""End-to-end training tests for the NumPy network stack."""

import numpy as np
import pytest

from repro.ml import (
    Adam,
    ResNet1d,
    Trainer,
    accuracy,
    build_resnet1d,
    confusion_matrix,
    train_test_split,
)
from repro.ml.layers import Dense, ReLU, Sequential
from repro.ml.resnet import ResidualBlock1d


def synthetic_traces(n_per_class, num_classes, length=64, seed=0):
    """Toy version of the snoop traces: one bump per class position."""
    rng = np.random.default_rng(seed)
    xs, ys = [], []
    for cls in range(num_classes):
        center = int((cls + 0.5) * length / num_classes)
        for _ in range(n_per_class):
            trace = rng.normal(0, 0.35, length)
            trace[max(center - 2, 0) : center + 3] += 1.5
            xs.append(trace)
            ys.append(cls)
    x = np.asarray(xs)[:, None, :]  # (N, 1, L)
    y = np.asarray(ys)
    return x, y


class TestResidualBlock:
    def test_identity_shortcut_shapes(self):
        block = ResidualBlock1d(8, 8)
        x = np.random.default_rng(0).normal(size=(2, 8, 16))
        out = block.forward(x)
        assert out.shape == x.shape
        assert block.backward(np.ones_like(out)).shape == x.shape
        assert block.shortcut is None

    def test_projection_shortcut_on_channel_change(self):
        block = ResidualBlock1d(4, 8, stride=2)
        assert block.shortcut is not None
        x = np.random.default_rng(0).normal(size=(2, 4, 16))
        assert block.forward(x).shape == (2, 8, 8)


class TestResNet:
    def test_forward_shape(self):
        model = build_resnet1d(num_classes=17, input_length=257)
        x = np.random.default_rng(0).normal(size=(4, 1, 257))
        assert model.forward(x).shape == (4, 17)

    def test_predict_batches(self):
        model = build_resnet1d(num_classes=5, input_length=64)
        x = np.random.default_rng(0).normal(size=(10, 1, 64))
        preds = model.predict(x, batch_size=3)
        assert preds.shape == (10,)
        assert set(preds) <= set(range(5))

    def test_learns_separable_classes(self):
        """The full stack must actually learn: a small ResNet on the toy
        bump dataset reaches high test accuracy within a few epochs."""
        x, y = synthetic_traces(40, 4, length=64)
        x_train, y_train, x_test, y_test = train_test_split(x, y, 0.25, seed=1)
        model = ResNet1d(in_channels=1, num_classes=4, input_length=64,
                         stage_channels=(8, 16), blocks_per_stage=1, seed=0)
        trainer = Trainer(model, Adam(model, lr=3e-3), batch_size=32)
        trainer.fit(x_train, y_train, epochs=6)
        acc = accuracy(model.predict(x_test), y_test)
        assert acc > 0.9, f"test accuracy only {acc:.2f}"

    def test_loss_decreases(self):
        x, y = synthetic_traces(20, 3, length=32)
        model = ResNet1d(in_channels=1, num_classes=3, input_length=32,
                         stage_channels=(8,), blocks_per_stage=1, seed=0)
        trainer = Trainer(model, Adam(model, lr=1e-3), batch_size=16)
        history = trainer.fit(x, y, epochs=5)
        assert history[-1].loss < history[0].loss


class TestMLPTraining:
    def test_dense_network_learns_xor(self):
        rng = np.random.default_rng(0)
        x = rng.integers(0, 2, (400, 2)).astype(float)
        y = (x[:, 0].astype(int) ^ x[:, 1].astype(int))
        x += rng.normal(0, 0.05, x.shape)
        model = Sequential(Dense(2, 16, rng=rng), ReLU(), Dense(16, 2, rng=rng))
        trainer = Trainer(model, Adam(model, lr=1e-2), batch_size=32)
        trainer.fit(x, y, epochs=30)
        logits = model.forward(x)
        assert accuracy(np.argmax(logits, axis=1), y) > 0.95


class TestSplitsAndMetrics:
    def test_split_sizes(self):
        x = np.arange(100).reshape(100, 1)
        y = np.arange(100)
        x_tr, y_tr, x_te, y_te = train_test_split(x, y, 0.2, seed=3)
        assert len(x_tr) == 80 and len(x_te) == 20
        assert set(y_tr) | set(y_te) == set(range(100))
        assert set(y_tr) & set(y_te) == set()

    def test_split_validation(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((4, 1)), np.zeros(4), 1.5)
        with pytest.raises(ValueError):
            train_test_split(np.zeros((4, 1)), np.zeros(3), 0.5)

    def test_accuracy(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 0, 3])) == pytest.approx(2 / 3)
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))

    def test_confusion_matrix(self):
        preds = np.array([0, 1, 1, 2])
        labels = np.array([0, 1, 2, 2])
        matrix = confusion_matrix(preds, labels, 3)
        assert matrix[0, 0] == 1
        assert matrix[1, 1] == 1
        assert matrix[2, 1] == 1
        assert matrix[2, 2] == 1
        assert matrix.sum() == 4

    def test_confusion_matrix_validation(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([5]), np.array([0]), 3)

    def test_adam_validation(self):
        model = Sequential(Dense(2, 2))
        with pytest.raises(ValueError):
            Adam(model, lr=0.0)

    def test_trainer_validation(self):
        model = Sequential(Dense(2, 2))
        with pytest.raises(ValueError):
            Trainer(model, Adam(model), batch_size=0)
        trainer = Trainer(model, Adam(model))
        with pytest.raises(ValueError):
            trainer.fit(np.zeros((2, 2)), np.zeros(2, dtype=int), epochs=0)
