"""Layer unit tests, including numerical gradient checks."""

import numpy as np
import pytest

from repro.ml import (
    BatchNorm1d,
    Conv1d,
    Dense,
    Flatten,
    GlobalAvgPool1d,
    ReLU,
    Sequential,
)
from repro.ml.train import cross_entropy


def numerical_gradient(fn, array, eps=1e-5):
    grad = np.zeros_like(array)
    it = np.nditer(array, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = array[idx]
        array[idx] = original + eps
        plus = fn()
        array[idx] = original - eps
        minus = fn()
        array[idx] = original
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


def check_layer_gradients(layer, x, rtol=1e-4, atol=1e-6):
    """Verify input and parameter gradients against finite differences
    for a scalar loss sum(layer(x))."""
    layer.train()

    def loss():
        return float(layer.forward(x).sum())

    out = layer.forward(x)
    analytic_input = layer.backward(np.ones_like(out))
    numeric_input = numerical_gradient(loss, x)
    np.testing.assert_allclose(analytic_input, numeric_input,
                               rtol=rtol, atol=atol)
    for (owner, name) in layer.parameters():
        numeric = numerical_gradient(loss, owner.params[name])
        np.testing.assert_allclose(owner.grads[name], numeric,
                                   rtol=rtol, atol=atol, err_msg=name)


class TestConv1d:
    def test_output_shape(self):
        conv = Conv1d(2, 4, kernel=3)
        out = conv.forward(np.zeros((5, 2, 16)))
        assert out.shape == (5, 4, 16)  # same padding, stride 1

    def test_stride_halves_length(self):
        conv = Conv1d(1, 2, kernel=3, stride=2)
        out = conv.forward(np.zeros((1, 1, 16)))
        assert out.shape[2] == 8

    def test_gradients(self):
        rng = np.random.default_rng(0)
        conv = Conv1d(2, 3, kernel=3, rng=rng)
        x = rng.normal(size=(2, 2, 7))
        check_layer_gradients(conv, x)

    def test_gradients_with_stride(self):
        rng = np.random.default_rng(1)
        conv = Conv1d(1, 2, kernel=3, stride=2, rng=rng)
        x = rng.normal(size=(2, 1, 9))
        check_layer_gradients(conv, x)

    def test_wrong_channel_count_rejected(self):
        conv = Conv1d(2, 4, kernel=3)
        with pytest.raises(ValueError):
            conv.forward(np.zeros((1, 3, 8)))

    def test_known_convolution(self):
        # identity kernel reproduces the input
        conv = Conv1d(1, 1, kernel=1, pad=0)
        conv.params["w"][:] = 1.0
        conv.params["b"][:] = 0.0
        x = np.arange(6, dtype=float).reshape(1, 1, 6)
        np.testing.assert_allclose(conv.forward(x), x)


class TestBatchNorm1d:
    def test_normalizes_in_training(self):
        bn = BatchNorm1d(3)
        rng = np.random.default_rng(0)
        x = rng.normal(5.0, 3.0, (16, 3, 20))
        out = bn.forward(x)
        assert abs(out.mean()) < 1e-7
        assert out.std() == pytest.approx(1.0, abs=1e-2)

    def test_eval_uses_running_stats(self):
        bn = BatchNorm1d(2)
        rng = np.random.default_rng(1)
        for _ in range(50):
            bn.forward(rng.normal(2.0, 1.5, (8, 2, 10)))
        bn.eval()
        x = rng.normal(2.0, 1.5, (8, 2, 10))
        out = bn.forward(x)
        assert abs(out.mean()) < 0.2

    def test_gradients(self):
        rng = np.random.default_rng(2)
        bn = BatchNorm1d(2)
        x = rng.normal(size=(3, 2, 5))
        check_layer_gradients(bn, x, rtol=1e-3, atol=1e-5)

    def test_channel_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BatchNorm1d(2).forward(np.zeros((1, 3, 4)))


class TestDenseAndOthers:
    def test_dense_gradients(self):
        rng = np.random.default_rng(3)
        dense = Dense(4, 3, rng=rng)
        x = rng.normal(size=(5, 4))
        check_layer_gradients(dense, x)

    def test_relu(self):
        relu = ReLU()
        x = np.array([[-1.0, 2.0, -3.0, 4.0]])
        np.testing.assert_allclose(relu.forward(x), [[0, 2, 0, 4]])
        np.testing.assert_allclose(relu.backward(np.ones_like(x)),
                                   [[0, 1, 0, 1]])

    def test_global_avg_pool(self):
        pool = GlobalAvgPool1d()
        x = np.arange(12, dtype=float).reshape(1, 2, 6)
        out = pool.forward(x)
        np.testing.assert_allclose(out, [[2.5, 8.5]])
        grad = pool.backward(np.ones((1, 2)))
        np.testing.assert_allclose(grad, np.full((1, 2, 6), 1 / 6))

    def test_flatten_roundtrip(self):
        flat = Flatten()
        x = np.arange(24, dtype=float).reshape(2, 3, 4)
        out = flat.forward(x)
        assert out.shape == (2, 12)
        assert flat.backward(out).shape == (2, 3, 4)

    def test_sequential_composes(self):
        rng = np.random.default_rng(4)
        model = Sequential(Dense(4, 8, rng=rng), ReLU(), Dense(8, 2, rng=rng))
        x = rng.normal(size=(3, 4))
        out = model.forward(x)
        assert out.shape == (3, 2)
        grad = model.backward(np.ones_like(out))
        assert grad.shape == x.shape
        assert len(model.parameters()) == 4


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        loss, _ = cross_entropy(logits, np.array([0, 1]))
        assert loss < 1e-6

    def test_gradient_matches_numeric(self):
        rng = np.random.default_rng(5)
        logits = rng.normal(size=(4, 3))
        labels = np.array([0, 2, 1, 2])
        _, grad = cross_entropy(logits, labels)

        def loss_fn():
            return cross_entropy(logits, labels)[0]

        numeric = numerical_gradient(loss_fn, logits)
        np.testing.assert_allclose(grad, numeric, rtol=1e-4, atol=1e-7)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            cross_entropy(np.zeros((2, 3, 1)), np.array([0, 1]))
        with pytest.raises(ValueError):
            cross_entropy(np.zeros((2, 3)), np.array([0]))
