"""Fixture: capacity aggregated over an unordered set."""


def run_task(samples):
    rates = set(samples)
    return sum(rates)  # set iteration order is hash-dependent
