"""Clean twin: the operands are sorted before the reduction."""


def run_task(samples):
    rates = set(samples)
    return sum(sorted(rates))
