"""Clean twin: the seed is threaded in, not invented here."""
import numpy as np


def run_task(name, seed):
    rng = np.random.default_rng(seed)
    return rng.random()
