"""Fixture: an experiment constructing a seedless Generator."""
import numpy as np


def run_task(name):
    rng = np.random.default_rng()  # seedless: not replayable
    return rng.random()
