def tick():
    pass


def arm(sim):
    return sim.schedule(10.0, tick)
