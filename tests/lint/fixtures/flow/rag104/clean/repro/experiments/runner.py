"""Clean twin: handles are kept and cancelled on the stop path."""
from repro import sampler


def run_task(sim):
    handle = sampler.arm(sim)
    pending = [None]

    def spin():
        pending[0] = sim.schedule(5.0, spin)

    pending[0] = sim.schedule(5.0, spin)
    sim.run(until=100.0)
    sim.cancel(handle)
    sim.cancel(pending[0])
    return sim
