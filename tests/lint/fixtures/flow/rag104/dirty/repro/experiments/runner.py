"""Fixture: a returned handle dropped at the caller, and a
self-rescheduling closure chain with no handle at all."""
from repro import sampler


def run_task(sim):
    sampler.arm(sim)  # handle dropped: nothing can cancel the event

    def spin():
        sim.schedule(5.0, spin)  # unstoppable chain

    sim.schedule(5.0, spin)
    return sim
