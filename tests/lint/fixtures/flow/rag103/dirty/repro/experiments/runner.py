"""Fixture: install() with no uninstall on the task path."""
from repro import state


def run_task(name):
    state.install(name)
    return name
