_SESSION = None


def install(session):
    global _SESSION
    _SESSION = session  # never uninstalled: leaks across tasks
