_SESSION = None


def install(session):
    global _SESSION
    _SESSION = session


def uninstall():
    global _SESSION
    _SESSION = None
