"""Clean twin: install/uninstall bracket every task."""
from repro import state


def run_task(name):
    state.install(name)
    try:
        return name
    finally:
        state.uninstall()
