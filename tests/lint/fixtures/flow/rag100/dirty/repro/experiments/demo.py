from repro import util


def run():
    return util.jitter()
