"""Fixture: registry dispatch reaching a tainted helper two hops away."""
from repro.experiments import demo

REGISTRY = {"demo": demo.run}


def run_task(name):
    return REGISTRY[name]()
