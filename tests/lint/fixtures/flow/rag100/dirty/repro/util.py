import random


def jitter():
    return random.random()  # process-global RNG, two hops below run_task
