from repro import util


def run(sim):
    return util.jitter(sim.random.stream("demo"))
