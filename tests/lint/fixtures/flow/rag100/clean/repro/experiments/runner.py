"""Clean twin: the same shape, randomness from a named stream."""
from repro.experiments import demo

REGISTRY = {"demo": demo.run}


def run_task(name, sim):
    return REGISTRY[name](sim)
