def jitter(stream):
    return stream.random()
