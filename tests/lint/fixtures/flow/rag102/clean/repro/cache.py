_RESULTS = {}


def put(key, value):
    _RESULTS[key] = value


def reset():
    _RESULTS.clear()
