"""Clean twin: every task starts from an empty cache."""
from repro import cache


def run_task(name):
    cache.reset()
    cache.put(name, 1.0)
    return name
