"""Fixture: run_task fills a module-level cache and never resets it."""
from repro import cache


def run_task(name):
    cache.put(name, 1.0)
    return name
