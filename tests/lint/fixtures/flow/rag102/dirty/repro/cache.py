_RESULTS = {}


def put(key, value):
    _RESULTS[key] = value  # survives into the next task on this worker
