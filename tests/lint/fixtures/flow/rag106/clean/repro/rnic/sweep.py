"""Clean twin: one pre-drawn buffer feeds the whole sweep."""


def admit_sweep(sim, arrivals):
    rng = sim.random.stream("tpu.admit")
    delays = rng.exponential(120.0, size=len(arrivals))
    return [arrival + delay
            for arrival, delay in zip(arrivals, delays)]
