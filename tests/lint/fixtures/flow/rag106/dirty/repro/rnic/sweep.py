"""Fixture: a fresh named stream is drawn per descriptor element."""


def admit_sweep(sim, arrivals):
    served = []
    for arrival in arrivals:
        rng = sim.random.stream("tpu.admit")  # re-keyed every element
        served.append(arrival + rng.exponential(120.0))
    return served
