"""Fixture: real violations, each sanctioned by an inline suppression."""

import time


def elapsed(started: float) -> float:
    return time.time() - started  # ragnar-lint: disable=RAG001


def to_seconds(duration_ns: float) -> float:
    return duration_ns / 1e9  # ragnar-lint: disable=RAG007


def blanket(callback):
    try:
        return callback()
    except Exception:  # ragnar-lint: disable=all
        return None
