"""Fixture: RAG008 — I/O inside a sim/model layer."""


def fire(event) -> None:
    print("firing", event)
    with open("/tmp/trace.log", "a") as handle:
        handle.write(repr(event))
