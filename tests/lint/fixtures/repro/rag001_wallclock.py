"""Fixture: RAG001 — wall-clock reads in simulator code."""

import time
from datetime import datetime
from time import perf_counter as pc


def elapsed() -> float:
    started = time.time()
    _ = datetime.now()
    return pc() - started
