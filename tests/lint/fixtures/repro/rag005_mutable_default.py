"""Fixture: RAG005 — mutable default arguments."""


def accumulate(sample: float, history: list = []) -> list:
    history.append(sample)
    return history


def tally(key: str, *, counts: dict = {}) -> dict:
    counts[key] = counts.get(key, 0) + 1
    return counts
