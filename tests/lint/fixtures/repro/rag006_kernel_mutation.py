"""Fixture: RAG006 — kernel-state mutation from model code."""


def rewind(sim, target: float) -> None:
    sim.now = target


def drop_pending(sim) -> None:
    sim._queue.clear()
