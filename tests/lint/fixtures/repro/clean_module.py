"""Fixture: a module every RAGxxx rule accepts."""

import math


def to_seconds(duration_ns: float, nanoseconds_per_second: float) -> float:
    return duration_ns / nanoseconds_per_second


def nearly_equal(first_ns: float, second_ns: float) -> bool:
    return math.isclose(first_ns, second_ns, rel_tol=1e-9)


def guarded(mapping, key, default=None):
    try:
        return mapping[key]
    except KeyError:
        return default
