"""Fixture: RAG002 — global random / legacy numpy RNG state."""

import random

import numpy as np


def draw() -> float:
    np.random.seed(0)
    jitter = np.random.rand()
    return random.random() + jitter
