"""Fixture: RAG004 — bare/over-broad except clauses."""


def swallow(callback) -> int:
    try:
        return callback()
    except Exception:
        return -1


def swallow_everything(callback) -> int:
    try:
        return callback()
    except:  # noqa: E722
        return -1
