"""Fixture: RAG003 — exact float equality on time-like values."""


def same_instant(event_time: float, now: float) -> bool:
    return event_time == now


def is_zero_latency(latency_ns: float) -> bool:
    return latency_ns == 0.0
