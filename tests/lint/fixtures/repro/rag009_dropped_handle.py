"""Fixture: RAG009 — self-rescheduling loop whose stop() drops the
pending-event handle."""


class LeakyMonitor:
    """Exactly the BandwidthMonitor bug shape: _tick reschedules itself
    with the handle discarded and stop() only clears a flag, so a
    stop->start cycle runs two tick chains."""

    def __init__(self, sim, interval_ns: float) -> None:
        self.sim = sim
        self.interval_ns = interval_ns
        self.samples: list = []
        self._running = False

    def start(self) -> None:
        self._running = True
        self.sim.schedule(self.interval_ns, self._tick)

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        self.samples.append(self.sim.now)
        self.sim.schedule(self.interval_ns, self._tick)


class FlagKeeper:
    """Keeps the handle but stop() never cancels it — still RAG009."""

    def __init__(self, sim) -> None:
        self.sim = sim
        self._handle = None

    def start(self) -> None:
        self._handle = self.sim.schedule(10.0, self._poll)

    def stop(self) -> None:
        self._handle = None

    def _poll(self) -> None:
        self._handle = self.sim.schedule(10.0, self._poll)
