"""Fixture: RAG007 — raw unit literals instead of sim.units."""


def to_seconds(duration_ns: float) -> float:
    return duration_ns / 1e9


def to_milliseconds(duration_ns: float) -> float:
    return duration_ns / 1_000_000
