"""Cache, baseline, and CLI behaviour of the flow pass."""

import json
import pathlib

from repro.lint.__main__ import main
from repro.lint.flow import run_flow
from repro.lint.flow.baseline import Baseline, load_baseline
from repro.lint.flow.cache import FactsCache

FIXTURES = pathlib.Path(__file__).resolve().parents[1] / "fixtures" / "flow"


def write_pkg(tmp_path, body):
    pkg = tmp_path / "repro" / "experiments"
    pkg.mkdir(parents=True)
    runner = pkg / "runner.py"
    runner.write_text(body, encoding="utf-8")
    return runner


DIRTY = "def run_task(samples):\n    return sum(set(samples))\n"


# ----------------------------------------------------------------------
# cache
# ----------------------------------------------------------------------

def test_cache_cold_then_warm(tmp_path):
    write_pkg(tmp_path, DIRTY)
    cache_file = tmp_path / "cache.json"

    cache = FactsCache(cache_file)
    cold = run_flow([str(tmp_path)], cache=cache)
    assert cold.cache_misses >= 1 and cold.cache_hits == 0

    cache = FactsCache(cache_file)
    warm = run_flow([str(tmp_path)], cache=cache)
    assert warm.cache_misses == 0
    assert warm.cache_hits == cold.cache_misses

    # cached and uncached runs agree finding-for-finding
    assert [ff.fingerprint for ff in warm.findings] == \
        [ff.fingerprint for ff in cold.findings]


def test_cache_invalidates_on_content_change(tmp_path):
    runner = write_pkg(tmp_path, DIRTY)
    cache_file = tmp_path / "cache.json"
    run_flow([str(tmp_path)], cache=FactsCache(cache_file))

    runner.write_text(DIRTY + "\n# appended\n", encoding="utf-8")
    report = run_flow([str(tmp_path)], cache=FactsCache(cache_file))
    assert report.cache_misses >= 1


def test_cache_ignores_stale_schema(tmp_path):
    cache_file = tmp_path / "cache.json"
    cache_file.write_text(json.dumps({"schema": -1, "files": {}}),
                          encoding="utf-8")
    cache = FactsCache(cache_file)
    assert len(cache) == 0


def test_corrupt_cache_degrades_to_cold_run(tmp_path):
    write_pkg(tmp_path, DIRTY)
    cache_file = tmp_path / "cache.json"
    cache_file.write_text("not json{", encoding="utf-8")
    report = run_flow([str(tmp_path)], cache=FactsCache(cache_file))
    assert report.cache_misses >= 1
    assert not report.clean


# ----------------------------------------------------------------------
# baseline
# ----------------------------------------------------------------------

def test_baseline_suppresses_known_findings(tmp_path):
    write_pkg(tmp_path, DIRTY)
    first = run_flow([str(tmp_path)])
    assert not first.clean

    baseline = Baseline(ff.fingerprint for ff in first.findings)
    second = run_flow([str(tmp_path)], baseline=baseline)
    assert second.clean
    assert second.baselined == len(first.findings)


def test_baseline_round_trips_through_disk(tmp_path):
    write_pkg(tmp_path, DIRTY)
    report = run_flow([str(tmp_path)])
    baseline = Baseline(ff.fingerprint for ff in report.findings)

    path = tmp_path / "baseline.json"
    baseline.save(path)
    loaded = load_baseline(path)
    assert loaded is not None
    assert sorted(loaded) == sorted(baseline)


def test_missing_baseline_loads_as_none(tmp_path):
    assert load_baseline(tmp_path / "absent.json") is None


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def run_cli(argv, capsys):
    code = main(argv)
    return code, capsys.readouterr().out


def test_cli_flow_fails_on_dirty_fixture(capsys):
    code, out = run_cli(["--flow", "--no-cache",
                         str(FIXTURES / "rag100" / "dirty")], capsys)
    assert code == 1
    assert "RAG100" in out


def test_cli_flow_passes_on_clean_fixture(capsys):
    code, out = run_cli(["--flow", "--no-cache",
                         str(FIXTURES / "rag100" / "clean")], capsys)
    assert code == 0
    assert "0 finding(s)" in out


def test_cli_flow_json_format(capsys):
    code, out = run_cli(["--flow", "--no-cache", "--format", "json",
                         str(FIXTURES / "rag101" / "dirty")], capsys)
    assert code == 1
    payload = json.loads(out)
    assert payload["clean"] is False
    assert {f["rule_id"] for f in payload["findings"]} == {"RAG101"}


def test_cli_flow_sarif_format(capsys):
    code, out = run_cli(["--flow", "--no-cache", "--format", "sarif",
                         str(FIXTURES / "rag102" / "dirty")], capsys)
    assert code == 1
    sarif = json.loads(out)
    assert sarif["version"] == "2.1.0"
    (run,) = sarif["runs"]
    assert {r["ruleId"] for r in run["results"]} == {"RAG102"}
    (result,) = run["results"]
    region = result["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] >= 1 and region["startColumn"] >= 1


def test_cli_classic_sarif_format(capsys):
    """--format sarif works on the per-file path too (satellite)."""
    classic = (pathlib.Path(__file__).resolve().parents[1] / "fixtures"
               / "repro" / "rag007_unit_literal.py")
    code, out = run_cli([str(classic), "--format", "sarif"], capsys)
    assert code == 1
    sarif = json.loads(out)
    assert {r["ruleId"] for r in sarif["runs"][0]["results"]} == {"RAG007"}


def test_cli_update_baseline_then_clean(tmp_path, capsys):
    write_pkg(tmp_path, DIRTY)
    baseline = tmp_path / "baseline.json"
    code, out = run_cli(["--flow", "--no-cache", str(tmp_path),
                         "--baseline", str(baseline),
                         "--update-baseline"], capsys)
    assert code == 0
    assert "baseline updated" in out

    code, out = run_cli(["--flow", "--no-cache", str(tmp_path),
                         "--baseline", str(baseline)], capsys)
    assert code == 0
    assert "1 baselined" in out


def test_cli_cache_roundtrip(tmp_path, capsys):
    write_pkg(tmp_path, "def run_task(name):\n    return name\n")
    cache = tmp_path / "cache.json"
    run_cli(["--flow", str(tmp_path), "--cache", str(cache)], capsys)
    code, out = run_cli(["--flow", str(tmp_path), "--cache", str(cache)],
                        capsys)
    assert code == 0
    assert "0 parsed" in out


def test_cli_list_rules_includes_flow_pack(capsys):
    code, out = run_cli(["--list-rules"], capsys)
    assert code == 0
    for rule_id in ("RAG100", "RAG101", "RAG102",
                    "RAG103", "RAG104", "RAG105"):
        assert rule_id in out
