"""Unit coverage for the per-file fact extraction layer."""

from repro.lint.flow.facts import FileFacts, extract_facts


def fn(facts, name):
    for entry in facts.functions:
        if entry.qualname.endswith(name):
            return entry
    raise AssertionError(
        f"{name} not extracted; have "
        f"{[f.qualname for f in facts.functions]}")


def test_module_anchoring_at_repro():
    facts = extract_facts("x = 1\n", path="src/repro/sim/kernel.py")
    assert facts.module == "repro.sim.kernel"
    assert facts.module_path == "repro/sim/kernel.py"


def test_package_init_drops_the_suffix():
    facts = extract_facts("x = 1\n", path="src/repro/obs/__init__.py")
    assert facts.module == "repro.obs"


def test_relative_imports_resolve_against_the_package():
    source = "from .runtime import install\nfrom . import trace\n"
    facts = extract_facts(source, path="src/repro/obs/__init__.py")
    assert facts.aliases["install"] == "repro.obs.runtime.install"
    assert facts.aliases["trace"] == "repro.obs.trace"


def test_call_targets_resolve_through_import_aliases():
    source = (
        "import numpy as np\n"
        "from repro.sim import kernel as k\n"
        "def go():\n"
        "    k.run()\n"
        "    np.zeros(3)\n"
    )
    facts = extract_facts(source, path="src/repro/x.py")
    targets = {c.target for c in fn(facts, "go").calls
               if c.form == "direct"}
    assert "repro.sim.kernel.run" in targets
    assert "numpy.zeros" in targets


def test_rng_kinds():
    source = (
        "import os\n"
        "import random\n"
        "import numpy as np\n"
        "def bad():\n"
        "    random.random()\n"
        "    os.urandom(8)\n"
        "    np.random.default_rng()\n"
        "    np.random.default_rng(0)\n"
        "def ok(seed):\n"
        "    np.random.default_rng(seed)\n"
    )
    facts = extract_facts(source, path="src/repro/x.py")
    kinds = sorted(r.kind for r in fn(facts, "bad").rng)
    assert kinds == ["entropy", "global", "literal_seed", "seedless"]
    assert fn(facts, "ok").rng == []


def test_schedule_handle_fates():
    source = (
        "def helper(sim, cb):\n"
        "    return sim.schedule(1.0, cb)\n"
        "def local_cancelled(sim, cb):\n"
        "    h = sim.schedule(1.0, cb)\n"
        "    sim.cancel(h)\n"
        "def dropped(sim, cb):\n"
        "    sim.schedule(1.0, cb)\n"
        "def chain(sim):\n"
        "    def tick():\n"
        "        sim.schedule(1.0, tick)\n"
        "    sim.schedule(1.0, tick)\n"
    )
    facts = extract_facts(source, path="src/repro/x.py")
    (returned,) = fn(facts, "helper").schedules
    assert returned.fate == "returned"
    assert fn(facts, "helper").returns_handle

    (local,) = fn(facts, "local_cancelled").schedules
    assert local.fate == "local" and local.cancelled_locally

    (drop,) = fn(facts, "dropped").schedules
    assert drop.fate == "discarded"

    (inner,) = fn(facts, "chain.tick").schedules
    assert inner.self_chain

    (outer,) = fn(facts, "x.chain").schedules
    assert outer.callback == "repro.x.chain.tick"
    assert not outer.self_chain


def test_global_write_kinds():
    source = (
        "_CACHE = {}\n"
        "_SESSION = None\n"
        "def put(k, v):\n"
        "    _CACHE[k] = v\n"
        "def install(s):\n"
        "    global _SESSION\n"
        "    _SESSION = s\n"
        "def uninstall():\n"
        "    global _SESSION\n"
        "    _SESSION = None\n"
        "def reset():\n"
        "    _CACHE.clear()\n"
        "def local_shadow(k):\n"
        "    _CACHE = {}\n"
        "    _CACHE[k] = 1\n"
    )
    facts = extract_facts(source, path="src/repro/x.py")
    assert facts.globals["_CACHE"]["mutable"]
    assert [w.kind for w in fn(facts, "put").writes] == ["mutate"]
    assert [w.kind for w in fn(facts, "install").writes] == ["rebind"]
    assert [w.kind for w in fn(facts, "uninstall").writes] == ["reset"]
    assert [w.kind for w in fn(facts, "x.reset").writes] == ["reset"]
    assert fn(facts, "local_shadow").writes == []


def test_registry_dicts_resolve_their_values():
    source = (
        "from repro.experiments import table1\n"
        "def local_run():\n"
        "    pass\n"
        "REGISTRY = {'t1': table1.run, 'local': local_run}\n"
    )
    facts = extract_facts(source, path="src/repro/experiments/runner.py")
    assert sorted(facts.registries["REGISTRY"]) == [
        "repro.experiments.runner.local_run",
        "repro.experiments.table1.run",
    ]


def test_reduction_sites():
    source = (
        "def bad(samples):\n"
        "    rates = set(samples)\n"
        "    total = 0.0\n"
        "    for r in rates:\n"
        "        total += r\n"
        "    return sum(rates) + sum(r for r in rates)\n"
        "def ok(samples):\n"
        "    return sum(sorted(set(samples)))\n"
    )
    facts = extract_facts(source, path="src/repro/x.py")
    kinds = sorted(r.kind for r in fn(facts, "bad").reductions)
    assert kinds == ["sum_over_set", "sum_over_set",
                     "unordered_accumulation"]
    assert fn(facts, "ok").reductions == []


def test_param_fates():
    source = (
        "def cancels(sim, handle):\n"
        "    sim.cancel(handle)\n"
        "def stores(self, handle):\n"
        "    self.pending = handle\n"
        "def returns(handle):\n"
        "    return handle\n"
        "def drops(handle):\n"
        "    pass\n"
    )
    facts = extract_facts(source, path="src/repro/x.py")
    assert fn(facts, "cancels").param_fates.cancelled == ["handle"]
    assert fn(facts, "stores").param_fates.stored == ["handle"]
    assert fn(facts, "returns").param_fates.returned == ["handle"]
    fates = fn(facts, "drops").param_fates
    assert not (fates.cancelled or fates.stored or fates.returned)


def test_facts_round_trip_through_json_dict():
    source = (
        "import random\n"
        "_CACHE = {}\n"
        "class Sampler:\n"
        "    def start(self, sim):\n"
        "        self._h = sim.schedule(1.0, self._tick)\n"
        "    def _tick(self):\n"
        "        random.random()\n"
        "    def stop(self, sim):\n"
        "        sim.cancel(self._h)\n"
    )
    facts = extract_facts(source, path="src/repro/x.py")
    clone = FileFacts.from_dict(facts.to_dict())
    assert clone.to_dict() == facts.to_dict()
    assert [f.qualname for f in clone.functions] == \
        [f.qualname for f in facts.functions]


def test_parse_error_is_captured_not_raised():
    facts = extract_facts("def broken(:\n", path="src/repro/x.py")
    assert "line 1" in facts.parse_error
