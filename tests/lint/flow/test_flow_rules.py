"""Every flow rule has a dirty fixture it flags and a clean twin it
does not — the pass is judged on both halves."""

import pathlib

import pytest

from repro.lint.flow import run_flow

FIXTURES = pathlib.Path(__file__).resolve().parents[1] / "fixtures" / "flow"

RULES = ("rag100", "rag101", "rag102", "rag103", "rag104", "rag105",
         "rag106")


def rule_ids(report):
    return sorted({ff.finding.rule_id for ff in report.findings
                   if not ff.finding.suppressed})


@pytest.mark.parametrize("rule", RULES)
def test_dirty_fixture_is_flagged(rule):
    report = run_flow([str(FIXTURES / rule / "dirty")])
    assert rule_ids(report) == [rule.upper()], (
        f"{rule} dirty fixture should trip exactly {rule.upper()}, "
        f"got {rule_ids(report)}")


@pytest.mark.parametrize("rule", RULES)
def test_clean_twin_is_not_flagged(rule):
    report = run_flow([str(FIXTURES / rule / "clean")])
    details = "\n".join(ff.finding.format() for ff in report.findings)
    assert report.clean, f"{rule} clean twin tripped:\n{details}"


def test_rag100_message_names_the_cross_file_chain():
    """The finding explains HOW the tainted site is reachable."""
    report = run_flow([str(FIXTURES / "rag100" / "dirty")])
    (finding,) = [ff.finding for ff in report.findings]
    assert "random.random" in finding.message
    assert "reachable via" in finding.message
    assert "repro.util.jitter" in finding.message


def test_rag104_dirty_has_both_escape_shapes():
    """The fixture encodes a dropped returned handle AND an
    unstoppable self-rescheduling chain."""
    report = run_flow([str(FIXTURES / "rag104" / "dirty")])
    messages = [ff.finding.message for ff in report.findings]
    assert len(messages) == 2
    assert any("drops the schedule handle returned by" in m
               for m in messages)
    assert any("self-rescheduling" in m for m in messages)


def test_fingerprints_are_line_number_free():
    """Inserting a comment above a finding must not invalidate its
    baseline fingerprint."""
    dirty = FIXTURES / "rag105" / "dirty"
    report = run_flow([str(dirty)])
    (before,) = [ff.fingerprint for ff in report.findings]

    runner = dirty / "repro" / "experiments" / "runner.py"
    original = runner.read_text(encoding="utf-8")
    try:
        runner.write_text("# an unrelated leading comment\n" + original,
                          encoding="utf-8")
        report = run_flow([str(dirty)])
        (after,) = [ff.fingerprint for ff in report.findings]
    finally:
        runner.write_text(original, encoding="utf-8")
    assert before == after


def test_inline_suppression_downgrades_the_finding(tmp_path):
    pkg = tmp_path / "repro" / "experiments"
    pkg.mkdir(parents=True)
    (pkg / "runner.py").write_text(
        "def run_task(samples):\n"
        "    rates = set(samples)\n"
        "    return sum(rates)  # ragnar-lint: disable=RAG105\n",
        encoding="utf-8")
    report = run_flow([str(tmp_path)])
    assert report.clean
    assert len(report.suppressed) == 1
    assert report.suppressed[0].rule_id == "RAG105"
