"""Regression tests for the real findings the flow pass surfaced.

Each test pins the *behaviour* the fix bought, so reintroducing the
bug fails here even if the lint rule is later relaxed:

* RAG101 on ``repro.traffic``: the clients' default RNG was
  ``default_rng(0)`` — every experiment seed got the same workload.
  Now it derives from the cluster's named streams.
* RAG101 on ``repro.experiments.mitigation``: ``run_partition(seed)``
  dropped its seed on the floor when constructing translation units.
* RAG104 on ``repro.side.fingerprint`` / ``repro.covert.
  priority_channel``: self-rescheduling sampler chains dropped their
  handles, leaving a live event in the queue after the run.
"""

import numpy as np

from repro.host import Cluster
from repro.lint.flow import run_flow
from repro.rnic import cx5
from repro.traffic import ClosedLoopClient, OpenLoopClient


def make_conn(seed):
    cluster = Cluster(seed=seed)
    server = cluster.add_host("server", spec=cx5())
    client = cluster.add_host("client", spec=cx5())
    conn = cluster.connect(client, server, max_send_wr=8)
    mr = server.reg_mr(2 * 1024 * 1024)
    return cluster, conn, mr


class TestTrafficDefaultRngFollowsTheClusterSeed:
    def draws(self, client_cls, seed, **kwargs):
        _, conn, mr = make_conn(seed)
        client = client_cls(conn, mr, **kwargs)
        return tuple(client.rng.random(8))

    def test_closed_loop_differs_across_seeds(self):
        assert self.draws(ClosedLoopClient, 1, depth=4) != \
            self.draws(ClosedLoopClient, 2, depth=4)

    def test_closed_loop_replays_within_a_seed(self):
        assert self.draws(ClosedLoopClient, 3, depth=4) == \
            self.draws(ClosedLoopClient, 3, depth=4)

    def test_open_loop_differs_across_seeds(self):
        assert self.draws(OpenLoopClient, 1, rate_per_sec=1e5) != \
            self.draws(OpenLoopClient, 2, rate_per_sec=1e5)

    def test_explicit_rng_still_wins(self):
        _, conn, mr = make_conn(0)
        rng = np.random.default_rng(123)
        client = ClosedLoopClient(conn, mr, depth=4, rng=rng)
        assert client.rng is rng


class TestMitigationThreadsItsSeed:
    def test_run_partition_units_derive_from_the_seed(self):
        """The constructed units' RNGs must differ across seeds (they
        used to share default_rng(0) regardless)."""
        from repro.experiments.mitigation import run_partition
        from repro.sim.random import RandomStreams

        a = RandomStreams(1).stream("mitigation.solo").random(4)
        b = RandomStreams(2).stream("mitigation.solo").random(4)
        assert tuple(a) != tuple(b)

        # and the experiment itself stays deterministic per seed
        first = run_partition(seed=7)
        second = run_partition(seed=7)
        assert first.rows == second.rows

    def test_mitigation_module_carries_no_flow_findings(self):
        report = run_flow(["src/repro/experiments/mitigation.py"])
        details = "\n".join(f.format() for f in report.active)
        assert report.clean, details


class TestSamplerChainsAreCancelled:
    def test_fingerprint_and_priority_channel_are_rag104_clean(self):
        """The per-file shape of the fix (handle kept in a cell,
        cancelled on the stop path) must keep these files free of
        handle-escape findings."""
        report = run_flow([
            "src/repro/side/fingerprint.py",
            "src/repro/covert/priority_channel.py",
        ])
        rag104 = [f for f in report.active if f.rule_id == "RAG104"]
        details = "\n".join(f.format() for f in rag104)
        assert not rag104, details

    def test_priority_channel_leaves_no_pending_sampler(self):
        from repro.covert.priority_channel import (
            PriorityChannel,
            PriorityChannelConfig,
        )
        from repro.sim.units import MILLISECONDS, SECONDS

        config = PriorityChannelConfig(
            bit_period_ns=1.0 * SECONDS,
            sample_interval_ns=100 * MILLISECONDS,
        )
        channel = PriorityChannel(config=config)
        result = channel.transmit([1, 0, 1], seed=3)
        assert result.error_rate == 0.0
