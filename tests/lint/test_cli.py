"""CLI behaviour: exit codes, formats, fixture detection, excludes."""

import json
import pathlib

import pytest

from repro.lint.__main__ import main

FIXTURES = pathlib.Path(__file__).resolve().parent / "fixtures" / "repro"

ALL_RULES = {"RAG001", "RAG002", "RAG003", "RAG004",
             "RAG005", "RAG006", "RAG007", "RAG008", "RAG009"}


def run_cli(argv, capsys):
    code = main(argv)
    return code, capsys.readouterr().out


def test_every_rule_fires_on_its_fixture_file(capsys):
    """Each RAGxxx rule has a dedicated violating fixture, and linting
    that file alone exits nonzero naming the rule."""
    for rule_id in sorted(ALL_RULES):
        matches = sorted(FIXTURES.rglob(f"{rule_id.lower()}_*.py"))
        assert matches, f"no fixture for {rule_id}"
        code, out = run_cli([str(matches[0])], capsys)
        assert code == 1, f"{rule_id} fixture should fail the lint"
        assert rule_id in out


def test_fixture_corpus_trips_all_rules_at_once(capsys):
    code, out = run_cli([str(FIXTURES)], capsys)
    assert code == 1
    assert ALL_RULES <= {token for token in out.split() if token.startswith("RAG")}


def test_clean_fixture_exits_zero(capsys):
    code, out = run_cli([str(FIXTURES / "clean_module.py")], capsys)
    assert code == 0
    assert "0 finding(s)" in out


def test_suppressed_fixture_exits_zero_but_counts(capsys):
    code, out = run_cli([str(FIXTURES / "suppressed_module.py")], capsys)
    assert code == 0
    assert "3 suppressed" in out


def test_include_suppressed_prints_them(capsys):
    _, out = run_cli([str(FIXTURES / "suppressed_module.py"),
                      "--include-suppressed"], capsys)
    assert "(suppressed)" in out


def test_json_format_is_machine_readable(capsys):
    code, out = run_cli([str(FIXTURES / "rag007_unit_literal.py"),
                         "--format", "json"], capsys)
    assert code == 1
    payload = json.loads(out)
    assert payload["clean"] is False
    assert {f["rule_id"] for f in payload["findings"]} == {"RAG007"}
    finding = payload["findings"][0]
    assert {"path", "line", "col", "severity", "message"} <= set(finding)


def test_exclude_prunes_directory_walks(capsys):
    code, _ = run_cli([str(FIXTURES), "--exclude", str(FIXTURES)], capsys)
    assert code == 0


def test_explicit_file_beats_exclude(capsys):
    code, _ = run_cli([str(FIXTURES / "rag007_unit_literal.py"),
                       "--exclude", str(FIXTURES)], capsys)
    assert code == 1


def test_list_rules(capsys):
    code, out = run_cli(["--list-rules"], capsys)
    assert code == 0
    assert ALL_RULES <= set(out.split())


def test_audit_subcommand_runs_inter_mr(capsys):
    code, out = run_cli(["--audit", "inter-mr", "--seed", "5"], capsys)
    assert code == 0
    assert "deterministic" in out


def test_missing_path_is_a_usage_error(capsys):
    """A typo'd path must not look like a clean run."""
    with pytest.raises(SystemExit) as exc:
        main(["does/not/exist.py"])
    assert exc.value.code == 2
    assert "no such file" in capsys.readouterr().err


def test_single_run_audit_is_a_usage_error(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--audit", "inter-mr", "--runs", "1"])
    assert exc.value.code == 2
