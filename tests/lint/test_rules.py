"""Per-rule engine tests: positive, negative and suppressed snippets."""

import pathlib

import pytest

from repro.lint import lint_source
from repro.lint.engine import (
    PARSE_ERROR_ID,
    module_path_for,
    parse_suppressions,
)
from repro.lint.rules import default_rules, rule_index

MODEL = "repro/rnic/model.py"          # in-package, model layer
ANALYSIS = "repro/analysis/helpers.py"  # in-package, non-kernel


def ids(source: str, module: str = MODEL, include_suppressed: bool = False):
    findings = lint_source(source, module=module)
    if not include_suppressed:
        findings = [f for f in findings if not f.suppressed]
    return [f.rule_id for f in findings]


# ----------------------------------------------------------------------
# RAG001 — wall clock
# ----------------------------------------------------------------------

def test_rag001_flags_wallclock_calls():
    source = "import time\nstarted = time.time()\n"
    assert ids(source) == ["RAG001"]


def test_rag001_flags_from_import_alias():
    source = "from time import perf_counter as pc\nvalue = pc()\n"
    assert ids(source) == ["RAG001"]


def test_rag001_flags_datetime_now():
    source = "from datetime import datetime\nstamp = datetime.now()\n"
    assert ids(source) == ["RAG001"]


def test_rag001_allows_the_sanctioned_cli_helper():
    source = "import time\n\ndef wallclock():\n    return time.perf_counter()\n"
    assert ids(source, module="repro/experiments/timing.py") == []


def test_rag001_ignores_files_outside_the_package():
    source = "import time\nstarted = time.time()\n"
    assert ids(source, module=None) == []


# ----------------------------------------------------------------------
# RAG002 — global random state
# ----------------------------------------------------------------------

def test_rag002_flags_stdlib_random():
    source = "import random\nvalue = random.randint(0, 7)\n"
    assert ids(source) == ["RAG002"]


def test_rag002_flags_legacy_numpy_random():
    source = "import numpy as np\nnp.random.seed(3)\nx = np.random.rand(4)\n"
    assert ids(source) == ["RAG002", "RAG002"]


def test_rag002_allows_seeded_generators():
    source = ("import numpy as np\n"
              "rng = np.random.default_rng(7)\n"
              "x = rng.normal()\n")
    assert ids(source) == []


def test_rag002_allows_the_streams_module():
    source = "import numpy as np\nnp.random.seed(1)\n"
    assert ids(source, module="repro/sim/random.py") == []


# ----------------------------------------------------------------------
# RAG003 — float equality
# ----------------------------------------------------------------------

def test_rag003_flags_float_literal_equality():
    assert ids("ok = value == 0.0\n") == ["RAG003"]
    assert ids("ok = value != 1.5\n") == ["RAG003"]


def test_rag003_flags_time_named_comparands():
    assert ids("ok = event_time == target\n") == ["RAG003"]
    assert ids("ok = wc.latency != observed\n") == ["RAG003"]


def test_rag003_allows_int_literals_and_ordering():
    assert ids("ok = count == 0\n") == []
    assert ids("ok = event_time < deadline\n") == []


# ----------------------------------------------------------------------
# RAG004 — broad except
# ----------------------------------------------------------------------

def test_rag004_flags_broad_and_bare_handlers():
    source = ("try:\n    work()\nexcept Exception:\n    pass\n"
              "try:\n    work()\nexcept:\n    pass\n")
    assert ids(source) == ["RAG004", "RAG004"]


def test_rag004_flags_broad_type_inside_tuple():
    source = "try:\n    work()\nexcept (ValueError, Exception):\n    pass\n"
    assert ids(source) == ["RAG004"]


def test_rag004_allows_specific_and_reraising_handlers():
    source = ("try:\n    work()\nexcept KeyError:\n    pass\n"
              "try:\n    work()\nexcept Exception:\n    cleanup()\n    raise\n")
    assert ids(source) == []


# ----------------------------------------------------------------------
# RAG005 — mutable defaults
# ----------------------------------------------------------------------

def test_rag005_flags_literal_and_factory_defaults():
    source = ("def f(xs=[]):\n    return xs\n"
              "def g(*, table=dict()):\n    return table\n")
    assert ids(source) == ["RAG005", "RAG005"]


def test_rag005_allows_none_and_immutable_defaults():
    source = "def f(xs=None, scale=1.0, name='x', pair=()):\n    return xs\n"
    assert ids(source) == []


# ----------------------------------------------------------------------
# RAG006 — kernel state
# ----------------------------------------------------------------------

def test_rag006_flags_clock_and_queue_tampering():
    source = "sim.now = 0.0\nsim.now += 5.0\nsim._queue.clear()\n"
    assert ids(source) == ["RAG006", "RAG006", "RAG006"]


def test_rag006_allows_the_kernel_itself_and_reads():
    source = "self.now = event.time\n"
    assert ids(source, module="repro/sim/kernel.py") == []
    assert ids("t = sim.now\nself._queue = []\n") == []


# ----------------------------------------------------------------------
# RAG007 — raw unit literals
# ----------------------------------------------------------------------

def test_rag007_flags_both_spellings():
    assert ids("seconds = duration_ns / 1e9\n") == ["RAG007"]
    assert ids("millis = duration_ns / 1_000_000\n") == ["RAG007"]


def test_rag007_allows_other_magnitudes_and_units_module():
    assert ids("window = 1024\nrate = 40e9\n") == []
    assert ids("SECONDS = 1_000_000_000.0\n",
               module="repro/sim/units.py") == []


# ----------------------------------------------------------------------
# RAG008 — I/O in model layers
# ----------------------------------------------------------------------

def test_rag008_flags_io_in_model_layers():
    source = "def fire(event):\n    print(event)\n    open('x')\n"
    assert ids(source, module="repro/sim/hot_path.py") == \
        ["RAG008", "RAG008"]


def test_rag008_allows_io_outside_model_layers():
    source = "print('table')\n"
    assert ids(source, module="repro/experiments/report.py") == []


# ----------------------------------------------------------------------
# RAG009 — cancel-on-stop for self-rescheduling callbacks
# ----------------------------------------------------------------------

LEAKY = """
class Leaky:
    def start(self):
        self.sim.schedule(10.0, self._tick)
    def stop(self):
        self._running = False
    def _tick(self):
        self.sim.schedule(10.0, self._tick)
"""

FIXED = """
class Fixed:
    def start(self):
        self._handle = self.sim.schedule(10.0, self._tick)
    def stop(self):
        self.sim.cancel(self._handle)
    def _tick(self):
        self._handle = self.sim.schedule(10.0, self._tick)
"""


def test_rag009_flags_dropped_handles():
    # both the start() and the _tick() schedule calls drop the handle
    assert ids(LEAKY) == ["RAG009", "RAG009"]


def test_rag009_flags_kept_handle_that_stop_never_cancels():
    source = FIXED.replace("self.sim.cancel(self._handle)", "pass")
    assert ids(source) == ["RAG009", "RAG009"]


def test_rag009_accepts_cancel_on_stop():
    assert ids(FIXED) == []


def test_rag009_ignores_classes_without_stop():
    source = LEAKY.replace(
        "    def stop(self):\n        self._running = False\n", "")
    assert ids(source) == []


def test_rag009_ignores_schedules_of_foreign_callbacks():
    # scheduling someone else's callback is not a self-owned chain
    source = """
class Driver:
    def start(self, other):
        self.sim.schedule(10.0, other.fire)
    def stop(self):
        pass
"""
    assert ids(source) == []


# ----------------------------------------------------------------------
# Engine mechanics
# ----------------------------------------------------------------------

def test_inline_suppression_marks_but_keeps_findings():
    source = "import time\nstarted = time.time()  # ragnar-lint: disable=RAG001\n"
    findings = lint_source(source, module=MODEL)
    assert [f.rule_id for f in findings] == ["RAG001"]
    assert findings[0].suppressed


def test_suppression_must_name_the_right_rule():
    source = "import time\nstarted = time.time()  # ragnar-lint: disable=RAG007\n"
    assert ids(source) == ["RAG001"]


def test_disable_all_suppresses_everything_on_the_line():
    source = "value = duration_ns / 1e9 if t == 0.0 else 0  # ragnar-lint: disable=all\n"
    assert ids(source, module=ANALYSIS) == []


def test_parse_suppressions_table():
    lines = ("x = 1", "y = 2  # ragnar-lint: disable=RAG001, RAG007", "z = 3")
    assert parse_suppressions(lines) == {2: {"RAG001", "RAG007"}}


def test_syntax_errors_become_parse_findings():
    findings = lint_source("def broken(:\n", module=MODEL)
    assert [f.rule_id for f in findings] == [PARSE_ERROR_ID]


def test_module_path_anchors_at_last_repro_component():
    path = pathlib.Path("/x/repro/tests/fixtures/repro/sim/mod.py")
    assert module_path_for(path) == "repro/sim/mod.py"
    assert module_path_for(pathlib.Path("/x/other/pkg/mod.py")) is None


def test_rule_pack_is_complete_and_ordered():
    rules = default_rules()
    assert [r.rule_id for r in rules] == [
        "RAG001", "RAG002", "RAG003", "RAG004",
        "RAG005", "RAG006", "RAG007", "RAG008", "RAG009",
    ]
    index = rule_index()
    assert len(index) == 9
    assert all(cls.title for cls in index.values())


@pytest.mark.parametrize("rule_id", sorted(rule_index()))
def test_every_rule_has_a_docstring(rule_id):
    assert rule_index()[rule_id].__doc__
