"""Runtime determinism auditor: identical seeds must replay identically,
and injected nondeterminism must be caught."""

import dataclasses

import pytest

from repro.lint.determinism import (
    AuditReport,
    RunRecord,
    audit_callable,
    audit_experiment,
    audit_simulator,
    canonicalize,
    fingerprint,
    run_audit,
)


# ----------------------------------------------------------------------
# Fingerprinting
# ----------------------------------------------------------------------

def test_fingerprint_is_order_stable_for_dicts():
    assert fingerprint({"a": 1, "b": 2.5}) == fingerprint({"b": 2.5, "a": 1})


def test_fingerprint_distinguishes_close_floats():
    assert fingerprint(0.1 + 0.2) != fingerprint(0.3)


def test_canonicalize_unwraps_numpy_and_dataclasses():
    import numpy as np

    @dataclasses.dataclass
    class Payload:
        values: tuple

    canon = canonicalize(Payload(values=(np.float64(1.5), np.arange(3))))
    assert canon["__dataclass__"] == "Payload"
    assert canon["values"] == [repr(1.5), [0, 1, 2]]


# ----------------------------------------------------------------------
# Simulator-level audit (event-trace digests)
# ----------------------------------------------------------------------

def drive_random_workload(sim):
    """A toy workload that exercises clock, queue order and RNG."""
    samples = []
    rng = sim.random.stream("workload")

    def tick(round_number):
        samples.append((sim.now, round_number))
        if round_number < 20:
            sim.schedule(float(rng.integers(1, 50)), tick, round_number + 1)

    sim.schedule(0.0, tick, 0)
    sim.run()
    return samples


def test_identical_seeds_replay_identically():
    report = audit_simulator(drive_random_workload, seed=7)
    assert report.deterministic, report.summary()
    assert report.runs[0].trace_digest is not None
    assert report.runs[0].events_fired == 21


def test_different_seeds_diverge():
    first = audit_simulator(drive_random_workload, seed=1)
    second = audit_simulator(drive_random_workload, seed=2)
    assert first.runs[0].trace_digest != second.runs[0].trace_digest


def test_injected_nondeterminism_is_caught():
    state = {"calls": 0}

    def impure():
        state["calls"] += 1
        return {"rows": state["calls"]}

    report = audit_callable(impure, name="impure")
    assert not report.deterministic
    assert any("payload hash" in problem for problem in report.mismatches())


def test_trace_digest_divergence_is_reported():
    report = AuditReport(name="synthetic", seed=0, runs=(
        RunRecord("same", trace_digest="aa", events_fired=3, final_time=1.0),
        RunRecord("same", trace_digest="bb", events_fired=3, final_time=1.0),
    ))
    assert not report.deterministic
    assert any("event-trace digest" in problem
               for problem in report.mismatches())
    assert "DIVERGED" in report.summary()


def test_simulator_tracing_is_opt_in():
    from repro.sim.kernel import Simulator

    sim = Simulator(seed=0)
    assert sim.trace_digest is None
    sim.enable_tracing()
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.trace_digest is not None


# ----------------------------------------------------------------------
# Experiment-level audits (the acceptance-criterion path)
# ----------------------------------------------------------------------

def test_grain3_inter_mr_experiment_is_deterministic():
    """Two identical-seed runs of a Grain-III (inter-MR) covert-channel
    experiment must produce bit-identical results."""
    report = run_audit("inter-mr", seed=3)
    assert report.deterministic, report.summary()


def test_audit_experiment_wraps_runners():
    from repro.experiments import table1

    report = audit_experiment(table1.run, seed=1, name="table1")
    assert report.deterministic, report.summary()
    assert report.name == "table1"


def test_auditors_reject_single_runs():
    with pytest.raises(ValueError):
        audit_callable(lambda: 1, runs=1)
    with pytest.raises(ValueError):
        audit_simulator(drive_random_workload, runs=1)


def test_unknown_audit_name_raises():
    with pytest.raises(KeyError):
        run_audit("no-such-audit")
