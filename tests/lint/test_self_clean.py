"""The package must satisfy its own invariants: zero unsuppressed
findings over src/repro, forever.  Any new violation fails CI here."""

import pathlib

from repro.lint import run_lint

REPO = pathlib.Path(__file__).resolve().parents[2]


def test_src_repro_is_lint_clean():
    report = run_lint([str(REPO / "src" / "repro")])
    assert report.files_scanned > 100, "package walk looks truncated"
    details = "\n".join(f.format() for f in report.active)
    assert report.clean, f"unsuppressed lint findings:\n{details}"


def test_suppressions_stay_rare_and_accounted_for():
    """Inline suppressions are sanctioned exceptions, not an escape
    hatch; review this budget when adding one."""
    report = run_lint([str(REPO / "src" / "repro")])
    assert len(report.suppressed) <= 10, \
        "\n".join(f.format() for f in report.suppressed)


def test_tests_tree_is_clean_for_global_rules():
    """The tests tree (minus the intentionally-dirty fixture corpus)
    passes the globally-scoped rules too."""
    report = run_lint([str(REPO / "tests")],
                      exclude=[str(REPO / "tests" / "lint" / "fixtures")])
    details = "\n".join(f.format() for f in report.active)
    assert report.clean, f"unsuppressed lint findings:\n{details}"
