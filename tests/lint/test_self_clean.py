"""The package must satisfy its own invariants: zero unsuppressed
findings over src/repro, forever.  Any new violation fails CI here."""

import pathlib

from repro.lint import run_lint
from repro.lint.flow import default_baseline_path, run_flow
from repro.lint.flow.baseline import load_baseline

REPO = pathlib.Path(__file__).resolve().parents[2]


def test_src_repro_is_lint_clean():
    report = run_lint([str(REPO / "src" / "repro")])
    assert report.files_scanned > 100, "package walk looks truncated"
    details = "\n".join(f.format() for f in report.active)
    assert report.clean, f"unsuppressed lint findings:\n{details}"


def test_suppressions_stay_rare_and_accounted_for():
    """Inline suppressions are sanctioned exceptions, not an escape
    hatch; review this budget when adding one."""
    report = run_lint([str(REPO / "src" / "repro")])
    assert len(report.suppressed) <= 10, \
        "\n".join(f.format() for f in report.suppressed)


def test_src_repro_is_flow_clean_against_the_committed_baseline():
    """The whole-program pass (RAG100-RAG105) over src/repro must be
    clean modulo the committed tools/flow_baseline.json.  A new
    finding means: fix it, or consciously accept it via
    ``python -m repro.lint --flow --update-baseline``."""
    baseline_path = default_baseline_path()
    assert baseline_path is not None, "tools/flow_baseline.json missing"
    baseline = load_baseline(baseline_path)
    assert baseline is not None, "committed baseline unreadable"
    report = run_flow([str(REPO / "src" / "repro")], baseline=baseline)
    assert report.files_scanned > 100, "package walk looks truncated"
    details = "\n".join(f.format() for f in report.active)
    assert report.clean, f"unbaselined flow findings:\n{details}"


def test_flow_baseline_has_no_dead_entries():
    """Every baseline entry must still match a real finding —
    stale entries hide future regressions at the same fingerprint."""
    baseline_path = default_baseline_path()
    baseline = load_baseline(baseline_path)
    report = run_flow([str(REPO / "src" / "repro")])
    live = {ff.fingerprint for ff in report.findings}
    dead = [fp for fp in baseline if fp not in live]
    assert not dead, f"baseline entries no longer firing: {dead}"


def test_tests_tree_is_clean_for_global_rules():
    """The tests tree (minus the intentionally-dirty fixture corpus)
    passes the globally-scoped rules too."""
    report = run_lint([str(REPO / "tests")],
                      exclude=[str(REPO / "tests" / "lint" / "fixtures")])
    details = "\n".join(f.format() for f in report.active)
    assert report.clean, f"unsuppressed lint findings:\n{details}"
