"""Tests for the release tooling."""

import pathlib
import subprocess
import sys


def test_api_doc_generator_runs():
    repo = pathlib.Path(__file__).resolve().parents[1]
    result = subprocess.run(
        [sys.executable, str(repo / "tools" / "gen_api_docs.py")],
        capture_output=True, text=True, cwd=repo,
    )
    assert result.returncode == 0, result.stderr
    api = (repo / "docs" / "API.md").read_text()
    # spot-check central entries
    assert "## `repro.rnic.translation`" in api
    assert "class `TranslationUnit`" in api
    assert "## `repro.covert.intra_mr`" in api


def test_api_docs_checked_in_and_fresh_enough():
    repo = pathlib.Path(__file__).resolve().parents[1]
    api = repo / "docs" / "API.md"
    assert api.exists(), "run python tools/gen_api_docs.py"
    text = api.read_text()
    # every top-level package appears
    for package in ("repro.sim", "repro.verbs", "repro.rnic", "repro.covert",
                    "repro.side", "repro.ml", "repro.apps", "repro.defense",
                    "repro.baselines", "repro.traffic", "repro.viz"):
        assert f"`{package}" in text, package
