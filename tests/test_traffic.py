"""Tests for the traffic generators."""

import numpy as np
import pytest

from repro.host import Cluster
from repro.rnic import cx5
from repro.sim.units import MILLISECONDS
from repro.traffic import (
    ClosedLoopClient,
    OpenLoopClient,
    TraceReplayClient,
    WorkloadMix,
)
from repro.verbs.enums import Opcode


def make_testbed(max_send_wr=8, seed=0):
    cluster = Cluster(seed=seed)
    server = cluster.add_host("server", spec=cx5())
    client = cluster.add_host("client", spec=cx5())
    conn = cluster.connect(client, server, max_send_wr=max_send_wr)
    mr = server.reg_mr(2 * 1024 * 1024)
    return cluster, server, conn, mr


class TestWorkloadMix:
    def test_draw_respects_bounds(self):
        _, _, _, mr = make_testbed()
        mix = WorkloadMix(read_fraction=0.5, sizes=(64, 4096), align=64)
        rng = np.random.default_rng(0)
        for _ in range(200):
            opcode, offset, size = mix.draw(rng, mr)
            assert opcode in (Opcode.RDMA_READ, Opcode.RDMA_WRITE)
            assert offset % 64 == 0 or offset + size == mr.length
            assert offset + size <= mr.length

    def test_read_fraction_statistics(self):
        _, _, _, mr = make_testbed()
        mix = WorkloadMix(read_fraction=0.8)
        rng = np.random.default_rng(1)
        reads = sum(
            1 for _ in range(500)
            if mix.draw(rng, mr)[0] is Opcode.RDMA_READ
        )
        assert 340 < reads < 460

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadMix(read_fraction=1.5)
        with pytest.raises(ValueError):
            WorkloadMix(sizes=())
        with pytest.raises(ValueError):
            WorkloadMix(sizes=(64, 128), size_weights=(1.0,))
        with pytest.raises(ValueError):
            WorkloadMix(sizes=(64,), size_weights=(0.4,))


class TestClosedLoop:
    def test_maintains_depth_and_collects_stats(self):
        cluster, _, conn, mr = make_testbed()
        client = ClosedLoopClient(conn, mr, depth=4)
        client.start()
        cluster.run_for(2 * MILLISECONDS)
        assert conn.qp.outstanding_send == 4
        assert client.completed > 50
        assert client.mean_latency > 0

    def test_stop_drains(self):
        cluster, _, conn, mr = make_testbed()
        client = ClosedLoopClient(conn, mr, depth=4)
        client.start()
        cluster.run_for(MILLISECONDS)
        client.stop()
        cluster.run_for(MILLISECONDS)
        assert conn.qp.outstanding_send == 0

    def test_depth_validation(self):
        _, _, conn, mr = make_testbed(max_send_wr=4)
        with pytest.raises(ValueError):
            ClosedLoopClient(conn, mr, depth=8)


class TestOpenLoop:
    def test_arrival_rate_approximated(self):
        cluster, _, conn, mr = make_testbed(max_send_wr=64)
        client = OpenLoopClient(conn, mr, rate_per_sec=100_000)
        client.start()
        cluster.run_for(5 * MILLISECONDS)
        client.stop()
        cluster.run_for(MILLISECONDS)
        # ~500 expected arrivals in 5 ms at 100 kops/s
        assert 350 < client.completed < 650
        assert client.overruns == 0

    def test_overload_counts_overruns(self):
        cluster, _, conn, mr = make_testbed(max_send_wr=4)
        # far beyond the pipeline's service rate with a tiny queue
        client = OpenLoopClient(conn, mr, rate_per_sec=5_000_000)
        client.start()
        cluster.run_for(MILLISECONDS)
        client.stop()
        assert client.overruns > 0

    def test_rate_validation(self):
        _, _, conn, mr = make_testbed()
        with pytest.raises(ValueError):
            OpenLoopClient(conn, mr, rate_per_sec=0)

    def test_restart_does_not_double_the_offered_load(self):
        """stop() cancels the pending arrival, so a stop->start cycle
        runs ONE Poisson process — a leaked chain would superimpose two
        and roughly double the observed rate."""
        def offered_after_restart(restart):
            cluster, _, conn, mr = make_testbed(max_send_wr=64,
                                                seed=3)
            client = OpenLoopClient(conn, mr, rate_per_sec=100_000)
            client.start()
            if restart:
                cluster.run_for(2 * MILLISECONDS)
                client.stop()
                client.start()
            cluster.run_for(10 * MILLISECONDS)
            client.stop()
            return client.offered

        single = offered_after_restart(restart=False)
        restarted = offered_after_restart(restart=True)
        # ~1000 arrivals either way at 100 kops/s over ~10-12 ms; a
        # doubled chain would push the restarted run towards 2x
        assert restarted < 1.5 * single

    def test_stop_drains_the_simulation(self):
        cluster, _, conn, mr = make_testbed()
        client = OpenLoopClient(conn, mr, rate_per_sec=100_000)
        client.start()
        cluster.run_for(MILLISECONDS)
        client.stop()
        client.stop()                               # idempotent
        cluster.sim.run()                           # no immortal arrivals
        assert cluster.sim.pending == 0


class TestTraceReplay:
    def test_replays_in_order(self):
        cluster, server, conn, mr = make_testbed()
        trace = [
            (10_000.0, Opcode.RDMA_WRITE, 0, 64),
            (5_000.0, Opcode.RDMA_READ, 64, 64),
            (20_000.0, Opcode.RDMA_READ, 0, 64),
        ]
        client = TraceReplayClient(conn, mr, trace)
        client.start()
        cluster.run_for(MILLISECONDS)
        assert client.completed == 3
        assert client.dropped == 0

    def test_oversubscribed_trace_drops(self):
        cluster, _, conn, mr = make_testbed(max_send_wr=2)
        trace = [(100.0 + i, Opcode.RDMA_READ, 0, 64) for i in range(20)]
        client = TraceReplayClient(conn, mr, trace)
        client.start()
        cluster.run_for(MILLISECONDS)
        assert client.dropped > 0
        assert client.completed + client.dropped == 20

    def test_one_callback_per_cq(self):
        cluster, _, conn, mr = make_testbed()
        TraceReplayClient(conn, mr, [])
        with pytest.raises(RuntimeError):
            ClosedLoopClient(conn, mr)
