"""Unit tests for the lockstep helpers (readers, windows, detrend)."""

import numpy as np
import pytest

from repro.covert.lockstep import (
    PipelinedReader,
    decode_windows,
    detrend,
    window_means,
)
from repro.host import Cluster
from repro.rnic import cx5
from repro.telemetry import ProbeTarget


def make_reader(depth=4):
    cluster = Cluster(seed=0)
    server = cluster.add_host("server", spec=cx5())
    client = cluster.add_host("client", spec=cx5())
    conn = cluster.connect(client, server, max_send_wr=depth)
    mr = server.reg_mr(2 * 1024 * 1024)
    targets = [ProbeTarget(mr, 0, 64), ProbeTarget(mr, 512, 64)]
    cursor = [0]

    def next_target():
        t = targets[cursor[0] % 2]
        cursor[0] += 1
        return t

    reader = PipelinedReader(conn, next_target)
    return cluster, reader, conn


class TestPipelinedReader:
    def test_maintains_depth(self):
        cluster, reader, conn = make_reader(depth=4)
        reader.start()
        cluster.run_for(100_000)
        assert conn.qp.outstanding_send == 4
        assert reader.completed > 10

    def test_stop_drains(self):
        cluster, reader, conn = make_reader()
        reader.start()
        cluster.run_for(50_000)
        reader.stop()
        cluster.run_for(200_000)
        assert conn.qp.outstanding_send == 0

    def test_resume_reprimes(self):
        cluster, reader, conn = make_reader()
        reader.start()
        cluster.run_for(50_000)
        reader.stop()
        cluster.run_for(200_000)
        reader.resume()
        assert conn.qp.outstanding_send == reader.depth

    def test_samples_use_midpoint_timestamps(self):
        cluster, reader, _ = make_reader()
        reader.start()
        cluster.run_for(100_000)
        # midpoints must be strictly before the sim's current time
        assert all(0 < t < cluster.sim.now for t, _ in reader.samples)

    def test_double_start_rejected(self):
        cluster, reader, _ = make_reader()
        reader.start()
        with pytest.raises(RuntimeError):
            reader.start()

    def test_second_reader_on_same_cq_rejected(self):
        cluster, reader, conn = make_reader()
        with pytest.raises(RuntimeError):
            PipelinedReader(conn, reader.next_target)

    def test_samples_after(self):
        cluster, reader, _ = make_reader()
        reader.start()
        cluster.run_for(100_000)
        cut = 50_000
        assert all(t >= cut for t, _ in reader.samples_after(cut))


class TestWindowing:
    def test_window_means_basic(self):
        samples = [(5.0, 10.0), (15.0, 20.0), (25.0, 30.0), (26.0, 50.0)]
        means = window_means(samples, start=0.0, period=10.0, count=3)
        assert means[0] == 10.0
        assert means[1] == 20.0
        assert means[2] == 40.0

    def test_empty_window_inherits_previous(self):
        samples = [(5.0, 10.0), (25.0, 30.0)]
        means = window_means(samples, 0.0, 10.0, 3)
        assert means[1] == 10.0  # inherited

    def test_window_validation(self):
        with pytest.raises(ValueError):
            window_means([], 0.0, 0.0, 2)
        with pytest.raises(ValueError):
            window_means([], 0.0, 1.0, 0)

    def test_decode_windows_high_is_one(self):
        samples = []
        levels = [100.0, 200.0, 100.0, 200.0]
        for k, level in enumerate(levels):
            for j in range(5):
                samples.append((k * 10.0 + j * 2.0, level))
        assert decode_windows(samples, 0.0, 10.0, 4) == [0, 1, 0, 1]
        assert decode_windows(samples, 0.0, 10.0, 4, high_is_one=False) == [1, 0, 1, 0]


class TestDetrend:
    def test_removes_baseline_step(self):
        rng = np.random.default_rng(0)
        samples = []
        for i in range(200):
            t = float(i)
            baseline = 0.0 if i < 100 else 500.0   # ambient tenant arrives
            signal = 50.0 if (i // 10) % 2 else 0.0
            samples.append((t, baseline + signal + rng.normal(0, 2)))
        flat = detrend(samples, half_window_ns=30.0)
        values = np.array([v for _, v in flat])
        first, second = values[20:80], values[120:180]
        # the 500-unit step shrinks to residual edge effects
        assert abs(first.mean() - second.mean()) < 50.0
        # the symbol-rate signal survives
        assert values.std() > 10.0

    def test_empty_input(self):
        assert detrend([], 10.0) == []

    def test_bad_window(self):
        with pytest.raises(ValueError):
            detrend([(0.0, 1.0)], 0.0)

    def test_preserves_timestamps(self):
        samples = [(3.0, 5.0), (1.0, 4.0), (2.0, 6.0)]
        out = detrend(samples, 10.0)
        assert [t for t, _ in out] == [1.0, 2.0, 3.0]
