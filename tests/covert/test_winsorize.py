"""Unit tests for the receiver's outlier clipping."""

import numpy as np
import pytest

from repro.covert.lockstep import winsorize


def test_clips_spikes_preserves_signal():
    rng = np.random.default_rng(0)
    samples = [(float(i), 600.0 + rng.normal(0, 20)) for i in range(200)]
    samples[50] = (50.0, 16_600.0)   # a retransmission spike
    clipped = winsorize(samples)
    values = np.array([v for _, v in clipped])
    assert values.max() < 2_000.0
    # unspiked samples untouched
    untouched = [v for (t, v), (_, o) in zip(clipped, samples)
                 if t != 50.0 and v != o]
    assert untouched == []


def test_sample_count_preserved():
    samples = [(float(i), float(i)) for i in range(50)]
    assert len(winsorize(samples)) == 50


def test_empty():
    assert winsorize([]) == []


def test_constant_input_unchanged():
    samples = [(float(i), 7.0) for i in range(10)]
    assert winsorize(samples) == samples


def test_bad_multiple():
    with pytest.raises(ValueError):
        winsorize([(0.0, 1.0)], multiple=0.0)


def test_timestamps_untouched():
    samples = [(3.0, 1.0), (1.0, 100.0), (2.0, 1.0)]
    clipped = winsorize(samples)
    assert [t for t, _ in clipped] == [3.0, 1.0, 2.0]
