"""Tests for segment-wise phase re-locking and drift estimation."""

import numpy as np
import pytest

from repro.covert import random_bits
from repro.covert.lockstep import (
    RelockConfig,
    decode_windows,
    estimate_drift,
    relock_decode,
)


def synth_samples(bits, period, drift=0.0, samples_per_bit=10,
                  noise=0.05, seed=0):
    """Synthesize ULI-style samples for a bit sequence whose *actual*
    symbol clock runs at ``period * (1 + drift)`` while the receiver
    believes it is ``period``."""
    rng = np.random.default_rng(seed)
    true_period = period * (1.0 + drift)
    samples = []
    for index, bit in enumerate(bits):
        base = index * true_period
        for k in range(samples_per_bit):
            ts = base + (k + 0.5) / samples_per_bit * true_period
            value = (1.0 if bit else 0.0) + rng.normal(0.0, noise)
            samples.append((ts, value))
    return samples


class TestRelockConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            RelockConfig(segment_bits=3)
        with pytest.raises(ValueError):
            RelockConfig(max_step_symbols=0.0)
        with pytest.raises(ValueError):
            RelockConfig(steps=2)


class TestRelockDecode:
    def test_no_drift_matches_plain_decode(self):
        bits = random_bits(64, seed=1)
        period = 1000.0
        samples = synth_samples(bits, period, drift=0.0, seed=1)
        plain = decode_windows(samples, 0.0, period, len(bits))
        relocked, shifts = relock_decode(
            samples, 0.0, period, len(bits),
            config=RelockConfig(segment_bits=16),
        )
        assert plain == bits
        assert relocked == bits
        assert len(shifts) == 4  # 64 bits / 16-bit segments

    def test_drift_breaks_plain_decode_but_not_relock(self):
        """At 1% clock skew the fixed phase slips a full symbol by bit
        100; re-locking tracks it."""
        bits = random_bits(160, seed=2)
        period = 1000.0
        samples = synth_samples(bits, period, drift=0.01, seed=2)
        plain = decode_windows(samples, 0.0, period, len(bits))
        relocked, _ = relock_decode(
            samples, 0.0, period, len(bits),
            config=RelockConfig(segment_bits=16),
        )
        plain_errors = sum(a != b for a, b in zip(plain, bits))
        relock_errors = sum(a != b for a, b in zip(relocked, bits))
        assert plain_errors > 10
        assert relock_errors <= 2

    def test_decode_windows_delegates_to_relock(self):
        bits = random_bits(160, seed=3)
        period = 1000.0
        samples = synth_samples(bits, period, drift=0.01, seed=3)
        config = RelockConfig(segment_bits=16)
        via_decode = decode_windows(samples, 0.0, period, len(bits),
                                    relock=config)
        direct, _ = relock_decode(samples, 0.0, period, len(bits),
                                  config=config)
        assert via_decode == direct

    def test_shift_estimates_follow_the_drift(self):
        bits = random_bits(160, seed=4)
        period = 1000.0
        drift = 0.01
        samples = synth_samples(bits, period, drift=drift, seed=4)
        _, shifts = relock_decode(
            samples, 0.0, period, len(bits),
            config=RelockConfig(segment_bits=16),
        )
        # later segments need larger (positive) shifts to stay locked
        assert shifts[-1] > shifts[0]

    def test_initial_shift_offsets_the_search(self):
        bits = random_bits(64, seed=5)
        period = 1000.0
        offset = 300.0
        samples = [(ts + offset, v)
                   for ts, v in synth_samples(bits, period, seed=5)]
        relocked, shifts = relock_decode(
            samples, 0.0, period, len(bits),
            config=RelockConfig(segment_bits=16, max_step_symbols=0.4),
            initial_shift=offset,
        )
        assert relocked == bits
        assert shifts[0] == pytest.approx(offset, abs=period * 0.2)


class TestEstimateDrift:
    def test_fewer_than_two_segments_is_zero(self):
        assert estimate_drift([], 16, 1000.0) == 0.0
        assert estimate_drift([123.0], 16, 1000.0) == 0.0

    def test_recovers_linear_drift_rate(self):
        period, segment_bits, rate = 1000.0, 16, 0.01
        shifts = [rate * i * segment_bits * period for i in range(6)]
        assert estimate_drift(shifts, segment_bits, period) == \
            pytest.approx(rate)

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_drift([0.0, 1.0], 0, 1000.0)
        with pytest.raises(ValueError):
            estimate_drift([0.0, 1.0], 16, 0.0)

    def test_end_to_end_sign_matches_injected_drift(self):
        bits = random_bits(160, seed=6)
        period = 1000.0
        samples = synth_samples(bits, period, drift=0.01, seed=6)
        _, shifts = relock_decode(
            samples, 0.0, period, len(bits),
            config=RelockConfig(segment_bits=16),
        )
        estimated = estimate_drift(shifts, 16, period)
        assert estimated > 0.003  # right sign, right magnitude band
        assert estimated < 0.03
