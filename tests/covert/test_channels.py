"""Integration tests for the three covert channels (Table V shapes)."""

import dataclasses

import pytest

from repro.covert import (
    InterMRChannel,
    IntraMRChannel,
    PAPER_BITSTREAM,
    PriorityChannel,
    random_bits,
)
from repro.covert.inter_mr import InterMRConfig
from repro.covert.intra_mr import IntraMRConfig
from repro.covert.priority_channel import PriorityChannelConfig
from repro.rnic import cx4, cx5, cx6

SPECS = {"CX-4": cx4, "CX-5": cx5, "CX-6": cx6}


class TestPriorityChannel:
    def test_transmits_paper_bitstream_error_free(self):
        """Figure 9 / Table V: the Grain I+II channel is error-free at
        ~1 bps on every device."""
        for name, factory in SPECS.items():
            result = PriorityChannel(factory()).transmit(PAPER_BITSTREAM)
            assert result.error_rate == 0.0, name
            assert 0.5 <= result.bandwidth_bps <= 2.0, name

    def test_trace_shows_two_levels(self):
        channel = PriorityChannel(cx5())
        samples = channel.trace([1, 0, 1, 0])
        values = [v for _, v in samples]
        assert max(values) > 1.5 * min(values)

    def test_empty_bits_rejected(self):
        with pytest.raises(ValueError):
            PriorityChannel(cx5()).transmit([])

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PriorityChannelConfig(bit_period_ns=1.0, sample_interval_ns=1.0)


class TestInterMRChannel:
    def test_tuned_config_lookup(self):
        cfg = InterMRConfig.best_for("CX-4")
        assert cfg.msg_size == 512 and cfg.max_send_queue == 10
        cfg = InterMRConfig.best_for("CX-5")
        assert cfg.msg_size == 64 and cfg.max_send_queue == 6
        with pytest.raises(KeyError):
            InterMRConfig.best_for("CX-9")

    def test_low_error_on_each_device(self):
        bits = random_bits(64, seed=2)
        for name, factory in SPECS.items():
            channel = InterMRChannel(factory(), InterMRConfig.best_for(name))
            result = channel.transmit(bits, seed=1)
            assert result.error_rate < 0.12, name

    def test_bandwidth_ordering_matches_table_v(self):
        """Table V inter-MR: CX-6 > CX-5 > CX-4."""
        bits = random_bits(96, seed=3)
        bw = {}
        for name, factory in SPECS.items():
            channel = InterMRChannel(factory(), InterMRConfig.best_for(name))
            bw[name] = channel.transmit(bits, seed=1).bandwidth_bps
        assert bw["CX-6"] > bw["CX-5"] > bw["CX-4"]

    def test_kbps_scale(self):
        """Table V: tens of Kbps, orders of magnitude above priority."""
        bits = random_bits(64, seed=4)
        result = InterMRChannel(cx5(), InterMRConfig.best_for("CX-5")).transmit(bits)
        assert result.bandwidth_bps > 20_000


class TestIntraMRChannel:
    def test_tuned_offsets_follow_footnote_11(self):
        assert IntraMRConfig.best_for("CX-4").bit_one_offset == 255
        assert IntraMRConfig.best_for("CX-5").bit_one_offset == 255
        assert IntraMRConfig.best_for("CX-6").bit_one_offset == 257
        assert IntraMRConfig.best_for("CX-4").max_send_queue == 8

    def test_low_error_on_each_device(self):
        bits = random_bits(64, seed=5)
        for name, factory in SPECS.items():
            channel = IntraMRChannel(factory(), IntraMRConfig.best_for(name))
            result = channel.transmit(bits, seed=1)
            assert result.error_rate < 0.12, name

    def test_sender_traffic_is_grain123_identical(self):
        """Stealthiness: both bit encodings are RDMA Reads of the same
        size to the same MR — only the address offset differs."""
        channel = IntraMRChannel(cx5(), IntraMRConfig.best_for("CX-5"))

        class FakeMR:
            addr, length = 0, 2 * 1024 * 1024

            def contains(self, addr, size):
                return True

        channel.shared_mr = FakeMR()
        zero = channel.sender_targets(0)
        one = channel.sender_targets(1)
        assert {t.size for t in zero} == {t.size for t in one}
        assert all(t.mr is channel.shared_mr for t in zero + one)
        assert {t.offset for t in zero} != {t.offset for t in one}


class TestChannelRobustness:
    def test_inter_mr_survives_ambient_tenant(self):
        """With a bursty background tenant the inter-MR channel's large
        signal still decodes, at a degraded error rate."""
        bits = random_bits(64, seed=6)
        cfg = InterMRConfig.best_for("CX-5", ambient=True)
        result = InterMRChannel(cx5(), cfg).transmit(bits, seed=2)
        assert result.error_rate < 0.3

    def test_effective_bandwidth_never_exceeds_raw(self):
        bits = random_bits(48, seed=7)
        result = InterMRChannel(cx5(), InterMRConfig.best_for("CX-5")).transmit(bits)
        assert result.effective_bandwidth_bps <= result.bandwidth_bps
