"""Unit tests for bitstream framing and channel metrics."""

import math

import pytest

from repro.covert import (
    PAPER_BITSTREAM,
    bit_error_rate,
    bits_to_text,
    bsc_capacity,
    random_bits,
    text_to_bits,
)
from repro.covert.result import ChannelResult


def test_paper_bitstream_is_figure_9():
    assert "".join(map(str, PAPER_BITSTREAM)) == "1101111101010010"


def test_text_roundtrip():
    text = "ragnar"
    assert bits_to_text(text_to_bits(text)) == text


def test_text_to_bits_msb_first():
    assert text_to_bits("A")[:8] == [0, 1, 0, 0, 0, 0, 0, 1]


def test_random_bits_reproducible():
    assert random_bits(32, seed=5) == random_bits(32, seed=5)
    assert random_bits(32, seed=5) != random_bits(32, seed=6)


def test_random_bits_validation():
    with pytest.raises(ValueError):
        random_bits(0)


def test_ber_zero_for_identical():
    bits = random_bits(64)
    assert bit_error_rate(bits, bits) == 0.0


def test_ber_counts_flips():
    assert bit_error_rate([0, 0, 0, 0], [0, 1, 0, 1]) == 0.5


def test_ber_counts_missing_bits():
    assert bit_error_rate([1, 1, 1, 1], [1, 1]) == 0.5


def test_ber_empty_sent_rejected():
    with pytest.raises(ValueError):
        bit_error_rate([], [1])


def test_bsc_capacity_extremes():
    assert bsc_capacity(0.0) == 1.0
    assert bsc_capacity(0.5) == pytest.approx(0.0, abs=1e-12)
    assert bsc_capacity(1.0) == 1.0  # bit-inverted channel still carries


def test_bsc_capacity_matches_table_v():
    """The paper's effective-bandwidth column: 31.8 Kbps at 5.92 %
    error gives 21.5 Kbps."""
    assert 31.8 * bsc_capacity(0.0592) == pytest.approx(21.5, abs=0.3)


def test_channel_result_metrics():
    result = ChannelResult.build(
        channel="test", rnic="CX-5",
        sent=[1, 0, 1, 0], decoded=[1, 0, 1, 1],
        duration_ns=4e9,
    )
    assert result.bandwidth_bps == pytest.approx(1.0)
    assert result.error_rate == pytest.approx(0.25)
    assert result.effective_bandwidth_bps < result.bandwidth_bps
    row = result.row()
    assert row["bits"] == 4


def test_channel_result_bad_duration():
    with pytest.raises(ValueError):
        ChannelResult.build("c", "r", [1], [1], 0.0)
