"""Tests for the 4-ary intra-MR channel extension."""

import pytest

from repro.covert import MultiLevelConfig, MultiLevelIntraMRChannel, random_bits
from repro.rnic import cx5


@pytest.fixture(scope="module")
def channel():
    return MultiLevelIntraMRChannel(cx5())


class TestSymbolMapping:
    def test_bits_to_symbols(self, channel):
        assert channel.bits_to_symbols([0, 0, 0, 1, 1, 0, 1, 1]) == [0, 1, 2, 3]

    def test_symbols_to_bits(self, channel):
        assert channel.symbols_to_bits([0, 1, 2, 3]) == [0, 0, 0, 1, 1, 0, 1, 1]

    def test_roundtrip(self, channel):
        bits = random_bits(32, seed=0)
        assert channel.symbols_to_bits(channel.bits_to_symbols(bits)) == bits

    def test_odd_length_padded(self, channel):
        symbols = channel.bits_to_symbols([1, 0, 1])
        assert len(symbols) == 2


class TestLevels:
    def test_four_distinct_sender_targets(self, channel):
        class FakeMR:
            addr, length = 0, 2 * 1024 * 1024

            def contains(self, addr, size):
                return True

        channel.shared_mr = FakeMR()
        offsets = {channel.sender_targets(s)[0].offset for s in range(4)}
        assert len(offsets) == 4

    def test_level_alignments_differ(self, channel):
        class FakeMR:
            addr, length = 0, 2 * 1024 * 1024

            def contains(self, addr, size):
                return True

        channel.shared_mr = FakeMR()
        level0 = channel.sender_targets(0)[0].offset
        level1 = channel.sender_targets(1)[0].offset
        level2 = channel.sender_targets(2)[0].offset
        assert level0 % 64 == 0
        assert level1 % 8 == 0 and level1 % 64 != 0
        assert level2 % 8 != 0


class TestTransmission:
    def test_transmits_two_bits_per_symbol(self):
        bits = random_bits(96, seed=2)
        channel = MultiLevelIntraMRChannel(cx5())
        result = channel.transmit(bits, seed=1)
        assert result.error_rate < 0.2
        # raw symbol rate doubles the bit rate vs one bit/symbol
        assert result.bandwidth_bps > 60_000

    def test_empty_bits_rejected(self):
        with pytest.raises(ValueError):
            MultiLevelIntraMRChannel(cx5()).transmit([])
