"""Tests for Hamming(7,4) forward error correction."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.covert import (
    CODE_RATE,
    bit_error_rate,
    coded_transmit,
    hamming_decode,
    hamming_encode,
    random_bits,
)


def test_code_rate():
    assert CODE_RATE == pytest.approx(4 / 7)
    assert len(hamming_encode([0, 1, 1, 0])) == 7


def test_roundtrip_clean_channel():
    bits = random_bits(64, seed=0)
    assert hamming_decode(hamming_encode(bits)) == bits


def test_padding_to_nibbles():
    coded = hamming_encode([1, 0, 1])   # padded to 4 bits
    decoded = hamming_decode(coded)
    assert decoded[:3] == [1, 0, 1]
    assert len(decoded) == 4


def test_corrects_any_single_error_per_codeword():
    bits = [1, 0, 1, 1]
    coded = hamming_encode(bits)
    for position in range(7):
        corrupted = list(coded)
        corrupted[position] ^= 1
        assert hamming_decode(corrupted) == bits, f"flip at {position}"


def test_double_error_not_corrected():
    bits = [1, 0, 1, 1]
    coded = hamming_encode(bits)
    corrupted = list(coded)
    corrupted[0] ^= 1
    corrupted[1] ^= 1
    assert hamming_decode(corrupted) != bits


def test_partial_trailing_codeword_dropped():
    coded = hamming_encode([1, 1, 1, 1])
    assert hamming_decode(coded + [0, 1, 0]) == [1, 1, 1, 1]


@given(st.lists(st.integers(min_value=0, max_value=1), min_size=4,
                max_size=64))
def test_property_roundtrip(bits):
    decoded = hamming_decode(hamming_encode(bits))
    assert decoded[: len(bits)] == bits


@given(st.integers(min_value=0, max_value=2**28 - 1))
def test_property_single_error_always_corrected(packed):
    """Any 4-bit block with any single coded-bit flip decodes cleanly."""
    bits = [(packed >> i) & 1 for i in range(4)]
    position = (packed >> 4) % 7
    coded = hamming_encode(bits)
    coded[position] ^= 1
    assert hamming_decode(coded) == bits


def test_fec_reduces_residual_errors_on_bsc():
    """At the paper's 4-8 % raw error rates, Hamming(7,4) pays off."""
    rng = np.random.default_rng(1)
    bits = random_bits(4000, seed=2)
    raw_error = 0.05

    def through_bsc(stream):
        flips = rng.random(len(stream)) < raw_error
        return [b ^ int(f) for b, f in zip(stream, flips)]

    uncoded_ber = bit_error_rate(bits, through_bsc(bits))
    decoded = hamming_decode(through_bsc(hamming_encode(bits)))
    coded_ber = bit_error_rate(bits, decoded[: len(bits)])
    assert coded_ber < 0.5 * uncoded_ber


def test_interleave_roundtrip():
    from repro.covert.fec import deinterleave, interleave

    bits = random_bits(56, seed=4)
    assert deinterleave(interleave(bits, 8), 8) == bits


def test_interleave_spreads_bursts():
    from repro.covert.fec import interleave

    bits = [0] * 64
    wire = interleave(bits, 8)
    # positions of one codeword's bits (rows 0..) end up 8 apart
    marked = list(bits)
    for i in range(7):
        marked[i] = 1
    wire = interleave(marked, 8)
    positions = [i for i, b in enumerate(wire) if b]
    gaps = [b - a for a, b in zip(positions, positions[1:])]
    assert min(gaps) >= 8


def test_interleave_validation():
    from repro.covert.fec import deinterleave, interleave

    with pytest.raises(ValueError):
        interleave([1, 0], 0)
    with pytest.raises(ValueError):
        deinterleave([1, 0, 1], 2)


def test_coded_transmit_over_real_channel():
    """Across several runs, interleaved Hamming(7,4) beats the raw
    channel's residual error substantially (a single run can lose to a
    burst that defeats the interleaver)."""
    from repro.covert import IntraMRChannel
    from repro.covert.intra_mr import IntraMRConfig
    from repro.rnic import cx5

    bits = random_bits(56, seed=3)
    raw_total = fec_total = 0.0
    for seed in (1, 2, 3, 4):
        channel = IntraMRChannel(cx5(), IntraMRConfig.best_for("CX-5"))
        decoded, raw_result = coded_transmit(channel, bits, seed=seed)
        assert len(decoded) == len(bits)
        raw_total += raw_result.error_rate
        fec_total += bit_error_rate(bits, decoded)
    assert fec_total < 0.6 * raw_total
