"""Tests for CRC-8 framing and the stop-and-wait ARQ layer."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.covert import (
    ArqConfig,
    arq_transmit,
    crc8,
    crc8_check,
    random_bits,
)
from repro.covert.fec import hamming_encode, interleave


class TestCRC8:
    def test_crc_is_eight_bits(self):
        assert len(crc8([1, 0, 1])) == 8
        assert all(bit in (0, 1) for bit in crc8([1] * 100))

    @settings(max_examples=200, deadline=None)
    @given(body=st.lists(st.integers(min_value=0, max_value=1),
                         min_size=1, max_size=64))
    def test_appended_crc_has_zero_residue(self, body):
        """The defining CRC property: crc(M ++ crc(M)) == 0."""
        assert crc8_check(body + crc8(body))

    @settings(max_examples=200, deadline=None)
    @given(
        body=st.lists(st.integers(min_value=0, max_value=1),
                      min_size=1, max_size=64),
        flip=st.data(),
    )
    def test_single_bit_errors_always_detected(self, body, flip):
        frame = body + crc8(body)
        index = flip.draw(st.integers(min_value=0, max_value=len(frame) - 1))
        corrupted = list(frame)
        corrupted[index] ^= 1
        assert not crc8_check(corrupted)

    def test_burst_errors_up_to_8_bits_detected(self):
        body = random_bits(40, seed=3)
        frame = body + crc8(body)
        for start in range(len(frame) - 8):
            corrupted = list(frame)
            for offset in range(8):
                corrupted[start + offset] ^= 1
            assert not crc8_check(corrupted)

    def test_short_frames_rejected(self):
        assert not crc8_check([])
        assert not crc8_check([0] * 7)
        assert crc8_check([0] * 8)  # all-zero message has zero residue


class FakeChannel:
    """Deterministic stand-in for a covert channel: flips a fixed set
    of wire-bit positions per (seed)-keyed attempt."""

    def __init__(self, flips_by_seed=None, default_flips=(),
                 bit_duration_ns=1000.0):
        self.flips_by_seed = flips_by_seed or {}
        self.default_flips = tuple(default_flips)
        self.bit_duration_ns = bit_duration_ns
        self.calls = []

    def transmit(self, bits, seed=0):
        self.calls.append((tuple(bits), seed))
        flips = self.flips_by_seed.get(seed, self.default_flips)
        decoded = [bit ^ 1 if i in flips else bit
                   for i, bit in enumerate(bits)]
        return dataclasses.replace(
            _RESULT,
            decoded=tuple(decoded),
            duration_ns=len(bits) * self.bit_duration_ns,
        )


@dataclasses.dataclass(frozen=True)
class _FakeResult:
    decoded: tuple = ()
    duration_ns: float = 0.0


_RESULT = _FakeResult()


class TestArqConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ArqConfig(payload_bits=0)
        with pytest.raises(ValueError):
            ArqConfig(max_retries=-1)
        with pytest.raises(ValueError):
            ArqConfig(seq_bits=0)
        with pytest.raises(ValueError):
            ArqConfig(interleave_depth=0)


class TestArqTransmit:
    def test_clean_channel_delivers_without_retransmission(self):
        channel = FakeChannel()
        payload = random_bits(40, seed=1)
        result = arq_transmit(channel, payload, seed=0,
                              config=ArqConfig(payload_bits=16))
        assert list(result.delivered) == payload
        assert result.residual_error_rate == 0.0
        assert result.retransmissions == 0
        assert result.failed_frames == 0
        assert result.frames == 3  # 16 + 16 + 8

    def test_empty_payload_rejected(self):
        with pytest.raises(ValueError):
            arq_transmit(FakeChannel(), [])

    def test_fec_absorbs_isolated_errors_without_retransmission(self):
        """One flipped wire bit per attempt is inside Hamming(7,4)'s
        correction power: the ARQ layer never has to retry."""
        channel = FakeChannel(default_flips=(4,))
        payload = random_bits(16, seed=2)
        result = arq_transmit(channel, payload, seed=0,
                              config=ArqConfig(payload_bits=16))
        assert list(result.delivered) == payload
        assert result.retransmissions == 0

    def test_burst_triggers_retransmission_then_recovers(self):
        """A corrupted first attempt fails its CRC; the retry (a fresh
        attempt seed) is clean and the frame is recovered intact."""
        first_seed = 0  # seed + 101 * frame + attempt for frame 0
        burst = tuple(range(0, 20))  # beyond FEC repair
        channel = FakeChannel(flips_by_seed={first_seed: burst})
        payload = random_bits(16, seed=4)
        result = arq_transmit(channel, payload, seed=0,
                              config=ArqConfig(payload_bits=16,
                                               max_retries=2))
        assert list(result.delivered) == payload
        assert result.retransmissions == 1
        assert result.failed_frames == 0
        assert result.residual_error_rate == 0.0

    def test_budget_exhaustion_is_counted_and_best_effort(self):
        """When every attempt is corrupted the frame is counted as
        failed but its last decode is still delivered (right length)."""
        channel = FakeChannel(default_flips=tuple(range(0, 24)))
        payload = random_bits(16, seed=5)
        result = arq_transmit(channel, payload, seed=0,
                              config=ArqConfig(payload_bits=16,
                                               max_retries=1))
        assert result.failed_frames == 1
        assert result.attempts == 2
        assert len(result.delivered) == len(payload)
        assert result.residual_error_rate > 0.0

    def test_goodput_degrades_with_fault_severity(self):
        """More retransmissions -> lower goodput, residual error stays
        zero while the budget holds: the graceful-degradation claim."""
        payload = random_bits(32, seed=6)
        config = ArqConfig(payload_bits=16, max_retries=3)
        burst = tuple(range(0, 20))

        def goodput(bad_seeds):
            channel = FakeChannel(
                flips_by_seed={s: burst for s in bad_seeds})
            result = arq_transmit(channel, payload, seed=0, config=config)
            assert result.residual_error_rate == 0.0
            return result.goodput_bps

        clean = goodput(set())
        # frame 0 first attempt bad; frame 1 first two attempts bad
        mild = goodput({0})
        severe = goodput({0, 1, 101, 102})
        assert clean > mild > severe

    def test_attempt_seeds_are_deterministic_and_distinct(self):
        channel = FakeChannel(default_flips=tuple(range(0, 24)))
        arq_transmit(channel, random_bits(32, seed=7), seed=10,
                     config=ArqConfig(payload_bits=16, max_retries=1))
        seeds = [seed for _, seed in channel.calls]
        # frame 0: attempts 10, 11; frame 1: attempts 111, 112
        assert seeds == [10, 11, 111, 112]

    def test_wire_frame_is_interleaved_fec_of_seq_plus_crc(self):
        channel = FakeChannel()
        payload = random_bits(8, seed=8)
        config = ArqConfig(payload_bits=8, seq_bits=8, interleave_depth=4)
        arq_transmit(channel, payload, seed=0, config=config)
        body = [0] * 8 + payload  # frame 0 -> seq 0
        expected = interleave(hamming_encode(body + crc8(body)), 4)
        assert channel.calls[0][0] == tuple(expected)
