"""Optimizer, loss and training loop."""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

import numpy as np

from repro.ml.layers import Layer


def cross_entropy(logits: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
    """Softmax cross-entropy.  Returns (mean loss, dLoss/dLogits)."""
    if logits.ndim != 2:
        raise ValueError(f"logits must be (N, C), got {logits.shape}")
    if len(labels) != len(logits):
        raise ValueError("labels and logits disagree on batch size")
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=1, keepdims=True)
    n = len(labels)
    log_likelihood = -np.log(probs[np.arange(n), labels] + 1e-12)
    grad = probs.copy()
    grad[np.arange(n), labels] -= 1.0
    return float(log_likelihood.mean()), grad / n


class Adam:
    """Adam over a model's (layer, name) parameter handles."""

    def __init__(self, model: Layer, lr: float = 1e-3, beta1: float = 0.9,
                 beta2: float = 0.999, eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.model = model
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._handles = model.parameters()
        self._m = [np.zeros_like(layer.params[name]) for layer, name in self._handles]
        self._v = [np.zeros_like(layer.params[name]) for layer, name in self._handles]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        for i, (layer, name) in enumerate(self._handles):
            grad = layer.grads.get(name)
            if grad is None:
                continue
            if self.weight_decay:
                grad = grad + self.weight_decay * layer.params[name]
            self._m[i] = self.beta1 * self._m[i] + (1 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1 - self.beta2) * grad**2
            m_hat = self._m[i] / (1 - self.beta1**self._t)
            v_hat = self._v[i] / (1 - self.beta2**self._t)
            layer.params[name] -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def train_test_split(x: np.ndarray, y: np.ndarray, test_fraction: float = 0.25,
                     seed: int = 0) -> tuple:
    """Shuffled split into (x_train, y_train, x_test, y_test)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0,1), got {test_fraction}")
    if len(x) != len(y):
        raise ValueError("x and y disagree on sample count")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(x))
    split = int(len(x) * (1.0 - test_fraction))
    train_idx, test_idx = order[:split], order[split:]
    return x[train_idx], y[train_idx], x[test_idx], y[test_idx]


@dataclasses.dataclass
class EpochStats:
    epoch: int
    loss: float
    train_accuracy: float


class Trainer:
    """Minibatch SGD loop with per-epoch stats."""

    def __init__(self, model: Layer, optimizer: Adam,
                 batch_size: int = 64, seed: int = 0) -> None:
        if batch_size <= 0:
            raise ValueError("batch size must be positive")
        self.model = model
        self.optimizer = optimizer
        self.batch_size = batch_size
        self.rng = np.random.default_rng(seed)
        self.history: list[EpochStats] = []

    def fit(self, x: np.ndarray, y: np.ndarray, epochs: int,
            log: Optional[Callable[[EpochStats], None]] = None) -> list[EpochStats]:
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        for epoch in range(epochs):
            self.model.train()
            order = self.rng.permutation(len(x))
            losses = []
            correct = 0
            for start in range(0, len(x), self.batch_size):
                idx = order[start : start + self.batch_size]
                batch_x, batch_y = x[idx], y[idx]
                logits = self.model.forward(batch_x)
                loss, grad = cross_entropy(logits, batch_y)
                self.model.backward(grad)
                self.optimizer.step()
                losses.append(loss)
                correct += int((np.argmax(logits, axis=1) == batch_y).sum())
            stats = EpochStats(
                epoch=epoch,
                loss=float(np.mean(losses)),
                train_accuracy=correct / len(x),
            )
            self.history.append(stats)
            if log is not None:
                log(stats)
        return self.history
