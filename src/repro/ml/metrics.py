"""Classification metrics for the Figure 13 evaluation."""

from __future__ import annotations

import numpy as np


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError(
            f"shape mismatch: {predictions.shape} vs {labels.shape}"
        )
    if predictions.size == 0:
        raise ValueError("cannot score an empty prediction set")
    return float((predictions == labels).mean())


def confusion_matrix(predictions: np.ndarray, labels: np.ndarray,
                     num_classes: int) -> np.ndarray:
    """``matrix[true, predicted]`` counts — Figure 13(b)'s heatmap."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels disagree on shape")
    if num_classes <= 0:
        raise ValueError("num_classes must be positive")
    if predictions.size and (
        predictions.min() < 0 or predictions.max() >= num_classes
        or labels.min() < 0 or labels.max() >= num_classes
    ):
        raise ValueError("class index outside [0, num_classes)")
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix
