"""Neural-network layers with explicit forward/backward passes.

Conventions: activations are ``(batch, channels, length)`` for
convolutional layers and ``(batch, features)`` for dense layers.  Each
layer stores its parameters in ``params`` and accumulates gradients of
the same shapes in ``grads`` during :meth:`backward`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class Layer:
    """Base class: stateless layers only override forward/backward."""

    def __init__(self) -> None:
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}
        self.training = True

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute the layer's output, caching what backward needs."""
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Accumulate parameter grads; return dLoss/dInput."""
        raise NotImplementedError

    def train(self) -> None:
        """Switch to training mode (batch statistics, caching)."""
        self.training = True

    def eval(self) -> None:
        """Switch to inference mode (running statistics)."""
        self.training = False

    def parameters(self) -> list[tuple["Layer", str]]:
        """(owner, name) handles for every trainable array."""
        return [(self, name) for name in self.params]


def _im2col(x: np.ndarray, kernel: int, stride: int, pad: int,
            out: Optional[np.ndarray] = None) -> np.ndarray:
    """(N, C, L) -> (N, C*K, L_out) patch matrix.

    One strided-slice copy per kernel position (K is tiny) instead of a
    fancy-indexed (N, C, L_out, K) temporary plus a transpose copy.
    ``out`` is reused when its shape still matches — the training loop
    calls this every step with a fixed batch shape.
    """
    n, c, length = x.shape
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad)))
    l_out = (length + 2 * pad - kernel) // stride + 1
    if out is None or out.shape != (n, c * kernel, l_out):
        out = np.empty((n, c * kernel, l_out))
    view = out.reshape(n, c, kernel, l_out)
    span = stride * l_out
    for k in range(kernel):
        view[:, :, k, :] = x[:, :, k:k + span:stride]
    return out


def _col2im(cols: np.ndarray, x_shape: tuple, kernel: int, stride: int,
            pad: int, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Adjoint of :func:`_im2col` — scatter-add via one strided-slice
    ``+=`` per kernel position.  ``out`` must cover the padded length
    when supplied; a view without the padding is returned."""
    n, c, length = x_shape
    l_padded = length + 2 * pad
    l_out = (l_padded - kernel) // stride + 1
    patches = cols.reshape(n, c, kernel, l_out)
    if out is None or out.shape != (n, c, l_padded):
        out = np.zeros((n, c, l_padded))
    else:
        out[:] = 0.0
    span = stride * l_out
    for k in range(kernel):
        out[:, :, k:k + span:stride] += patches[:, :, k, :]
    if pad:
        return out[:, :, pad:-pad]
    return out


class Conv1d(Layer):
    """1-D convolution via im2col + matmul."""

    def __init__(self, in_channels: int, out_channels: int, kernel: int,
                 stride: int = 1, pad: Optional[int] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if kernel <= 0 or stride <= 0:
            raise ValueError("kernel and stride must be positive")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.pad = pad if pad is not None else kernel // 2
        rng = rng if rng is not None else np.random.default_rng(0)
        scale = np.sqrt(2.0 / (in_channels * kernel))  # He init
        self.params["w"] = rng.normal(0.0, scale,
                                      (out_channels, in_channels * kernel))
        self.params["b"] = np.zeros(out_channels)
        self._cache: Optional[tuple] = None
        # step-to-step scratch buffers; _im2col/_col2im reallocate them
        # only when the batch shape changes (e.g. the last partial batch)
        self._cols: Optional[np.ndarray] = None
        self._grad_x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 3 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"expected (N, {self.in_channels}, L), got {x.shape}"
            )
        cols = self._cols = _im2col(x, self.kernel, self.stride, self.pad,
                                    out=self._cols)
        out = np.einsum("fk,nkl->nfl", self.params["w"], cols)
        out += self.params["b"][None, :, None]
        self._cache = (x.shape, cols)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        x_shape, cols = self._cache
        self.grads["b"] = grad.sum(axis=(0, 2))
        self.grads["w"] = np.einsum("nfl,nkl->fk", grad, cols)
        grad_cols = np.einsum("fk,nfl->nkl", self.params["w"], grad)
        n, c, length = x_shape
        if (self._grad_x is None
                or self._grad_x.shape != (n, c, length + 2 * self.pad)):
            self._grad_x = np.zeros((n, c, length + 2 * self.pad))
        return _col2im(grad_cols, x_shape, self.kernel, self.stride, self.pad,
                       out=self._grad_x)


class BatchNorm1d(Layer):
    """Per-channel batch normalization over (N, L)."""

    def __init__(self, channels: int, momentum: float = 0.9,
                 eps: float = 1e-5) -> None:
        super().__init__()
        self.channels = channels
        self.momentum = momentum
        self.eps = eps
        self.params["gamma"] = np.ones(channels)
        self.params["beta"] = np.zeros(channels)
        self.running_mean = np.zeros(channels)
        self.running_var = np.ones(channels)
        self._cache: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape[1] != self.channels:
            raise ValueError(f"expected {self.channels} channels, got {x.shape}")
        if self.training:
            mean = x.mean(axis=(0, 2))
            var = x.var(axis=(0, 2))
            self.running_mean = (
                self.momentum * self.running_mean + (1 - self.momentum) * mean
            )
            self.running_var = (
                self.momentum * self.running_var + (1 - self.momentum) * var
            )
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None]) * inv_std[None, :, None]
        self._cache = (x_hat, inv_std, x.shape)
        return self.params["gamma"][None, :, None] * x_hat + \
            self.params["beta"][None, :, None]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        x_hat, inv_std, shape = self._cache
        n_eff = shape[0] * shape[2]
        self.grads["gamma"] = (grad * x_hat).sum(axis=(0, 2))
        self.grads["beta"] = grad.sum(axis=(0, 2))
        g = grad * self.params["gamma"][None, :, None]
        if not self.training:
            return g * inv_std[None, :, None]
        sum_g = g.sum(axis=(0, 2), keepdims=True)
        sum_gx = (g * x_hat).sum(axis=(0, 2), keepdims=True)
        return (inv_std[None, :, None] / n_eff) * (
            n_eff * g - sum_g - x_hat * sum_gx
        )


class ReLU(Layer):
    def __init__(self) -> None:
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad * self._mask


class Dense(Layer):
    """Fully connected layer on (N, features)."""

    def __init__(self, in_features: int, out_features: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        scale = np.sqrt(2.0 / in_features)
        self.params["w"] = rng.normal(0.0, scale, (in_features, out_features))
        self.params["b"] = np.zeros(out_features)
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return x @ self.params["w"] + self.params["b"]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        self.grads["w"] = self._x.T @ grad
        self.grads["b"] = grad.sum(axis=0)
        return grad @ self.params["w"].T


class GlobalAvgPool1d(Layer):
    """(N, C, L) -> (N, C)."""

    def __init__(self) -> None:
        super().__init__()
        self._length = 0

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._length = x.shape[2]
        return x.mean(axis=2)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return np.repeat(grad[:, :, None], self._length, axis=2) / self._length


class Flatten(Layer):
    def __init__(self) -> None:
        super().__init__()
        self._shape: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad.reshape(self._shape)


class Sequential(Layer):
    """A layer pipeline."""

    def __init__(self, *layers: Layer) -> None:
        super().__init__()
        self.layers = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def train(self) -> None:
        super().train()
        for layer in self.layers:
            layer.train()

    def eval(self) -> None:
        super().eval()
        for layer in self.layers:
            layer.eval()

    def parameters(self) -> list[tuple[Layer, str]]:
        out = []
        for layer in self.layers:
            out.extend(layer.parameters())
        return out
