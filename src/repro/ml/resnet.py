"""1-D residual networks (the Figure 13 classifier family)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.layers import (
    BatchNorm1d,
    Conv1d,
    Dense,
    Flatten,
    GlobalAvgPool1d,
    Layer,
    ReLU,
    Sequential,
)


class ResidualBlock1d(Layer):
    """conv-BN-ReLU-conv-BN + identity (or 1x1 projection) shortcut."""

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.body = Sequential(
            Conv1d(in_channels, out_channels, kernel=3, stride=stride, rng=rng),
            BatchNorm1d(out_channels),
            ReLU(),
            Conv1d(out_channels, out_channels, kernel=3, rng=rng),
            BatchNorm1d(out_channels),
        )
        if stride != 1 or in_channels != out_channels:
            self.shortcut: Optional[Sequential] = Sequential(
                Conv1d(in_channels, out_channels, kernel=1, stride=stride,
                       pad=0, rng=rng),
                BatchNorm1d(out_channels),
            )
        else:
            self.shortcut = None
        self.relu = ReLU()

    def forward(self, x: np.ndarray) -> np.ndarray:
        main = self.body.forward(x)
        skip = self.shortcut.forward(x) if self.shortcut is not None else x
        return self.relu.forward(main + skip)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        grad = self.relu.backward(grad)
        grad_main = self.body.backward(grad)
        grad_skip = (
            self.shortcut.backward(grad) if self.shortcut is not None else grad
        )
        return grad_main + grad_skip

    def train(self) -> None:
        super().train()
        self.body.train()
        if self.shortcut is not None:
            self.shortcut.train()

    def eval(self) -> None:
        super().eval()
        self.body.eval()
        if self.shortcut is not None:
            self.shortcut.eval()

    def parameters(self) -> list[tuple[Layer, str]]:
        out = self.body.parameters()
        if self.shortcut is not None:
            out.extend(self.shortcut.parameters())
        return out


class ResNet1d(Sequential):
    """Stem + residual stages + classifier head.

    A compact relative of ResNet18 sized for 257-sample traces: the
    paper's 17-way address classification does not need ImageNet-scale
    capacity, and NumPy training time matters offline.

    The default head flattens the final feature map instead of global
    average pooling: the snooping task is *positional* (the class IS
    the location of the contention bump), and GAP discards position —
    a deep ResNet18 recovers it through padding artifacts, but a
    compact network should keep it explicitly (``head="gap"`` restores
    the classic head for ablation).
    """

    def __init__(self, in_channels: int, num_classes: int,
                 input_length: int = 257,
                 stage_channels: tuple[int, ...] = (16, 32, 64),
                 blocks_per_stage: int = 2,
                 head: str = "flatten",
                 seed: int = 0) -> None:
        if head not in ("flatten", "gap"):
            raise ValueError(f"unknown head {head!r}")
        rng = np.random.default_rng(seed)
        layers: list[Layer] = [
            Conv1d(in_channels, stage_channels[0], kernel=7, stride=2, rng=rng),
            BatchNorm1d(stage_channels[0]),
            ReLU(),
        ]
        current = stage_channels[0]
        for stage_index, channels in enumerate(stage_channels):
            for block_index in range(blocks_per_stage):
                stride = 2 if (stage_index > 0 and block_index == 0) else 1
                layers.append(
                    ResidualBlock1d(current, channels, stride=stride, rng=rng)
                )
                current = channels
        if head == "gap":
            layers.append(GlobalAvgPool1d())
            features = current
        else:
            # probe the feature-map length with a dummy pass
            probe = np.zeros((1, in_channels, input_length))
            body = Sequential(*layers)
            body.eval()
            final_length = body.forward(probe).shape[2]
            body.train()
            layers.append(Flatten())
            features = current * final_length
        layers.append(Dense(features, num_classes, rng=rng))
        super().__init__(*layers)
        self.num_classes = num_classes
        self.input_length = input_length
        self.head = head

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Class predictions in eval mode."""
        self.eval()
        out = []
        for start in range(0, len(x), batch_size):
            logits = self.forward(x[start : start + batch_size])
            out.append(np.argmax(logits, axis=1))
        return np.concatenate(out) if out else np.empty(0, dtype=int)


def build_resnet1d(num_classes: int, in_channels: int = 1,
                   input_length: int = 257, seed: int = 0) -> ResNet1d:
    """The default Figure 13 classifier configuration."""
    return ResNet1d(in_channels=in_channels, num_classes=num_classes,
                    input_length=input_length,
                    stage_channels=(16, 32, 64), blocks_per_stage=2,
                    seed=seed)
