"""A from-scratch NumPy deep-learning stack for the Figure 13 classifier.

The paper trains a ResNet18 on 6720 traces of 257 ULI samples to do
17-way classification of the victim's access address (95.6 % test
accuracy).  Offline reproduction cannot use PyTorch, so this package
implements the needed pieces directly on NumPy:

* :mod:`layers` — Conv1d (im2col), BatchNorm1d, ReLU, Dense, pooling,
  each with explicit forward/backward;
* :mod:`resnet` — residual blocks and a configurable 1-D ResNet;
* :mod:`train` — Adam, cross-entropy, minibatch trainer, splits;
* :mod:`metrics` — accuracy and confusion matrices.
"""

from repro.ml.layers import (
    BatchNorm1d,
    Conv1d,
    Dense,
    Flatten,
    GlobalAvgPool1d,
    Layer,
    ReLU,
    Sequential,
)
from repro.ml.resnet import ResidualBlock1d, ResNet1d, build_resnet1d
from repro.ml.train import Adam, Trainer, cross_entropy, train_test_split
from repro.ml.metrics import accuracy, confusion_matrix

__all__ = [
    "Layer",
    "Conv1d",
    "BatchNorm1d",
    "ReLU",
    "Dense",
    "Flatten",
    "GlobalAvgPool1d",
    "Sequential",
    "ResidualBlock1d",
    "ResNet1d",
    "build_resnet1d",
    "Adam",
    "Trainer",
    "cross_entropy",
    "train_test_split",
    "accuracy",
    "confusion_matrix",
]
