"""CLI: schema-validate observability artifacts.

::

    python -m repro.obs validate out/table5.trace.jsonl \
        out/table5.trace.json out/table5.metrics.json

Exits 1 and prints each problem when any file fails its schema; this
is the check behind the ``tools/check.sh`` obs smoke stage.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from .exporters import validate_path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)
    validate = sub.add_parser(
        "validate", help="schema-check trace/metrics artifacts"
    )
    validate.add_argument("paths", nargs="+", type=pathlib.Path)
    args = parser.parse_args(argv)

    status = 0
    for path in args.paths:
        if not path.exists():
            print(f"repro.obs: {path}: no such file")
            status = 1
            continue
        errors = validate_path(path)
        if errors:
            status = 1
            for error in errors:
                print(f"repro.obs: {error}")
        else:
            print(f"repro.obs: {path}: ok")
    return status


if __name__ == "__main__":
    sys.exit(main())
