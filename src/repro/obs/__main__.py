"""CLI: validate, report on, and diff observability artifacts.

::

    python -m repro.obs validate out/table5.trace.jsonl \
        out/table5.trace.json out/table5.metrics.json
    python -m repro.obs report out/ --out out/run.report.md
    python -m repro.obs diff results_a/ results_b/ --tolerance 0.2
    python -m repro.obs slo out/ --spec examples/slo_spec.json

``validate`` exits 1 and prints each problem when any file fails its
schema (the ``tools/check.sh`` obs smoke stage); it understands the
fleet artifacts (``fleet_snapshots.jsonl``, ``fleet_metrics.json``,
``slo_report.json``) too.  ``report`` renders a deterministic markdown
run report (same seed ⇒ same bytes; the check.sh insight stage diffs
it against a committed golden).  ``diff`` compares two run directories
with configurable tolerances and exits nonzero on regression, so CI
can gate on run-to-run drift.  ``slo`` (re-)evaluates an SLO spec
against a run directory's per-task metrics — exit 0 when compliant,
1 on violations or burn-rate alerts, 2 on spec/data errors — so an
operator can try a candidate spec against an existing run without
re-running anything.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from .exporters import validate_path
from .insight.diff import diff_runs
from .insight.report import DEFAULT_TOP, render_report


def _cmd_validate(args) -> int:
    status = 0
    for path in args.paths:
        if not path.exists():
            print(f"repro.obs: {path}: no such file")
            status = 1
            continue
        errors = validate_path(path)
        if errors:
            status = 1
            for error in errors:
                print(f"repro.obs: {error}")
        else:
            print(f"repro.obs: {path}: ok")
    return status


def _cmd_report(args) -> int:
    try:
        text = render_report(args.run_dir, names=args.names or None,
                             history_dir=args.history, top=args.top)
    except FileNotFoundError as error:
        print(f"repro.obs: {error}", file=sys.stderr)
        return 2
    if args.out is None:
        print(text, end="")
    else:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(text)
        print(f"repro.obs: wrote {args.out}")
    return 0


def _cmd_diff(args) -> int:
    try:
        result = diff_runs(args.run_a, args.run_b,
                           tolerance=args.tolerance,
                           bench_tolerance=args.bench_tolerance)
    except FileNotFoundError as error:
        print(f"repro.obs: {error}", file=sys.stderr)
        return 2
    print(result.render(), end="")
    return 0 if result.ok else 1


def _cmd_slo(args) -> int:
    from .fleet import (
        SloSpecError,
        collect_task_snapshots,
        evaluate_snapshots,
        load_spec,
        merge_snapshots,
    )
    try:
        spec = load_spec(args.spec)
    except (OSError, json.JSONDecodeError, SloSpecError) as error:
        print(f"repro.obs: {args.spec}: {error}", file=sys.stderr)
        return 2
    per_task = collect_task_snapshots(args.run_dir)
    if not per_task:
        print(f"repro.obs: {args.run_dir}: no per-task metrics "
              f"(*.metrics.json) to evaluate", file=sys.stderr)
        return 2
    tasks = sorted(per_task)
    snapshots = [merge_snapshots([per_task[name]
                                  for name in tasks[:index + 1]])
                 for index in range(len(tasks))]
    report = evaluate_snapshots(spec, snapshots)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"repro.obs: wrote {args.out}")
    verdict = "compliant" if report["compliant"] else "VIOLATED"
    print(f"repro.obs: spec {report['spec']} over {len(tasks)} task(s): "
          f"{verdict}, {len(report['alerts'])} alert(s)")
    for objective in report["objectives"]:
        status = "ok" if objective["compliant"] else "VIOLATED"
        print(f"repro.obs:   {objective['name']} ({objective['kind']}): "
              f"{status}, {objective['alerts']} alert(s)")
    for alert in report["alerts"]:
        print(f"repro.obs:   alert {alert['objective']} burned "
              f"{alert['burn_rate']:g}x budget over "
              f"{alert['window_ticks']}-tick window "
              f"({alert['severity']}) at tick {alert['tick']}")
    return 0 if report["compliant"] else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    validate = sub.add_parser(
        "validate", help="schema-check trace/metrics artifacts")
    validate.add_argument("paths", nargs="+", type=pathlib.Path)
    validate.set_defaults(func=_cmd_validate)

    report = sub.add_parser(
        "report", help="render a markdown run report for a run directory")
    report.add_argument("run_dir", type=pathlib.Path)
    report.add_argument("--out", type=pathlib.Path, default=None,
                        help="write the report here (default: stdout)")
    report.add_argument("--names", nargs="*", default=None,
                        help="restrict to these experiment names")
    report.add_argument("--history", type=pathlib.Path, default=None,
                        help="bench_gate history dir for trend lines "
                             "(e.g. benchmarks/history)")
    report.add_argument("--top", type=int, default=DEFAULT_TOP,
                        help=f"slow spans to list (default {DEFAULT_TOP})")
    report.set_defaults(func=_cmd_report)

    diff = sub.add_parser(
        "diff", help="compare two run directories; nonzero on regression")
    diff.add_argument("run_a", type=pathlib.Path)
    diff.add_argument("run_b", type=pathlib.Path)
    diff.add_argument("--tolerance", type=float, default=0.2,
                      help="relative metric-drift tolerance (default 0.2)")
    diff.add_argument("--bench-tolerance", type=float, default=0.2,
                      help="allowed fractional bench ops/s drop "
                           "(default 0.2)")
    diff.set_defaults(func=_cmd_diff)

    slo = sub.add_parser(
        "slo", help="evaluate an SLO spec against a run directory; "
                    "nonzero on violations or alerts")
    slo.add_argument("run_dir", type=pathlib.Path)
    slo.add_argument("--spec", type=pathlib.Path, required=True,
                     help="SLO spec JSON (docs/OBSERVABILITY.md)")
    slo.add_argument("--out", type=pathlib.Path, default=None,
                     help="also write the evaluated slo_report.json here")
    slo.set_defaults(func=_cmd_slo)

    args = parser.parse_args(argv)
    if args.command == "report" and args.top < 1:
        parser.error("--top must be positive")
    if args.command == "diff" and not (
            0.0 < args.tolerance < 1.0 and 0.0 < args.bench_tolerance < 1.0):
        parser.error("tolerances must be in (0, 1)")
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
