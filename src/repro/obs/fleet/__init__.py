"""repro.obs.fleet — the cross-process telemetry plane.

Workers ship incremental :class:`~repro.obs.metrics.MetricsRegistry`
deltas (and the supervisor forwards its lifecycle events) over a
dedicated telemetry pipe per worker, multiplexed through the existing
``multiprocessing.connection.wait`` loop in
:class:`repro.runtime.Supervisor`.  This package is the receiving side
and everything on top of it:

* :mod:`repro.obs.fleet.merge` — exact, byte-stable snapshot
  delta/merge arithmetic (counters/gauges sum, histograms merge
  bucket-by-bucket; no t-digest approximation);
* :mod:`repro.obs.fleet.aggregator` — the live
  :class:`FleetAggregator` (streaming ``fleet_snapshots.jsonl``,
  progress lines, live alerts) and the canonical
  :func:`write_fleet_artifacts` pass (``fleet_metrics.json`` +
  ``slo_report.json``, byte-identical serial vs ``--jobs``);
* :mod:`repro.obs.fleet.slo` — declarative :class:`SloSpec` objectives
  (latency percentiles, error budgets) with multi-window burn-rate
  alerting via :class:`SloEngine`.

See docs/OBSERVABILITY.md ("Fleet telemetry & SLOs") for the wire
protocol and the determinism contract.
"""

from .aggregator import (
    FleetAggregator,
    collect_task_snapshots,
    write_fleet_artifacts,
)
from .merge import (
    FleetMergeError,
    apply_delta,
    merge_rows,
    merge_snapshots,
    snapshot_delta,
)
from .slo import (
    BurnWindow,
    SloEngine,
    SloObjective,
    SloSpec,
    SloSpecError,
    evaluate_snapshots,
    histogram_quantile,
    load_spec,
)

__all__ = [
    "BurnWindow",
    "FleetAggregator",
    "FleetMergeError",
    "SloEngine",
    "SloObjective",
    "SloSpec",
    "SloSpecError",
    "apply_delta",
    "collect_task_snapshots",
    "evaluate_snapshots",
    "histogram_quantile",
    "load_spec",
    "merge_rows",
    "merge_snapshots",
    "snapshot_delta",
    "write_fleet_artifacts",
]
