"""The fleet-side aggregator: live streaming view + canonical artifacts.

Two layers with different determinism contracts:

* :class:`FleetAggregator` — the **live** view.  Plugged into
  ``Supervisor.run(..., telemetry=aggregator.sink)``, it folds each
  worker's shipped metric deltas into a per-task cumulative state,
  appends merged fleet snapshots to ``fleet_snapshots.jsonl`` as they
  arrive, feeds a live :class:`~repro.obs.fleet.slo.SloEngine` for
  immediate burn-rate alerting, and emits periodic one-line progress
  updates.  Live output is *timing-shaped* (revision count and
  interleaving depend on scheduling) and therefore advisory.
* :func:`write_fleet_artifacts` — the **canonical** pass.  After the
  batch it rebuilds everything from the per-task ``<name>.metrics.json``
  files in sorted task-name order: ``fleet_metrics.json`` (the merged
  whole-run snapshot), a rewritten ``fleet_snapshots.jsonl`` (one final
  line per task, prefix merges), and ``slo_report.json`` when a spec is
  given.  Serial and ``--jobs N`` runs of the same seed produce
  byte-identical canonical artifacts — the same discipline as every
  other run artifact (tests/experiments/test_fleet_parallel.py).
"""

from __future__ import annotations

import json
import pathlib
from typing import Callable, Iterable, Optional

from .merge import apply_delta, merge_snapshots
from .slo import SloEngine, SloSpec, evaluate_snapshots

#: Live progress cadence: one line per this many aggregator revisions
#: (plus one on every task completion).
PROGRESS_EVERY = 10


def _count_rows(snapshot: dict) -> int:
    total = 0
    for metrics in snapshot.values():
        if isinstance(metrics, dict):
            total += len(metrics)
    return total


class FleetAggregator:
    """Merge live worker telemetry into a streaming fleet view; see the
    module docstring for the live-vs-canonical split."""

    def __init__(self, tasks: Iterable[str],
                 live_path=None,
                 spec: Optional[SloSpec] = None,
                 progress: Optional[Callable[[str], None]] = None,
                 progress_every: int = PROGRESS_EVERY) -> None:
        self._tasks = sorted(tasks)
        self._state: dict = {}       # task -> cumulative snapshot
        self._done: set = set()
        #: Supervisor/runtime lifecycle events, in arrival order.
        self.events: list = []
        self.revision = 0
        self._live_path = None if live_path is None \
            else pathlib.Path(live_path)
        self._live_handle = None
        self.engine = None if spec is None else SloEngine(spec)
        #: Alerts fired by the live engine (advisory; the canonical
        #: alert list lives in slo_report.json).
        self.live_alerts: list = []
        self._progress = progress
        self._progress_every = max(1, progress_every)

    # ------------------------------------------------------------------
    # The supervisor-facing sink
    # ------------------------------------------------------------------
    def sink(self, task: str, record: dict) -> None:
        """The ``Supervisor.run(telemetry=...)`` callback: one shipped
        record from one worker (or a forwarded runtime event)."""
        if not isinstance(record, dict):
            return
        kind = record.get("kind")
        if kind == "event":
            event = record.get("event")
            if isinstance(event, dict):
                self.events.append({"task": task, **event})
            return
        if kind == "delta":
            self._state[task] = apply_delta(
                self._state.get(task, {}), record.get("delta") or {})
        elif kind == "final":
            snapshot = record.get("snapshot")
            if isinstance(snapshot, dict) and snapshot:
                self._state[task] = snapshot
            else:
                self._state[task] = apply_delta(
                    self._state.get(task, {}), record.get("delta") or {})
            self._done.add(task)
        else:
            return
        self.revision += 1
        fleet = self.fleet_snapshot()
        self._write_live(task, kind, fleet)
        if self.engine is not None:
            for alert in self.engine.observe(fleet):
                self.live_alerts.append(alert)
                self._say(f"[fleet: SLO alert {alert['objective']} "
                          f"burning {alert['burn_rate']:g}x budget over "
                          f"{alert['window_ticks']}-tick window "
                          f"({alert['severity']})]")
        if kind == "final" or self.revision % self._progress_every == 0:
            self._say(self._progress_line(fleet))

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def fleet_snapshot(self) -> dict:
        """The current merged fleet snapshot, folded in sorted
        task-name order."""
        return merge_snapshots(self._state[task]
                               for task in sorted(self._state))

    def tasks_done(self) -> int:
        return len(self._done)

    # ------------------------------------------------------------------
    # Live output
    # ------------------------------------------------------------------
    def _say(self, line: str) -> None:
        if self._progress is not None:
            self._progress(line)

    def _progress_line(self, fleet: dict) -> str:
        alerts = f", {len(self.live_alerts)} alert(s)" \
            if self.live_alerts else ""
        return (f"[fleet: rev {self.revision}, "
                f"{len(self._done)}/{len(self._tasks)} tasks done, "
                f"{_count_rows(fleet)} metrics, "
                f"{len(self.events)} events{alerts}]")

    def _write_live(self, task: str, kind: str, fleet: dict) -> None:
        if self._live_path is None:
            return
        if self._live_handle is None:
            self._live_path.parent.mkdir(parents=True, exist_ok=True)
            self._live_handle = self._live_path.open("w")
        self._live_handle.write(json.dumps(
            {"rev": self.revision, "kind": kind, "task": task,
             "tasks_done": len(self._done), "metrics": fleet},
            sort_keys=True) + "\n")
        self._live_handle.flush()

    def close(self) -> None:
        if self._live_handle is not None:
            self._live_handle.close()
            self._live_handle = None


# ----------------------------------------------------------------------
# The canonical post-batch pass
# ----------------------------------------------------------------------
def collect_task_snapshots(run_dir, names: Optional[Iterable[str]] = None
                           ) -> dict:
    """Per-task metrics snapshots from a run directory, keyed by task
    name.  With ``names`` given only those tasks are read; otherwise
    every ``<name>.metrics.json`` (excluding ``fleet_metrics.json``)
    counts."""
    run_dir = pathlib.Path(run_dir)
    snapshots: dict = {}
    if names is None:
        candidates = sorted(path.name[:-len(".metrics.json")]
                            for path in run_dir.glob("*.metrics.json")
                            if path.name != "fleet_metrics.json")
    else:
        candidates = sorted(set(names))
    for name in candidates:
        path = run_dir / f"{name}.metrics.json"
        if not path.exists():
            continue
        payload = json.loads(path.read_text())
        if isinstance(payload, dict):
            snapshots[name] = payload
    return snapshots


def write_fleet_artifacts(run_dir,
                          names: Optional[Iterable[str]] = None,
                          spec: Optional[SloSpec] = None
                          ) -> Optional[dict]:
    """Write the canonical fleet artifacts for a finished run; returns
    ``{"tasks", "paths", "snapshot", "report"}`` or ``None`` when the
    run directory holds no per-task metrics.

    Deterministic by construction: tasks are folded in sorted name
    order from their committed ``<name>.metrics.json`` bytes, so serial
    and ``--jobs`` runs (and reruns) of one seed agree byte-for-byte on
    ``fleet_metrics.json``, ``fleet_snapshots.jsonl``, and
    ``slo_report.json``.
    """
    run_dir = pathlib.Path(run_dir)
    per_task = collect_task_snapshots(run_dir, names)
    if not per_task:
        return None
    tasks = sorted(per_task)
    lines = []
    prefix_merges = []
    merged: dict = {}
    for index, task in enumerate(tasks):
        merged = merge_snapshots([per_task[name]
                                  for name in tasks[:index + 1]])
        prefix_merges.append(merged)
        lines.append(json.dumps(
            {"rev": index + 1, "kind": "final", "task": task,
             "tasks_done": index + 1, "metrics": merged},
            sort_keys=True))
    snapshots_path = run_dir / "fleet_snapshots.jsonl"
    snapshots_path.write_text("\n".join(lines) + "\n")
    metrics_path = run_dir / "fleet_metrics.json"
    metrics_path.write_text(
        json.dumps(merged, indent=2, sort_keys=True) + "\n")
    paths = [snapshots_path, metrics_path]
    report = None
    if spec is not None:
        report = evaluate_snapshots(spec, prefix_merges)
        report_path = run_dir / "slo_report.json"
        report_path.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n")
        paths.append(report_path)
    return {"tasks": tasks, "paths": paths, "snapshot": merged,
            "report": report}
