"""Deterministic merge arithmetic for cross-worker metric snapshots.

The fleet telemetry plane moves :class:`~repro.obs.metrics.MetricsRegistry`
snapshots between processes and folds many per-worker snapshots into one
fleet view.  Three operations, all pure functions over the JSON snapshot
shape (``{component: {name: row}}``):

* :func:`snapshot_delta` — the *changed-row subset* of a snapshot
  relative to a previous one.  Rows carry **absolute** values, not
  numeric differences, so ``apply_delta(prev, delta)`` reconstructs the
  current snapshot exactly (float-exact — no ``a + (b - a) != b``
  round-trip surprises), while an idle worker's periodic ship costs a
  handful of rows instead of the whole registry.
* :func:`apply_delta` — overlay a delta onto a cumulative snapshot.
* :func:`merge_snapshots` — fold per-worker snapshots into one fleet
  snapshot: counters and gauges sum (this repo's collector gauges are
  cumulative NIC counters — see docs/OBSERVABILITY.md), histograms merge
  *exactly* bucket-by-bucket (no t-digest approximation; mismatched
  bucket ladders are a hard :class:`FleetMergeError`).

Everything iterates in sorted ``(component, name)`` order and returns
sorted dicts, so ``json.dumps(..., sort_keys=True)`` of a merge is
byte-stable regardless of input ordering — the same determinism contract
the registry's own :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`
holds.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional


class FleetMergeError(ValueError):
    """Two snapshots disagree structurally (type or bucket mismatch)."""


def _rows(snapshot: dict) -> Iterator[tuple[str, str, dict]]:
    """Sorted ``(component, name, row)`` triples of a snapshot."""
    for component in sorted(snapshot):
        metrics = snapshot[component]
        if not isinstance(metrics, dict):
            continue
        for name in sorted(metrics):
            row = metrics[name]
            if isinstance(row, dict):
                yield component, name, row


def _sorted_copy(rows: dict) -> dict:
    """Rebuild ``{(component, name): row}`` as a sorted nested dict."""
    out: dict = {}
    for component, name in sorted(rows):
        out.setdefault(component, {})[name] = rows[(component, name)]
    return out


# ----------------------------------------------------------------------
# Delta shipping (worker -> fleet)
# ----------------------------------------------------------------------
def snapshot_delta(previous: dict, current: dict) -> dict:
    """Rows of ``current`` that differ from (or are absent in)
    ``previous``.  Registries never drop instruments, so removal is not
    represented; an unchanged snapshot yields ``{}``."""
    delta: dict = {}
    for component, name, row in _rows(current):
        before = previous.get(component, {}).get(name)
        if before != row:
            delta.setdefault(component, {})[name] = row
    return delta


def apply_delta(snapshot: dict, delta: dict) -> dict:
    """A new snapshot with ``delta``'s rows overlaid onto ``snapshot``.
    Inverse of :func:`snapshot_delta`:
    ``apply_delta(prev, snapshot_delta(prev, cur)) == cur``."""
    rows: dict = {(component, name): row
                  for component, name, row in _rows(snapshot)}
    for component, name, row in _rows(delta):
        rows[(component, name)] = row
    return _sorted_copy(rows)


# ----------------------------------------------------------------------
# Fleet merge (many workers -> one view)
# ----------------------------------------------------------------------
def merge_rows(a: dict, b: dict, key: str = "?") -> dict:
    """Merge two metric rows of the same ``(component, name)``.

    Counter and gauge values sum; histograms require identical bucket
    ladders and merge exactly (counts/count/sum add, min/max combine,
    mean recomputed).  ``key`` names the metric in error messages.
    """
    kind_a, kind_b = a.get("type"), b.get("type")
    if kind_a != kind_b:
        raise FleetMergeError(
            f"metric {key}: cannot merge {kind_a!r} with {kind_b!r}")
    if kind_a in ("counter", "gauge"):
        return {"type": kind_a,
                "value": float(a.get("value", 0.0))
                + float(b.get("value", 0.0))}
    if kind_a != "histogram":
        raise FleetMergeError(f"metric {key}: unknown metric type "
                              f"{kind_a!r}")
    buckets_a, buckets_b = a.get("buckets"), b.get("buckets")
    if list(buckets_a or ()) != list(buckets_b or ()):
        raise FleetMergeError(
            f"metric {key}: histogram bucket mismatch "
            f"({buckets_a} vs {buckets_b}); exact merge needs identical "
            f"ladders")
    counts_a = list(a.get("counts") or ())
    counts_b = list(b.get("counts") or ())
    if len(counts_a) != len(counts_b):
        raise FleetMergeError(
            f"metric {key}: histogram counts length mismatch "
            f"({len(counts_a)} vs {len(counts_b)})")
    merged = {
        "type": "histogram",
        "count": int(a.get("count", 0)) + int(b.get("count", 0)),
        "sum": float(a.get("sum", 0.0)) + float(b.get("sum", 0.0)),
        "buckets": list(buckets_a or ()),
        "counts": [ca + cb for ca, cb in zip(counts_a, counts_b)],
    }
    mins = [row["min"] for row in (a, b) if "min" in row]
    maxes = [row["max"] for row in (a, b) if "max" in row]
    if merged["count"]:
        if mins:
            merged["min"] = min(mins)
        if maxes:
            merged["max"] = max(maxes)
        merged["mean"] = merged["sum"] / merged["count"]
    return merged


def _normalized(row: dict) -> dict:
    """A single row passed through the merge arithmetic (so one-shard
    fleets serialize identically to multi-shard ones)."""
    kind = row.get("type")
    if kind in ("counter", "gauge"):
        return {"type": kind, "value": float(row.get("value", 0.0))}
    if kind == "histogram":
        out = {
            "type": "histogram",
            "count": int(row.get("count", 0)),
            "sum": float(row.get("sum", 0.0)),
            "buckets": list(row.get("buckets") or ()),
            "counts": list(row.get("counts") or ()),
        }
        if out["count"]:
            if "min" in row:
                out["min"] = row["min"]
            if "max" in row:
                out["max"] = row["max"]
            out["mean"] = out["sum"] / out["count"]
        return out
    raise FleetMergeError(f"unknown metric type {kind!r}")


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Fold per-worker snapshots into one fleet snapshot.

    Order-independent for ints and structurally, and deterministic for
    float sums as long as the caller folds in a fixed order — the fleet
    plane always merges in sorted task-name order (see
    :func:`repro.obs.fleet.aggregator.write_fleet_artifacts`).
    """
    rows: dict = {}
    for snapshot in snapshots:
        for component, name, row in _rows(snapshot):
            key = (component, name)
            before: Optional[dict] = rows.get(key)
            if before is None:
                rows[key] = _normalized(row)
            else:
                rows[key] = merge_rows(before, row,
                                       key=f"{component}.{name}")
    return _sorted_copy(rows)
