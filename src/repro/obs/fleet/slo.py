"""Declarative SLOs over fleet snapshots: specs, burn rates, alerts.

An :class:`SloSpec` (loaded from JSON by :func:`load_spec`) declares
objectives of two kinds, both evaluated against the deterministic fleet
snapshots the aggregator produces:

* ``latency`` — a percentile target over a histogram metric
  (``metric`` selects by flattened ``component.name``, ``fnmatch``
  globs allowed; multiple matches merge exactly first).  The percentile
  is read from cumulative bucket counts, reporting the containing
  bucket's upper bound — state targets as bucket bounds for exact
  semantics.
* ``error_rate`` — an error budget over two scalar selectors:
  ``bad / good`` (counter/gauge sums over the sorted glob matches) must
  stay under ``budget``.

Both kinds take multi-window **burn-rate rules** (SRE-style: burn =
observed error rate / budget; a window alerts when its burn over the
last ``ticks`` snapshots reaches ``burn_rate``).  For latency
objectives the implied budget is ``1 - percentile`` (p99 under target
⇔ at most 1 % of observations above it).

:class:`SloEngine` consumes a sequence of *cumulative* fleet snapshots
(one tick per snapshot) via :meth:`~SloEngine.observe` and emits alerts
as structured records the moment a window crosses its threshold; the
same engine powers live alerting during a supervised run and the
canonical post-batch ``slo_report.json`` (fresh engine, deterministic
tick order — same seed, same bytes).
"""

from __future__ import annotations

import bisect
import dataclasses
import fnmatch
import json
import math
import pathlib
from typing import Iterator, Optional, Sequence, Union

from .merge import merge_rows

_KINDS = ("latency", "error_rate")
#: Burn rates are clamped here instead of serializing ``Infinity``
#: (which is not strict JSON) when the good-event delta is zero.
_BURN_CAP = 1e9  # ragnar-lint: disable=RAG007 — a dimensionless burn-rate cap, not a time conversion


class SloSpecError(ValueError):
    """A spec failed validation; the message names the objective index."""


@dataclasses.dataclass(frozen=True)
class BurnWindow:
    """One burn-rate alert rule: a lookback of ``ticks`` snapshots and
    the burn multiple at which it fires."""

    ticks: int
    burn_rate: float
    severity: str = "page"


@dataclasses.dataclass(frozen=True)
class SloObjective:
    """One declared objective; see the module docstring for kinds."""

    name: str
    kind: str
    metric: str = ""            # latency: histogram selector
    percentile: float = 0.99    # latency
    target: float = 0.0         # latency: percentile upper bound
    bad: str = ""               # error_rate: numerator selector
    good: str = ""              # error_rate: denominator selector
    budget: float = 0.0         # error_rate: allowed bad/good ratio
    windows: tuple = ()         # tuple[BurnWindow, ...]

    @property
    def error_budget(self) -> float:
        """The fraction of events allowed to be bad."""
        if self.kind == "latency":
            return 1.0 - self.percentile
        return self.budget


@dataclasses.dataclass(frozen=True)
class SloSpec:
    """A named set of objectives (the ``--slo spec.json`` payload)."""

    name: str
    objectives: tuple = ()      # tuple[SloObjective, ...]


# ----------------------------------------------------------------------
# Spec loading / validation
# ----------------------------------------------------------------------
def _spec_error(index: int, name: object, message: str) -> SloSpecError:
    label = name if isinstance(name, str) and name else "?"
    return SloSpecError(f"objective {index} ({label}): {message}")


def _parse_windows(index: int, name: object, raw: object) -> tuple:
    if raw is None:
        return ()
    if not isinstance(raw, list):
        raise _spec_error(index, name, "'windows' must be an array")
    windows = []
    for position, entry in enumerate(raw):
        where = f"window {position}"
        if not isinstance(entry, dict):
            raise _spec_error(index, name, f"{where}: not an object")
        ticks = entry.get("ticks")
        if not isinstance(ticks, int) or isinstance(ticks, bool) \
                or ticks < 1:
            raise _spec_error(index, name,
                              f"{where}: 'ticks' must be an integer >= 1")
        burn = entry.get("burn_rate")
        if not isinstance(burn, (int, float)) or isinstance(burn, bool) \
                or burn <= 0:
            raise _spec_error(index, name,
                              f"{where}: 'burn_rate' must be positive")
        severity = entry.get("severity", "page")
        if not isinstance(severity, str) or not severity:
            raise _spec_error(index, name,
                              f"{where}: 'severity' must be a non-empty "
                              f"string")
        windows.append(BurnWindow(ticks=ticks, burn_rate=float(burn),
                                  severity=severity))
    return tuple(windows)


def _parse_objective(index: int, raw: object) -> SloObjective:
    if not isinstance(raw, dict):
        raise _spec_error(index, None, "not an object")
    name = raw.get("name")
    if not isinstance(name, str) or not name:
        raise _spec_error(index, name, "'name' must be a non-empty string")
    kind = raw.get("kind")
    if kind not in _KINDS:
        raise _spec_error(index, name,
                          f"'kind' must be one of {list(_KINDS)}, got "
                          f"{kind!r}")
    windows = _parse_windows(index, name, raw.get("windows"))
    if kind == "latency":
        metric = raw.get("metric")
        if not isinstance(metric, str) or not metric:
            raise _spec_error(index, name,
                              "latency objectives need a 'metric' "
                              "histogram selector")
        percentile = raw.get("percentile", 0.99)
        if not isinstance(percentile, (int, float)) \
                or isinstance(percentile, bool) \
                or not 0.0 < percentile < 1.0:
            raise _spec_error(index, name,
                              "'percentile' must be in (0, 1)")
        target = raw.get("target")
        if not isinstance(target, (int, float)) or isinstance(target, bool) \
                or target <= 0:
            raise _spec_error(index, name, "'target' must be positive")
        return SloObjective(name=name, kind=kind, metric=metric,
                            percentile=float(percentile),
                            target=float(target), windows=windows)
    for field in ("bad", "good"):
        if not isinstance(raw.get(field), str) or not raw.get(field):
            raise _spec_error(index, name,
                              f"error_rate objectives need a {field!r} "
                              f"metric selector")
    budget = raw.get("budget")
    if not isinstance(budget, (int, float)) or isinstance(budget, bool) \
            or not 0.0 < budget < 1.0:
        raise _spec_error(index, name, "'budget' must be in (0, 1)")
    return SloObjective(name=name, kind=kind, bad=raw["bad"],
                        good=raw["good"], budget=float(budget),
                        windows=windows)


def load_spec(source: Union[str, pathlib.Path, dict]) -> SloSpec:
    """Parse and validate an :class:`SloSpec` from a JSON file path or
    an already-decoded dict; raises :class:`SloSpecError` with the
    offending objective index on any problem."""
    if isinstance(source, dict):
        payload = source
        origin = "<dict>"
    else:
        path = pathlib.Path(source)
        origin = str(path)
        payload = json.loads(path.read_text())
    if not isinstance(payload, dict):
        raise SloSpecError(f"{origin}: spec top level must be an object")
    name = payload.get("name")
    if not isinstance(name, str) or not name:
        raise SloSpecError(f"{origin}: spec needs a non-empty 'name'")
    raw_objectives = payload.get("objectives")
    if not isinstance(raw_objectives, list) or not raw_objectives:
        raise SloSpecError(f"{origin}: spec needs a non-empty "
                           f"'objectives' array")
    objectives = tuple(_parse_objective(index, raw)
                       for index, raw in enumerate(raw_objectives))
    names = [objective.name for objective in objectives]
    if len(set(names)) != len(names):
        raise SloSpecError(f"{origin}: duplicate objective names: {names}")
    return SloSpec(name=name, objectives=objectives)


# ----------------------------------------------------------------------
# Snapshot selectors
# ----------------------------------------------------------------------
def _flat_rows(snapshot: dict) -> Iterator[tuple[str, dict]]:
    for component in sorted(snapshot):
        metrics = snapshot[component]
        if not isinstance(metrics, dict):
            continue
        for name in sorted(metrics):
            row = metrics[name]
            if isinstance(row, dict):
                yield f"{component}.{name}", row


def _select_sum(snapshot: dict, pattern: str) -> float:
    """Sum of counter/gauge values whose flattened key matches
    ``pattern`` (iterated in sorted key order — deterministic float
    accumulation)."""
    total = 0.0
    for key, row in _flat_rows(snapshot):
        if row.get("type") in ("counter", "gauge") \
                and fnmatch.fnmatchcase(key, pattern):
            total += float(row.get("value", 0.0))
    return total


def _select_histogram(snapshot: dict, pattern: str) -> Optional[dict]:
    """The exact merge of every histogram row matching ``pattern``, or
    ``None`` when nothing matches."""
    merged: Optional[dict] = None
    for key, row in _flat_rows(snapshot):
        if row.get("type") == "histogram" \
                and fnmatch.fnmatchcase(key, pattern):
            merged = row if merged is None \
                else merge_rows(merged, row, key=key)
    return merged


def histogram_quantile(row: dict, q: float) -> Optional[float]:
    """The ``q``-quantile of a snapshot histogram row, as the upper
    bound of the bucket containing that rank (the overflow bucket
    reports the recorded ``max``).  ``None`` on an empty histogram."""
    counts = list(row.get("counts") or ())
    buckets = list(row.get("buckets") or ())
    total = int(row.get("count", 0))
    if total <= 0 or len(counts) != len(buckets) + 1:
        return None
    rank = max(1, math.ceil(q * total))
    running = 0
    for index, count in enumerate(counts):
        running += count
        if running >= rank:
            if index < len(buckets):
                return float(buckets[index])
            return float(row.get("max", buckets[-1]))
    return float(row.get("max", buckets[-1]))  # pragma: no cover


def _good_bad(objective: SloObjective, snapshot: dict) -> tuple[float,
                                                                float]:
    """Cumulative (good, bad) event totals for burn accounting.

    ``error_rate``: good/bad scalar selector sums.  ``latency``: total
    observations vs observations above the target (conservatively
    counting the partial bucket when the target falls strictly inside
    one — state targets as bucket bounds for exact attribution).
    """
    if objective.kind == "error_rate":
        return (_select_sum(snapshot, objective.good),
                _select_sum(snapshot, objective.bad))
    row = _select_histogram(snapshot, objective.metric)
    if row is None:
        return 0.0, 0.0
    counts = list(row.get("counts") or ())
    buckets = list(row.get("buckets") or ())
    if len(counts) != len(buckets) + 1:
        return 0.0, 0.0
    edge = bisect.bisect_left(buckets, objective.target)
    if edge < len(buckets) and buckets[edge] == objective.target:
        edge += 1
    bad = 0
    for count in counts[edge:]:
        bad += count
    return float(int(row.get("count", 0))), float(bad)


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class SloEngine:
    """Feed cumulative fleet snapshots in tick order; collect alerts.

    One instance per evaluation sequence — the live path hands it every
    aggregator revision (advisory, timing-shaped tick count), the
    canonical path a fresh engine over the deterministic per-task
    prefix merges.
    """

    def __init__(self, spec: SloSpec) -> None:
        self.spec = spec
        self.alerts: list = []
        #: Per-objective cumulative (good, bad) series, one entry per
        #: observed tick.
        self._series: dict = {objective.name: []
                              for objective in spec.objectives}
        self._ticks = 0
        #: Highest burn seen per (objective, window ticks).
        self._max_burn: dict = {}

    @property
    def ticks(self) -> int:
        return self._ticks

    def observe(self, snapshot: dict) -> list:
        """Account one fleet snapshot; returns the alerts that fired at
        this tick (also appended to :attr:`alerts`)."""
        tick = self._ticks
        self._ticks += 1
        fired: list = []
        for objective in self.spec.objectives:
            series = self._series[objective.name]
            series.append(_good_bad(objective, snapshot))
            budget = objective.error_budget
            for window in objective.windows:
                start = tick - window.ticks
                base_good, base_bad = series[start] if start >= 0 \
                    else (0.0, 0.0)
                good_delta = series[tick][0] - base_good
                bad_delta = series[tick][1] - base_bad
                if good_delta > 0:
                    rate = bad_delta / good_delta
                elif bad_delta > 0:
                    rate = _BURN_CAP * budget
                else:
                    rate = 0.0
                burn = min(rate / budget, _BURN_CAP) if budget > 0 \
                    else _BURN_CAP
                key = (objective.name, window.ticks)
                if burn > self._max_burn.get(key, 0.0):
                    self._max_burn[key] = burn
                if burn >= window.burn_rate:
                    fired.append({
                        "tick": tick,
                        "objective": objective.name,
                        "window_ticks": window.ticks,
                        "burn_rate": round(burn, 6),
                        "threshold": window.burn_rate,
                        "severity": window.severity,
                    })
        self.alerts.extend(fired)
        return fired

    def _objective_report(self, objective: SloObjective,
                          snapshot: Optional[dict]) -> dict:
        good, bad = (self._series[objective.name][-1]
                     if self._series[objective.name] else (0.0, 0.0))
        report: dict = {
            "name": objective.name,
            "kind": objective.kind,
            "good": round(good, 6),
            "bad": round(bad, 6),
            "alerts": sum(1 for alert in self.alerts
                          if alert["objective"] == objective.name),
            "windows": [
                {"ticks": window.ticks,
                 "threshold": window.burn_rate,
                 "severity": window.severity,
                 "max_burn_rate": round(self._max_burn.get(
                     (objective.name, window.ticks), 0.0), 6)}
                for window in objective.windows
            ],
        }
        budget = objective.error_budget
        rate = bad / good if good > 0 else (0.0 if bad <= 0
                                            else _BURN_CAP * budget)
        if objective.kind == "latency":
            row = _select_histogram(snapshot, objective.metric) \
                if snapshot is not None else None
            value = histogram_quantile(row, objective.percentile) \
                if row is not None else None
            report["data"] = value is not None
            report["percentile"] = objective.percentile
            report["target"] = objective.target
            report["value"] = None if value is None else round(value, 6)
            report["compliant"] = value is None \
                or value <= objective.target
        else:
            report["data"] = good > 0 or bad > 0
            report["budget"] = objective.budget
            report["value"] = round(rate, 9)
            report["compliant"] = rate <= objective.budget
        report["budget_consumed"] = round(min(rate / budget, _BURN_CAP), 6) \
            if budget > 0 else round(_BURN_CAP, 6)
        return report

    def report(self, snapshot: Optional[dict] = None) -> dict:
        """The final structured report (``slo_report.json`` shape);
        ``snapshot`` is the last fleet snapshot, used for latency
        percentile readouts."""
        objectives = [self._objective_report(objective, snapshot)
                      for objective in self.spec.objectives]
        return {
            "spec": self.spec.name,
            "ticks": self._ticks,
            "compliant": all(entry["compliant"] for entry in objectives)
            and not self.alerts,
            "objectives": objectives,
            "alerts": list(self.alerts),
        }


def evaluate_snapshots(spec: SloSpec,
                       snapshots: Sequence[dict]) -> dict:
    """One-shot evaluation: a fresh engine over ``snapshots`` in order
    (each cumulative), returning the structured report.  This is the
    canonical, byte-stable path — identical inputs produce identical
    report bytes."""
    engine = SloEngine(spec)
    last: Optional[dict] = None
    for snapshot in snapshots:
        engine.observe(snapshot)
        last = snapshot
    return engine.report(last)
