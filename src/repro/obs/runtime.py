"""The process-wide observability session.

Instrumentation sites across the repo (kernel dispatch, RNIC pipeline
stations, the verbs engine, covert codecs, telemetry samplers) all
funnel through this module: they ask for a tracer / the metrics
registry, and get ``None`` unless a session is installed.  The
disabled path is therefore a single module-global ``is None`` check —
cheap enough to sit on hot paths and keep the bench_gate overhead
budget (<2 % on event dispatch) honest.

A session is installed by the experiments CLI (``--trace`` /
``--metrics``) or directly in tests::

    session = obs.install(trace=True, metrics=True)
    ...run the experiment...
    paths = session.export(out_dir, "table5")
    obs.uninstall()

This module deliberately does not import :mod:`repro.sim` — the sim
kernel imports *us* (to self-register new simulators), and the
one-way dependency keeps the layering acyclic.
"""

from __future__ import annotations

from typing import Any, Optional

from .exporters import write_chrome_trace, write_jsonl, write_metrics_json
from .metrics import MetricsRegistry
from .tracer import Tracer

#: The installed session, or None (the common, zero-overhead case).
_SESSION: Optional["ObsSession"] = None


class ObsSession:
    """One enabled observability window: tracers per simulator plus a
    shared metrics registry.  Created via :func:`install`."""

    def __init__(self, trace: bool = False, metrics: bool = False,
                 max_events: Optional[int] = None,
                 trace_sample_rate: int = 1) -> None:
        if trace_sample_rate < 1:
            raise ValueError(f"trace_sample_rate must be >= 1, got "
                             f"{trace_sample_rate}")
        self.trace = trace
        self.metrics_enabled = metrics
        self.max_events = max_events
        #: Record 1-in-N kernel dispatch events (see Tracer.sample_rate);
        #: spans/instants/counters from instrumentation sites are never
        #: sampled.
        self.trace_sample_rate = int(trace_sample_rate)
        self.metrics = MetricsRegistry() if metrics else None
        #: simulator -> Tracer; keeps strong refs so id() reuse cannot
        #: alias two different simulators to one tracer.
        self._sim_tracers: dict = {}
        #: tracers not bound to a simulator clock (e.g. verbs engines)
        self._extra_tracers: list = []

    # ------------------------------------------------------------------
    # Tracer plumbing
    # ------------------------------------------------------------------
    def attach_simulator(self, sim: Any) -> None:
        """Hook a simulator's dispatch loop (idempotent per sim)."""
        if not self.trace:
            return
        key = id(sim)
        if key in self._sim_tracers:
            return
        pid = len(self._sim_tracers)
        tracer = Tracer(clock=lambda: sim.now, component=f"sim{pid}",
                        pid=pid, sample_rate=self.trace_sample_rate,
                        **self._cap())
        tracer.install_on(sim)
        self._sim_tracers[key] = (sim, tracer)

    def tracer_for(self, sim: Any) -> Optional[Tracer]:
        """The tracer bound to ``sim``, attaching on first sight."""
        if not self.trace:
            return None
        entry = self._sim_tracers.get(id(sim))
        if entry is None:
            self.attach_simulator(sim)
            entry = self._sim_tracers.get(id(sim))
            if entry is None:
                return None
        return entry[1]

    def engine_tracer(self, engine: Any, component: str) -> Optional[Tracer]:
        """A tracer clocked by a verbs engine's own ``now``."""
        if not self.trace:
            return None
        tracer = Tracer(clock=lambda: engine.now, component=component,
                        pid=len(self._sim_tracers), **self._cap())
        self._extra_tracers.append(tracer)
        return tracer

    def _cap(self) -> dict:
        return {} if self.max_events is None else \
            {"max_events": self.max_events}

    def all_tracers(self) -> list:
        return [tracer for _, tracer in self._sim_tracers.values()] + \
            list(self._extra_tracers)

    # ------------------------------------------------------------------
    # Metrics plumbing
    # ------------------------------------------------------------------
    def register_rnic(self, rnic: Any) -> None:
        """Expose an RNIC's hardware counters as a metrics collector."""
        if self.metrics is None:
            return
        component = f"rnic.{rnic.name}"
        self.metrics.register_collector(component, rnic.counters.snapshot)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def events(self) -> list:
        """All trace events across tracers, sorted by (ts, component)
        for a deterministic merged timeline."""
        merged = []
        for tracer in self.all_tracers():
            merged.extend(tracer.events)
        merged.sort(key=lambda e: (e.ts, e.component, e.name))
        return merged

    def export(self, out_dir, name: str) -> list:
        """Write every enabled artifact under ``out_dir`` and return
        the written paths: ``<name>.trace.jsonl`` + ``<name>.trace.json``
        when tracing, ``<name>.metrics.json`` when metering.  A traced
        run that recorded nothing (e.g. a pure fluid-flow experiment
        that never constructs a simulator) writes no trace files — an
        empty timeline is indistinguishable from a broken one, so it is
        omitted rather than emitted invalid."""
        import pathlib

        out_dir = pathlib.Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        paths = []
        if self.trace:
            events = self.events()
            if events:
                paths.append(write_jsonl(
                    events, out_dir / f"{name}.trace.jsonl"))
                paths.append(write_chrome_trace(
                    events, out_dir / f"{name}.trace.json"))
        if self.metrics is not None:
            paths.append(write_metrics_json(
                self.metrics.snapshot(), out_dir / f"{name}.metrics.json"))
        return paths

    def stats(self) -> dict:
        tracers = self.all_tracers()
        return {
            "tracers": len(tracers),
            "events": sum(len(t) for t in tracers),
            "dropped": sum(t.dropped for t in tracers),
            "trace_sample_rate": self.trace_sample_rate,
            "sampled_out": sum(t.sampled_out for t in tracers),
        }


# ----------------------------------------------------------------------
# Module-level session management + hot-path accessors
# ----------------------------------------------------------------------
def install(trace: bool = False, metrics: bool = False,
            max_events: Optional[int] = None,
            trace_sample_rate: int = 1) -> ObsSession:
    """Install (and return) the process-wide session.  Replaces any
    previous session; simulators created afterwards self-attach."""
    global _SESSION
    _SESSION = ObsSession(trace=trace, metrics=metrics,
                          max_events=max_events,
                          trace_sample_rate=trace_sample_rate)
    return _SESSION


def uninstall() -> None:
    """Drop the session; instrumentation reverts to zero-overhead."""
    global _SESSION
    _SESSION = None


def session() -> Optional[ObsSession]:
    return _SESSION


def attach_simulator(sim: Any) -> None:
    """Called by the sim kernel for every new simulator; no-op (one
    ``is None`` check) unless a tracing session is installed."""
    if _SESSION is not None:
        _SESSION.attach_simulator(sim)


def tracer_for(sim: Any) -> Optional[Tracer]:
    """The tracer for ``sim``, or None when observability is off.
    Instrumentation sites cache the result and guard emissions with
    ``if obs is not None``."""
    if _SESSION is None:
        return None
    return _SESSION.tracer_for(sim)


def engine_tracer(engine: Any, component: str) -> Optional[Tracer]:
    if _SESSION is None:
        return None
    return _SESSION.engine_tracer(engine, component)


def register_rnic(rnic: Any) -> None:
    if _SESSION is not None:
        _SESSION.register_rnic(rnic)


def registry() -> Optional[MetricsRegistry]:
    """The session's metrics registry, or None when metering is off."""
    if _SESSION is None:
        return None
    return _SESSION.metrics
