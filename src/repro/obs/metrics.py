"""The metrics registry: counters, gauges, and histograms keyed by
component, with a deterministic snapshot order.

Where the tracer (:mod:`repro.obs.tracer`) answers "what happened,
when", the registry answers "how much, overall": bytes moved, WQEs
retired, per-station service-time distributions.  It subsumes the
ad-hoc ``rnic.counters.snapshot()`` reads scattered through the
experiments — a component can either push values into registry
instruments directly or register a *collector* (any zero-argument
callable returning a flat ``{name: number}`` dict, e.g. a bound
``NICCounters.snapshot``) that is drained lazily at snapshot time.

Snapshots are sorted by ``(component, name)`` so two runs of the same
seeded experiment serialize byte-identically — the same determinism
contract the rest of the repo holds (see docs/DETERMINISM notes in
ROADMAP.md).
"""

from __future__ import annotations

import bisect
from typing import Callable, Mapping

from repro.sim.units import MICROSECONDS, MILLISECONDS


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value that can move both ways."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value}


#: Default histogram bucket upper bounds (ns-oriented geometric ladder
#: from 10 ns to 10 ms).
DEFAULT_BUCKETS = (
    10.0, 100.0, MICROSECONDS, 10 * MICROSECONDS, 100 * MICROSECONDS,
    MILLISECONDS, 10 * MILLISECONDS,
)


class Histogram:
    """A fixed-bucket histogram with sum/count/min/max.

    Buckets are upper bounds; values above the last bound land in the
    implicit overflow bucket.  Bounds are validated strictly increasing
    at construction so the bisect stays correct.
    """

    __slots__ = ("buckets", "counts", "total", "count", "min", "max")

    def __init__(self, buckets: tuple = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(
                f"histogram buckets must be strictly increasing, got {buckets}"
            )
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0.0
        self.count = 0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.total += value
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def snapshot(self) -> dict:
        snap = {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "buckets": list(self.buckets),
            "counts": list(self.counts),
        }
        if self.count:
            snap["min"] = self.min
            snap["max"] = self.max
            snap["mean"] = self.total / self.count
        return snap


class MetricsRegistry:
    """Get-or-create instruments keyed by ``(component, name)`` plus
    lazily drained collectors; see the module docstring."""

    def __init__(self) -> None:
        self._instruments: dict = {}
        self._collectors: dict = {}

    # ------------------------------------------------------------------
    # Instruments
    # ------------------------------------------------------------------
    def _get(self, kind, component: str, name: str, factory):
        key = (component, name)
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = factory()
            self._instruments[key] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"metric {component}.{name} already registered as "
                f"{type(instrument).__name__}, not {kind.__name__}"
            )
        return instrument

    def counter(self, component: str, name: str) -> Counter:
        return self._get(Counter, component, name, Counter)

    def gauge(self, component: str, name: str) -> Gauge:
        return self._get(Gauge, component, name, Gauge)

    def histogram(self, component: str, name: str,
                  buckets: tuple = DEFAULT_BUCKETS) -> Histogram:
        return self._get(Histogram, component, name,
                         lambda: Histogram(buckets))

    # ------------------------------------------------------------------
    # Collectors
    # ------------------------------------------------------------------
    def register_collector(
        self, component: str, collect: Callable[[], Mapping[str, float]]
    ) -> None:
        """Attach a pull-style source drained at snapshot time; its
        values appear as gauges under ``component``.  Re-registering a
        component replaces the previous collector."""
        self._collectors[component] = collect

    def unregister_collector(self, component: str) -> None:
        self._collectors.pop(component, None)

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """All instruments and collector values, sorted by
        ``(component, name)`` for byte-stable serialization."""
        rows: dict = {}
        for (component, name), instrument in self._instruments.items():
            rows[(component, name)] = instrument.snapshot()
        for component, collect in self._collectors.items():
            for name, value in collect().items():
                rows.setdefault(
                    (component, name),
                    {"type": "gauge", "value": float(value)},
                )
        out: dict = {}
        for component, name in sorted(rows):
            out.setdefault(component, {})[name] = rows[(component, name)]
        return out

    def __len__(self) -> int:
        return len(self._instruments)
