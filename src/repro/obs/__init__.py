"""repro.obs — the cross-cutting observability layer.

Three pieces, assembled by :mod:`repro.obs.runtime`:

* :mod:`repro.obs.tracer` — span/event tracing against the simulated
  clock, hooked into the kernel dispatch loop and the RNIC pipeline.
* :mod:`repro.obs.metrics` — counters/gauges/histograms keyed by
  component with deterministic snapshot order.
* :mod:`repro.obs.exporters` — JSONL and Chrome trace-event writers
  plus the validators behind ``python -m repro.obs validate``.
* :mod:`repro.obs.insight` — the analysis layer over exported
  artifacts: :class:`TraceFrame` indexing, streaming change-point /
  periodicity detectors, ``python -m repro.obs report`` and
  ``python -m repro.obs diff``.

Everything is disabled by default; ``install(trace=..., metrics=...)``
turns it on for the current process (the experiments CLI does this for
``--trace`` / ``--metrics``).  See docs/OBSERVABILITY.md.
"""

from .exporters import (
    validate_chrome_trace,
    validate_metrics_json,
    validate_path,
    validate_paths,
    validate_trace_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_metrics_json,
)
from .insight import (
    CusumDetector,
    Detection,
    DetectorBank,
    DiffResult,
    EwmaDetector,
    PeriodicityDetector,
    TraceFrame,
    diff_runs,
    render_report,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .runtime import (
    ObsSession,
    attach_simulator,
    engine_tracer,
    install,
    register_rnic,
    registry,
    session,
    tracer_for,
    uninstall,
)
from .tracer import TraceEvent, Tracer

__all__ = [
    "Counter",
    "CusumDetector",
    "Detection",
    "DetectorBank",
    "DiffResult",
    "EwmaDetector",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsSession",
    "PeriodicityDetector",
    "TraceEvent",
    "TraceFrame",
    "Tracer",
    "attach_simulator",
    "diff_runs",
    "engine_tracer",
    "install",
    "render_report",
    "register_rnic",
    "registry",
    "session",
    "tracer_for",
    "uninstall",
    "validate_chrome_trace",
    "validate_metrics_json",
    "validate_path",
    "validate_paths",
    "validate_trace_jsonl",
    "write_chrome_trace",
    "write_jsonl",
    "write_metrics_json",
]
