"""repro.obs — the cross-cutting observability layer.

Three pieces, assembled by :mod:`repro.obs.runtime`:

* :mod:`repro.obs.tracer` — span/event tracing against the simulated
  clock, hooked into the kernel dispatch loop and the RNIC pipeline.
* :mod:`repro.obs.metrics` — counters/gauges/histograms keyed by
  component with deterministic snapshot order.
* :mod:`repro.obs.exporters` — JSONL and Chrome trace-event writers
  plus the validators behind ``python -m repro.obs validate``.
* :mod:`repro.obs.insight` — the analysis layer over exported
  artifacts: :class:`TraceFrame` indexing, streaming change-point /
  periodicity detectors, ``python -m repro.obs report`` and
  ``python -m repro.obs diff``.
* :mod:`repro.obs.fleet` — the cross-process telemetry plane: live
  metric-delta streaming from supervised workers, deterministic fleet
  snapshot merging, and the declarative SLO engine with burn-rate
  alerting behind ``--slo`` / ``python -m repro.obs slo``.

Everything is disabled by default; ``install(trace=..., metrics=...)``
turns it on for the current process (the experiments CLI does this for
``--trace`` / ``--metrics``).  See docs/OBSERVABILITY.md.
"""

from .exporters import (
    validate_chrome_trace,
    validate_fleet_jsonl,
    validate_metrics_json,
    validate_path,
    validate_paths,
    validate_slo_report,
    validate_trace_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_metrics_json,
)
from .fleet import (
    FleetAggregator,
    SloEngine,
    SloSpec,
    SloSpecError,
    evaluate_snapshots,
    load_spec,
    merge_snapshots,
    snapshot_delta,
    write_fleet_artifacts,
)
from .insight import (
    CusumDetector,
    Detection,
    DetectorBank,
    DiffResult,
    EwmaDetector,
    PeriodicityDetector,
    TraceFrame,
    diff_runs,
    render_report,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .runtime import (
    ObsSession,
    attach_simulator,
    engine_tracer,
    install,
    register_rnic,
    registry,
    session,
    tracer_for,
    uninstall,
)
from .tracer import TraceEvent, Tracer

__all__ = [
    "Counter",
    "CusumDetector",
    "Detection",
    "DetectorBank",
    "DiffResult",
    "EwmaDetector",
    "FleetAggregator",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsSession",
    "PeriodicityDetector",
    "SloEngine",
    "SloSpec",
    "SloSpecError",
    "TraceEvent",
    "TraceFrame",
    "Tracer",
    "attach_simulator",
    "diff_runs",
    "engine_tracer",
    "evaluate_snapshots",
    "install",
    "load_spec",
    "merge_snapshots",
    "render_report",
    "register_rnic",
    "registry",
    "session",
    "snapshot_delta",
    "tracer_for",
    "uninstall",
    "validate_chrome_trace",
    "validate_fleet_jsonl",
    "validate_metrics_json",
    "validate_path",
    "validate_paths",
    "validate_slo_report",
    "validate_trace_jsonl",
    "write_chrome_trace",
    "write_fleet_artifacts",
    "write_jsonl",
    "write_metrics_json",
]
