"""repro.obs — the cross-cutting observability layer.

Three pieces, assembled by :mod:`repro.obs.runtime`:

* :mod:`repro.obs.tracer` — span/event tracing against the simulated
  clock, hooked into the kernel dispatch loop and the RNIC pipeline.
* :mod:`repro.obs.metrics` — counters/gauges/histograms keyed by
  component with deterministic snapshot order.
* :mod:`repro.obs.exporters` — JSONL and Chrome trace-event writers
  plus the validators behind ``python -m repro.obs validate``.

Everything is disabled by default; ``install(trace=..., metrics=...)``
turns it on for the current process (the experiments CLI does this for
``--trace`` / ``--metrics``).  See docs/OBSERVABILITY.md.
"""

from .exporters import (
    validate_chrome_trace,
    validate_metrics_json,
    validate_path,
    validate_paths,
    validate_trace_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_metrics_json,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .runtime import (
    ObsSession,
    attach_simulator,
    engine_tracer,
    install,
    register_rnic,
    registry,
    session,
    tracer_for,
    uninstall,
)
from .tracer import TraceEvent, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsSession",
    "TraceEvent",
    "Tracer",
    "attach_simulator",
    "engine_tracer",
    "install",
    "register_rnic",
    "registry",
    "session",
    "tracer_for",
    "uninstall",
    "validate_chrome_trace",
    "validate_metrics_json",
    "validate_path",
    "validate_paths",
    "validate_trace_jsonl",
    "write_chrome_trace",
    "write_jsonl",
    "write_metrics_json",
]
