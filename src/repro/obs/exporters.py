"""Exporters and validators for trace/metrics artifacts.

Two trace formats from the same :class:`~repro.obs.tracer.TraceEvent`
stream:

* **JSONL** — one record per line, nanosecond timestamps, the
  machine-readable interchange format (validated by
  :func:`validate_trace_jsonl`, e.g. in the ``tools/check.sh`` obs
  smoke stage).
* **Chrome trace-event JSON** — the ``{"traceEvents": [...]}`` shape
  that ``chrome://tracing`` / Perfetto load directly.  Chrome wants
  microseconds, so timestamps/durations are divided by 1e3 on the way
  out; each distinct component becomes a named thread row via
  ``thread_name`` metadata events.

Metrics snapshots serialize to plain JSON
(:func:`write_metrics_json`); the registry already sorts them, so the
file is byte-stable across reruns of a seeded experiment.
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterable, Sequence

from .tracer import PHASE_COUNTER, PHASE_INSTANT, PHASE_SPAN, TraceEvent

_NS_PER_US = 1e3
_VALID_PHASES = (PHASE_SPAN, PHASE_INSTANT, PHASE_COUNTER)


# ----------------------------------------------------------------------
# Writers
# ----------------------------------------------------------------------
def write_jsonl(events: Iterable[TraceEvent], path) -> pathlib.Path:
    """One JSON record per line, timestamps in simulated ns."""
    path = pathlib.Path(path)
    with path.open("w") as handle:
        for event in events:
            handle.write(json.dumps(event.to_dict(), sort_keys=True))
            handle.write("\n")
    return path


def write_chrome_trace(
    events: Iterable[TraceEvent], path, pid: int = 0
) -> pathlib.Path:
    """``chrome://tracing``-loadable JSON (ts/dur in µs)."""
    path = pathlib.Path(path)
    tids: dict = {}
    records = []
    for event in events:
        tid = tids.get(event.component)
        if tid is None:
            tid = len(tids)
            tids[event.component] = tid
        record = {
            "name": event.name,
            "ph": event.phase,
            "ts": event.ts / _NS_PER_US,
            "pid": pid,
            "tid": tid,
        }
        if event.phase == PHASE_SPAN:
            record["dur"] = event.dur / _NS_PER_US
        elif event.phase == PHASE_INSTANT:
            record["s"] = "t"  # thread-scoped instant
        if event.category:
            record["cat"] = event.category
        if event.args:
            record["args"] = dict(event.args)
        records.append(record)
    metadata = [
        {
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": component},
        }
        for component, tid in tids.items()
    ]
    payload = {"traceEvents": metadata + records, "displayTimeUnit": "ns"}
    path = pathlib.Path(path)
    path.write_text(json.dumps(payload) + "\n")
    return path


def write_metrics_json(snapshot: dict, path) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    return path


# ----------------------------------------------------------------------
# Validators (the schema for the check.sh smoke stage)
# ----------------------------------------------------------------------
def _check_record(record: object, where: str, errors: list) -> None:
    if not isinstance(record, dict):
        errors.append(f"{where}: not a JSON object")
        return
    for field, kinds in (("name", str), ("ph", str),
                        ("ts", (int, float)), ("component", str)):
        if field not in record:
            errors.append(f"{where}: missing field {field!r}")
        elif not isinstance(record[field], kinds):
            errors.append(f"{where}: field {field!r} has wrong type "
                          f"{type(record[field]).__name__}")
    phase = record.get("ph")
    if isinstance(phase, str) and phase not in _VALID_PHASES:
        errors.append(f"{where}: unknown phase {phase!r}")
    if phase == PHASE_SPAN:
        dur = record.get("dur")
        if not isinstance(dur, (int, float)) or dur < 0:
            errors.append(f"{where}: span needs a non-negative 'dur'")
    if phase == PHASE_COUNTER and not isinstance(record.get("args"), dict):
        errors.append(f"{where}: counter needs an 'args' mapping")
    ts = record.get("ts")
    if isinstance(ts, (int, float)) and ts < 0:
        errors.append(f"{where}: negative timestamp {ts}")


def validate_trace_jsonl(path) -> list:
    """Schema-check a JSONL trace; returns a list of error strings
    (empty == valid).  An empty file is an error — a smoke run that
    traced nothing means the hooks never fired."""
    path = pathlib.Path(path)
    errors: list = []
    lines = path.read_text().splitlines()
    if not lines:
        return [f"{path}: empty trace"]
    for lineno, line in enumerate(lines, 1):
        where = f"{path}:{lineno}"
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"{where}: invalid JSON ({exc})")
            continue
        _check_record(record, where, errors)
    return errors


def validate_chrome_trace(path) -> list:
    """Structural check of a Chrome trace-event file."""
    path = pathlib.Path(path)
    errors: list = []
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        return [f"{path}: invalid JSON ({exc})"]
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        return [f"{path}: missing top-level 'traceEvents' array"]
    events = payload["traceEvents"]
    if not isinstance(events, list) or not events:
        return [f"{path}: 'traceEvents' must be a non-empty array"]
    for index, record in enumerate(events):
        where = f"{path}#traceEvents[{index}]"
        if not isinstance(record, dict):
            errors.append(f"{where}: not a JSON object")
            continue
        phase = record.get("ph")
        if not isinstance(phase, str):
            errors.append(f"{where}: missing phase 'ph'")
            continue
        if phase == "M":
            continue  # metadata events carry no timestamp
        for field in ("name", "ts", "pid", "tid"):
            if field not in record:
                errors.append(f"{where}: missing field {field!r}")
        if phase not in _VALID_PHASES:
            errors.append(f"{where}: unknown phase {phase!r}")
        if phase == PHASE_SPAN and "dur" not in record:
            errors.append(f"{where}: span missing 'dur'")
    return errors


def _check_histogram_row(row: dict, where: str, errors: list) -> None:
    buckets = row.get("buckets")
    counts = row.get("counts")
    if not isinstance(buckets, list) or not all(
            isinstance(b, (int, float)) for b in buckets):
        errors.append(f"{where}: histogram 'buckets' must be a numeric "
                      f"array")
        return
    if any(b >= buckets[i + 1] for i, b in enumerate(buckets[:-1])):
        errors.append(f"{where}: histogram buckets must be strictly "
                      f"increasing")
    if not isinstance(counts, list) or not all(
            isinstance(c, int) and not isinstance(c, bool) and c >= 0
            for c in counts):
        errors.append(f"{where}: histogram 'counts' must be an array of "
                      f"non-negative integers")
        return
    if len(counts) != len(buckets) + 1:
        errors.append(f"{where}: histogram has {len(counts)} counts for "
                      f"{len(buckets)} buckets (want len(buckets)+1)")
        return
    total = row.get("count")
    if isinstance(total, int) and total != sum(counts):
        errors.append(f"{where}: histogram 'count' {total} != sum of "
                      f"bucket counts {sum(counts)}")


def _check_metrics_payload(payload: object, prefix: str,
                           errors: list) -> None:
    """Per-row check of one metrics snapshot object; shared by
    :func:`validate_metrics_json` (whole files) and
    :func:`validate_fleet_jsonl` (the ``metrics`` field of every
    streamed fleet line)."""
    if not isinstance(payload, dict):
        errors.append(f"{prefix}: top level must be an object")
        return
    index = 0
    for component in sorted(payload):
        metrics = payload[component]
        if not isinstance(metrics, dict):
            errors.append(f"{prefix}: component {component!r} must map "
                          f"to an object")
            continue
        for name in sorted(metrics):
            row = metrics[name]
            where = f"{prefix}: record {index} ({component}.{name})"
            index += 1
            if not isinstance(row, dict) or "type" not in row:
                errors.append(f"{where}: metric rows need a 'type'")
                continue
            kind = row["type"]
            if kind not in ("counter", "gauge", "histogram"):
                errors.append(f"{where}: unknown metric type {kind!r}")
                continue
            if kind in ("counter", "gauge"):
                value = row.get("value")
                if not isinstance(value, (int, float)) or \
                        isinstance(value, bool):
                    errors.append(f"{where}: {kind} 'value' must be "
                                  f"numeric, got "
                                  f"{type(value).__name__}")
                elif kind == "counter" and value < 0:
                    errors.append(f"{where}: counter 'value' must be "
                                  f"non-negative, got {value}")
            else:
                _check_histogram_row(row, where, errors)


def validate_metrics_json(path) -> list:
    """Structural + per-row check of a metrics snapshot file.  Error
    messages carry the flattened record index (sorted component, then
    sorted metric name — the snapshot's own serialization order) so a
    failing record in a large snapshot is findable by position, not
    just by name."""
    path = pathlib.Path(path)
    errors: list = []
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        return [f"{path}: invalid JSON ({exc})"]
    _check_metrics_payload(payload, str(path), errors)
    return errors


def validate_fleet_jsonl(path) -> list:
    """Check a ``fleet_snapshots.jsonl`` stream: every line a fleet
    snapshot record with a strictly increasing ``rev``, a known
    ``kind``, a ``task`` name, a sane ``tasks_done``, and a ``metrics``
    payload that passes the full metrics-snapshot check.  Errors name
    the offending line and the flattened record index inside it."""
    path = pathlib.Path(path)
    errors: list = []
    last_rev = 0
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        prefix = f"{path}:{lineno}"
        if not line.strip():
            errors.append(f"{prefix}: blank line")
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"{prefix}: invalid JSON ({exc})")
            continue
        if not isinstance(record, dict):
            errors.append(f"{prefix}: fleet records must be objects")
            continue
        rev = record.get("rev")
        if not isinstance(rev, int) or isinstance(rev, bool) or rev < 1:
            errors.append(f"{prefix}: 'rev' must be a positive integer, "
                          f"got {rev!r}")
        elif rev <= last_rev:
            errors.append(f"{prefix}: 'rev' {rev} not greater than "
                          f"previous {last_rev}")
        else:
            last_rev = rev
        if record.get("kind") not in ("delta", "final"):
            errors.append(f"{prefix}: 'kind' must be 'delta' or "
                          f"'final', got {record.get('kind')!r}")
        task = record.get("task")
        if not isinstance(task, str) or not task:
            errors.append(f"{prefix}: 'task' must be a non-empty string")
        done = record.get("tasks_done")
        if not isinstance(done, int) or isinstance(done, bool) or done < 0:
            errors.append(f"{prefix}: 'tasks_done' must be a "
                          f"non-negative integer, got {done!r}")
        _check_metrics_payload(record.get("metrics"),
                               f"{prefix}: metrics", errors)
    if last_rev == 0 and not errors:
        errors.append(f"{path}: empty fleet snapshot stream")
    return errors


def validate_slo_report(path) -> list:
    """Check an ``slo_report.json``: top-level shape, each objective's
    required fields (errors name ``objective N (name)``), and each
    alert's required fields (``alert N``)."""
    path = pathlib.Path(path)
    errors: list = []
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        return [f"{path}: invalid JSON ({exc})"]
    if not isinstance(payload, dict):
        return [f"{path}: top level must be an object"]
    if not isinstance(payload.get("spec"), str) or not payload.get("spec"):
        errors.append(f"{path}: 'spec' must be a non-empty string")
    ticks = payload.get("ticks")
    if not isinstance(ticks, int) or isinstance(ticks, bool) or ticks < 0:
        errors.append(f"{path}: 'ticks' must be a non-negative integer")
    if not isinstance(payload.get("compliant"), bool):
        errors.append(f"{path}: 'compliant' must be a boolean")
    objectives = payload.get("objectives")
    if not isinstance(objectives, list):
        errors.append(f"{path}: 'objectives' must be an array")
        objectives = []
    for index, objective in enumerate(objectives):
        label = (objective.get("name", "?")
                 if isinstance(objective, dict) else "?")
        where = f"{path}: objective {index} ({label})"
        if not isinstance(objective, dict):
            errors.append(f"{where}: must be an object")
            continue
        if objective.get("kind") not in ("latency", "error_rate"):
            errors.append(f"{where}: 'kind' must be 'latency' or "
                          f"'error_rate', got {objective.get('kind')!r}")
        for field in ("name", "good", "bad", "alerts", "compliant",
                      "windows"):
            if field not in objective:
                errors.append(f"{where}: missing field {field!r}")
        windows = objective.get("windows")
        if isinstance(windows, list):
            for w_index, window in enumerate(windows):
                if not isinstance(window, dict) or not isinstance(
                        window.get("ticks"), int):
                    errors.append(f"{where}: window {w_index} needs an "
                                  f"integer 'ticks'")
    alerts = payload.get("alerts")
    if not isinstance(alerts, list):
        errors.append(f"{path}: 'alerts' must be an array")
        alerts = []
    for index, alert in enumerate(alerts):
        where = f"{path}: alert {index}"
        if not isinstance(alert, dict):
            errors.append(f"{where}: must be an object")
            continue
        for field in ("tick", "objective", "window_ticks", "burn_rate",
                      "threshold", "severity"):
            if field not in alert:
                errors.append(f"{where}: missing field {field!r}")
    return errors


def validate_path(path) -> list:
    """Dispatch on filename: ``*.trace.jsonl`` / ``*.trace.json`` /
    ``*.metrics.json`` (the names :meth:`ObsSession.export` writes)
    plus the fleet artifacts (``fleet_snapshots.jsonl`` /
    ``fleet_metrics.json`` / ``slo_report.json``)."""
    name = pathlib.Path(path).name
    if name == "fleet_snapshots.jsonl" or name.endswith(".fleet.jsonl"):
        return validate_fleet_jsonl(path)
    if name == "slo_report.json" or name.endswith(".slo.json"):
        return validate_slo_report(path)
    if name == "fleet_metrics.json":
        # the merged fleet snapshot has exactly the per-task shape
        return validate_metrics_json(path)
    if name.endswith(".trace.jsonl"):
        return validate_trace_jsonl(path)
    if name.endswith(".trace.json"):
        return validate_chrome_trace(path)
    if name.endswith(".metrics.json"):
        return validate_metrics_json(path)
    return [f"{path}: unrecognized artifact name (expected *.trace.jsonl, "
            f"*.trace.json, *.metrics.json, fleet_snapshots.jsonl, or "
            f"slo_report.json)"]


def validate_paths(paths: Sequence) -> list:
    errors: list = []
    for path in paths:
        errors.extend(validate_path(path))
    return errors
