"""The span/event tracer: structured timelines of one simulation.

A :class:`Tracer` collects :class:`TraceEvent` records against a
*simulated* clock (never the wall clock — see RAG001): complete spans
("the TxPU served WQE 17 from t=120ns for 35ns"), instants ("bit 3
flipped to 1"), and counter series ("rx_bps at each sampler tick").
The event vocabulary deliberately mirrors the Chrome trace-event
format so one exporter pass (:mod:`repro.obs.exporters`) yields a
``chrome://tracing``/Perfetto-loadable file.

Tracers are usually created by :mod:`repro.obs.runtime` — one per
:class:`~repro.sim.kernel.Simulator` — and hooked into the kernel's
dispatch loop through the engine-agnostic
``Simulator.add_dispatch_hook`` callback, so both the C and the
pure-Python engine cores feed the same records.

Recording is bounded: past ``max_events`` the tracer stops appending
and counts drops instead, so tracing a long experiment degrades to a
truncated (still well-formed) timeline rather than unbounded memory.

Dispatch recording can additionally be *sampled*: with
``sample_rate=N`` the kernel dispatch hook records every Nth fired
event and accounts for the rest exactly (``sampled_out`` — no silent
loss), cutting the tracing-on dispatch tax from ~18x to near the
sampling ratio.  Sampling applies only to the dispatch firehose;
explicit spans/instants/counters from instrumentation sites are always
recorded — they are rare and individually meaningful.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Mapping, Optional

#: Chrome trace-event phases used by this tracer.
PHASE_SPAN = "X"      # complete event: ts + dur
PHASE_INSTANT = "i"   # point-in-time marker
PHASE_COUNTER = "C"   # named value series

#: Default per-tracer event cap; see the module docstring.
DEFAULT_MAX_EVENTS = 250_000


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One structured trace record (times in simulated nanoseconds)."""

    name: str
    phase: str
    ts: float
    component: str
    dur: float = 0.0
    category: str = ""
    args: Optional[Mapping[str, Any]] = None

    def to_dict(self) -> dict:
        """Flat dict form used by the JSONL exporter."""
        record = {
            "name": self.name,
            "ph": self.phase,
            "ts": self.ts,
            "component": self.component,
        }
        if self.phase == PHASE_SPAN:
            record["dur"] = self.dur
        if self.category:
            record["cat"] = self.category
        if self.args:
            record["args"] = dict(self.args)
        return record


class Tracer:
    """Collects trace events against one clock (one simulator/engine).

    ``clock`` is any zero-argument callable returning the current
    simulated time in nanoseconds; events may also carry explicit
    timestamps (spans almost always do, since the caller knows the
    admit/finish pair).
    """

    def __init__(
        self,
        clock: Callable[[], float],
        component: str = "sim",
        pid: int = 0,
        max_events: int = DEFAULT_MAX_EVENTS,
        sample_rate: int = 1,
    ) -> None:
        if max_events <= 0:
            raise ValueError(f"max_events must be positive, got {max_events}")
        if sample_rate < 1:
            raise ValueError(
                f"sample_rate must be a positive integer, got {sample_rate}")
        self.clock = clock
        self.component = component
        self.pid = pid
        self.max_events = max_events
        self.sample_rate = int(sample_rate)
        self.events: list[TraceEvent] = []
        self.dropped = 0
        #: Total kernel dispatches seen by the rate-1 hook (shared
        #: mutable cell so the hook stays allocation- and
        #: attribute-free).
        self._dispatch_seen = [0]
        #: Sampled-hook state: [countdown to the next recorded
        #: dispatch, completed sampling cycles].  A decrement-and-test
        #: is measurably cheaper per skipped dispatch than a counter
        #: increment plus modulo, and the pair still reconstructs the
        #: exact dispatch count (see :attr:`dispatches_seen`).
        self._sample_state = [self.sample_rate, 0]
        self._dispatch_hook: Optional[Callable] = None
        #: Simulator this tracer's hook is installed on (via
        #: :meth:`install_on`) and its ``trace_dispatches`` baseline —
        #: when the engine core filters dispatches itself, the exact
        #: seen-count lives there, not in the Python hook state.
        self._sim: Optional[Any] = None
        self._seen_base = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _record(self, event: TraceEvent) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    def span(
        self,
        name: str,
        start: float,
        dur: float,
        category: str = "",
        component: Optional[str] = None,
        **args: Any,
    ) -> None:
        """A complete span: ``name`` ran from ``start`` for ``dur`` ns."""
        self._record(TraceEvent(
            name=name, phase=PHASE_SPAN, ts=start, dur=dur,
            component=component if component is not None else self.component,
            category=category, args=args or None,
        ))

    def instant(
        self,
        name: str,
        category: str = "",
        component: Optional[str] = None,
        ts: Optional[float] = None,
        **args: Any,
    ) -> None:
        """A point event at ``ts`` (default: the clock's now)."""
        self._record(TraceEvent(
            name=name, phase=PHASE_INSTANT,
            ts=self.clock() if ts is None else ts,
            component=component if component is not None else self.component,
            category=category, args=args or None,
        ))

    def counter(
        self,
        name: str,
        values: Mapping[str, float],
        category: str = "",
        component: Optional[str] = None,
        ts: Optional[float] = None,
    ) -> None:
        """A counter sample: one or more named series at one time."""
        self._record(TraceEvent(
            name=name, phase=PHASE_COUNTER,
            ts=self.clock() if ts is None else ts,
            component=component if component is not None else self.component,
            category=category, args=dict(values),
        ))

    # ------------------------------------------------------------------
    # Kernel dispatch integration
    # ------------------------------------------------------------------
    def make_dispatch_hook(self) -> Callable[[float, int, Any], None]:
        """The ``(time, priority, callback)`` hook recording fired
        kernel events — the same engine-agnostic callback surface the
        determinism digest uses, so the C and Python cores feed
        identical records.  With ``sample_rate=N`` only every Nth
        dispatch is recorded; skipped dispatches are accounted in
        :attr:`sampled_out`."""
        record = self._record
        component = self.component
        rate = self.sample_rate

        if rate == 1:
            def hook(time: float, priority: int, callback: Any,
                     _seen=self._dispatch_seen) -> None:
                _seen[0] += 1
                label = getattr(callback, "__qualname__",
                                type(callback).__name__)
                record(TraceEvent(
                    name=label, phase=PHASE_INSTANT, ts=time,
                    component=component, category="dispatch",
                    args={"priority": priority} if priority else None,
                ))
        else:
            state = self._sample_state

            def record_dispatch(time: float, priority: int, callback: Any,
                                _state=state) -> None:
                _state[1] += 1
                label = getattr(callback, "__qualname__",
                                type(callback).__name__)
                record(TraceEvent(
                    name=label, phase=PHASE_INSTANT, ts=time,
                    component=component, category="dispatch",
                    args={"priority": priority} if priority else None,
                ))

            # self-sampling variant: a countdown decrement per skipped
            # dispatch — used whenever the engine core can't filter for
            # us (multiplexed hooks, foreign cores, direct calls)
            def hook(time: float, priority: int, callback: Any,
                     _state=state, _rate=rate) -> None:
                n = _state[0] - 1
                if n:
                    _state[0] = n
                    return
                _state[0] = _rate
                record_dispatch(time, priority, callback)

            # advertise the rate so the kernel mixin can push the
            # countdown into the engine core (repro.sim.kernel
            # _refresh_dispatch_hook): skipped dispatches then never
            # enter Python, and `record_dispatch` fires every Nth
            hook.dispatch_sample_rate = rate
            hook.unsampled = record_dispatch

        self._dispatch_hook = hook
        return hook

    def install_on(self, sim: Any) -> None:
        """Attach the dispatch hook to a simulator (idempotent per
        tracer: re-installing replaces the previous hook)."""
        if self._dispatch_hook is not None:
            sim.remove_dispatch_hook(self._dispatch_hook)
        sim.add_dispatch_hook(self.make_dispatch_hook())
        if sim is not self._sim:
            self._sim = sim
            self._seen_base = int(getattr(sim, "trace_dispatches", 0))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    @property
    def dispatches_seen(self) -> int:
        """Kernel dispatches observed by the hook (recorded or not).

        When installed on a simulator whose engine core exposes the
        ``trace_dispatches`` counter, the exact count comes from there —
        required when the core filters sampled dispatches itself (the
        skipped ones never reach Python).  Otherwise it is reconstructed
        from the hook's own state (direct hook calls, foreign cores).
        """
        if self._sim is not None:
            count = getattr(self._sim, "trace_dispatches", None)
            if count is not None:
                return int(count) - self._seen_base
        if self.sample_rate == 1:
            return self._dispatch_seen[0]
        countdown, cycles = self._sample_state
        return cycles * self.sample_rate + (self.sample_rate - countdown)

    @property
    def sampled_out(self) -> int:
        """Dispatches skipped by sampling — exact accounting:
        ``dispatches_seen == sampled_out + recorded dispatch events +
        cap drops``."""
        if self.sample_rate == 1:
            return 0
        seen = self.dispatches_seen
        return seen - seen // self.sample_rate

    def stats(self) -> dict:
        """Recording health: kept/dropped/sampled-out event counts."""
        return {"events": len(self.events), "dropped": self.dropped,
                "max_events": self.max_events,
                "sample_rate": self.sample_rate,
                "dispatches_seen": self.dispatches_seen,
                "sampled_out": self.sampled_out}
