"""The span/event tracer: structured timelines of one simulation.

A :class:`Tracer` collects :class:`TraceEvent` records against a
*simulated* clock (never the wall clock — see RAG001): complete spans
("the TxPU served WQE 17 from t=120ns for 35ns"), instants ("bit 3
flipped to 1"), and counter series ("rx_bps at each sampler tick").
The event vocabulary deliberately mirrors the Chrome trace-event
format so one exporter pass (:mod:`repro.obs.exporters`) yields a
``chrome://tracing``/Perfetto-loadable file.

Tracers are usually created by :mod:`repro.obs.runtime` — one per
:class:`~repro.sim.kernel.Simulator` — and hooked into the kernel's
dispatch loop through the engine-agnostic
``Simulator.add_dispatch_hook`` callback, so both the C and the
pure-Python engine cores feed the same records.

Recording is bounded: past ``max_events`` the tracer stops appending
and counts drops instead, so tracing a long experiment degrades to a
truncated (still well-formed) timeline rather than unbounded memory.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Mapping, Optional

#: Chrome trace-event phases used by this tracer.
PHASE_SPAN = "X"      # complete event: ts + dur
PHASE_INSTANT = "i"   # point-in-time marker
PHASE_COUNTER = "C"   # named value series

#: Default per-tracer event cap; see the module docstring.
DEFAULT_MAX_EVENTS = 250_000


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One structured trace record (times in simulated nanoseconds)."""

    name: str
    phase: str
    ts: float
    component: str
    dur: float = 0.0
    category: str = ""
    args: Optional[Mapping[str, Any]] = None

    def to_dict(self) -> dict:
        """Flat dict form used by the JSONL exporter."""
        record = {
            "name": self.name,
            "ph": self.phase,
            "ts": self.ts,
            "component": self.component,
        }
        if self.phase == PHASE_SPAN:
            record["dur"] = self.dur
        if self.category:
            record["cat"] = self.category
        if self.args:
            record["args"] = dict(self.args)
        return record


class Tracer:
    """Collects trace events against one clock (one simulator/engine).

    ``clock`` is any zero-argument callable returning the current
    simulated time in nanoseconds; events may also carry explicit
    timestamps (spans almost always do, since the caller knows the
    admit/finish pair).
    """

    def __init__(
        self,
        clock: Callable[[], float],
        component: str = "sim",
        pid: int = 0,
        max_events: int = DEFAULT_MAX_EVENTS,
    ) -> None:
        if max_events <= 0:
            raise ValueError(f"max_events must be positive, got {max_events}")
        self.clock = clock
        self.component = component
        self.pid = pid
        self.max_events = max_events
        self.events: list[TraceEvent] = []
        self.dropped = 0
        self._dispatch_hook: Optional[Callable] = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _record(self, event: TraceEvent) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    def span(
        self,
        name: str,
        start: float,
        dur: float,
        category: str = "",
        component: Optional[str] = None,
        **args: Any,
    ) -> None:
        """A complete span: ``name`` ran from ``start`` for ``dur`` ns."""
        self._record(TraceEvent(
            name=name, phase=PHASE_SPAN, ts=start, dur=dur,
            component=component if component is not None else self.component,
            category=category, args=args or None,
        ))

    def instant(
        self,
        name: str,
        category: str = "",
        component: Optional[str] = None,
        ts: Optional[float] = None,
        **args: Any,
    ) -> None:
        """A point event at ``ts`` (default: the clock's now)."""
        self._record(TraceEvent(
            name=name, phase=PHASE_INSTANT,
            ts=self.clock() if ts is None else ts,
            component=component if component is not None else self.component,
            category=category, args=args or None,
        ))

    def counter(
        self,
        name: str,
        values: Mapping[str, float],
        category: str = "",
        component: Optional[str] = None,
        ts: Optional[float] = None,
    ) -> None:
        """A counter sample: one or more named series at one time."""
        self._record(TraceEvent(
            name=name, phase=PHASE_COUNTER,
            ts=self.clock() if ts is None else ts,
            component=component if component is not None else self.component,
            category=category, args=dict(values),
        ))

    # ------------------------------------------------------------------
    # Kernel dispatch integration
    # ------------------------------------------------------------------
    def make_dispatch_hook(self) -> Callable[[float, int, Any], None]:
        """The ``(time, priority, callback)`` hook recording every fired
        kernel event — the same engine-agnostic callback surface the
        determinism digest uses, so the C and Python cores feed
        identical records."""
        record = self._record
        component = self.component

        def hook(time: float, priority: int, callback: Any) -> None:
            label = getattr(callback, "__qualname__",
                            type(callback).__name__)
            record(TraceEvent(
                name=label, phase=PHASE_INSTANT, ts=time,
                component=component, category="dispatch",
                args={"priority": priority} if priority else None,
            ))

        self._dispatch_hook = hook
        return hook

    def install_on(self, sim: Any) -> None:
        """Attach the dispatch hook to a simulator (idempotent per
        tracer: re-installing replaces the previous hook)."""
        if self._dispatch_hook is not None:
            sim.remove_dispatch_hook(self._dispatch_hook)
        sim.add_dispatch_hook(self.make_dispatch_hook())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def stats(self) -> dict:
        """Recording health: kept/dropped event counts."""
        return {"events": len(self.events), "dropped": self.dropped,
                "max_events": self.max_events}
