"""Streaming detectors over counter series.

These are the *online* consumers of the telemetry stream: each detector
is fed ``(timestamp, value)`` samples one at a time — the shape a
:class:`~repro.telemetry.monitor.CounterSampler` tick or a registry
collector drain produces — and raises an alarm the moment its decision
statistic crosses threshold.  They model what a deployed counter-based
defense (Pythia-era eviction telemetry, ``ethtool -S`` polling loops)
can actually see, which is the point of the Table I detector columns:
a *persistent* channel modulates durable counters and lights these
detectors up; Ragnar's volatile channels leave every counter series
stationary and sail through.

Three detector families:

* :class:`EwmaDetector` — exponentially weighted moving average with a
  companion EW variance; alarms on samples far outside the smoothed
  band.  Catches bursts and level shifts quickly, forgets slowly.
* :class:`CusumDetector` — two-sided tabular CUSUM on standardized
  residuals against a frozen warm-up baseline; the classic
  change-point detector, sensitive to small persistent shifts.
* :class:`PeriodicityDetector` — windowed autocorrelation (reusing
  :func:`repro.analysis.periodicity.dominant_periods`) that alarms on
  strong periodic modulation, e.g. a covert sender toggling a counter
  at its symbol rate.

All three are deterministic, pure-Python, allocate O(window), and
never read a clock — timestamps come from the caller.
"""

from __future__ import annotations

import collections
import dataclasses
import math
from typing import Optional, Sequence

from repro.analysis.periodicity import autocorrelation


@dataclasses.dataclass(frozen=True)
class Detection:
    """One detector's verdict over a watched series."""

    detector: str
    flagged: bool
    #: Timestamp of the first alarming sample (None when never flagged).
    first_flag_ts: Optional[float]
    #: Number of alarming samples.
    flags: int
    #: Total samples observed.
    samples: int
    reason: str = ""

    @property
    def flag_rate(self) -> float:
        """Fraction of observed samples in alarm state."""
        return self.flags / self.samples if self.samples else 0.0


class StreamingDetector:
    """Base class: feed samples with :meth:`observe`, read the verdict
    with :meth:`finish`.  Subclasses implement :meth:`_alarm`."""

    name = "streaming"

    def __init__(self) -> None:
        self._samples = 0
        self._flags = 0
        self._first_flag_ts: Optional[float] = None
        self._reason = ""

    def observe(self, ts: float, value: float) -> bool:
        """Consume one sample; returns True when this sample alarms."""
        self._samples += 1
        alarmed = self._alarm(ts, float(value))
        if alarmed:
            self._flags += 1
            if self._first_flag_ts is None:
                self._first_flag_ts = ts
        return alarmed

    def _alarm(self, ts: float, value: float) -> bool:
        raise NotImplementedError

    def finish(self) -> Detection:
        return Detection(
            detector=self.name,
            flagged=self._flags > 0,
            first_flag_ts=self._first_flag_ts,
            flags=self._flags,
            samples=self._samples,
            reason=self._reason,
        )


class EwmaDetector(StreamingDetector):
    """EWMA band monitor: alarm when a sample leaves the smoothed
    ``mean ± k·std`` band.

    The first ``warmup`` samples initialize the mean/variance without
    alarming (a defender always has history on a tenant before judging
    it).  ``min_rel_band`` floors the band at a fraction of the running
    mean so quantization noise on a near-constant series cannot alarm —
    a counter ticking 1000, 1001, 1000 is stationary, not an attack.

    ``min_abs_band`` floors the band *absolutely*: an idle tenant whose
    warm-up is all zeros has zero variance AND zero mean, so both the
    EW band and the relative floor collapse to 0.0 — and a band of
    exactly zero used to be treated as "degenerate, never alarm", which
    silently suppressed the alarm on the very first level shift while
    that shifted sample dragged the baseline toward the attack level (a
    dead zone exactly where a defender most wants sensitivity).  With
    the absolute epsilon floor the band stays positive, so the first
    nonzero sample off an idle baseline alarms and (being alarmed) is
    kept out of the baseline.
    """

    name = "ewma"

    def __init__(self, alpha: float = 0.25, k: float = 5.0,
                 warmup: int = 8, min_rel_band: float = 0.25,
                 min_abs_band: float = 1e-9) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if k <= 0 or warmup < 2:
            raise ValueError("need positive k and warmup >= 2")
        if min_abs_band <= 0.0:
            raise ValueError(
                f"min_abs_band must be positive (it exists to keep a "
                f"degenerate zero baseline alarmable), got {min_abs_band}")
        super().__init__()
        self.alpha = alpha
        self.k = k
        self.warmup = warmup
        self.min_rel_band = min_rel_band
        self.min_abs_band = min_abs_band
        self._mean = 0.0
        self._var = 0.0

    def _alarm(self, ts: float, value: float) -> bool:
        if self._samples <= self.warmup:
            # Welford-style warm-up estimate, no alarms yet
            delta = value - self._mean
            self._mean += delta / self._samples
            self._var += delta * (value - self._mean)
            return False
        if self._samples == self.warmup + 1:
            self._var /= max(self.warmup - 1, 1)
        band = self.k * math.sqrt(self._var)
        band = max(band, self.min_rel_band * abs(self._mean),
                   self.min_abs_band)
        residual = value - self._mean
        alarmed = abs(residual) > band
        if alarmed and not self._reason:
            self._reason = (f"sample {value:.6g} outside "
                            f"{self._mean:.6g} ± {band:.6g}")
        # alarming samples do not pollute the baseline (classic
        # shielded EWMA), so a sustained attack keeps alarming
        if not alarmed:
            self._mean += self.alpha * residual
            self._var = ((1.0 - self.alpha) *
                         (self._var + self.alpha * residual * residual))
        return alarmed


class CusumDetector(StreamingDetector):
    """Two-sided tabular CUSUM on residuals standardized against a
    frozen warm-up baseline.

    After ``warmup`` samples fix ``(mean, std)``, each sample updates
    ``S+ = max(0, S+ + z - k)`` and ``S- = max(0, S- - z - k)``; either
    statistic exceeding ``h`` alarms.  ``k`` is the slack and ``h`` the
    decision interval, both in standard deviations.  ``min_rel_std``
    floors the standardization scale at a fraction of the baseline mean
    (same quantization-noise guard as the EWMA band).
    """

    name = "cusum"

    def __init__(self, k: float = 0.5, h: float = 6.0,
                 warmup: int = 8, min_rel_std: float = 0.05) -> None:
        if k < 0 or h <= 0 or warmup < 2:
            raise ValueError("need k >= 0, h > 0, warmup >= 2")
        super().__init__()
        self.k = k
        self.h = h
        self.warmup = warmup
        self.min_rel_std = min_rel_std
        self._mean = 0.0
        self._m2 = 0.0
        self._std = 0.0
        self._pos = 0.0
        self._neg = 0.0

    def _alarm(self, ts: float, value: float) -> bool:
        if self._samples <= self.warmup:
            delta = value - self._mean
            self._mean += delta / self._samples
            self._m2 += delta * (value - self._mean)
            if self._samples == self.warmup:
                self._std = math.sqrt(self._m2 / (self.warmup - 1))
                self._std = max(self._std,
                                self.min_rel_std * abs(self._mean), 1e-12)
            return False
        z = (value - self._mean) / self._std
        self._pos = max(0.0, self._pos + z - self.k)
        self._neg = max(0.0, self._neg - z - self.k)
        alarmed = self._pos > self.h or self._neg > self.h
        if alarmed:
            if not self._reason:
                side = "upward" if self._pos > self.h else "downward"
                self._reason = (f"{side} shift from baseline "
                                f"{self._mean:.6g} (S={max(self._pos, self._neg):.1f})")
            # reset after alarm so repeated shifts re-trigger instead of
            # saturating (standard CUSUM restart)
            self._pos = self._neg = 0.0
        return alarmed


def periodicity_score(buffer: Sequence[float], min_cov: float,
                      power_of_two_only: bool) -> tuple[float, int]:
    """Score one full window for periodic modulation.

    Returns ``(best autocorrelation score, best lag)`` — ``(0.0, 0)``
    when the window fails the coefficient-of-variation gate (a flat
    series trivially correlates with itself).  Shared by the scalar
    :class:`PeriodicityDetector` and the vectorized bank in
    :mod:`repro.defense.service` so both paths score a window with the
    exact same floating-point operation sequence (the parity guarantee
    in docs/DEFENSE.md).
    """
    n = len(buffer)
    mean = sum(buffer) / n
    var = sum((v - mean) ** 2 for v in buffer) / n
    if abs(mean) < 1e-12 or math.sqrt(var) / abs(mean) < min_cov:
        return 0.0, 0
    acf = autocorrelation(buffer, unbiased=True)
    limit = max(n // 2, 2)
    best_score, best_lag = 0.0, 0
    for lag in range(2, limit):
        if power_of_two_only and lag & (lag - 1):
            continue
        score = float(acf[lag])
        if score > best_score:
            best_score, best_lag = score, lag
    return best_score, best_lag


class PeriodicityDetector(StreamingDetector):
    """Windowed periodic-modulation detector.

    Keeps the last ``window`` samples; every ``stride`` samples it
    computes the unbiased autocorrelation and alarms when some lag's
    correlation exceeds ``score_threshold`` *and* the window actually
    modulates (coefficient of variation above ``min_cov`` — a flat
    series trivially correlates with itself).  With
    ``power_of_two_only`` the alarm is restricted to lags that are
    powers of two, matching the paper's Section IV-C observation that
    ULI structure repeats in "2's power periodic manners".
    """

    name = "periodicity"

    def __init__(self, window: int = 64, stride: int = 16,
                 score_threshold: float = 0.5, min_cov: float = 0.2,
                 power_of_two_only: bool = False) -> None:
        if window < 8:
            raise ValueError(f"window must be >= 8, got {window}")
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        super().__init__()
        self.window = window
        self.stride = stride
        self.score_threshold = score_threshold
        self.min_cov = min_cov
        self.power_of_two_only = power_of_two_only
        # deque(maxlen) evicts the oldest sample in O(1); the previous
        # ``del list[0]`` shifted the whole window on every observe
        self._buffer: collections.deque[float] = collections.deque(
            maxlen=window)

    def _alarm(self, ts: float, value: float) -> bool:
        self._buffer.append(value)
        if len(self._buffer) < self.window or self._samples % self.stride:
            return False
        best_score, best_lag = periodicity_score(
            self._buffer, self.min_cov, self.power_of_two_only)
        if best_score > self.score_threshold:
            if not self._reason:
                self._reason = (f"periodic modulation at lag {best_lag} "
                                f"(acf {best_score:.2f})")
            return True
        return False


class DetectorBank:
    """A set of detectors watching one series together."""

    def __init__(self, detectors: Optional[Sequence[StreamingDetector]] = None
                 ) -> None:
        self.detectors = list(detectors) if detectors is not None else [
            EwmaDetector(), CusumDetector(), PeriodicityDetector(),
        ]
        names = [d.name for d in self.detectors]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate detector names: {names}")

    def observe(self, ts: float, value: float) -> None:
        for detector in self.detectors:
            detector.observe(ts, value)

    def results(self) -> dict[str, Detection]:
        return {d.name: d.finish() for d in self.detectors}


def run_series(detector: StreamingDetector, times: Sequence[float],
               values: Sequence[float]) -> Detection:
    """Feed a whole series through one detector and return its verdict."""
    if len(times) != len(values):
        raise ValueError(f"series length mismatch: {len(times)} times "
                         f"vs {len(values)} values")
    for ts, value in zip(times, values):
        detector.observe(ts, value)
    return detector.finish()
