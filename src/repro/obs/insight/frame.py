"""TraceFrame: an indexed, queryable view over one exported trace.

Loads either artifact the exporters write — ``*.trace.jsonl``
(nanosecond records, one per line) or ``*.trace.json`` (Chrome
trace-event, microseconds) — into one normalized in-memory index:

* spans, instants and counter samples, each per ``(component, name)``;
* per-span-name latency arrays and :class:`~repro.analysis.stats`
  summaries;
* counter time series per ``(component, name, arg key)``;
* station occupancy (concurrent-span depth over time) per component;
* derived ULI series — the end-to-end ``wqe`` spans the RNIC pipeline
  emits and the per-WR spans of the verbs engine are completion
  latencies, i.e. exactly the quantity the covert receivers demodulate.

Everything returns plain lists/arrays ordered deterministically, so
downstream renderers (:mod:`repro.obs.insight.report`) are byte-stable.
"""

from __future__ import annotations

import json
import pathlib
from typing import Optional, Sequence

import numpy as np

from repro.analysis.periodicity import dominant_periods
from repro.analysis.stats import SummaryStats, summarize
from repro.obs.tracer import PHASE_COUNTER, PHASE_INSTANT, PHASE_SPAN

_US_TO_NS = 1e3

#: Span names whose duration is an end-to-end completion latency — the
#: defender-invisible quantity Ragnar modulates (docs/OBSERVABILITY.md
#: "What gets recorded").
_ULI_SPAN_NAMES = ("wqe", "read", "write", "send")


class TraceFrame:
    """One loaded trace, indexed by phase and ``(component, name)``."""

    def __init__(self, records: Sequence[dict], source: str = "") -> None:
        self.source = source
        #: (ts, dur, component, name, args) sorted by (ts, component, name)
        self.spans: list[tuple] = []
        #: (ts, component, name, args)
        self.instants: list[tuple] = []
        #: (ts, component, name, {series: value})
        self.counters: list[tuple] = []
        for record in records:
            phase = record.get("ph")
            ts = float(record.get("ts", 0.0))
            component = str(record.get("component", ""))
            name = str(record.get("name", ""))
            args = record.get("args") or {}
            if phase == PHASE_SPAN:
                self.spans.append(
                    (ts, float(record.get("dur", 0.0)), component, name, args))
            elif phase == PHASE_INSTANT:
                self.instants.append((ts, component, name, args))
            elif phase == PHASE_COUNTER:
                self.counters.append((ts, component, name, args))
        self.spans.sort(key=lambda s: (s[0], s[2], s[3]))
        self.instants.sort(key=lambda i: (i[0], i[1], i[2]))
        self.counters.sort(key=lambda c: (c[0], c[1], c[2]))

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    @classmethod
    def from_jsonl(cls, path) -> "TraceFrame":
        path = pathlib.Path(path)
        records = []
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: invalid JSON ({exc})"
                                 ) from exc
        return cls(records, source=path.name)

    @classmethod
    def from_chrome(cls, path) -> "TraceFrame":
        """Load a Chrome trace-event file, mapping µs back to ns and
        recovering component names from the thread-name metadata."""
        path = pathlib.Path(path)
        payload = json.loads(path.read_text())
        events = payload.get("traceEvents")
        if not isinstance(events, list):
            raise ValueError(f"{path}: missing 'traceEvents' array")
        threads = {
            (event.get("pid", 0), event.get("tid", 0)):
                event.get("args", {}).get("name", "")
            for event in events if event.get("ph") == "M"
        }
        records = []
        for event in events:
            if event.get("ph") == "M":
                continue
            record = dict(event)
            record["ts"] = float(event.get("ts", 0.0)) * _US_TO_NS
            if "dur" in event:
                record["dur"] = float(event["dur"]) * _US_TO_NS
            record["component"] = threads.get(
                (event.get("pid", 0), event.get("tid", 0)), "")
            records.append(record)
        return cls(records, source=path.name)

    @classmethod
    def load(cls, path) -> "TraceFrame":
        """Dispatch on the exporter naming convention."""
        name = pathlib.Path(path).name
        if name.endswith(".trace.jsonl"):
            return cls.from_jsonl(path)
        if name.endswith(".trace.json"):
            return cls.from_chrome(path)
        raise ValueError(f"{path}: not a *.trace.jsonl or *.trace.json "
                         f"artifact")

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.spans) + len(self.instants) + len(self.counters)

    @property
    def span_range(self) -> tuple[float, float]:
        """(first, last) timestamp across all records (0, 0 if empty)."""
        times = ([s[0] for s in self.spans] + [s[0] + s[1] for s in self.spans]
                 + [i[0] for i in self.instants]
                 + [c[0] for c in self.counters])
        if not times:
            return 0.0, 0.0
        return min(times), max(times)

    def components(self) -> list[str]:
        return sorted({s[2] for s in self.spans}
                      | {i[1] for i in self.instants}
                      | {c[1] for c in self.counters})

    def summary(self) -> dict:
        first, last = self.span_range
        return {
            "spans": len(self.spans),
            "instants": len(self.instants),
            "counter_samples": len(self.counters),
            "components": self.components(),
            "start_ns": first,
            "end_ns": last,
        }

    # ------------------------------------------------------------------
    # Span queries
    # ------------------------------------------------------------------
    def durations(self, name: Optional[str] = None,
                  component: Optional[str] = None) -> np.ndarray:
        """Span durations (ns) filtered by name and/or component."""
        return np.asarray([
            dur for ts, dur, comp, span_name, _ in self.spans
            if (name is None or span_name == name)
            and (component is None or comp == component)
        ], dtype=np.float64)

    def latency_summaries(self) -> dict[tuple[str, str], SummaryStats]:
        """Per ``(component, span name)`` latency summary, sorted keys."""
        groups: dict[tuple[str, str], list[float]] = {}
        for ts, dur, component, name, _ in self.spans:
            groups.setdefault((component, name), []).append(dur)
        return {key: summarize(groups[key]) for key in sorted(groups)}

    def slowest_spans(self, top: int = 10) -> list[tuple]:
        """The ``top`` longest spans as (dur, ts, component, name),
        longest first; ties broken by (ts, component, name) so the
        ordering — and any report built on it — is deterministic."""
        ranked = sorted(self.spans,
                        key=lambda s: (-s[1], s[0], s[2], s[3]))
        return [(dur, ts, component, name)
                for ts, dur, component, name, _ in ranked[:top]]

    # ------------------------------------------------------------------
    # Counter / instant series
    # ------------------------------------------------------------------
    def counter_keys(self) -> list[tuple[str, str, str]]:
        """All (component, counter name, series key) triples, sorted."""
        keys = set()
        for ts, component, name, args in self.counters:
            for key in args:
                keys.add((component, name, key))
        return sorted(keys)

    def counter_series(self, name: str, key: str,
                       component: Optional[str] = None
                       ) -> tuple[np.ndarray, np.ndarray]:
        """(times, values) for one counter series, time-ordered."""
        times, values = [], []
        for ts, comp, counter_name, args in self.counters:
            if counter_name != name or key not in args:
                continue
            if component is not None and comp != component:
                continue
            times.append(ts)
            values.append(float(args[key]))
        return (np.asarray(times, dtype=np.float64),
                np.asarray(values, dtype=np.float64))

    def instant_rate(self, bucket_ns: float,
                     category_component: Optional[str] = None
                     ) -> tuple[np.ndarray, np.ndarray]:
        """Instants-per-bucket time series (e.g. kernel dispatch rate).

        ``category_component`` filters on the instant's component.
        Returns (bucket start times, counts).
        """
        if bucket_ns <= 0:
            raise ValueError(f"bucket must be positive, got {bucket_ns}")
        times = [ts for ts, comp, _, _ in self.instants
                 if category_component is None or comp == category_component]
        if not times:
            return (np.asarray([], dtype=np.float64),
                    np.asarray([], dtype=np.float64))
        arr = np.asarray(times, dtype=np.float64)
        start = float(arr.min())
        buckets = np.floor((arr - start) / bucket_ns).astype(np.int64)
        counts = np.bincount(buckets).astype(np.float64)
        edges = start + bucket_ns * np.arange(counts.size, dtype=np.float64)
        return edges, counts

    # ------------------------------------------------------------------
    # Occupancy (queue depth) and utilization
    # ------------------------------------------------------------------
    def occupancy(self, component: str) -> tuple[np.ndarray, np.ndarray]:
        """Concurrent-span depth over time for one component.

        Returns (event times, depth after each event) from the +1/-1
        sweep over span starts/ends — the station's queue-depth series.
        """
        edges: list[tuple[float, int]] = []
        for ts, dur, comp, _, _ in self.spans:
            if comp != component:
                continue
            edges.append((ts, 1))
            edges.append((ts + dur, -1))
        if not edges:
            return (np.asarray([], dtype=np.float64),
                    np.asarray([], dtype=np.float64))
        # ends sort before starts at equal times so back-to-back spans
        # do not read as overlapping
        edges.sort(key=lambda e: (e[0], e[1]))
        times, depths, depth = [], [], 0
        for ts, step in edges:
            depth += step
            times.append(ts)
            depths.append(depth)
        return (np.asarray(times, dtype=np.float64),
                np.asarray(depths, dtype=np.float64))

    def utilization(self, component: str) -> float:
        """Busy fraction: union of span intervals / trace wall span."""
        first, last = self.span_range
        window = last - first
        if window <= 0:
            return 0.0
        times, depths = self.occupancy(component)
        if times.size == 0:
            return 0.0
        busy = 0.0
        for i in range(times.size - 1):
            if depths[i] > 0:
                busy += times[i + 1] - times[i]
        return busy / window

    # ------------------------------------------------------------------
    # Derived ULI series
    # ------------------------------------------------------------------
    def uli_series(self, component: Optional[str] = None
                   ) -> tuple[np.ndarray, np.ndarray]:
        """Completion-latency samples derived from end-to-end spans.

        Each ``wqe`` span (RNIC pipeline) or per-WR verbs-engine span is
        one ULI sample; the timestamp is the span midpoint — the same
        convention the covert receivers use (see
        :class:`repro.covert.lockstep.PipelinedReader`).
        """
        times, values = [], []
        for ts, dur, comp, name, _ in self.spans:
            if name not in _ULI_SPAN_NAMES:
                continue
            if component is not None and comp != component:
                continue
            times.append(ts + dur / 2.0)
            values.append(dur)
        order = np.argsort(np.asarray(times, dtype=np.float64),
                           kind="stable")
        return (np.asarray(times, dtype=np.float64)[order],
                np.asarray(values, dtype=np.float64)[order])

    def uli_periods(self, buckets: int = 128, top: int = 3) -> list[float]:
        """Dominant periods (ns) of the derived ULI series, from the
        unbiased autocorrelation of the uniformly resampled signal."""
        times, values = self.uli_series()
        if times.size < 8:
            return []
        grid_times, grid_values = resample_uniform(times, values, buckets)
        if grid_times.size < 8:
            return []
        step_ns = float(grid_times[1] - grid_times[0])
        return [lag * step_ns
                for lag in dominant_periods(grid_values, top=top)]


def resample_uniform(times: np.ndarray, values: np.ndarray, buckets: int
                     ) -> tuple[np.ndarray, np.ndarray]:
    """Bucket-mean an irregular series onto a uniform grid.

    Empty buckets take the running previous mean (zero-order hold), so
    the output is gap-free and autocorrelation-friendly.  Returns
    (bucket start times, bucket means).
    """
    if buckets < 2:
        raise ValueError(f"need at least 2 buckets, got {buckets}")
    if times.size == 0:
        return (np.asarray([], dtype=np.float64),
                np.asarray([], dtype=np.float64))
    start, end = float(times.min()), float(times.max())
    if end <= start:
        return (np.asarray([start]), np.asarray([float(values.mean())]))
    width = (end - start) / buckets
    index = np.minimum(((times - start) / width).astype(np.int64),
                       buckets - 1)
    sums = np.bincount(index, weights=values, minlength=buckets)
    counts = np.bincount(index, minlength=buckets)
    means = np.zeros(buckets, dtype=np.float64)
    hold = float(values[0])
    for i in range(buckets):
        if counts[i]:
            hold = sums[i] / counts[i]
        means[i] = hold
    grid = start + width * np.arange(buckets, dtype=np.float64)
    return grid, means
