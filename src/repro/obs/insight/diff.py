"""Run-to-run comparison with configurable tolerances.

``python -m repro.obs diff <run_a> <run_b>`` compares two run
directories the way a CI gate needs to: metric snapshots and bench
JSON within relative tolerances, experiment tables byte-for-byte.
Any finding beyond tolerance is a **regression** and the CLI exits
nonzero; identical runs diff clean and exit zero.

What is compared (by matching file name in both directories):

* ``<name>.metrics.json`` — every numeric leaf (counter/gauge values,
  histogram count/sum), relative drift beyond ``--tolerance``;
* ``BENCH*.json`` bench reports — per-bench ``ops_per_s``; a *drop*
  beyond ``--bench-tolerance`` regresses (improvements are noted,
  never fatal);
* ``<name>.txt`` tables — behavioural output, must match exactly;
* ``<name>.trace.jsonl`` — advisory only: event-count drift is noted
  but traces are timing-shaped, so they never fail the diff;
* ``fleet_metrics.json`` — the merged fleet snapshot, same numeric
  comparison as per-task metrics;
* ``slo_report.json`` — a *newly violated* objective regresses;
  recovered objectives and alert-count drift are notes;
* ``fleet_snapshots.jsonl`` — advisory: stream line-count drift only
  (the live stream is timing-shaped under ``--jobs``; the canonical
  rewrite makes counts comparable between finished runs).
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Iterator


@dataclasses.dataclass
class DiffResult:
    """Comparison outcome: human lines plus the regression list."""

    lines: list[str] = dataclasses.field(default_factory=list)
    regressions: list[str] = dataclasses.field(default_factory=list)
    notes: list[str] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        out = list(self.lines)
        for note in self.notes:
            out.append(f"note: {note}")
        for regression in self.regressions:
            out.append(f"REGRESSION: {regression}")
        out.append("diff: ok" if self.ok else
                   f"diff: {len(self.regressions)} regression(s)")
        return "\n".join(out) + "\n"


def _metric_leaves(payload: dict) -> Iterator[tuple[str, float]]:
    """Flatten a metrics snapshot to sorted (dotted key, value) pairs."""
    for component in sorted(payload):
        metrics = payload[component]
        if not isinstance(metrics, dict):
            continue
        for name in sorted(metrics):
            row = metrics[name]
            if not isinstance(row, dict):
                continue
            for field in ("value", "count", "sum"):
                value = row.get(field)
                if isinstance(value, (int, float)):
                    yield f"{component}.{name}.{field}", float(value)


def _rel_delta(a: float, b: float) -> float:
    if a == b:
        return 0.0
    scale = max(abs(a), abs(b))
    return (b - a) / scale if scale else 0.0


def _diff_metrics(path_a: pathlib.Path, path_b: pathlib.Path,
                  tolerance: float, result: DiffResult) -> None:
    try:
        leaves_a = dict(_metric_leaves(json.loads(path_a.read_text())))
        leaves_b = dict(_metric_leaves(json.loads(path_b.read_text())))
    except json.JSONDecodeError as exc:
        result.regressions.append(f"{path_a.name}: unreadable ({exc})")
        return
    for key in sorted(set(leaves_a) | set(leaves_b)):
        if key not in leaves_a:
            result.regressions.append(
                f"{path_a.name}: metric {key} only in run B")
            continue
        if key not in leaves_b:
            result.regressions.append(
                f"{path_a.name}: metric {key} only in run A")
            continue
        delta = _rel_delta(leaves_a[key], leaves_b[key])
        if abs(delta) > tolerance:
            result.regressions.append(
                f"{path_a.name}: {key} drifted {delta:+.1%} "
                f"({leaves_a[key]:.6g} -> {leaves_b[key]:.6g}, "
                f"tolerance {tolerance:.0%})")


def _diff_bench(path_a: pathlib.Path, path_b: pathlib.Path,
                bench_tolerance: float, result: DiffResult) -> None:
    try:
        bench_a = json.loads(path_a.read_text()).get("benches", {})
        bench_b = json.loads(path_b.read_text()).get("benches", {})
    except json.JSONDecodeError as exc:
        result.regressions.append(f"{path_a.name}: unreadable ({exc})")
        return
    for name in sorted(set(bench_a) & set(bench_b)):
        a = bench_a[name].get("ops_per_s")
        b = bench_b[name].get("ops_per_s")
        if not isinstance(a, (int, float)) or not isinstance(b, (int, float)):
            continue
        if a <= 0:
            continue
        ratio = b / a
        if ratio < 1.0 - bench_tolerance:
            result.regressions.append(
                f"{path_a.name}: {name} throughput regressed to "
                f"{ratio:.2f}x ({a:,.0f} -> {b:,.0f} ops/s, tolerance "
                f"{bench_tolerance:.0%})")
        elif ratio > 1.0 + bench_tolerance:
            result.notes.append(
                f"{path_a.name}: {name} improved to {ratio:.2f}x")


def _diff_slo(path_a: pathlib.Path, path_b: pathlib.Path,
              result: DiffResult) -> None:
    """A newly violated objective (compliant in A, violated in B) is a
    regression; recoveries and alert-count changes are notes."""
    try:
        report_a = json.loads(path_a.read_text())
        report_b = json.loads(path_b.read_text())
    except json.JSONDecodeError as exc:
        result.regressions.append(f"{path_a.name}: unreadable ({exc})")
        return
    def by_name(report):
        return {o["name"]: o for o in report.get("objectives", [])
                if isinstance(o, dict) and "name" in o}
    objectives_a = by_name(report_a)
    objectives_b = by_name(report_b)
    for name in sorted(set(objectives_a) | set(objectives_b)):
        if name not in objectives_b:
            result.notes.append(
                f"{path_a.name}: objective {name} only in run A")
            continue
        if name not in objectives_a:
            result.notes.append(
                f"{path_a.name}: objective {name} only in run B")
            continue
        ok_a = bool(objectives_a[name].get("compliant"))
        ok_b = bool(objectives_b[name].get("compliant"))
        if ok_a and not ok_b:
            result.regressions.append(
                f"{path_a.name}: objective {name} newly violated "
                f"(compliant in A, violated in B)")
        elif not ok_a and ok_b:
            result.notes.append(
                f"{path_a.name}: objective {name} recovered")
    alerts_a = len(report_a.get("alerts", []))
    alerts_b = len(report_b.get("alerts", []))
    if alerts_a != alerts_b:
        result.notes.append(
            f"{path_a.name}: burn-rate alerts {alerts_a} -> {alerts_b}")


def _trace_event_count(path: pathlib.Path) -> int:
    return sum(1 for line in path.read_text().splitlines() if line.strip())


def diff_runs(run_a, run_b, tolerance: float = 0.2,
              bench_tolerance: float = 0.2) -> DiffResult:
    """Compare two run directories; see the module docstring."""
    run_a = pathlib.Path(run_a)
    run_b = pathlib.Path(run_b)
    for run in (run_a, run_b):
        if not run.is_dir():
            raise FileNotFoundError(f"{run}: not a directory")
    result = DiffResult()
    names_a = {p.name for p in run_a.iterdir() if p.is_file()}
    names_b = {p.name for p in run_b.iterdir() if p.is_file()}
    for name in sorted(names_a ^ names_b):
        side = "A" if name in names_a else "B"
        result.notes.append(f"{name}: only in run {side}")
    compared = 0
    for name in sorted(names_a & names_b):
        path_a, path_b = run_a / name, run_b / name
        if name.endswith(".metrics.json") or name == "fleet_metrics.json":
            compared += 1
            _diff_metrics(path_a, path_b, tolerance, result)
        elif name == "slo_report.json":
            compared += 1
            _diff_slo(path_a, path_b, result)
        elif name == "fleet_snapshots.jsonl":
            compared += 1
            count_a = _trace_event_count(path_a)
            count_b = _trace_event_count(path_b)
            if count_a != count_b:
                result.notes.append(
                    f"{name}: fleet snapshot lines {count_a} -> "
                    f"{count_b} (advisory)")
        elif name.startswith("BENCH") and name.endswith(".json"):
            compared += 1
            _diff_bench(path_a, path_b, bench_tolerance, result)
        elif name.endswith(".error.txt"):
            compared += 1
        elif name.endswith(".trace.jsonl"):
            compared += 1
            count_a = _trace_event_count(path_a)
            count_b = _trace_event_count(path_b)
            if count_a != count_b:
                result.notes.append(
                    f"{name}: event count {count_a} -> {count_b} "
                    f"(advisory)")
        elif name.endswith(".txt") and not name.endswith(
                (".prof.txt",)):
            compared += 1
            if path_a.read_text() != path_b.read_text():
                result.regressions.append(
                    f"{name}: experiment table differs")
    result.lines.append(
        f"compared {compared} artifact pair(s) between "
        f"{len(names_a)} (A) and {len(names_b)} (B) files")
    return result
