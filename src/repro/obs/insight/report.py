"""Deterministic markdown run reports.

``python -m repro.obs report <run_dir>`` renders everything a run
directory holds — experiment tables, trace artifacts, metrics
snapshots, bench history — into one markdown document answering "what
did this run do?".  The rendering is **byte-stable**: the same
artifacts produce the same bytes, so a committed golden report can
gate on drift (the check.sh insight stage).  That rules out wall-clock
stamps, absolute paths, and dict-order dependence — every section
iterates sorted and formats floats through :func:`_num`.
"""

from __future__ import annotations

import json
import pathlib
from typing import Optional, Sequence

from repro.obs.insight.detectors import DetectorBank
from repro.obs.insight.frame import TraceFrame

#: Spans shown in the "slowest spans" table.
DEFAULT_TOP = 10
#: Counter series longer than this are still analyzed in full; only
#: the detector table row count is bounded by the artifact itself.
_DETECTOR_MIN_SAMPLES = 8


def _num(value: float) -> str:
    """Stable float rendering: trimmed to 6 significant digits."""
    if value != value:  # NaN
        return "nan"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def _table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> list[str]:
    lines = ["| " + " | ".join(header) + " |",
             "|" + "|".join("---" for _ in header) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return lines


def discover_runs(run_dir: pathlib.Path,
                  names: Optional[Sequence[str]] = None) -> list[str]:
    """Experiment names present in a run directory, from any artifact
    the runner writes (``<name>.txt`` / ``.trace.jsonl`` /
    ``.metrics.json`` / ``.error.txt``)."""
    found = set()
    for path in run_dir.iterdir():
        stem = path.name
        for suffix in (".trace.jsonl", ".trace.json", ".metrics.json",
                       ".error.txt", ".report.md", ".prof.txt", ".txt"):
            if stem.endswith(suffix):
                found.add(stem[: -len(suffix)])
                break
    if names is not None:
        found &= set(names)
    return sorted(found)


def _trace_sections(frame: TraceFrame, top: int) -> list[str]:
    lines: list[str] = []
    info = frame.summary()
    first, last = info["start_ns"], info["end_ns"]
    lines.append("")
    lines.append(f"Trace `{frame.source}`: {info['spans']} spans, "
                 f"{info['instants']} instants, "
                 f"{info['counter_samples']} counter samples over "
                 f"{_num(last - first)} ns "
                 f"({len(info['components'])} components).")

    # -- station occupancy / utilization ------------------------------
    rows = []
    for component in info["components"]:
        durs = frame.durations(component=component)
        if durs.size == 0:
            continue
        times, depths = frame.occupancy(component)
        rows.append([
            f"`{component}`", str(durs.size),
            _num(float(durs.sum())),
            f"{frame.utilization(component):.3f}",
            _num(float(depths.max())) if depths.size else "0",
        ])
    if rows:
        lines.append("")
        lines.append("### Station occupancy")
        lines.append("")
        lines.extend(_table(
            ["component", "spans", "busy ns", "utilization", "max depth"],
            rows))

    # -- per-span latency ---------------------------------------------
    summaries = frame.latency_summaries()
    if summaries:
        lines.append("")
        lines.append("### Span latency")
        lines.append("")
        lines.extend(_table(
            ["component", "span", "count", "mean ns", "p10", "p90"],
            [[f"`{component}`", f"`{name}`", str(s.count),
              _num(s.mean), _num(s.p10), _num(s.p90)]
             for (component, name), s in summaries.items()]))

    # -- slowest spans ------------------------------------------------
    slowest = frame.slowest_spans(top=top)
    if slowest:
        lines.append("")
        lines.append(f"### Slowest spans (top {len(slowest)})")
        lines.append("")
        lines.extend(_table(
            ["dur ns", "at ns", "component", "span"],
            [[_num(dur), _num(ts), f"`{component}`", f"`{name}`"]
             for dur, ts, component, name in slowest]))

    # -- derived ULI --------------------------------------------------
    uli_times, uli_values = frame.uli_series()
    if uli_times.size >= _DETECTOR_MIN_SAMPLES:
        lines.append("")
        lines.append("### Derived ULI")
        lines.append("")
        periods = frame.uli_periods()
        period_text = (", ".join(_num(p) + " ns" for p in periods)
                       if periods else "none found")
        lines.append(f"{uli_times.size} end-to-end latency samples, "
                     f"mean {_num(float(uli_values.mean()))} ns, "
                     f"max {_num(float(uli_values.max()))} ns; "
                     f"dominant periods: {period_text}.")

    # -- counter series + detector verdicts ---------------------------
    detector_rows = []
    for component, name, key in frame.counter_keys():
        times, values = frame.counter_series(name, key,
                                             component=component)
        if times.size < _DETECTOR_MIN_SAMPLES:
            continue
        bank = DetectorBank()
        for ts, value in zip(times, values):
            bank.observe(float(ts), float(value))
        results = bank.results()
        verdicts = []
        for det_name in sorted(results):
            detection = results[det_name]
            verdicts.append("FLAG" if detection.flagged else "ok")
        detector_rows.append([
            f"`{component}`", f"`{name}`", f"`{key}`", str(times.size),
            _num(float(values.mean())), *verdicts,
        ])
    if detector_rows:
        lines.append("")
        lines.append("### Counter series — online detector verdicts")
        lines.append("")
        lines.extend(_table(
            ["component", "counter", "key", "samples", "mean",
             "cusum", "ewma", "periodicity"],
            detector_rows))
    return lines


def _metrics_section(path: pathlib.Path,
                     heading: str = "### Metrics snapshot") -> list[str]:
    payload = json.loads(path.read_text())
    if not isinstance(payload, dict) or not payload:
        return []
    rows = []
    for component in sorted(payload):
        metrics = payload[component]
        if not isinstance(metrics, dict):
            continue
        for name in sorted(metrics):
            row = metrics[name]
            if not isinstance(row, dict):
                continue
            kind = row.get("type", "?")
            if kind == "histogram":
                value = (f"count={_num(float(row.get('count', 0)))} "
                         f"mean={_num(float(row.get('mean', 0.0)))}")
            else:
                value = _num(float(row.get("value", 0.0)))
            rows.append([f"`{component}`", f"`{name}`", kind, value])
    if not rows:
        return []
    return ["", heading, "",
            *_table(["component", "metric", "type", "value"], rows)]


def _fleet_sections(run_dir: pathlib.Path) -> list[str]:
    """The whole-run fleet view: the merged snapshot (preferred over
    repeating every per-experiment table) and the SLO compliance
    section when a spec was evaluated."""
    lines: list[str] = []
    fleet = run_dir / "fleet_metrics.json"
    if fleet.exists():
        lines.append("")
        lines.append("## Fleet metrics")
        lines.append("")
        lines.append("Merged across every experiment's metrics snapshot "
                     "(`fleet_metrics.json`); per-experiment snapshot "
                     "tables are omitted in its favor.")
        lines.extend(_metrics_section(fleet,
                                      heading="### Merged snapshot"))
    slo = run_dir / "slo_report.json"
    if slo.exists():
        lines.extend(_slo_section(slo))
    return lines


def _slo_section(path: pathlib.Path) -> list[str]:
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return []
    if not isinstance(payload, dict):
        return []
    verdict = "**compliant**" if payload.get("compliant") \
        else "**VIOLATED**"
    lines = ["", "## SLO compliance", "",
             f"Spec `{payload.get('spec', '?')}` over "
             f"{payload.get('ticks', 0)} snapshot tick(s): {verdict}, "
             f"{len(payload.get('alerts', []))} burn-rate alert(s)."]
    rows = []
    for objective in payload.get("objectives", []):
        if not isinstance(objective, dict):
            continue
        value = objective.get("value")
        budget = objective.get("budget", objective.get("target"))
        rows.append([
            f"`{objective.get('name', '?')}`",
            str(objective.get("kind", "?")),
            "ok" if objective.get("compliant") else "VIOLATED",
            _num(float(value)) if value is not None else "no data",
            _num(float(budget)) if budget is not None else "?",
            _num(float(objective.get("budget_consumed", 0.0))),
            str(objective.get("alerts", 0)),
        ])
    if rows:
        lines.append("")
        lines.extend(_table(
            ["objective", "kind", "status", "value", "budget/target",
             "budget burn", "alerts"], rows))
    alert_rows = [
        [str(alert.get("tick", "?")),
         f"`{alert.get('objective', '?')}`",
         str(alert.get("window_ticks", "?")),
         _num(float(alert.get("burn_rate", 0.0))),
         _num(float(alert.get("threshold", 0.0))),
         str(alert.get("severity", "?"))]
        for alert in payload.get("alerts", [])
        if isinstance(alert, dict)
    ]
    if alert_rows:
        lines.append("")
        lines.append("### Burn-rate alerts")
        lines.append("")
        lines.extend(_table(
            ["tick", "objective", "window", "burn rate", "threshold",
             "severity"], alert_rows))
    return lines


def _history_section(history_dir: pathlib.Path) -> list[str]:
    """Trend lines from the two most recent bench_gate archives."""
    entries = sorted(history_dir.glob("*.json"))
    if len(entries) < 2:
        return []
    previous, latest = entries[-2], entries[-1]
    try:
        old = json.loads(previous.read_text())
        new = json.loads(latest.read_text())
    except (OSError, json.JSONDecodeError):
        return []
    rows = []
    for name in sorted(set(old.get("benches", {}))
                       & set(new.get("benches", {}))):
        a = old["benches"][name].get("ops_per_s", 0.0)
        b = new["benches"][name].get("ops_per_s", 0.0)
        delta = (b - a) / a if a else 0.0
        rows.append([f"`{name}`", _num(a), _num(b), f"{delta:+.1%}"])
    if not rows:
        return []
    return [
        "", "## Bench trend", "",
        f"`{previous.name}` → `{latest.name}`:", "",
        *_table(["bench", "previous ops/s", "latest ops/s", "delta"],
                rows),
    ]


def render_report(run_dir, names: Optional[Sequence[str]] = None,
                  history_dir=None, top: int = DEFAULT_TOP) -> str:
    """Render one run directory to markdown (see the module docstring
    for the determinism contract)."""
    run_dir = pathlib.Path(run_dir)
    if not run_dir.is_dir():
        raise FileNotFoundError(f"{run_dir}: not a directory")
    runs = discover_runs(run_dir, names=names)
    lines = ["# repro run report", ""]
    if not runs:
        lines.append("No run artifacts found.")
        return "\n".join(lines) + "\n"
    lines.append(f"Experiments: {', '.join(f'`{r}`' for r in runs)}")
    for name in runs:
        lines.append("")
        lines.append(f"## {name}")
        error = run_dir / f"{name}.error.txt"
        if error.exists():
            lines.append("")
            lines.append(f"**FAILED** — traceback in `{error.name}`; "
                         f"last line:")
            tail = error.read_text().strip().splitlines()
            lines.append("")
            lines.append(f"    {tail[-1] if tail else '(empty)'}")
        table = run_dir / f"{name}.txt"
        if table.exists():
            lines.append("")
            lines.append("```")
            lines.append(table.read_text().rstrip("\n"))
            lines.append("```")
        trace = run_dir / f"{name}.trace.jsonl"
        if not trace.exists():
            trace = run_dir / f"{name}.trace.json"
        if trace.exists():
            lines.extend(_trace_sections(TraceFrame.load(trace), top=top))
        metrics = run_dir / f"{name}.metrics.json"
        if metrics.exists() and not (run_dir / "fleet_metrics.json").exists():
            lines.extend(_metrics_section(metrics))
    lines.extend(_fleet_sections(run_dir))
    if history_dir is not None:
        history_dir = pathlib.Path(history_dir)
        if history_dir.is_dir():
            lines.extend(_history_section(history_dir))
    return "\n".join(lines) + "\n"
