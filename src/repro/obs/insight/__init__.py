"""repro.obs.insight — the consumption side of the obs layer.

PR 4 built the producers (Tracer spans, MetricsRegistry snapshots,
JSONL/Chrome exporters); this package consumes them:

* :mod:`repro.obs.insight.frame` — :class:`TraceFrame`, an indexed
  view over an exported trace: span trees, per-component latency
  summaries, counter time series, station occupancy, derived ULI
  series.
* :mod:`repro.obs.insight.detectors` — streaming EWMA/CUSUM
  change-point and periodicity detectors that watch counter series
  online (the data path behind :mod:`repro.defense.online`).
* :mod:`repro.obs.insight.report` — ``python -m repro.obs report``:
  a deterministic markdown run report (same seed ⇒ same bytes).
* :mod:`repro.obs.insight.diff` — ``python -m repro.obs diff``:
  run-to-run comparison with configurable tolerances, nonzero exit
  on regression (the check.sh gate hook).

Analysis primitives are reused from :mod:`repro.analysis`
(:func:`~repro.analysis.periodicity.dominant_periods`,
:mod:`~repro.analysis.stats`) rather than duplicated here.
"""

from .detectors import (
    CusumDetector,
    Detection,
    DetectorBank,
    EwmaDetector,
    PeriodicityDetector,
    run_series,
)
from .diff import DiffResult, diff_runs
from .frame import TraceFrame
from .report import render_report

__all__ = [
    "CusumDetector",
    "Detection",
    "DetectorBank",
    "DiffResult",
    "EwmaDetector",
    "PeriodicityDetector",
    "TraceFrame",
    "diff_runs",
    "render_report",
    "run_series",
]
