"""Measurement instruments: what the attacker (and defender) can see.

* :class:`BandwidthMonitor` — periodic sampling of a fluid flow's
  achieved goodput (what a client sees from its own completion rate);
* :class:`CounterSampler` — periodic ``ethtool -S``-style snapshots of
  NIC counters, yielding bps/pps series (the defender's Grain-I view);
* :class:`ULIProbe` — the paper's Unit Latency Increase instrument
  (Section IV-C): pipelined one-sided reads at a fixed queue depth,
  reporting ``Lat_total / (len_sq + 1)`` per completion;
* :class:`StationProbeTrain` — fluid-layer what-if probe train through
  one service station, vectorized via ``ServiceStation.admit_many``.
"""

from repro.telemetry.monitor import (
    BandwidthMonitor,
    CounterSampler,
    Sample,
    StationProbeTrain,
)
from repro.telemetry.uli import ULIProbe, ProbeTarget

__all__ = [
    "BandwidthMonitor",
    "CounterSampler",
    "Sample",
    "StationProbeTrain",
    "ULIProbe",
    "ProbeTarget",
]
