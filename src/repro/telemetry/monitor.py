"""Bandwidth and counter samplers."""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.obs import runtime as _obs
from repro.rnic.bandwidth import FluidFlow
from repro.rnic.rnic import RNIC
from repro.rnic.station import ServiceStation
from repro.sim.kernel import Simulator
from repro.sim.units import MILLISECONDS, SECONDS


@dataclasses.dataclass(frozen=True)
class Sample:
    """One timestamped measurement."""

    time: float
    value: float


class BandwidthMonitor:
    """Samples the achieved goodput of one fluid flow.

    This is the covert receiver's view in the Figure 9 channel and the
    attacker's view in the Figure 12 fingerprinting attack: a client
    continuously measures the bandwidth of its own small flow.
    """

    def __init__(
        self,
        sim: Simulator,
        rnic: RNIC,
        flow: FluidFlow,
        interval_ns: float = 10 * MILLISECONDS,
    ) -> None:
        if interval_ns <= 0:
            raise ValueError(f"interval must be positive, got {interval_ns}")
        self.sim = sim
        self.rnic = rnic
        self.flow = flow
        self.interval_ns = interval_ns
        self.samples: list[Sample] = []
        self._running = False
        # the pending _tick's cancellation handle; stop() must cancel it
        # or a stop->start cycle leaves TWO tick chains alive, doubling
        # the sample rate
        self._handle = None
        self._obs = _obs.tracer_for(sim)

    def start(self) -> None:
        if self._running:
            raise RuntimeError("monitor already running")
        self._running = True
        self._handle = self.sim.schedule(self.interval_ns, self._tick)

    def stop(self) -> None:
        self._running = False
        if self._handle is not None:
            self.sim.cancel(self._handle)
            self._handle = None

    def _tick(self) -> None:
        if not self._running:
            return
        bw = self.rnic.fluid_bandwidth(self.flow)
        self.samples.append(Sample(self.sim.now, bw))
        if self._obs is not None:
            self._obs.counter(f"{self.rnic.name}.flow_bandwidth",
                              {"bps": bw}, category="telemetry",
                              component="telemetry.bandwidth")
        self._handle = self.sim.schedule(self.interval_ns, self._tick)

    @property
    def values(self) -> list[float]:
        return [s.value for s in self.samples]

    @property
    def times(self) -> list[float]:
        return [s.time for s in self.samples]


class StationProbeTrain:
    """Fluid-layer what-if sweep of one discrete service station.

    Answers "what latency series would a back-to-back probe train see
    through this station right now?" without perturbing the station or
    scheduling any events: the train runs through a scratch clone that
    carries the live station's busy horizon and background utilization,
    and the whole FIFO recurrence is evaluated in one vectorized
    :meth:`~repro.rnic.station.ServiceStation.admit_many` call.  This
    is the Grain-II view of queueing: a deterministic steady-state
    response, complementing the event-driven :class:`ULIProbe`.
    """

    def __init__(self, station: ServiceStation, probe_ns: float = 64.0) -> None:
        if probe_ns <= 0:
            raise ValueError(f"probe service time must be positive, got {probe_ns}")
        self.station = station
        self.probe_ns = probe_ns

    def sweep(
        self, start: float, count: int, gap_ns: float
    ) -> np.ndarray:
        """Latencies of ``count`` probes spaced ``gap_ns`` apart from
        ``start``; the live station is left untouched."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        if gap_ns < 0:
            raise ValueError(f"gap must be non-negative, got {gap_ns}")
        live = self.station
        clone = ServiceStation(f"{live.name}.probe-train")
        clone.set_background_utilization(live.background_utilization)
        clone.stall_until(live.busy_until)
        arrivals = start + gap_ns * np.arange(count, dtype=np.float64)
        service = np.full(count, self.probe_ns, dtype=np.float64)
        finish = clone.admit_many(arrivals, service)
        return finish - arrivals

    def mean_latency(self, start: float, count: int, gap_ns: float) -> float:
        return float(np.mean(self.sweep(start, count, gap_ns)))


class CounterSampler:
    """Polls a NIC counter snapshot, reporting per-interval rates.

    Equivalent to running ``ethtool -S`` in a loop and differencing —
    the reverse-engineering methodology of Section IV-A, and the
    Grain-I defense's data source.

    Explicit ``keys`` must name byte or packet counters (suffix
    ``bytes``/``packets``): the rate math differs (bits/s vs 1/s) and a
    key it cannot classify would otherwise be silently misreported.
    """

    def __init__(
        self,
        sim: Simulator,
        rnic: RNIC,
        interval_ns: float = 100 * MILLISECONDS,
        keys: Optional[list[str]] = None,
    ) -> None:
        if interval_ns <= 0:
            raise ValueError(f"interval must be positive, got {interval_ns}")
        if keys is not None:
            bad = [k for k in keys if not k.endswith(("bytes", "packets"))]
            if bad:
                raise ValueError(
                    f"cannot classify counter keys {bad}: keys must end "
                    f"in 'bytes' or 'packets' to pick a rate unit"
                )
        self.sim = sim
        self.rnic = rnic
        self.interval_ns = interval_ns
        self.keys = keys
        self.rates: list[dict] = []
        self._last: Optional[dict] = None
        self._running = False
        # see BandwidthMonitor._handle: cancel-on-stop keeps restart
        # from doubling the chain (and from racing two ticks on _last)
        self._handle = None
        self._obs = _obs.tracer_for(sim)

    def start(self) -> None:
        if self._running:
            raise RuntimeError("sampler already running")
        self._running = True
        self._last = self.rnic.counters.snapshot()
        self._handle = self.sim.schedule(self.interval_ns, self._tick)

    def stop(self) -> None:
        self._running = False
        if self._handle is not None:
            self.sim.cancel(self._handle)
            self._handle = None

    def _tick(self) -> None:
        if not self._running:
            return
        snap = self.rnic.counters.snapshot()
        seconds = self.interval_ns / SECONDS
        rates = {"time": self.sim.now}
        keys = self.keys if self.keys is not None else [
            k for k in snap if k.endswith(("bytes", "packets"))
        ]
        for key in keys:
            delta = snap.get(key, 0) - self._last.get(key, 0)
            if key.endswith("bytes"):
                rates[key.replace("bytes", "bps")] = delta * 8.0 / seconds
            else:
                rates[key.replace("packets", "pps")] = delta / seconds
        self.rates.append(rates)
        if self._obs is not None:
            self._obs.counter(
                f"{self.rnic.name}.rates",
                {k: v for k, v in rates.items() if k != "time"},
                category="telemetry", component="telemetry.counters")
        self._last = snap
        self._handle = self.sim.schedule(self.interval_ns, self._tick)

    def series(self, key: str) -> list[float]:
        """The sampled series for one rate key (e.g. ``"rx_bps"``)."""
        return [r[key] for r in self.rates if key in r]
