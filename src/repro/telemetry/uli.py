"""The ULI probe: the paper's core measurement instrument.

Section IV-C defines the Unit Latency Increase as
``ULI = Lat_total / (len_sq + 1)``, where ``Lat_total`` is the
post-to-completion latency and ``len_sq`` the number of WQEs queued
ahead at post time.  The probe keeps a constant send-queue depth by
re-posting on every completion, cycling through a fixed target pattern
(e.g. alternating two addresses, as in Figures 5–8).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np

from repro.host.cluster import RDMAConnection
from repro.verbs.mr import MemoryRegion


@dataclasses.dataclass(frozen=True)
class ProbeTarget:
    """One element of the probe's access pattern."""

    mr: MemoryRegion
    offset: int
    size: int = 64

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ValueError(f"offset must be non-negative, got {self.offset}")
        if not self.mr.contains(self.mr.addr + self.offset, self.size):
            raise ValueError(
                f"probe [{self.offset}, +{self.size}) escapes MR of "
                f"length {self.mr.length}"
            )


class ULIProbe:
    """Pipelined RDMA Read prober at a fixed queue depth."""

    def __init__(
        self,
        conn: RDMAConnection,
        targets: Sequence[ProbeTarget],
        depth: Optional[int] = None,
    ) -> None:
        if not targets:
            raise ValueError("need at least one probe target")
        self.conn = conn
        self.targets = list(targets)
        max_wr = conn.qp.cap.max_send_wr
        self.depth = depth if depth is not None else max_wr
        if not 1 <= self.depth <= max_wr:
            raise ValueError(
                f"depth {self.depth} outside 1..{max_wr} (QP max_send_wr)"
            )
        self._cursor = 0

    def _post_next(self) -> None:
        target = self.targets[self._cursor % len(self.targets)]
        self._cursor += 1
        self.conn.post_read(target.mr, target.offset, target.size)

    def measure(self, num_samples: int, warmup: int = 16) -> np.ndarray:
        """Collect ``num_samples`` ULI values (after ``warmup`` extras).

        Runs the simulation inline; other actors (victim processes,
        covert senders) make progress concurrently because the kernel
        interleaves all scheduled events.
        """
        if num_samples <= 0:
            raise ValueError(f"num_samples must be positive, got {num_samples}")
        while self.conn.qp.outstanding_send < self.depth:
            self._post_next()
        samples: list[float] = []
        remaining_warmup = warmup
        while len(samples) < num_samples:
            wc = self.conn.await_completions(1)[0]
            if not wc.ok:
                raise RuntimeError(f"probe completion failed: {wc.status}")
            if remaining_warmup > 0:
                remaining_warmup -= 1
            else:
                samples.append(wc.unit_latency_increase)
            self._post_next()
        # drain our own outstanding probes' effect bookkeeping is left
        # to the caller; the QP stays primed for the next measure()
        return np.asarray(samples)

    def measure_mean(self, num_samples: int, warmup: int = 16) -> float:
        return float(self.measure(num_samples, warmup).mean())
