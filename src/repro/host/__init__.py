"""Host-side models: pinned memory, nodes, and multi-host clusters."""

from repro.host.memory import HostMemory
from repro.host.node import Host
from repro.host.cluster import Cluster, RDMAConnection

__all__ = ["HostMemory", "Host", "Cluster", "RDMAConnection"]
