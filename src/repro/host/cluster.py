"""Cluster harness: hosts, network, and connection helpers.

This is the experiment entry point: every microbenchmark, covert
channel and side-channel attack builds a :class:`Cluster`, adds hosts
(server, victim client, attacker client — the three parties of Figure
2), connects QPs and drives traffic.
"""

from __future__ import annotations

from typing import Optional

from repro.fabric.network import Link, Network
from repro.host.node import Host
from repro.rnic.spec import RNICSpec
from repro.sim.kernel import Simulator
from repro.sim.units import MEBIBYTE, SECONDS
from repro.verbs.cq import CompletionQueue
from repro.verbs.enums import Opcode
from repro.verbs.mr import MemoryRegion
from repro.verbs.qp import QPCapabilities, QueuePair
from repro.verbs.wr import SendWR, WorkCompletion, make_read_wr


class RDMAConnection:
    """A client-side handle on one connected RC QP pair.

    Provides one-sided post helpers against the server's MRs plus a
    ``run_until_complete`` loop for sequential (process-free) clients.
    """

    def __init__(
        self,
        cluster: "Cluster",
        client: Host,
        server: Host,
        qp: QueuePair,
        server_qp: QueuePair,
        cq: CompletionQueue,
        local_mr: MemoryRegion,
    ) -> None:
        self.cluster = cluster
        self.client = client
        self.server = server
        self.qp = qp
        self.server_qp = server_qp
        self.cq = cq
        self.local_mr = local_mr
        self._wr_ids = 0

    def _next_wr_id(self) -> int:
        self._wr_ids += 1
        return self._wr_ids

    def post_read(
        self,
        remote_mr: MemoryRegion,
        offset: int = 0,
        length: int = 64,
        signaled: bool = True,
        local_offset: int = 0,
    ) -> SendWR:
        """Post an RDMA Read of the server MR at the given offset."""
        wr = SendWR(
            opcode=Opcode.RDMA_READ,
            local_addr=self.local_mr.addr + local_offset,
            length=length,
            remote_addr=remote_mr.addr + offset,
            rkey=remote_mr.rkey,
            wr_id=self._next_wr_id(),
            signaled=signaled,
        )
        self.qp.post_send(wr)
        return wr

    def post_write(
        self,
        remote_mr: MemoryRegion,
        offset: int = 0,
        length: int = 64,
        signaled: bool = True,
        local_offset: int = 0,
    ) -> SendWR:
        """Post an RDMA Write into the server MR at the given offset."""
        wr = SendWR(
            opcode=Opcode.RDMA_WRITE,
            local_addr=self.local_mr.addr + local_offset,
            length=length,
            remote_addr=remote_mr.addr + offset,
            rkey=remote_mr.rkey,
            wr_id=self._next_wr_id(),
            signaled=signaled,
        )
        self.qp.post_send(wr)
        return wr

    def post_read_batch(
        self,
        remote_mr: MemoryRegion,
        offsets,
        length: int = 64,
        signaled: bool = True,
        local_offset: int = 0,
        signal_every: int = 1,
    ) -> list[SendWR]:
        """Post one RDMA Read per entry of ``offsets`` as a single
        doorbell-batched cohort (``ibv_post_send``'s linked-list form).

        This is the batched-ingress twin of :meth:`post_read`: the QP
        validates the whole list up front and hands it to the engine's
        ``post_send_batch``, where eligible cohorts take the vectorized
        descriptor fast path.  Returns the posted WQEs in order.

        ``signal_every=k`` requests a CQE on every k-th WQE plus the
        final one — the selective-signaling recipe message-rate
        benchmarks use (``ibv_send_wr.send_flags`` without
        ``IBV_SEND_SIGNALED``).  ``signaled=False`` suppresses CQEs
        entirely and ignores ``signal_every``.
        """
        if signal_every < 1:
            raise ValueError(
                f"signal_every must be positive, got {signal_every}")
        local_addr = self.local_mr.addr + local_offset
        rkey = remote_mr.rkey
        base = remote_mr.addr
        wr_id = self._wr_ids
        last = len(offsets) - 1
        wrs = [
            make_read_wr(
                local_addr, length, base + offset, rkey,
                wr_id + 1 + index,
                signaled=signaled and (
                    index % signal_every == 0 or index == last),
            )
            for index, offset in enumerate(offsets)
        ]
        self._wr_ids = wr_id + len(wrs)
        self.qp.post_send_batch(wrs)
        return wrs

    def post_atomic(
        self,
        remote_mr: MemoryRegion,
        offset: int = 0,
        fetch_add: Optional[int] = None,
        compare: Optional[int] = None,
        swap: Optional[int] = None,
    ) -> SendWR:
        """Post a FETCH_ADD (``fetch_add``) or CMP_SWP (``compare``/``swap``)."""
        if fetch_add is not None:
            wr = SendWR(
                opcode=Opcode.ATOMIC_FETCH_ADD,
                local_addr=self.local_mr.addr,
                remote_addr=remote_mr.addr + offset,
                rkey=remote_mr.rkey,
                compare_add=fetch_add,
                wr_id=self._next_wr_id(),
            )
        elif compare is not None and swap is not None:
            wr = SendWR(
                opcode=Opcode.ATOMIC_CMP_SWP,
                local_addr=self.local_mr.addr,
                remote_addr=remote_mr.addr + offset,
                rkey=remote_mr.rkey,
                compare_add=compare,
                swap=swap,
                wr_id=self._next_wr_id(),
            )
        else:
            raise ValueError("specify fetch_add, or compare and swap")
        self.qp.post_send(wr)
        return wr

    def await_completions(
        self, count: int = 1, timeout_ns: float = 10 * SECONDS
    ) -> list[WorkCompletion]:
        """Run the simulation until ``count`` CQEs arrive on this CQ."""
        sim = self.cluster.sim
        deadline = sim.now + timeout_ns
        step = sim.step
        cq = self.cq
        out: list[WorkCompletion] = cq.poll(count)
        while len(out) < count:
            if sim.now >= deadline or not step():
                raise TimeoutError(
                    f"waited for {count} completions, got {len(out)} "
                    f"by t={sim.now:.0f}ns"
                )
            # poll only when the step actually delivered something —
            # most events are pipeline stages, not completions
            if len(cq):
                out.extend(cq.poll(count - len(out)))
        return out

    def read_blocking(
        self, remote_mr: MemoryRegion, offset: int = 0, length: int = 64
    ) -> WorkCompletion:
        """Post one read and run the simulation to its completion."""
        self.post_read(remote_mr, offset, length)
        return self.await_completions(1)[0]


class Cluster:
    """A simulated RDMA testbed on one switch."""

    def __init__(self, seed: int = 0) -> None:
        self.sim = Simulator(seed=seed)
        self.network = Network()
        self.hosts: dict[str, Host] = {}

    def add_host(
        self,
        name: str,
        spec: Optional[RNICSpec] = None,
        memory_size: int = 32 * MEBIBYTE,
        link: Optional[Link] = None,
    ) -> Host:
        if name in self.hosts:
            raise ValueError(f"host {name!r} already exists")
        host = Host(
            self.sim, name, spec=spec, network=self.network,
            memory_size=memory_size, link=link,
        )
        self.hosts[name] = host
        return host

    def connect(
        self,
        client: Host,
        server: Host,
        max_send_wr: int = 128,
        traffic_class: int = 0,
        local_buffer: int = MEBIBYTE,
        cq_capacity: int = 4096,
    ) -> RDMAConnection:
        """Create and connect an RC QP pair; returns the client handle."""
        client_cq = client.context.create_cq(cq_capacity)
        server_cq = server.context.create_cq(cq_capacity)
        cap = QPCapabilities(max_send_wr=max_send_wr)
        client_qp = client.context.create_qp(
            client.pd, client_cq, cap=cap, traffic_class=traffic_class
        )
        server_qp = server.context.create_qp(
            server.pd, server_cq, cap=cap, traffic_class=traffic_class
        )
        client_qp.connect(server_qp)
        local_mr = client.reg_mr(local_buffer)
        return RDMAConnection(
            self, client, server, client_qp, server_qp, client_cq, local_mr
        )

    def run_for(self, duration_ns: float) -> None:
        """Advance the simulation by ``duration_ns``."""
        self.sim.run(until=self.sim.now + duration_ns)
