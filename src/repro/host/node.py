"""A host: CPU + pinned memory + one RNIC."""

from __future__ import annotations

from typing import Optional

from repro.host.memory import HostMemory
from repro.rnic.rnic import RNIC
from repro.rnic.spec import RNICSpec
from repro.sim.kernel import Simulator
from repro.sim.units import MEBIBYTE
from repro.verbs.context import Context
from repro.verbs.enums import AccessFlags
from repro.verbs.mr import MemoryRegion
from repro.fabric.network import Link, Network


class Host:
    """One machine of the testbed (a row of Table II).

    Owns its DRAM, its RNIC (attached to the cluster network) and an
    opened verbs context with a default PD.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        spec: Optional[RNICSpec] = None,
        network: Optional[Network] = None,
        memory_size: int = 32 * MEBIBYTE,
        link: Optional["Link"] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.memory = HostMemory(size=memory_size)
        self.rnic = RNIC(sim, spec=spec, name=f"{name}.rnic",
                         network=network, link=link)
        self.context = Context(engine=self.rnic, memory=self.memory, name=name)
        self.pd = self.context.alloc_pd()

    def reg_mr(
        self,
        length: int,
        access: AccessFlags = AccessFlags.all_remote(),
        huge_pages: bool = True,
    ) -> MemoryRegion:
        """Register an MR in the host's default PD."""
        return self.context.reg_mr(
            self.pd, length, access=access, huge_pages=huge_pages
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Host {self.name} rnic={self.rnic.spec.name}>"
