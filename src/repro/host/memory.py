"""A flat, byte-addressable host memory with a bump allocator.

MRs are registered over ranges of this memory; RDMA data movement in the
engines reads/writes real bytes here, so applications (KV store, B+
tree) observe genuine one-sided semantics.
"""

from __future__ import annotations

import mmap

from repro.sim.units import MEBIBYTE


class HostMemory:
    """Simulated pinned host DRAM.

    Addresses start at ``base`` (non-zero by default so that address 0
    is never valid — catching uninitialized-pointer bugs in app code).
    """

    DEFAULT_BASE = 0x10000

    def __init__(self, size: int = 32 * MEBIBYTE, base: int = DEFAULT_BASE) -> None:
        if size <= 0:
            raise ValueError(f"memory size must be positive, got {size}")
        self.base = base
        self.size = size
        # an anonymous mapping instead of ``bytearray(size)``: hosts
        # carry tens of MiB each, and eagerly zero-filling that was the
        # single largest setup cost of building a cluster.  The kernel
        # hands out zero pages on demand; reads/writes keep the same
        # slice semantics.
        self._data = mmap.mmap(-1, size)
        self._next = base

    @property
    def end(self) -> int:
        return self.base + self.size

    @property
    def allocated(self) -> int:
        return self._next - self.base

    def alloc(self, length: int, align: int = 8) -> int:
        """Allocate ``length`` bytes aligned to ``align``; returns address."""
        if length <= 0:
            raise ValueError(f"allocation length must be positive, got {length}")
        if align <= 0 or (align & (align - 1)):
            raise ValueError(f"alignment must be a power of two, got {align}")
        addr = (self._next + align - 1) & ~(align - 1)
        if addr + length > self.end:
            raise MemoryError(
                f"out of simulated memory: need {length} at {addr:#x}, "
                f"end is {self.end:#x}"
            )
        self._next = addr + length
        return addr

    def alloc_huge(self, length: int) -> int:
        """Allocate on a 2 MB huge-page boundary (the paper's MR setup)."""
        return self.alloc(length, align=2 * MEBIBYTE)

    def _check(self, addr: int, length: int) -> int:
        if length < 0:
            raise ValueError(f"length must be non-negative, got {length}")
        if addr < self.base or addr + length > self.end:
            raise IndexError(
                f"access [{addr:#x}, +{length}) outside memory "
                f"[{self.base:#x}, {self.end:#x})"
            )
        return addr - self.base

    def read(self, addr: int, length: int) -> bytes:
        off = self._check(addr, length)
        return bytes(self._data[off : off + length])

    def write(self, addr: int, data: bytes) -> None:
        off = self._check(addr, len(data))
        self._data[off : off + len(data)] = data

    def read_prechecked(self, addr: int, length: int) -> bytes:
        """:meth:`read` minus the bounds check.

        For callers that have already proven ``[addr, +length)`` lies
        inside this memory (the batched descriptor fast path validates
        a whole cohort up front against its MRs, which were carved from
        this memory by :meth:`alloc`).  Passing an unproven address is
        undefined: a negative offset would wrap Python slice semantics.
        """
        off = addr - self.base
        return bytes(self._data[off : off + length])

    def write_prechecked(self, addr: int, data: bytes) -> None:
        """:meth:`write` minus the bounds check — see
        :meth:`read_prechecked` for the caller contract."""
        off = addr - self.base
        self._data[off : off + len(data)] = data

    def read_u64(self, addr: int) -> int:
        return int.from_bytes(self.read(addr, 8), "little")

    def write_u64(self, addr: int, value: int) -> None:
        self.write(addr, int(value & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little"))

    def fill(self, addr: int, length: int, byte: int = 0) -> None:
        off = self._check(addr, length)
        self._data[off : off + length] = bytes([byte]) * length
