"""Traffic generators: configurable tenants for experiments.

Three client styles, all event-driven on the simulation kernel:

* :class:`ClosedLoopClient` — keeps a fixed number of operations in
  flight (think: a thread pool waiting on completions);
* :class:`OpenLoopClient` — Poisson arrivals at a target rate,
  independent of completions (think: external request load).  When the
  send queue is full the arrival is counted as an *overrun* — the
  classic open-loop overload signal;
* :class:`TraceReplayClient` — replays an explicit (time, op) schedule.

Operations are drawn from a :class:`WorkloadMix` of reads/writes with a
size distribution, aimed at random aligned offsets of a target MR.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np

from repro.host.cluster import RDMAConnection
from repro.sim.units import SECONDS
from repro.verbs.enums import Opcode
from repro.verbs.errors import QueueFullError
from repro.verbs.mr import MemoryRegion
from repro.verbs.wr import WorkCompletion


@dataclasses.dataclass(frozen=True)
class WorkloadMix:
    """Weighted op mix over a target MR."""

    read_fraction: float = 1.0
    sizes: tuple[int, ...] = (64,)
    size_weights: Optional[tuple[float, ...]] = None
    align: int = 64

    def __post_init__(self) -> None:
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read fraction must be in [0, 1]")
        if not self.sizes or any(s <= 0 for s in self.sizes):
            raise ValueError("sizes must be positive")
        if self.size_weights is not None:
            if len(self.size_weights) != len(self.sizes):
                raise ValueError("one weight per size required")
            if not np.isclose(sum(self.size_weights), 1.0):
                raise ValueError("size weights must sum to 1")
        if self.align <= 0:
            raise ValueError("alignment must be positive")

    def draw(self, rng: np.random.Generator, mr: MemoryRegion
             ) -> tuple[Opcode, int, int]:
        """(opcode, offset, size) for one operation."""
        opcode = (Opcode.RDMA_READ if rng.random() < self.read_fraction
                  else Opcode.RDMA_WRITE)
        size = int(rng.choice(self.sizes, p=self.size_weights))
        span = mr.length - size
        offset = self.align * int(rng.integers(0, span // self.align + 1))
        return opcode, min(offset, span), size


class _StatsMixin:
    def __init__(self) -> None:
        self.completed = 0
        self.failed = 0
        self.latencies: list[float] = []

    def _record(self, wc: WorkCompletion) -> None:
        if wc.ok:
            self.completed += 1
            self.latencies.append(wc.latency)
        else:
            self.failed += 1

    @property
    def mean_latency(self) -> float:
        return float(np.mean(self.latencies)) if self.latencies else 0.0


class ClosedLoopClient(_StatsMixin):
    """Keeps ``depth`` operations outstanding."""

    def __init__(self, conn: RDMAConnection, mr: MemoryRegion,
                 mix: Optional[WorkloadMix] = None, depth: int = 4,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 1 <= depth <= conn.qp.cap.max_send_wr:
            raise ValueError(f"depth {depth} outside the QP's send queue")
        self.conn = conn
        self.mr = mr
        self.mix = mix if mix is not None else WorkloadMix()
        self.depth = depth
        # default stream is derived from the cluster seed (host names,
        # not qp numbers: those come from a process-wide counter), so
        # two experiment seeds never share one "random" workload
        self.rng = rng if rng is not None else conn.cluster.sim.random.stream(
            f"traffic.closed.{conn.client.name}->{conn.server.name}")
        self._running = False
        if conn.cq.on_completion is not None:
            raise RuntimeError("connection CQ already has a callback")
        conn.cq.on_completion = self._on_completion

    def _post_one(self) -> None:
        opcode, offset, size = self.mix.draw(self.rng, self.mr)
        if opcode is Opcode.RDMA_READ:
            self.conn.post_read(self.mr, offset, size)
        else:
            self.conn.post_write(self.mr, offset, size)

    def start(self) -> None:
        if self._running:
            raise RuntimeError("client already running")
        self._running = True
        while self.conn.qp.outstanding_send < self.depth:
            self._post_one()

    def stop(self) -> None:
        self._running = False

    def _on_completion(self, wc: WorkCompletion) -> None:
        self.conn.cq.poll(1)
        self._record(wc)
        if self._running and wc.ok:
            self._post_one()


class OpenLoopClient(_StatsMixin):
    """Poisson arrivals at ``rate_per_sec``, regardless of completions."""

    def __init__(self, conn: RDMAConnection, mr: MemoryRegion,
                 rate_per_sec: float,
                 mix: Optional[WorkloadMix] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if rate_per_sec <= 0:
            raise ValueError("arrival rate must be positive")
        self.conn = conn
        self.mr = mr
        self.rate_per_sec = rate_per_sec
        self.mix = mix if mix is not None else WorkloadMix()
        self.rng = rng if rng is not None else conn.cluster.sim.random.stream(
            f"traffic.open.{conn.client.name}->{conn.server.name}")
        self.overruns = 0
        self._running = False
        # pending-arrival handle: stop() cancels it so a stop->start
        # cycle runs one arrival process, not two superimposed ones
        # (which would double the offered load)
        self._handle = None
        if conn.cq.on_completion is not None:
            raise RuntimeError("connection CQ already has a callback")
        conn.cq.on_completion = self._on_completion

    def _on_completion(self, wc: WorkCompletion) -> None:
        self.conn.cq.poll(1)
        self._record(wc)

    def _interarrival_ns(self) -> float:
        return float(self.rng.exponential(SECONDS / self.rate_per_sec))

    def _arrival(self) -> None:
        if not self._running:
            return
        opcode, offset, size = self.mix.draw(self.rng, self.mr)
        try:
            if opcode is Opcode.RDMA_READ:
                self.conn.post_read(self.mr, offset, size)
            else:
                self.conn.post_write(self.mr, offset, size)
        except QueueFullError:
            self.overruns += 1
        self._handle = self.conn.cluster.sim.schedule(
            self._interarrival_ns(), self._arrival)

    def start(self) -> None:
        if self._running:
            raise RuntimeError("client already running")
        self._running = True
        self._handle = self.conn.cluster.sim.schedule(
            self._interarrival_ns(), self._arrival)

    def stop(self) -> None:
        self._running = False
        if self._handle is not None:
            self.conn.cluster.sim.cancel(self._handle)
            self._handle = None

    @property
    def offered(self) -> int:
        return self.completed + self.failed + self.overruns \
            + self.conn.qp.outstanding_send


class TraceReplayClient(_StatsMixin):
    """Replays an explicit schedule of operations.

    The trace is a sequence of ``(time_ns, opcode, offset, size)``
    tuples relative to :meth:`start`'s call time.
    """

    def __init__(self, conn: RDMAConnection, mr: MemoryRegion,
                 trace: Sequence[tuple[float, Opcode, int, int]]) -> None:
        super().__init__()
        self.conn = conn
        self.mr = mr
        self.trace = sorted(trace, key=lambda entry: entry[0])
        self.dropped = 0
        if conn.cq.on_completion is not None:
            raise RuntimeError("connection CQ already has a callback")
        conn.cq.on_completion = self._on_completion

    def _on_completion(self, wc: WorkCompletion) -> None:
        self.conn.cq.poll(1)
        self._record(wc)

    def start(self) -> None:
        sim = self.conn.cluster.sim
        for time_ns, opcode, offset, size in self.trace:
            sim.schedule(time_ns, self._fire, opcode, offset, size)

    def _fire(self, opcode: Opcode, offset: int, size: int) -> None:
        try:
            if opcode is Opcode.RDMA_READ:
                self.conn.post_read(self.mr, offset, size)
            elif opcode is Opcode.RDMA_WRITE:
                self.conn.post_write(self.mr, offset, size)
            else:
                raise ValueError(f"trace replay supports READ/WRITE, got {opcode}")
        except QueueFullError:
            self.dropped += 1
