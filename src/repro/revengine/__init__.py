"""Section IV reverse-engineering microbenchmarks.

These recover — from the *outside*, via bandwidth counters and ULI
probes — the contention behaviours that the RNIC model embeds:

* :mod:`priority_sweep` — the >6000-combination Grain-I/II study behind
  Figure 4 and Key Findings 1–3;
* :mod:`uli_linearity` — the Lat_total = k(len_sq+1) + C fit of
  footnotes 7–8 (Pearson ≈ 0.9998, C ≈ 0);
* :mod:`mr_sweep` — ULI for same-MR vs different-MR alternation across
  message sizes (Figure 5);
* :mod:`offset_sweep` — ULI vs absolute and relative address offsets
  (Figures 6–8, Key Finding 4).
"""

from repro.revengine.priority_sweep import (
    CompetitionResult,
    PrioritySweep,
    classify_outcome,
)
from repro.revengine.uli_linearity import LinearityResult, measure_linearity
from repro.revengine.mr_sweep import MRSweepResult, mr_contention_sweep
from repro.revengine.offset_sweep import (
    OffsetSweepResult,
    absolute_offset_sweep,
    relative_offset_sweep,
)

__all__ = [
    "CompetitionResult",
    "PrioritySweep",
    "classify_outcome",
    "LinearityResult",
    "measure_linearity",
    "MRSweepResult",
    "mr_contention_sweep",
    "OffsetSweepResult",
    "absolute_offset_sweep",
    "relative_offset_sweep",
]
