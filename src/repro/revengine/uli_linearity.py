"""ULI linearity: Lat_total = k * (len_sq + 1) + C (footnotes 7-8).

The paper justifies the ULI metric by showing that total latency grows
linearly in the send-queue length with Pearson correlation 0.9998 and a
negligible intercept.  This module re-derives that fit on the simulated
RNIC.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np

from repro.analysis.stats import pearson
from repro.host.cluster import Cluster
from repro.rnic.spec import RNICSpec, cx4
from repro.sim.units import MEBIBYTE
from repro.telemetry.uli import ProbeTarget, ULIProbe


@dataclasses.dataclass(frozen=True)
class LinearityResult:
    """Fit of mean Lat_total against queue length."""

    depths: tuple[int, ...]
    mean_latencies: tuple[float, ...]
    slope_k: float
    intercept_c: float
    pearson_r: float

    @property
    def relative_intercept(self) -> float:
        """|C| as a fraction of the latency at the largest depth —
        the paper's "C can be neglected"."""
        return abs(self.intercept_c) / max(self.mean_latencies)


def measure_linearity(
    spec: Optional[RNICSpec] = None,
    depths: Sequence[int] = (8, 12, 16, 24, 32, 48, 64),
    msg_size: int = 64,
    samples_per_depth: int = 150,
    seed: int = 0,
) -> LinearityResult:
    """Measure mean Lat_total at several queue depths and fit a line.

    Depths start high enough that the send queue (not the wire RTT) is
    the bottleneck — the "stable traffic case" of footnote 7.
    """
    if len(depths) < 3:
        raise ValueError("need at least three depths for a meaningful fit")
    spec_factory = spec if spec is not None else cx4()
    means = []
    for depth in depths:
        cluster = Cluster(seed=seed)
        server = cluster.add_host("server", spec=spec_factory)
        client = cluster.add_host("client", spec=spec_factory)
        conn = cluster.connect(client, server, max_send_wr=depth)
        mr = server.reg_mr(2 * MEBIBYTE)
        probe = ULIProbe(conn, [ProbeTarget(mr, 0, msg_size)], depth=depth)
        uli = probe.measure(samples_per_depth, warmup=2 * depth)
        # ULI * (len_sq + 1) recovers Lat_total; len_sq = depth - 1
        means.append(float(uli.mean()) * depth)
    x = np.asarray(depths, dtype=np.float64)  # len_sq + 1
    y = np.asarray(means)
    slope, intercept = np.polyfit(x, y, 1)
    return LinearityResult(
        depths=tuple(int(d) for d in depths),
        mean_latencies=tuple(float(m) for m in means),
        slope_k=float(slope),
        intercept_c=float(intercept),
        pearson_r=pearson(x, y),
    )
