"""ULI vs address offset sweeps (Figures 6-8, Key Finding 4).

Two experiments, both alternating two addresses of one remote MR with
pipelined RDMA Reads:

* **absolute sweep** (Figures 6-7): the first address is fixed at
  offset 0, the second sweeps across the MR; ULI is plotted against the
  second address's absolute offset;
* **relative sweep** (Figure 8): the pair is (base, base + delta) with
  delta sweeping — the interaction between *consecutive* reads.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np

from repro.analysis.stats import SummaryStats, summarize
from repro.host.cluster import Cluster
from repro.rnic.spec import RNICSpec, cx4
from repro.sim.units import MEBIBYTE
from repro.telemetry.uli import ProbeTarget, ULIProbe


@dataclasses.dataclass(frozen=True)
class OffsetSweepResult:
    """ULI statistics per swept offset."""

    offsets: tuple[int, ...]
    stats: tuple[SummaryStats, ...]
    msg_size: int
    mode: str  # "absolute" or "relative"

    @property
    def means(self) -> np.ndarray:
        return np.asarray([s.mean for s in self.stats])

    @property
    def p10(self) -> np.ndarray:
        return np.asarray([s.p10 for s in self.stats])

    @property
    def p90(self) -> np.ndarray:
        return np.asarray([s.p90 for s in self.stats])


def _measure_pair(
    spec: RNICSpec,
    offset_a: int,
    offset_b: int,
    msg_size: int,
    samples: int,
    depth: int,
    seed: int,
) -> SummaryStats:
    cluster = Cluster(seed=seed)
    server = cluster.add_host("server", spec=spec)
    client = cluster.add_host("client", spec=spec)
    conn = cluster.connect(client, server, max_send_wr=max(depth, 2))
    mr = server.reg_mr(2 * MEBIBYTE)
    targets = [
        ProbeTarget(mr, offset_a, msg_size),
        ProbeTarget(mr, offset_b, msg_size),
    ]
    probe = ULIProbe(conn, targets, depth=depth)
    return summarize(probe.measure(samples, warmup=32))


def absolute_offset_sweep(
    spec: Optional[RNICSpec] = None,
    offsets: Optional[Sequence[int]] = None,
    msg_size: int = 64,
    samples: int = 80,
    depth: int = 2,
    seed: int = 0,
) -> OffsetSweepResult:
    """Figures 6-7: alternate (0, offset) and record ULI per offset."""
    spec = spec if spec is not None else cx4()
    if offsets is None:
        offsets = list(range(0, 4096, 32))
    stats = [
        _measure_pair(spec, 0, offset, msg_size, samples, depth, seed)
        for offset in offsets
    ]
    return OffsetSweepResult(
        offsets=tuple(int(o) for o in offsets),
        stats=tuple(stats),
        msg_size=msg_size,
        mode="absolute",
    )


def relative_offset_sweep(
    spec: Optional[RNICSpec] = None,
    deltas: Optional[Sequence[int]] = None,
    base_offset: int = 64 * 1024 + 1024,
    msg_size: int = 64,
    samples: int = 80,
    depth: int = 2,
    seed: int = 0,
) -> OffsetSweepResult:
    """Figure 8: alternate (base, base + delta) and record ULI per delta.

    The base sits deep inside the MR (so the pair stays in-bounds) and
    *mid-segment* rather than on a 2 KB boundary: the delta at which
    consecutive reads start crossing descriptor segments then differs
    from the absolute sweep's, which is exactly the paper's point that
    absolute and relative offsets have distinct effects.
    """
    spec = spec if spec is not None else cx4()
    if deltas is None:
        deltas = list(range(0, 4096, 32))
    stats = [
        _measure_pair(spec, base_offset, base_offset + delta,
                      msg_size, samples, depth, seed)
        for delta in deltas
    ]
    return OffsetSweepResult(
        offsets=tuple(int(d) for d in deltas),
        stats=tuple(stats),
        msg_size=msg_size,
        mode="relative",
    )
