"""Same-MR vs different-MR ULI across message sizes (Figure 5).

The probe alternately reads two addresses that live either in the same
remote MR or in two different remote MRs; the MR-context switch inside
the translation unit separates the two cases.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from repro.analysis.stats import SummaryStats, summarize
from repro.host.cluster import Cluster
from repro.rnic.spec import RNICSpec, cx4
from repro.sim.units import MEBIBYTE
from repro.telemetry.uli import ProbeTarget, ULIProbe


@dataclasses.dataclass(frozen=True)
class MRSweepResult:
    """ULI statistics for one (message size, same/different MR) cell."""

    msg_size: int
    same_mr: bool
    uli: SummaryStats


def mr_contention_sweep(
    spec: Optional[RNICSpec] = None,
    sizes: Sequence[int] = (64, 256, 1024, 4096),
    samples: int = 200,
    depth: int = 2,
    seed: int = 0,
) -> list[MRSweepResult]:
    """Measure alternate-access ULI for same- and different-MR targets.

    TABLE IV setup: 2 MB MRs on huge pages, 2 QPs worth of queue depth,
    one PD.  The second target's offset is kept in a different 64 B line
    of the *same* segment so that only the MR identity differs between
    the two sweeps.
    """
    results = []
    for same_mr in (True, False):
        for size in sizes:
            cluster = Cluster(seed=seed)
            server = cluster.add_host("server", spec=spec if spec else cx4())
            client = cluster.add_host("client", spec=spec if spec else cx4())
            conn = cluster.connect(client, server, max_send_wr=max(depth, 2))
            mr_a = server.reg_mr(2 * MEBIBYTE)
            mr_b = mr_a if same_mr else server.reg_mr(2 * MEBIBYTE)
            # identical offsets in both cases (0 and 1024: distinct 64 B
            # lines and banks of one segment), so the only difference
            # between the sweeps is the MR identity
            targets = [ProbeTarget(mr_a, 0, size), ProbeTarget(mr_b, 1024, size)]
            probe = ULIProbe(conn, targets, depth=depth)
            uli = probe.measure(samples, warmup=32)
            results.append(
                MRSweepResult(msg_size=size, same_mr=same_mr, uli=summarize(uli))
            )
    return results
