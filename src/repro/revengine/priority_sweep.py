"""The Grain-I/II priority study (Figure 4).

Two flows are configured in ETS mode with 50/50 bandwidth shares
(``mlnx_qos`` in the paper) and swept over opcode pairs, message sizes
and QP counts; the deviation of each flow from its solo bandwidth is
classified with the figure's color scale.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Iterable, Optional

from repro.rnic.bandwidth import BandwidthAllocator, FluidFlow
from repro.rnic.spec import RNICSpec, cx5
from repro.verbs.enums import Opcode

#: The figure's qualitative color classes.
NO_DROP = "no_drop"            # dark red: no significant decrease
HALF_DROP = "half_drop"        # medium red: ~50 % decrease
SLIGHT_DROP = "slight_drop"    # light red: slight decrease
INCREASE = "increase"          # blue: abnormal increase

DEFAULT_SIZES = (64, 128, 256, 512, 1024, 2048, 4096, 16384, 65536)
DEFAULT_QP_NUMS = (1, 2, 4, 8, 16)
DEFAULT_OPCODES = (Opcode.RDMA_WRITE, Opcode.RDMA_READ, Opcode.ATOMIC_FETCH_ADD)


def classify_outcome(ratio: float) -> str:
    """Map contended/solo bandwidth ratio to Figure 4's color classes."""
    if ratio > 1.05:
        return INCREASE
    if ratio >= 0.85:
        return NO_DROP
    if ratio >= 0.65:
        return SLIGHT_DROP
    return HALF_DROP


@dataclasses.dataclass(frozen=True)
class CompetitionResult:
    """Outcome of one parameter combination for the *inducer/indicator*
    pair (Figure 4 plots the indicator's decrease when competing with
    the inducer)."""

    inducer_op: Opcode
    inducer_size: int
    inducer_qps: int
    indicator_op: Opcode
    indicator_size: int
    indicator_qps: int
    indicator_solo_bps: float
    indicator_contended_bps: float

    @property
    def ratio(self) -> float:
        if self.indicator_solo_bps == 0:
            return 0.0
        return self.indicator_contended_bps / self.indicator_solo_bps

    @property
    def outcome(self) -> str:
        return classify_outcome(self.ratio)


class PrioritySweep:
    """Runs the two-flow competition benchmark over a parameter grid."""

    def __init__(self, spec: Optional[RNICSpec] = None) -> None:
        self.spec = spec if spec is not None else cx5()
        self.allocator = BandwidthAllocator(self.spec)

    def compete(
        self,
        inducer_op: Opcode,
        inducer_size: int,
        indicator_op: Opcode,
        indicator_size: int,
        inducer_qps: int = 8,
        indicator_qps: int = 8,
    ) -> CompetitionResult:
        """One cell of the study: how does the indicator flow fare when
        the inducer flow shares the NIC?"""
        inducer = FluidFlow(opcode=inducer_op, msg_size=inducer_size,
                            qp_num=inducer_qps, traffic_class=0)
        indicator = FluidFlow(opcode=indicator_op, msg_size=indicator_size,
                              qp_num=indicator_qps, traffic_class=1)
        solo = self.allocator.allocate([indicator])[indicator.flow_id]
        contended = self.allocator.allocate([inducer, indicator])[indicator.flow_id]
        return CompetitionResult(
            inducer_op=inducer_op,
            inducer_size=inducer.msg_size,
            inducer_qps=inducer_qps,
            indicator_op=indicator_op,
            indicator_size=indicator.msg_size,
            indicator_qps=indicator_qps,
            indicator_solo_bps=solo,
            indicator_contended_bps=contended,
        )

    def sweep(
        self,
        opcodes: Iterable[Opcode] = DEFAULT_OPCODES,
        sizes: Iterable[int] = DEFAULT_SIZES,
        qp_nums: Iterable[int] = DEFAULT_QP_NUMS,
    ) -> list[CompetitionResult]:
        """The full grid.  With the default axes this is
        ``3*3 opcode pairs x 9x9 sizes x 5x5 qps`` minus the atomic
        size degeneracy — comfortably over the paper's "more than 6000
        parameter combinations"."""
        opcodes = list(opcodes)
        sizes = list(sizes)
        qp_nums = list(qp_nums)
        results = []
        seen = set()
        for ind_op, comp_op in itertools.product(opcodes, repeat=2):
            ind_sizes = [8] if ind_op.is_atomic else sizes
            comp_sizes = [8] if comp_op.is_atomic else sizes
            for ind_size, comp_size in itertools.product(ind_sizes, comp_sizes):
                for ind_qp, comp_qp in itertools.product(qp_nums, repeat=2):
                    key = (ind_op, ind_size, ind_qp, comp_op, comp_size, comp_qp)
                    if key in seen:
                        continue
                    seen.add(key)
                    results.append(
                        self.compete(
                            inducer_op=comp_op,
                            inducer_size=comp_size,
                            indicator_op=ind_op,
                            indicator_size=ind_size,
                            inducer_qps=comp_qp,
                            indicator_qps=ind_qp,
                        )
                    )
        return results

    @staticmethod
    def outcome_histogram(results: Iterable[CompetitionResult]) -> dict[str, int]:
        hist: dict[str, int] = {NO_DROP: 0, SLIGHT_DROP: 0, HALF_DROP: 0, INCREASE: 0}
        for result in results:
            hist[result.outcome] += 1
        return hist
