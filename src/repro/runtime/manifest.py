"""The sweep checkpoint manifest: ``<out>/run_manifest.json``.

After every finished task the driver records the task's status,
attempt count, failure record and the SHA-256 content digests of the
artifacts it wrote, then saves the manifest *transactionally* (temp
file + ``os.replace``) — a driver killed mid-save leaves either the
previous manifest or the new one, never a torn file.

``--resume`` loads the manifest back, verifies the run configuration
digest matches (resuming a ``--smoke`` sweep as a full sweep would
silently mix artifacts from two different runs), and skips every task
whose status is ``ok`` *and* whose recorded outputs still exist with
matching digests.  Everything else — failed, skipped, interrupted
mid-write, or tampered with — is re-run from scratch, which is safe
because tasks are deterministic and overwrite their outputs whole.
The chaos tests in ``tests/runtime/`` prove a killed-and-resumed sweep
produces byte-identical artifacts to an uninterrupted one.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from typing import Iterable, Optional

from repro.runtime.failures import TaskFailure

MANIFEST_NAME = "run_manifest.json"
MANIFEST_VERSION = 1


class ManifestConfigMismatch(RuntimeError):
    """``--resume`` against a manifest written with different settings."""


def config_digest(config: dict) -> str:
    """A stable digest of the run configuration (sorted-key JSON)."""
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def _file_digest(path: pathlib.Path) -> str:
    return "sha256:" + hashlib.sha256(path.read_bytes()).hexdigest()


class RunManifest:
    """Per-task checkpoint state for one sweep output directory."""

    def __init__(self, out_dir, config: dict) -> None:
        self.out_dir = pathlib.Path(out_dir)
        self.path = self.out_dir / MANIFEST_NAME
        self.config = dict(config)
        self.digest = config_digest(self.config)
        self.tasks: dict = {}

    # ------------------------------------------------------------------
    # Load / save
    # ------------------------------------------------------------------
    @classmethod
    def open(cls, out_dir, config: dict, resume: bool = False,
             ) -> "RunManifest":
        """A manifest for ``out_dir``: fresh, or — when ``resume`` and a
        manifest exists — loaded with its per-task state, after the
        config digest check."""
        manifest = cls(out_dir, config)
        if not resume or not manifest.path.exists():
            return manifest
        data = json.loads(manifest.path.read_text())
        if data.get("config_digest") != manifest.digest:
            raise ManifestConfigMismatch(
                f"{manifest.path} was written by a run with different "
                f"settings (its config: {data.get('config')}; this run: "
                f"{manifest.config}); rerun without --resume or point "
                f"--out elsewhere"
            )
        manifest.tasks = dict(data.get("tasks", {}))
        return manifest

    def save(self) -> None:
        """Write the manifest atomically (temp file + ``os.replace``)."""
        self.out_dir.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": MANIFEST_VERSION,
            "config": self.config,
            "config_digest": self.digest,
            "tasks": {name: self.tasks[name] for name in sorted(self.tasks)},
        }
        tmp = self.path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, self.path)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_ok(self, name: str, attempts: int,
                  outputs: Iterable[str]) -> None:
        """Mark ``name`` complete, digesting each output path (given
        absolute or CWD-relative; stored relative to the out dir)."""
        digests = {}
        for raw in outputs:
            path = pathlib.Path(raw)
            key = os.path.relpath(path, self.out_dir)
            digests[key] = _file_digest(path)
        self.tasks[name] = {
            "status": "ok",
            "attempts": int(attempts),
            "outputs": digests,
        }

    def record_failure(self, name: str, failure: TaskFailure) -> None:
        self.tasks[name] = {
            "status": "failed",
            "attempts": int(failure.attempts),
            "failure": failure.as_dict(),
        }

    def record_skipped(self, name: str, reason: str) -> None:
        self.tasks[name] = {"status": "skipped", "reason": reason}

    # ------------------------------------------------------------------
    # Resume queries
    # ------------------------------------------------------------------
    def entry(self, name: str) -> Optional[dict]:
        return self.tasks.get(name)

    def can_skip(self, name: str) -> bool:
        """True when ``name`` completed successfully and every recorded
        output still exists with a matching content digest."""
        entry = self.tasks.get(name)
        if entry is None or entry.get("status") != "ok":
            return False
        outputs = entry.get("outputs", {})
        for rel, digest in outputs.items():
            path = self.out_dir / rel
            if not path.exists() or _file_digest(path) != digest:
                return False
        return True
