"""Deterministic retry backoff.

Retry delays are exponential with jitter, but the jitter is *not*
wall-clock entropy: it is drawn from a named
:class:`~repro.sim.random.RandomStreams` stream keyed on
``(seed, task name, attempt)``.  Two runs of the same sweep therefore
wait the same fractions of a second before every retry, the recorded
``retry_delays`` in the manifest are byte-stable, and a chaos test can
assert the exact schedule the supervisor will follow.
"""

from __future__ import annotations

import dataclasses

from repro.sim.random import RandomStreams


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter.

    ``retries`` is the number of *re*-attempts after the first try
    (``retries=0`` disables retrying).  The delay before re-running
    attempt ``n`` (1-based count of attempts already consumed) is::

        min(max_delay, base_delay * factor ** (n - 1)) * (1 + jitter * u)

    where ``u ∈ [0, 1)`` comes from the stream
    ``retry:<name>:attempt<n>`` of ``RandomStreams(seed)``.
    """

    retries: int = 0
    base_delay: float = 0.05
    factor: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.base_delay < 0 or self.max_delay < 0 or self.jitter < 0:
            raise ValueError("delays and jitter must be non-negative")
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor}")

    def delay(self, seed: int, name: str, attempt: int) -> float:
        """Seconds to wait before re-running ``name`` after its
        ``attempt``-th try failed (attempts count from 1)."""
        if attempt < 1:
            raise ValueError(f"attempt counts from 1, got {attempt}")
        bounded = min(self.max_delay,
                      self.base_delay * self.factor ** (attempt - 1))
        if self.jitter == 0 or bounded == 0:
            return bounded
        stream = RandomStreams(seed).stream(f"retry:{name}:attempt{attempt}")
        return bounded * (1.0 + self.jitter * float(stream.random()))

    def schedule(self, seed: int, name: str) -> list:
        """The full deterministic delay schedule for ``name`` — what a
        task that fails every attempt would wait between tries."""
        return [self.delay(seed, name, attempt)
                for attempt in range(1, self.retries + 1)]
