"""Paired supervisor-vs-bare-pool overhead measurement.

``tools/bench_gate.py`` budgets the supervised runtime at a few percent
over the bare ``ProcessPoolExecutor`` it replaced on the ``--jobs``
path.  Both sides run the same batch of deterministic spin tasks with
the same spawn start method and the same one-process-per-task
discipline, strictly interleaved min-of-N, so machine noise hits both
equally.

Run as a module so spawn children re-import *this* light module as
``__mp_main__`` instead of the heavyweight bench_gate script::

    python -m repro.runtime.bench --tasks 4 --jobs 2 --repeats 2

``--fleet`` instead prices the fleet telemetry plane: the same
supervised batch of metric-ticking workers with the telemetry pipes
armed (deltas shipped to a live :class:`FleetAggregator`) versus
telemetry off, strictly interleaved — the streaming overhead
``tools/bench_gate.py`` budgets at a few percent.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import multiprocessing
import sys

from repro.experiments.timing import wallclock
from repro.runtime.supervisor import Supervisor, SupervisorConfig, TaskSpec

#: Spin iterations per task — ~20-40 ms of pure-Python work, enough for
#: per-task supervision overhead to be resolvable but not spawn-bound.
SPIN_ITERATIONS = 300_000


def spin_task(iterations: int = SPIN_ITERATIONS) -> int:
    """A deterministic CPU-bound task (module-level, spawn-picklable)."""
    total = 0
    for i in range(iterations):
        total += i * i
    return total


def run_bare_pool(tasks: int, jobs: int) -> None:
    """The replaced baseline: a spawn pool, one process per task."""
    context = multiprocessing.get_context("spawn")
    with concurrent.futures.ProcessPoolExecutor(
        max_workers=jobs, mp_context=context, max_tasks_per_child=1,
    ) as pool:
        futures = [pool.submit(spin_task, SPIN_ITERATIONS)
                   for _ in range(tasks)]
        for future in futures:
            future.result()


def run_supervised(tasks: int, jobs: int) -> None:
    """The same batch through the supervisor (heartbeats on, no
    deadline — the production default for a plain ``--jobs`` run)."""
    supervisor = Supervisor(SupervisorConfig(max_workers=jobs))
    specs = [TaskSpec(name=f"spin{i}", fn=spin_task,
                      args=(SPIN_ITERATIONS,)) for i in range(tasks)]
    results = supervisor.run(specs)
    assert all(result.ok for result in results.values())


def fleet_spin_task(iterations: int = SPIN_ITERATIONS,
                    beats: int = 64) -> int:
    """The spin task with a live metrics registry: counters tick as the
    work progresses, so an armed telemetry pipe has real deltas to ship
    (module-level, spawn-picklable)."""
    from repro import obs
    obs.install(metrics=True)
    try:
        registry = obs.registry()
        counter = registry.counter("bench.fleet", "iterations")
        gauge = registry.gauge("bench.fleet", "progress")
        total = 0
        chunk = max(1, iterations // beats)
        done = 0
        while done < iterations:
            upper = min(done + chunk, iterations)
            for i in range(done, upper):
                total += i * i
            counter.inc(upper - done)
            gauge.set(upper / iterations)
            done = upper
        return total
    finally:
        obs.uninstall()


def run_fleet(tasks: int, jobs: int, telemetry: bool) -> None:
    """The supervised batch of metric-ticking workers, with the
    telemetry pipes armed (live aggregator, no disk) or off.  A short
    shipping interval makes the streaming cost visible on ~30 ms
    tasks."""
    supervisor = Supervisor(SupervisorConfig(max_workers=jobs,
                                             telemetry_interval=0.005))
    specs = [TaskSpec(name=f"fleet{i}", fn=fleet_spin_task,
                      args=(SPIN_ITERATIONS,)) for i in range(tasks)]
    sink = None
    if telemetry:
        from repro.obs.fleet import FleetAggregator
        sink = FleetAggregator(tasks=[spec.name for spec in specs]).sink
    results = supervisor.run(specs, telemetry=sink)
    assert all(result.ok for result in results.values())


def measure_fleet(tasks: int = 4, jobs: int = 2, repeats: int = 2) -> dict:
    """Interleaved min-of-N wall times for the telemetry-off and
    telemetry-on supervised batches plus the relative streaming
    overhead (clamped at 0)."""
    run_fleet(tasks, jobs, telemetry=False)   # warm both paths
    run_fleet(tasks, jobs, telemetry=True)
    best_off = best_on = float("inf")
    for _ in range(repeats):
        started = wallclock()
        run_fleet(tasks, jobs, telemetry=False)
        best_off = min(best_off, wallclock() - started)
        started = wallclock()
        run_fleet(tasks, jobs, telemetry=True)
        best_on = min(best_on, wallclock() - started)
    return {
        "tasks": tasks,
        "jobs": jobs,
        "telemetry_off_s": round(best_off, 6),
        "telemetry_on_s": round(best_on, 6),
        "overhead": round(max(0.0, best_on / best_off - 1.0), 4),
    }


def measure(tasks: int = 4, jobs: int = 2, repeats: int = 2) -> dict:
    """Interleaved min-of-N wall times for both sides plus the relative
    supervisor overhead (clamped at 0 — the supervisor is occasionally
    *faster* than the pool's own bookkeeping)."""
    run_bare_pool(tasks, jobs)       # warm both paths outside the timing
    run_supervised(tasks, jobs)
    best_bare = best_supervised = float("inf")
    for _ in range(repeats):
        started = wallclock()
        run_bare_pool(tasks, jobs)
        best_bare = min(best_bare, wallclock() - started)
        started = wallclock()
        run_supervised(tasks, jobs)
        best_supervised = min(best_supervised, wallclock() - started)
    return {
        "tasks": tasks,
        "jobs": jobs,
        "bare_pool_s": round(best_bare, 6),
        "supervised_s": round(best_supervised, 6),
        "overhead": round(max(0.0, best_supervised / best_bare - 1.0), 4),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tasks", type=int, default=4)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--fleet", action="store_true",
                        help="price the fleet telemetry plane "
                             "(telemetry-on vs telemetry-off supervised "
                             "batches) instead of supervisor-vs-pool")
    args = parser.parse_args(argv)
    if args.tasks < 1 or args.jobs < 1 or args.repeats < 1:
        parser.error("--tasks/--jobs/--repeats must be positive")
    if args.fleet:
        print(json.dumps(measure_fleet(args.tasks, args.jobs,
                                       args.repeats)))
    else:
        print(json.dumps(measure(args.tasks, args.jobs, args.repeats)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
