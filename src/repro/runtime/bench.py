"""Paired supervisor-vs-bare-pool overhead measurement.

``tools/bench_gate.py`` budgets the supervised runtime at a few percent
over the bare ``ProcessPoolExecutor`` it replaced on the ``--jobs``
path.  Both sides run the same batch of deterministic spin tasks with
the same spawn start method and the same one-process-per-task
discipline, strictly interleaved min-of-N, so machine noise hits both
equally.

Run as a module so spawn children re-import *this* light module as
``__mp_main__`` instead of the heavyweight bench_gate script::

    python -m repro.runtime.bench --tasks 4 --jobs 2 --repeats 2
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import multiprocessing
import sys

from repro.experiments.timing import wallclock
from repro.runtime.supervisor import Supervisor, SupervisorConfig, TaskSpec

#: Spin iterations per task — ~20-40 ms of pure-Python work, enough for
#: per-task supervision overhead to be resolvable but not spawn-bound.
SPIN_ITERATIONS = 300_000


def spin_task(iterations: int = SPIN_ITERATIONS) -> int:
    """A deterministic CPU-bound task (module-level, spawn-picklable)."""
    total = 0
    for i in range(iterations):
        total += i * i
    return total


def run_bare_pool(tasks: int, jobs: int) -> None:
    """The replaced baseline: a spawn pool, one process per task."""
    context = multiprocessing.get_context("spawn")
    with concurrent.futures.ProcessPoolExecutor(
        max_workers=jobs, mp_context=context, max_tasks_per_child=1,
    ) as pool:
        futures = [pool.submit(spin_task, SPIN_ITERATIONS)
                   for _ in range(tasks)]
        for future in futures:
            future.result()


def run_supervised(tasks: int, jobs: int) -> None:
    """The same batch through the supervisor (heartbeats on, no
    deadline — the production default for a plain ``--jobs`` run)."""
    supervisor = Supervisor(SupervisorConfig(max_workers=jobs))
    specs = [TaskSpec(name=f"spin{i}", fn=spin_task,
                      args=(SPIN_ITERATIONS,)) for i in range(tasks)]
    results = supervisor.run(specs)
    assert all(result.ok for result in results.values())


def measure(tasks: int = 4, jobs: int = 2, repeats: int = 2) -> dict:
    """Interleaved min-of-N wall times for both sides plus the relative
    supervisor overhead (clamped at 0 — the supervisor is occasionally
    *faster* than the pool's own bookkeeping)."""
    run_bare_pool(tasks, jobs)       # warm both paths outside the timing
    run_supervised(tasks, jobs)
    best_bare = best_supervised = float("inf")
    for _ in range(repeats):
        started = wallclock()
        run_bare_pool(tasks, jobs)
        best_bare = min(best_bare, wallclock() - started)
        started = wallclock()
        run_supervised(tasks, jobs)
        best_supervised = min(best_supervised, wallclock() - started)
    return {
        "tasks": tasks,
        "jobs": jobs,
        "bare_pool_s": round(best_bare, 6),
        "supervised_s": round(best_supervised, 6),
        "overhead": round(max(0.0, best_supervised / best_bare - 1.0), 4),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tasks", type=int, default=4)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--repeats", type=int, default=2)
    args = parser.parse_args(argv)
    if args.tasks < 1 or args.jobs < 1 or args.repeats < 1:
        parser.error("--tasks/--jobs/--repeats must be positive")
    print(json.dumps(measure(args.tasks, args.jobs, args.repeats)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
