"""repro.runtime — the supervised task-execution engine.

The bare ``ProcessPoolExecutor`` the experiments CLI used to fan out
``--jobs N`` had two failure modes long Ragnar sweeps actually hit:
one wedged simulation stalls the whole batch forever, and a crashed
sweep restarts from zero.  This package is the supervision substrate
that replaces it (and that later sharded-runner work sits on):

* :mod:`repro.runtime.supervisor` — launches each task attempt as its
  own ``multiprocessing`` worker with a heartbeat pipe, enforces
  per-task wall-clock deadlines and heartbeat liveness, SIGKILLs and
  reaps wedged workers, and classifies every failure (crash traceback
  vs. deadline/heartbeat timeout vs. signal/OOM exitcode) into a
  structured :class:`~repro.runtime.failures.TaskFailure` record;
* :mod:`repro.runtime.retry` — deterministic exponential backoff with
  jitter drawn from named :class:`~repro.sim.random.RandomStreams`
  keyed on ``(seed, name, attempt)``, so a rerun of a flaky sweep
  waits the same fractions of a second it waited the first time;
* :mod:`repro.runtime.manifest` — the transactional sweep checkpoint
  (``<out>/run_manifest.json``): per-task status, config digest and
  output content digests, written atomically after every task so a
  killed driver resumes with ``--resume`` to byte-identical artifacts;
* :mod:`repro.runtime.bench` — the paired supervisor-vs-bare-pool
  overhead measurement behind the ``tools/bench_gate.py`` runtime gate.

See docs/RUNTIME.md for the supervision model, the failure taxonomy,
and the resume semantics.
"""

from .failures import TaskFailure, classify_exit
from .manifest import ManifestConfigMismatch, RunManifest, config_digest
from .retry import RetryPolicy
from .supervisor import Supervisor, SupervisorConfig, TaskResult, TaskSpec

__all__ = [
    "ManifestConfigMismatch",
    "RetryPolicy",
    "RunManifest",
    "Supervisor",
    "SupervisorConfig",
    "TaskFailure",
    "TaskResult",
    "TaskSpec",
    "classify_exit",
    "config_digest",
]
