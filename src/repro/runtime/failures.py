"""The failure taxonomy shared by the supervisor and the experiments CLI.

Every way a supervised task can die maps onto one structured record,
:class:`TaskFailure`, with a small closed set of ``kind`` values:

``crash``
    The task raised: the worker reported the exception type and full
    traceback over the heartbeat pipe before exiting, or the task
    function itself returned a result that carries a failure (the
    experiments runner captures tracebacks in
    :class:`~repro.experiments.runner.TaskOutcome`).
``timeout``
    The supervisor killed the worker — either the per-task wall-clock
    deadline expired, or the worker went heartbeat-silent for longer
    than the liveness window (a hung task looks exactly like this).
    ``message`` names which of the two tripped.
``signal``
    The worker process died to a signal the supervisor did not send
    (``exitcode < 0``): an external SIGKILL, the kernel OOM killer,
    a segfault.  ``signal_name`` carries the decoded signal.
``skipped``
    The task never ran: the ``--max-failures`` circuit breaker opened
    while it was still queued.

The record travels inside :class:`TaskResult` and (for experiments)
inside ``TaskOutcome.failure``, and is serialized verbatim into the
``<name>.error.json`` sidecar and the run manifest.
"""

from __future__ import annotations

import dataclasses
import signal as signal_module
from typing import Optional

#: The closed set of failure kinds; see the module docstring.
FAILURE_KINDS = ("crash", "timeout", "signal", "skipped")


@dataclasses.dataclass
class TaskFailure:
    """One classified task failure; ``kind`` is from :data:`FAILURE_KINDS`."""

    kind: str
    message: str = ""
    exc_type: str = ""           # exception class name for crashes
    traceback: str = ""          # full worker-side traceback for crashes
    exitcode: Optional[int] = None
    signal_name: str = ""        # decoded signal for signal deaths
    attempts: int = 1            # attempts consumed when this became final

    def __post_init__(self) -> None:
        if self.kind not in FAILURE_KINDS:
            raise ValueError(
                f"unknown failure kind {self.kind!r}; expected one of "
                f"{FAILURE_KINDS}"
            )

    def describe(self) -> str:
        """A printable account: the message plus the traceback if any."""
        if self.traceback:
            return f"{self.traceback.rstrip()}\n[{self.kind}: {self.message}]"
        return f"[{self.kind}: {self.message}]"

    def as_dict(self) -> dict:
        """A JSON-ready dict with empty/None fields dropped."""
        raw = dataclasses.asdict(self)
        return {
            key: value for key, value in raw.items()
            if value not in ("", None)
        }


def classify_exit(exitcode: Optional[int], attempts: int = 1) -> TaskFailure:
    """Classify a worker that died without reporting a result.

    ``exitcode < 0`` means a signal death (``-exitcode`` is the signal
    number); anything else is an interpreter-level crash that never
    reached the worker's exception handler (e.g. ``os._exit``).
    """
    if exitcode is not None and exitcode < 0:
        number = -exitcode
        try:
            name = signal_module.Signals(number).name
        except ValueError:
            name = f"signal {number}"
        suffix = " (possible OOM kill)" if name == "SIGKILL" else ""
        return TaskFailure(
            kind="signal",
            message=f"worker killed by {name}{suffix}",
            exitcode=exitcode, signal_name=name, attempts=attempts,
        )
    return TaskFailure(
        kind="crash",
        message=f"worker exited with code {exitcode} before reporting "
                f"a result",
        exitcode=exitcode, attempts=attempts,
    )
