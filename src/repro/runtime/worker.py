"""The worker-process side of the supervised runtime.

Kept deliberately light: a spawn child imports this module (plus the
module that defines the task function) and nothing else, so worker
startup stays cheap.  The protocol over the pipe is tiny tuples:

* ``("beat",)`` — periodic liveness beat from a daemon thread; stops
  arriving the moment the process is SIGSTOPped, wedged in the kernel,
  or dead, which is exactly the supervisor's hang signal.
* ``("ok", value)`` — the task function returned ``value``.
* ``("error", exc_type, traceback)`` — the task function raised.

The pipe is written from two threads (the beat thread and the task
thread's final report), so every send holds a lock — ``Connection``
objects are not thread-safe.
"""

from __future__ import annotations

import threading
import traceback as traceback_module


def child_main(conn, fn, args, kwargs, heartbeat_interval: float) -> None:
    """Run one task attempt in a worker process, beating the pipe.

    Spawn-picklable by qualified name; ``fn`` itself must also be an
    importable module-level callable (the same constraint the old
    process pool imposed).
    """
    stop = threading.Event()
    lock = threading.Lock()

    def beat() -> None:
        while not stop.wait(heartbeat_interval):
            with lock:
                try:
                    conn.send(("beat",))
                except OSError:
                    return  # supervisor went away; nothing left to tell

    thread = threading.Thread(target=beat, daemon=True, name="heartbeat")
    thread.start()
    try:
        value = fn(*args, **kwargs)
    except BaseException as error:  # ragnar-lint: disable=RAG004 — worker boundary: the exception is serialized over the pipe and re-classified by the supervisor; swallowing it here is the only way to report it at all
        stop.set()
        with lock:
            try:
                conn.send(("error", type(error).__name__,
                           traceback_module.format_exc()))
            except OSError:
                pass
        conn.close()
        # exit nonzero so the exitcode agrees with the report if the
        # pipe message is lost
        raise SystemExit(1)
    stop.set()
    with lock:
        conn.send(("ok", value))
    conn.close()
