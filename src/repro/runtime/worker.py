"""The worker-process side of the supervised runtime.

Kept deliberately light: a spawn child imports this module (plus the
module that defines the task function) and nothing else, so worker
startup stays cheap.  The protocol over the pipe is tiny tuples:

* ``("beat",)`` — periodic liveness beat from a daemon thread; stops
  arriving the moment the process is SIGSTOPped, wedged in the kernel,
  or dead, which is exactly the supervisor's hang signal.
* ``("ok", value)`` — the task function returned ``value``.
* ``("error", exc_type, traceback)`` — the task function raised.

The pipe is written from two threads (the beat thread and the task
thread's final report), so every send holds a lock — ``Connection``
objects are not thread-safe.

When the supervisor asks for fleet telemetry it passes a **second,
dedicated pipe** (``telemetry_conn``): a separate daemon thread
periodically snapshots the task's installed :mod:`repro.obs` metrics
registry and ships the *changed rows* (see
:func:`repro.obs.fleet.merge.snapshot_delta`) as
``{"kind": "delta", "seq": n, "delta": {...}}`` records, with a final
``{"kind": "final", ...}`` flush when the task ends.  The result pipe's
tuple protocol is untouched — telemetry loss degrades the live fleet
view, never the task outcome.  The obs/fleet imports happen lazily
inside the shipper so telemetry-off workers stay as light as before.
"""

from __future__ import annotations

import threading
import traceback as traceback_module


class _TelemetryShipper:
    """Periodic metric-delta shipping over the dedicated telemetry
    pipe; see the module docstring for the record shapes."""

    def __init__(self, conn, stop: threading.Event,
                 interval: float) -> None:
        self._conn = conn
        self._stop = stop
        self._interval = interval
        self._lock = threading.Lock()
        self._last: dict = {}
        self._seq = 0
        self._dead = False

    def _snapshot(self):
        from repro.obs.runtime import registry
        metrics = registry()
        if metrics is None:
            return None
        try:
            return metrics.snapshot()
        except RuntimeError:
            # raced the task thread registering a new instrument
            # mid-iteration; the next tick sees a settled registry
            return None

    def _ship(self, kind: str, snapshot: dict) -> None:
        from repro.obs.fleet.merge import snapshot_delta
        delta = snapshot_delta(self._last, snapshot)
        if not delta and kind == "delta":
            return
        self._seq += 1
        record = {"kind": kind, "seq": self._seq, "delta": delta}
        if kind == "final":
            record["snapshot"] = snapshot
        try:
            self._conn.send(record)
        except (OSError, ValueError):
            self._dead = True   # supervisor went away; stop shipping
            return
        self._last = snapshot

    def run(self) -> None:
        while not self._stop.wait(self._interval):
            if self._dead:
                return
            with self._lock:
                snapshot = self._snapshot()
                if snapshot is not None:
                    self._ship("delta", snapshot)

    def close(self, final: bool) -> None:
        """Final flush (the task may already have uninstalled its obs
        session — then the last shipped cumulative state stands) and
        pipe close."""
        with self._lock:
            if final and not self._dead:
                snapshot = self._snapshot()
                self._ship("final", snapshot if snapshot is not None
                           else self._last)
            try:
                self._conn.close()
            except OSError:
                pass


def child_main(conn, fn, args, kwargs, heartbeat_interval: float,
               telemetry_conn=None,
               telemetry_interval: float = 0.5) -> None:
    """Run one task attempt in a worker process, beating the pipe.

    Spawn-picklable by qualified name; ``fn`` itself must also be an
    importable module-level callable (the same constraint the old
    process pool imposed).
    """
    stop = threading.Event()
    lock = threading.Lock()

    def beat() -> None:
        while not stop.wait(heartbeat_interval):
            with lock:
                try:
                    conn.send(("beat",))
                except OSError:
                    return  # supervisor went away; nothing left to tell

    thread = threading.Thread(target=beat, daemon=True, name="heartbeat")
    thread.start()
    shipper = None
    if telemetry_conn is not None:
        shipper = _TelemetryShipper(telemetry_conn, stop,
                                    telemetry_interval)
        threading.Thread(target=shipper.run, daemon=True,
                         name="telemetry").start()
    try:
        value = fn(*args, **kwargs)
    except BaseException as error:  # ragnar-lint: disable=RAG004 — worker boundary: the exception is serialized over the pipe and re-classified by the supervisor; swallowing it here is the only way to report it at all
        stop.set()
        if shipper is not None:
            shipper.close(final=False)
        with lock:
            try:
                conn.send(("error", type(error).__name__,
                           traceback_module.format_exc()))
            except OSError:
                pass
        conn.close()
        # exit nonzero so the exitcode agrees with the report if the
        # pipe message is lost
        raise SystemExit(1)
    stop.set()
    if shipper is not None:
        shipper.close(final=True)
    with lock:
        conn.send(("ok", value))
    conn.close()
