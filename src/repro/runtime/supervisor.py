"""The supervisor: deadline- and heartbeat-enforced task execution.

Each task attempt runs in its own spawned ``multiprocessing`` worker
(one pristine interpreter per attempt — the same isolation discipline
the old ``max_tasks_per_child=1`` pool gave, so results stay
byte-identical to serial runs).  The worker beats a pipe from a daemon
thread (:mod:`repro.runtime.worker`); the supervisor multiplexes every
worker's pipe and process sentinel through
``multiprocessing.connection.wait`` — completion latency is one wakeup,
not a polling interval — and enforces:

* a per-task **wall-clock deadline** (``SupervisorConfig.deadline``):
  an overrunning worker is SIGKILLed, reaped, and classified
  ``timeout``;
* **heartbeat liveness** (``heartbeat_timeout``): a worker that stops
  beating — SIGSTOPped, wedged in the kernel, deadlocked — is killed
  and classified ``timeout`` without waiting for the full deadline;
* **silent deaths**: a worker that disappears without reporting
  (external SIGKILL, the OOM killer, a segfault) is classified from
  its exitcode (:func:`repro.runtime.failures.classify_exit`);
* **deterministic retry**: failed attempts are re-queued after a
  :class:`~repro.runtime.retry.RetryPolicy` backoff whose jitter is
  keyed on ``(seed, name, attempt)`` — reruns wait identical delays;
* a ``max_failures`` **circuit breaker**: once that many tasks have
  permanently failed, still-queued tasks are finalized as ``skipped``
  (running ones finish) and the batch degrades to a partial summary.

Supervisor events feed the installed :mod:`repro.obs` metrics registry
(component ``runtime``) when one is present, and always accumulate in
``Supervisor.metrics`` plus the structured ``Supervisor.events`` list.

``run(..., telemetry=sink)`` additionally opens a **dedicated telemetry
pipe** per worker, multiplexed through the same ``connection.wait``
loop: workers ship incremental metrics-registry deltas from a daemon
thread (:class:`repro.runtime.worker._TelemetryShipper`) and the
supervisor forwards each record — plus its own lifecycle events — to
the sink as ``(task_name, record)``.  That is the transport under the
fleet telemetry plane (:mod:`repro.obs.fleet`); the result/heartbeat
pipe protocol is unchanged and telemetry loss never affects outcomes.
"""

from __future__ import annotations

import collections
import dataclasses
import heapq
import itertools
import multiprocessing
import time
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Iterable, Optional

from repro.experiments.timing import wallclock
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import registry as obs_registry
from repro.runtime.failures import TaskFailure, classify_exit
from repro.runtime.retry import RetryPolicy
from repro.runtime.worker import child_main

#: Wall-second buckets for the per-task duration histogram (the obs
#: default ladder is nanosecond-oriented; supervised tasks live in
#: seconds).
TASK_SECONDS_BUCKETS = (0.01, 0.1, 1.0, 10.0, 100.0, 1000.0)


@dataclasses.dataclass
class TaskSpec:
    """One supervised task: a picklable module-level callable plus its
    arguments (the spawn start method re-imports both by name)."""

    name: str
    fn: Callable
    args: tuple = ()
    kwargs: dict = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class TaskResult:
    """What one task produced across all its attempts."""

    name: str
    value: Any = None                    # last reported value, if any
    failure: Optional[TaskFailure] = None
    attempts: int = 0
    retry_delays: list = dataclasses.field(default_factory=list)
    logs: list = dataclasses.field(default_factory=list)
    elapsed: float = 0.0                 # wall seconds, first launch → final

    @property
    def ok(self) -> bool:
        return self.failure is None


@dataclasses.dataclass
class SupervisorConfig:
    """Tunables for one supervised batch; see the module docstring."""

    max_workers: int = 1
    seed: int = 0
    deadline: Optional[float] = None        # per-task wall seconds
    heartbeat_interval: float = 0.2         # worker beat period
    heartbeat_timeout: Optional[float] = None  # silence before kill
    retry: RetryPolicy = dataclasses.field(default_factory=RetryPolicy)
    max_failures: Optional[int] = None      # circuit-breaker threshold
    start_method: str = "spawn"
    wait_slice: float = 0.5                 # max blocking wait per loop
    telemetry_interval: float = 0.5         # worker metric-ship period

    def __post_init__(self) -> None:
        if self.max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got "
                             f"{self.max_workers}")
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.telemetry_interval <= 0:
            raise ValueError("telemetry_interval must be positive")
        for label, value in (("deadline", self.deadline),
                             ("heartbeat_timeout", self.heartbeat_timeout)):
            if value is not None and value <= 0:
                raise ValueError(f"{label} must be positive, got {value}")
        if self.max_failures is not None and self.max_failures < 1:
            raise ValueError(f"max_failures must be >= 1, got "
                             f"{self.max_failures}")


class _Worker:
    """Bookkeeping for one live worker process."""

    __slots__ = ("spec", "attempt", "process", "conn", "started",
                 "last_beat", "deadline_at", "outcome", "eof",
                 "tconn", "teof")

    def __init__(self, spec: TaskSpec, attempt: int, process, conn,
                 started: float, deadline: Optional[float],
                 tconn=None) -> None:
        self.spec = spec
        self.attempt = attempt
        self.process = process
        self.conn = conn
        self.started = started
        self.last_beat = started
        self.deadline_at = None if deadline is None else started + deadline
        self.outcome = None   # ("ok", value) | ("error", exc_type, tb)
        self.eof = False
        #: Receive end of the dedicated telemetry pipe (None when the
        #: batch runs without a telemetry sink).
        self.tconn = tconn
        self.teof = tconn is None


class Supervisor:
    """Run a batch of :class:`TaskSpec` under supervision.

    ``run`` returns ``{name: TaskResult}``.  ``result_failure`` lets the
    caller declare a *returned* value a failure (the experiments driver
    passes ``lambda outcome: outcome.failure`` so a captured in-task
    crash participates in supervisor-level retry); ``on_complete`` fires
    once per task, in completion order, when its result is final — the
    hook the CLI uses for transactional manifest checkpoints and
    submission-order reporting.
    """

    def __init__(self, config: Optional[SupervisorConfig] = None) -> None:
        self.config = config or SupervisorConfig()
        self.metrics = MetricsRegistry()
        #: Structured, timestamp-free event log (launch/ok/retry/...).
        self.events: list = []
        #: The telemetry sink for the currently running batch (set by
        #: :meth:`run`); lifecycle events are forwarded here alongside
        #: worker metric deltas.
        self._telemetry_sink = None

    # ------------------------------------------------------------------
    # Event + metrics plumbing
    # ------------------------------------------------------------------
    def _event(self, event: str, task: str, attempt: int, **extra) -> None:
        record = {"event": event, "task": task, "attempt": attempt}
        record.update(extra)
        self.events.append(record)
        if self._telemetry_sink is not None:
            self._telemetry_sink(task, {"kind": "event",
                                        "event": dict(record)})

    def _count(self, name: str) -> None:
        self.metrics.counter("runtime", name).inc()
        registry = obs_registry()
        if registry is not None:
            registry.counter("runtime", name).inc()

    def _observe_elapsed(self, seconds: float) -> None:
        self.metrics.histogram("runtime", "task_seconds",
                               TASK_SECONDS_BUCKETS).observe(seconds)
        registry = obs_registry()
        if registry is not None:
            registry.histogram("runtime", "task_seconds",
                               TASK_SECONDS_BUCKETS).observe(seconds)

    # ------------------------------------------------------------------
    # The batch loop
    # ------------------------------------------------------------------
    def run(self, tasks: Iterable[TaskSpec],
            result_failure: Optional[Callable[[Any],
                                              Optional[TaskFailure]]] = None,
            on_complete: Optional[Callable[[TaskResult], None]] = None,
            telemetry: Optional[Callable[[str, dict], None]] = None,
            ) -> dict:
        specs = list(tasks)
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate task names in batch: {names}")
        config = self.config
        ctx = multiprocessing.get_context(config.start_method)
        #: ``telemetry(task_name, record)`` receives worker metric
        #: deltas (a second pipe per worker, multiplexed through the
        #: same wait loop) plus forwarded lifecycle events — the
        #: FleetAggregator's sink.  Records are timing-shaped; callers
        #: needing determinism rebuild from committed artifacts.
        self._telemetry_sink = telemetry

        results = {spec.name: TaskResult(name=spec.name) for spec in specs}
        pending = collections.deque((spec, 1) for spec in specs)
        waiting: list = []          # heap of (ready_at, tiebreak, spec, att)
        running: dict = {}          # name -> _Worker
        first_started: dict = {}
        tiebreak = itertools.count()
        state = {"failures": 0, "circuit_open": False}

        def finalize(result: TaskResult) -> None:
            started = first_started.get(result.name)
            if started is not None:
                result.elapsed = wallclock() - started
                self._observe_elapsed(result.elapsed)
            if result.failure is not None \
                    and result.failure.kind != "skipped":
                state["failures"] += 1
                if config.max_failures is not None \
                        and state["failures"] >= config.max_failures:
                    state["circuit_open"] = True
            if on_complete is not None:
                on_complete(result)

        def resolve(spec: TaskSpec, attempt: int, value: Any,
                    failure: Optional[TaskFailure]) -> None:
            """One attempt ended; retry it or finalize the task."""
            result = results[spec.name]
            if failure is None and result_failure is not None \
                    and value is not None:
                failure = result_failure(value)
            if failure is None:
                result.value = value
                result.attempts = attempt
                self._event("ok", spec.name, attempt)
                self._count("tasks_ok")
                finalize(result)
                return
            failure.attempts = attempt
            self._event(failure.kind, spec.name, attempt,
                        detail=failure.message)
            self._count(f"tasks_{failure.kind}")
            if attempt <= config.retry.retries:
                delay = config.retry.delay(config.seed, spec.name, attempt)
                result.retry_delays.append(delay)
                label = f" ({failure.exc_type})" if failure.exc_type else ""
                result.logs.append(
                    f"[{spec.name}: attempt {attempt} {failure.kind}"
                    f"{label}; retrying in {delay:.2f}s]")
                self._event("retry", spec.name, attempt,
                            delay=round(delay, 6))
                self._count("retries")
                heapq.heappush(waiting, (wallclock() + delay,
                                         next(tiebreak), spec, attempt + 1))
                return
            result.value = value
            result.failure = failure
            result.attempts = attempt
            finalize(result)

        def skip(spec: TaskSpec) -> None:
            result = results[spec.name]
            result.failure = TaskFailure(
                kind="skipped",
                message=f"circuit breaker open after "
                        f"{state['failures']} failure(s)",
                attempts=0)
            self._event("skipped", spec.name, 0)
            self._count("tasks_skipped")
            finalize(result)

        def launch(spec: TaskSpec, attempt: int) -> None:
            recv_conn, send_conn = ctx.Pipe(duplex=False)
            telemetry_recv = telemetry_send = None
            if telemetry is not None:
                telemetry_recv, telemetry_send = ctx.Pipe(duplex=False)
            process = ctx.Process(
                target=child_main,
                args=(send_conn, spec.fn, spec.args, spec.kwargs,
                      config.heartbeat_interval, telemetry_send,
                      config.telemetry_interval),
                name=f"supervised-{spec.name}-a{attempt}")
            process.start()
            send_conn.close()
            if telemetry_send is not None:
                telemetry_send.close()
            now = wallclock()
            first_started.setdefault(spec.name, now)
            running[spec.name] = _Worker(spec, attempt, process, recv_conn,
                                         now, config.deadline,
                                         tconn=telemetry_recv)
            self._event("launch", spec.name, attempt)
            self._count("tasks_launched")

        def drain_telemetry(worker: _Worker) -> None:
            """Forward every queued telemetry record to the sink; the
            result-pipe protocol never flows here."""
            while not worker.teof:
                try:
                    if not worker.tconn.poll():
                        return
                    record = worker.tconn.recv()
                except (EOFError, OSError):
                    worker.teof = True
                    return
                if isinstance(record, dict):
                    telemetry(worker.spec.name, record)

        def reap(worker: _Worker, kill: bool = False) -> None:
            if kill:
                worker.process.kill()
            worker.process.join(timeout=10.0)
            if worker.process.is_alive():   # pragma: no cover - defensive
                worker.process.kill()
                worker.process.join(timeout=10.0)
            if worker.tconn is not None:
                drain_telemetry(worker)   # the final flush may be queued
                worker.tconn.close()
                worker.teof = True
            worker.conn.close()
            del running[worker.spec.name]

        def drain(worker: _Worker, now: float) -> None:
            while not worker.eof and worker.outcome is None:
                try:
                    if not worker.conn.poll():
                        return
                    message = worker.conn.recv()
                except (EOFError, OSError):
                    worker.eof = True
                    return
                if message[0] == "beat":
                    worker.last_beat = now
                else:
                    worker.outcome = message

        def next_timeout(now: float) -> float:
            targets = []
            for worker in running.values():
                if worker.deadline_at is not None:
                    targets.append(worker.deadline_at)
                if config.heartbeat_timeout is not None:
                    targets.append(worker.last_beat
                                   + config.heartbeat_timeout)
            if waiting:
                targets.append(waiting[0][0])
            if not targets:
                return config.wait_slice
            return min(config.wait_slice, max(0.0, min(targets) - now))

        try:
            while pending or waiting or running:
                now = wallclock()
                while waiting and waiting[0][0] <= now:
                    _, _, spec, attempt = heapq.heappop(waiting)
                    pending.append((spec, attempt))
                if state["circuit_open"] and (pending or waiting):
                    leftovers = [entry[:2] for entry in pending]
                    leftovers += [(spec, attempt)
                                  for _, _, spec, attempt in waiting]
                    pending.clear()
                    waiting.clear()
                    for spec, _ in leftovers:
                        skip(spec)
                    continue
                while pending and len(running) < config.max_workers:
                    spec, attempt = pending.popleft()
                    launch(spec, attempt)
                if not running:
                    if waiting:
                        pause = max(0.0, waiting[0][0] - wallclock())
                        time.sleep(min(pause, config.wait_slice))
                    continue
                handles = []
                by_handle = {}
                for worker in running.values():
                    handles.append(worker.conn)
                    by_handle[worker.conn] = worker
                    handles.append(worker.process.sentinel)
                    by_handle[worker.process.sentinel] = worker
                    if worker.tconn is not None and not worker.teof:
                        handles.append(worker.tconn)
                        by_handle[worker.tconn] = worker
                ready = mp_connection.wait(handles, next_timeout(now))
                now = wallclock()
                touched = {id(by_handle[h]) for h in ready}
                for worker in list(running.values()):
                    if id(worker) in touched:
                        drain_telemetry(worker)
                        drain(worker, now)
                for worker in list(running.values()):
                    if worker.outcome is not None:
                        reap(worker)
                        if worker.outcome[0] == "ok":
                            resolve(worker.spec, worker.attempt,
                                    worker.outcome[1], None)
                        else:
                            _, exc_type, trace = worker.outcome
                            resolve(worker.spec, worker.attempt, None,
                                    TaskFailure(
                                        kind="crash",
                                        message=trace.strip()
                                        .splitlines()[-1],
                                        exc_type=exc_type,
                                        traceback=trace))
                    elif not worker.process.is_alive():
                        drain(worker, now)   # catch a last-gasp message
                        if worker.outcome is not None:
                            continue         # handled next iteration
                        exitcode = worker.process.exitcode
                        reap(worker)
                        resolve(worker.spec, worker.attempt, None,
                                classify_exit(exitcode, worker.attempt))
                    elif worker.deadline_at is not None \
                            and now >= worker.deadline_at:
                        reap(worker, kill=True)
                        resolve(worker.spec, worker.attempt, None,
                                TaskFailure(
                                    kind="timeout",
                                    message=f"wall-clock deadline of "
                                            f"{config.deadline}s exceeded; "
                                            f"worker killed"))
                    elif config.heartbeat_timeout is not None \
                            and now - worker.last_beat \
                            >= config.heartbeat_timeout:
                        reap(worker, kill=True)
                        resolve(worker.spec, worker.attempt, None,
                                TaskFailure(
                                    kind="timeout",
                                    message=f"no heartbeat for more than "
                                            f"{config.heartbeat_timeout}s; "
                                            f"hung worker killed"))
        finally:
            for worker in list(running.values()):
                reap(worker, kill=True)
            self._telemetry_sink = None
        return results
