"""Terminal visualization helpers.

Everything in this reproduction runs offline, so the "figures" are
ASCII/Unicode renderings: sparklines for bandwidth traces, bar charts
for sweep results, and heatmaps for confusion matrices.  Used by the
examples and handy in a REPL::

    >>> from repro.viz import sparkline
    >>> sparkline([1, 5, 2, 8, 3])
    ' =.#:'
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

_BLOCKS = " .:-=+*#%@"


def _normalize(values: Sequence[float]) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return arr
    lo, hi = float(arr.min()), float(arr.max())
    if hi == lo:
        return np.zeros_like(arr)
    return (arr - lo) / (hi - lo)


def sparkline(values: Sequence[float], width: int = 72) -> str:
    """Render a series as one line of density characters."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return ""
    if arr.size > width:
        # average into `width` buckets rather than subsampling
        edges = np.linspace(0, arr.size, width + 1).astype(int)
        arr = np.asarray([
            arr[a:b].mean() if b > a else arr[min(a, arr.size - 1)]
            for a, b in zip(edges[:-1], edges[1:])
        ])
    scaled = (_normalize(arr) * (len(_BLOCKS) - 1)).round().astype(int)
    return "".join(_BLOCKS[i] for i in scaled)


def bar_chart(labels: Sequence[str], values: Sequence[float],
              width: int = 40, unit: str = "") -> str:
    """Horizontal bar chart with aligned labels and values."""
    if len(labels) != len(values):
        raise ValueError("labels and values must pair up")
    if not labels:
        return ""
    arr = np.asarray(values, dtype=np.float64)
    peak = float(arr.max()) if arr.size else 0.0
    label_width = max(len(str(label)) for label in labels)
    lines = []
    for label, value in zip(labels, arr):
        filled = int(round(width * value / peak)) if peak > 0 else 0
        bar = "#" * filled
        lines.append(f"{str(label):>{label_width}} | {bar:<{width}} "
                     f"{value:,.4g}{unit}")
    return "\n".join(lines)


def heatmap(matrix, row_label: str = "true", col_label: str = "pred") -> str:
    """Density heatmap of a 2-D matrix (e.g. a confusion matrix)."""
    arr = np.asarray(matrix, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError(f"need a 2-D matrix, got shape {arr.shape}")
    peak = float(arr.max())
    lines = [f"{row_label} \\ {col_label}"]
    for row in arr:
        if peak > 0:
            cells = ((row / peak) * (len(_BLOCKS) - 1)).round().astype(int)
        else:
            cells = np.zeros(len(row), dtype=int)
        lines.append("".join(_BLOCKS[i] for i in cells))
    return "\n".join(lines)


def annotate_position(length: int, position: float, marker: str = "^",
                      note: str = "") -> str:
    """A one-line marker under a sparkline (e.g. the victim's offset)."""
    if not 0.0 <= position <= 1.0:
        raise ValueError(f"position must be in [0, 1], got {position}")
    index = min(int(position * (length - 1)), length - 1) if length > 1 else 0
    line = [" "] * length
    line[index] = marker
    return "".join(line) + (f" {note}" if note else "")
