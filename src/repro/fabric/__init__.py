"""The network fabric connecting RNICs: links and a single-switch LAN."""

from repro.fabric.network import Link, Network, Switch

__all__ = ["Link", "Switch", "Network"]
