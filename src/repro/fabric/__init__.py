"""The network fabric connecting RNICs: links and a single-switch LAN."""

from repro.fabric.network import Link, LinkFault, Network, Switch

__all__ = ["Link", "LinkFault", "Switch", "Network"]
