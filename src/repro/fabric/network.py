"""A store-and-forward switched fabric.

The paper's testbed is hosts on one RoCE switch (Table II); we model a
single switch whose per-hop cost is the store-and-forward delay plus
fiber propagation on each link.  Per-port serialization happens at the
NICs' wire stations, so the switch itself only adds latency (its
backplane is provisioned above the sum of port rates, as real ToR
switches are).
"""

from __future__ import annotations

import dataclasses
from typing import Hashable


@dataclasses.dataclass(frozen=True)
class Link:
    """A fiber between an RNIC port and a switch port.

    ``loss_probability`` models corrupted/dropped frames; RoCE fabrics
    are engineered to be nearly lossless (PFC), so the default is 0 and
    the RC transport's retransmission handles the rest.
    """

    propagation_ns: float = 200.0
    loss_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.propagation_ns < 0:
            raise ValueError("propagation must be non-negative")
        if not 0.0 <= self.loss_probability < 1.0:
            raise ValueError("loss probability must be in [0, 1)")


@dataclasses.dataclass(frozen=True)
class Switch:
    """A single store-and-forward switch hop."""

    forward_ns: float = 300.0

    def __post_init__(self) -> None:
        if self.forward_ns < 0:
            raise ValueError("forward delay must be non-negative")


class Network:
    """Registry of endpoints hanging off one switch."""

    def __init__(self, switch: Switch | None = None) -> None:
        self.switch = switch if switch is not None else Switch()
        self._links: dict[Hashable, Link] = {}

    def attach(self, endpoint: Hashable, link: Link | None = None) -> None:
        """Attach an endpoint (an RNIC) with its access link."""
        if endpoint in self._links:
            raise ValueError(f"endpoint {endpoint!r} already attached")
        self._links[endpoint] = link if link is not None else Link()

    def attached(self, endpoint: Hashable) -> bool:
        return endpoint in self._links

    def transit_ns(self, src: Hashable, dst: Hashable) -> float:
        """One-way latency from ``src`` to ``dst`` (excluding
        serialization, which the sending NIC's wire station accounts)."""
        try:
            src_link = self._links[src]
            dst_link = self._links[dst]
        except KeyError as missing:
            raise KeyError(f"endpoint {missing.args[0]!r} not attached") from None
        if src is dst:
            return 0.0  # loopback never leaves the NIC
        return src_link.propagation_ns + self.switch.forward_ns + dst_link.propagation_ns

    def loss_probability(self, src: Hashable, dst: Hashable) -> float:
        """End-to-end frame-loss probability of the src->dst path."""
        try:
            src_link = self._links[src]
            dst_link = self._links[dst]
        except KeyError as missing:
            raise KeyError(f"endpoint {missing.args[0]!r} not attached") from None
        if src is dst:
            return 0.0
        survive = (1.0 - src_link.loss_probability) * (1.0 - dst_link.loss_probability)
        return 1.0 - survive
