"""A store-and-forward switched fabric.

The paper's testbed is hosts on one RoCE switch (Table II); we model a
single switch whose per-hop cost is the store-and-forward delay plus
fiber propagation on each link.  Per-port serialization happens at the
NICs' wire stations, so the switch itself only adds latency (its
backplane is provisioned above the sum of port rates, as real ToR
switches are).
"""

from __future__ import annotations

import dataclasses
from typing import Hashable

import numpy as np


class LinkFault:
    """Dynamic per-link fault process consulted on every frame.

    The base class is the identity fault (never drops, adds nothing).
    Concrete processes — Gilbert–Elliott bursty loss, loss/latency
    schedules, link flaps — live in :mod:`repro.faults.models`; the
    fabric only defines the contract so lower layers stay independent
    of the fault-injection subsystem.

    Determinism contract: ``drop`` may consume random draws but ONLY
    from the generator passed in (a named ``sim.random`` stream), and
    any internal state must be a pure function of the draw sequence, so
    identical seeds replay bit-identically.  ``reset`` must restore the
    initial state; installers call it so one model instance can serve
    several replays.
    """

    def drop(self, now: float, rng: np.random.Generator) -> bool:
        """Whether a frame crossing the link at ``now`` is lost."""
        return False

    def extra_latency_ns(self, now: float) -> float:
        """Additional one-way propagation delay at ``now``."""
        return 0.0

    def down(self, now: float) -> bool:
        """Whether the link is administratively down at ``now``
        (drops every frame without consuming randomness)."""
        return False

    def reset(self) -> None:
        """Restore the initial state before a (re)install."""


@dataclasses.dataclass(frozen=True)
class Link:
    """A fiber between an RNIC port and a switch port.

    ``loss_probability`` models corrupted/dropped frames; RoCE fabrics
    are engineered to be nearly lossless (PFC), so the default is 0 and
    the RC transport's retransmission handles the rest.
    """

    propagation_ns: float = 200.0
    loss_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.propagation_ns < 0:
            raise ValueError("propagation must be non-negative")
        if not 0.0 <= self.loss_probability < 1.0:
            raise ValueError("loss probability must be in [0, 1)")


@dataclasses.dataclass(frozen=True)
class Switch:
    """A single store-and-forward switch hop."""

    forward_ns: float = 300.0

    def __post_init__(self) -> None:
        if self.forward_ns < 0:
            raise ValueError("forward delay must be non-negative")


class Network:
    """Registry of endpoints hanging off one switch."""

    def __init__(self, switch: Switch | None = None) -> None:
        self.switch = switch if switch is not None else Switch()
        self._links: dict[Hashable, Link] = {}
        self._faults: dict[Hashable, LinkFault] = {}

    def attach(self, endpoint: Hashable, link: Link | None = None) -> None:
        """Attach an endpoint (an RNIC) with its access link."""
        if endpoint in self._links:
            raise ValueError(f"endpoint {endpoint!r} already attached")
        self._links[endpoint] = link if link is not None else Link()

    def attached(self, endpoint: Hashable) -> bool:
        return endpoint in self._links

    def transit_ns(self, src: Hashable, dst: Hashable) -> float:
        """One-way latency from ``src`` to ``dst`` (excluding
        serialization, which the sending NIC's wire station accounts)."""
        try:
            src_link = self._links[src]
            dst_link = self._links[dst]
        except KeyError as missing:
            raise KeyError(f"endpoint {missing.args[0]!r} not attached") from None
        if src is dst:
            return 0.0  # loopback never leaves the NIC
        return src_link.propagation_ns + self.switch.forward_ns + dst_link.propagation_ns

    def loss_probability(self, src: Hashable, dst: Hashable) -> float:
        """End-to-end frame-loss probability of the src->dst path."""
        try:
            src_link = self._links[src]
            dst_link = self._links[dst]
        except KeyError as missing:
            raise KeyError(f"endpoint {missing.args[0]!r} not attached") from None
        if src is dst:
            return 0.0
        survive = (1.0 - src_link.loss_probability) * (1.0 - dst_link.loss_probability)
        return 1.0 - survive

    # ------------------------------------------------------------------
    # Dynamic faults (see repro.faults)
    # ------------------------------------------------------------------
    def set_fault(self, endpoint: Hashable, fault: LinkFault | None) -> None:
        """Install (or clear, with ``None``) a dynamic fault process on
        one endpoint's access link.  The model is ``reset()`` on
        install so replays from a fresh simulator start identically."""
        if endpoint not in self._links:
            raise KeyError(f"endpoint {endpoint!r} not attached")
        if fault is None:
            self._faults.pop(endpoint, None)
            return
        fault.reset()
        self._faults[endpoint] = fault

    def fault_of(self, endpoint: Hashable) -> LinkFault | None:
        """The dynamic fault process installed on an endpoint's link."""
        return self._faults.get(endpoint)

    @property
    def has_faults(self) -> bool:
        """True while any endpoint carries a dynamic fault process.
        Fault processes make loss and path delay time-dependent, so the
        batched descriptor fast path routes around them entirely."""
        return bool(self._faults)

    def frame_lost(
        self, src: Hashable, dst: Hashable,
        now: float, rng: np.random.Generator,
    ) -> bool:
        """Whether one frame crossing ``src -> dst`` at ``now`` is lost.

        Combines the static Bernoulli ``loss_probability`` of the two
        access links with any installed dynamic fault processes.  The
        random draw order (static first, then ``src``'s model, then
        ``dst``'s) is fixed so replays are bit-identical; with no loss
        configured, no randomness is consumed at all, keeping
        pre-existing seeds stable.
        """
        if src is dst:
            return False
        static = self.loss_probability(src, dst)
        if static > 0.0 and rng.random() < static:
            return True
        for endpoint in (src, dst):
            fault = self._faults.get(endpoint)
            if fault is not None and (fault.down(now) or fault.drop(now, rng)):
                return True
        return False

    def path_extra_ns(self, src: Hashable, dst: Hashable, now: float) -> float:
        """Fault-injected extra one-way latency on the ``src -> dst``
        path at ``now`` (0 when no latency faults are installed)."""
        if src is dst or not self._faults:
            return 0.0
        extra = 0.0
        for endpoint in (src, dst):
            fault = self._faults.get(endpoint)
            if fault is not None:
                extra += fault.extra_latency_ns(now)
        return extra
