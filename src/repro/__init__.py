"""Ragnar, reproduced: RDMA NIC volatile-channel attacks on a simulated
RNIC substrate.

The package mirrors the paper's structure:

* :mod:`repro.rnic`, :mod:`repro.verbs`, :mod:`repro.host`,
  :mod:`repro.fabric` — the substrate: a microarchitectural RNIC model
  behind a verbs-like API on a simulated multi-host testbed;
* :mod:`repro.revengine` — the Section IV reverse-engineering
  microbenchmarks (priority sweep, ULI linearity, offset sweeps);
* :mod:`repro.covert` — the three covert channels of Section V;
* :mod:`repro.side` + :mod:`repro.apps` + :mod:`repro.ml` — the
  Section VI side-channel attacks on a distributed database and a
  Sherman-style disaggregated-memory B+ tree;
* :mod:`repro.defense` / :mod:`repro.baselines` — the Table I defenses
  and the Pythia / PCIe-contention baselines;
* :mod:`repro.experiments` — drivers regenerating every table/figure.

Quick taste::

    from repro import Cluster, cx5

    cluster = Cluster(seed=0)
    server = cluster.add_host("server", spec=cx5())
    client = cluster.add_host("client", spec=cx5())
    conn = cluster.connect(client, server)
    mr = server.reg_mr(2 * 1024 * 1024)
    wc = conn.read_blocking(mr, offset=0, length=64)
    print(f"RDMA read latency: {wc.latency:.0f} ns")
"""

from repro.host import Cluster, Host, HostMemory, RDMAConnection
from repro.rnic import RNIC, RNICSpec, cx4, cx5, cx6, get_spec
from repro.telemetry import BandwidthMonitor, CounterSampler, ProbeTarget, ULIProbe
from repro.verbs import (
    AccessFlags,
    Context,
    Opcode,
    QPCapabilities,
    QPType,
    SendWR,
    WCStatus,
)

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "Host",
    "HostMemory",
    "RDMAConnection",
    "RNIC",
    "RNICSpec",
    "cx4",
    "cx5",
    "cx6",
    "get_spec",
    "BandwidthMonitor",
    "CounterSampler",
    "ProbeTarget",
    "ULIProbe",
    "AccessFlags",
    "Context",
    "Opcode",
    "QPCapabilities",
    "QPType",
    "SendWR",
    "WCStatus",
    "__version__",
]
