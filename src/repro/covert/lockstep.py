"""Event-driven pipelined clients and window decoding.

The ULI channels need a sender and a receiver issuing reads
*concurrently* against one server.  :class:`PipelinedReader` is an
event-driven client: it keeps a constant number of reads outstanding,
re-posting on every completion, with the target of each read supplied
by a callable (the sender's callable consults the current covert bit).

``decode_windows`` performs the receiver-side demodulation: ULI samples
are bucketed into symbol windows by completion timestamp, averaged, and
thresholded with 1-D 2-means.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional, Sequence

import numpy as np

from repro.analysis.clustering import two_means
from repro.host.cluster import RDMAConnection
from repro.telemetry.uli import ProbeTarget
from repro.verbs.wr import WorkCompletion


class PipelinedReader:
    """Keeps ``depth`` RDMA Reads outstanding on one connection.

    ULI values are recorded in ``samples`` as ``(timestamp, uli)``
    pairs, where the timestamp is the *midpoint* of the request's
    post-to-completion interval: a request's latency accumulates over
    its whole queue residency (roughly ``depth`` service cycles), so the
    midpoint is the least-biased single timestamp for demodulating a
    signal that changes over time.  The reader owns the connection's CQ
    callback.
    """

    def __init__(
        self,
        conn: RDMAConnection,
        next_target: Callable[[], ProbeTarget],
        depth: Optional[int] = None,
        halt_on_error: bool = False,
        batch_prime: bool = False,
    ) -> None:
        self.conn = conn
        self.next_target = next_target
        max_wr = conn.qp.cap.max_send_wr
        self.depth = depth if depth is not None else max_wr
        if not 1 <= self.depth <= max_wr:
            raise ValueError(f"depth {self.depth} outside 1..{max_wr}")
        #: Prime/resume the pipeline with one doorbell-batched post
        #: instead of per-WQE posts.  One doorbell for the cohort is
        #: how a real driver rings a linked-list ``ibv_post_send``, and
        #: it routes the prime through the batched descriptor fast
        #: path; steady state still re-posts one read per completion.
        self.batch_prime = batch_prime
        self.samples: list[tuple[float, float]] = []
        self.completed = 0
        #: With ``halt_on_error`` the reader absorbs failed completions
        #: (retry-budget exhaustion under injected faults) by going
        #: silent instead of raising — the channel degrades, the
        #: experiment survives.
        self.halt_on_error = halt_on_error
        self.errors = 0
        self.halted = False
        self._running = False
        if conn.cq.on_completion is not None:
            raise RuntimeError("connection CQ already has a completion callback")
        conn.cq.on_completion = self._on_completion

    def start(self) -> None:
        """Prime the pipeline; must be called before the sim runs."""
        if self._running:
            raise RuntimeError("reader already started")
        self._running = True
        self._prime()

    def stop(self) -> None:
        """Stop re-posting; in-flight reads drain naturally."""
        self._running = False

    def resume(self) -> None:
        """Re-prime the pipeline after a :meth:`stop` (on/off traffic)."""
        self._running = True
        self._prime()

    def _prime(self) -> None:
        missing = self.depth - self.conn.qp.outstanding_send
        if self.batch_prime and missing >= 2:
            targets = [self.next_target() for _ in range(missing)]
            mr, size = targets[0].mr, targets[0].size
            if all(t.mr is mr and t.size == size for t in targets):
                self.conn.post_read_batch(
                    mr, [t.offset for t in targets], length=size)
                return
            # heterogeneous targets (mixed MRs/sizes) post per WQE; the
            # consumed targets are already drawn, so post exactly those
            for target in targets:
                self.conn.post_read(target.mr, target.offset, target.size)
            return
        while self.conn.qp.outstanding_send < self.depth:
            self._post_one()

    def _post_one(self) -> None:
        target = self.next_target()
        self.conn.post_read(target.mr, target.offset, target.size)

    def _on_completion(self, wc: WorkCompletion) -> None:
        self.conn.cq.poll(1)  # consume the entry we are handling
        if not wc.ok:
            if not self.halt_on_error:
                raise RuntimeError(f"pipelined read failed: {wc.status}")
            self.errors += 1
            self.halted = True
            self._running = False
            return
        self.completed += 1
        midpoint = 0.5 * (wc.post_time + wc.complete_time)
        self.samples.append((midpoint, wc.unit_latency_increase))
        if self._running:
            self._post_one()

    def samples_after(self, t: float) -> list[tuple[float, float]]:
        return [(ts, v) for ts, v in self.samples if ts >= t]


def winsorize(
    samples: Sequence[tuple[float, float]],
    multiple: float = 5.0,
) -> list[tuple[float, float]]:
    """Clip extreme sample values to ``median + multiple * IQR``.

    RC retransmissions turn a lost frame into a retry-timeout latency
    spike tens of times larger than the covert signal; one such sample
    would dominate its window mean AND bleed into the rolling-mean
    baseline.  Clipping (rather than dropping) keeps the sample count
    per window stable.
    """
    if multiple <= 0:
        raise ValueError(f"multiple must be positive, got {multiple}")
    if not samples:
        return []
    values = np.asarray([v for _, v in samples])
    q25, median, q75 = np.percentile(values, (25, 50, 75))
    iqr = max(q75 - q25, 1e-9)
    ceiling = median + multiple * iqr
    return [(t, min(v, ceiling)) for t, v in samples]


def detrend(
    samples: Sequence[tuple[float, float]],
    half_window_ns: float,
) -> list[tuple[float, float]]:
    """Subtract a centered rolling mean from each sample.

    Receiver-side baseline tracking: ambient tenants starting/stopping
    shift the ULI baseline by far more than one covert bit, but on
    slower timescales; removing a rolling mean wider than a few symbols
    keeps the symbol-rate signal while cancelling the baseline steps.
    """
    if half_window_ns <= 0:
        raise ValueError(f"half window must be positive, got {half_window_ns}")
    if not samples:
        return []
    times = np.asarray([t for t, _ in samples])
    values = np.asarray([v for _, v in samples])
    order = np.argsort(times)
    times, values = times[order], values[order]
    prefix = np.concatenate([[0.0], np.cumsum(values)])
    lo = np.searchsorted(times, times - half_window_ns, side="left")
    hi = np.searchsorted(times, times + half_window_ns, side="right")
    local_mean = (prefix[hi] - prefix[lo]) / np.maximum(hi - lo, 1)
    return list(zip(times.tolist(), (values - local_mean).tolist()))


def window_means(
    samples: Sequence[tuple[float, float]],
    start: float,
    period: float,
    count: int,
) -> np.ndarray:
    """Mean sample value per symbol window ``[start + k*period, ...)``.

    Windows with no samples inherit the previous window's mean (a
    receiver would treat a silent window as an erasure; inheriting is
    the simplest concealment and counts as an error if wrong).
    """
    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    sums = np.zeros(count)
    counts = np.zeros(count)
    for ts, value in samples:
        idx = int((ts - start) // period)
        if 0 <= idx < count:
            sums[idx] += value
            counts[idx] += 1
    means = np.empty(count)
    previous = 0.0
    for i in range(count):
        if counts[i] > 0:
            previous = sums[i] / counts[i]
        means[i] = previous
    return means


def decode_windows(
    samples: Sequence[tuple[float, float]],
    start: float,
    period: float,
    count: int,
    high_is_one: bool = True,
    relock: Optional["RelockConfig"] = None,
) -> list[int]:
    """Demodulate: per-window means, 2-means threshold, bit decisions.

    With a :class:`RelockConfig` the frame is decoded in segments whose
    symbol phase is re-estimated as it goes (see :func:`relock_decode`),
    which tolerates clock drift between sender and receiver; without
    one, a single phase locked at ``start`` must hold for the whole
    frame.
    """
    if relock is not None:
        bits, _ = relock_decode(
            samples, start, period, count,
            high_is_one=high_is_one, config=relock,
        )
        return bits
    means = window_means(samples, start, period, count)
    _, _, threshold = two_means(means)
    if high_is_one:
        return [1 if m > threshold else 0 for m in means]
    return [0 if m > threshold else 1 for m in means]


@dataclasses.dataclass(frozen=True)
class RelockConfig:
    """Parameters of segment-wise symbol-phase re-locking.

    Lockstep channels derive the symbol period from a warm-up estimate
    of the receiver's completion rate; injected faults (pause storms,
    loss bursts) change that rate mid-frame, so the true symbol
    boundaries *drift* away from the phase locked on the preamble.
    Re-estimating the phase every ``segment_bits`` symbols, within a
    bounded window around the previous estimate, tracks the drift.
    """

    #: Symbols decoded per phase estimate; shorter tracks faster drift
    #: but each estimate sees fewer windows and is noisier.
    segment_bits: int = 32
    #: Half-width of the per-segment search window, in symbols.  Bounds
    #: how fast a drift can be tracked (and how far a noisy estimate
    #: can run away).
    max_step_symbols: float = 0.5
    #: Candidate shifts evaluated per segment.
    steps: int = 11

    def __post_init__(self) -> None:
        if self.segment_bits < 4:
            raise ValueError("segments must cover at least 4 symbols")
        if self.max_step_symbols <= 0.0:
            raise ValueError("max step must be positive")
        if self.steps < 3:
            raise ValueError("need at least 3 candidate shifts")


def relock_decode(
    samples: Sequence[tuple[float, float]],
    start: float,
    period: float,
    count: int,
    high_is_one: bool = True,
    config: RelockConfig = RelockConfig(),
    initial_shift: float = 0.0,
) -> tuple[list[int], list[float]]:
    """Decode ``count`` symbols with segment-wise phase re-locking.

    Each segment's phase is chosen blindly: among candidate shifts
    centred on the previous segment's estimate, keep the one whose
    window means have the largest spread (a mis-phased bucketing blends
    adjacent symbols and regresses every mean toward the middle, so
    spread is maximal at the true boundaries).  Thresholding is global
    — one 2-means split over all segments — so a quiet segment cannot
    invent its own threshold.

    Returns ``(bits, shifts)`` where ``shifts`` holds the per-segment
    phase estimates (ns, relative to ``start``); feed them to
    :func:`estimate_drift` to quantify the clock skew.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    means = np.empty(count)
    shifts: list[float] = []
    shift = initial_shift
    half = config.max_step_symbols * period
    for seg_start in range(0, count, config.segment_bits):
        seg_count = min(config.segment_bits, count - seg_start)
        base = start + seg_start * period
        best_shift, best_spread = shift, -np.inf
        for candidate in np.linspace(shift - half, shift + half, config.steps):
            seg_means = window_means(samples, base + candidate, period, seg_count)
            spread = float(np.std(seg_means))
            if spread > best_spread:
                best_spread, best_shift = spread, float(candidate)
        shift = best_shift
        shifts.append(shift)
        means[seg_start:seg_start + seg_count] = window_means(
            samples, base + shift, period, seg_count
        )
    _, _, threshold = two_means(means)
    if high_is_one:
        bits = [1 if m > threshold else 0 for m in means]
    else:
        bits = [0 if m > threshold else 1 for m in means]
    return bits, shifts


def estimate_drift(
    shifts: Sequence[float], segment_bits: int, period: float
) -> float:
    """Clock-drift rate implied by per-segment phase estimates.

    Least-squares slope of phase shift against elapsed time, i.e. the
    dimensionless skew between the sender's and receiver's effective
    symbol clocks (1e-3 = the phase slips one full symbol every 1000
    symbols).  Returns 0 when fewer than two segments exist.
    """
    if segment_bits <= 0 or period <= 0.0:
        raise ValueError("segment_bits and period must be positive")
    if len(shifts) < 2:
        return 0.0
    times = np.arange(len(shifts), dtype=np.float64) * segment_bits * period
    slope = np.polyfit(times, np.asarray(shifts, dtype=np.float64), 1)[0]
    return float(slope)
