"""A stop-and-wait ARQ link layer over the covert channels.

FEC (:mod:`repro.covert.fec`) repairs isolated symbol errors, but an
injected fault burst — a pause storm stalling the server port, a
Gilbert–Elliott loss burst — can corrupt more symbols per codeword
than Hamming(7,4) can fix.  The ARQ layer closes that gap the way a
real covert deployment would: the payload is cut into short frames,
each carrying a sequence number and a CRC-8 over the frame body, the
whole frame is FEC-coded and interleaved, and a frame whose CRC fails
on decode is retransmitted (a fresh lockstep session) up to a retry
budget.  Goodput then degrades gracefully with fault severity —
retransmissions cost time, not correctness — until the budget is
exhausted and residual errors appear.

The side channel itself stays one-directional: the paper's receiver
cannot ACK.  This layer models the common covert-channel workaround of
a fixed retransmission schedule agreed out of band, so the evaluation
measures the *cost* of reliability (goodput) rather than a protocol
negotiation.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.covert.fec import (
    hamming_decode,
    hamming_encode,
    deinterleave,
    interleave,
)
from repro.covert.framing import bit_error_rate, crc8, crc8_check
from repro.sim.units import SECONDS


@dataclasses.dataclass(frozen=True)
class ArqConfig:
    """Framing and retry parameters of the ARQ layer."""

    #: Payload bits per frame; short frames retransmit cheaply, long
    #: frames amortize the header better.
    payload_bits: int = 32
    #: Retransmissions allowed per frame beyond the first attempt.
    max_retries: int = 2
    #: Sequence-number width; frames are numbered modulo 2**seq_bits.
    seq_bits: int = 8
    #: Interleaver depth handed to the FEC layer.
    interleave_depth: int = 8

    def __post_init__(self) -> None:
        if self.payload_bits <= 0:
            raise ValueError("payload must hold at least one bit")
        if self.max_retries < 0:
            raise ValueError("retry budget must be non-negative")
        if self.seq_bits <= 0 or self.seq_bits > 32:
            raise ValueError("sequence width must be in 1..32")
        if self.interleave_depth <= 0:
            raise ValueError("interleave depth must be positive")


@dataclasses.dataclass(frozen=True)
class ArqResult:
    """Outcome of one ARQ transfer."""

    sent: tuple[int, ...]
    delivered: tuple[int, ...]
    frames: int
    attempts: int
    retransmissions: int
    #: Frames still failing their CRC after the retry budget; their
    #: last attempt's payload is delivered anyway (best effort).
    failed_frames: int
    duration_ns: float

    @property
    def goodput_bps(self) -> float:
        """Delivered payload bits per second of channel time — the
        headline metric: headers, CRCs, FEC overhead and every
        retransmission count against it."""
        return len(self.delivered) / (self.duration_ns / SECONDS)

    @property
    def residual_error_rate(self) -> float:
        """Post-ARQ bit error rate of the delivered payload."""
        return bit_error_rate(self.sent, self.delivered)


def _int_to_bits(value: int, width: int) -> list[int]:
    return [(value >> shift) & 1 for shift in range(width - 1, -1, -1)]


def _bits_to_int(bits: Sequence[int]) -> int:
    value = 0
    for bit in bits:
        value = (value << 1) | (1 if bit else 0)
    return value


def arq_transmit(
    channel,
    bits: Sequence[int],
    seed: int = 0,
    config: ArqConfig = ArqConfig(),
) -> ArqResult:
    """Send ``bits`` through ``channel`` under the ARQ protocol.

    ``channel`` is anything with ``transmit(bits, seed) ->
    ChannelResult`` (the ULI and priority channels both qualify).  Each
    attempt derives its own deterministic seed from ``seed``, the frame
    index and the attempt number, so a retransmission observes fresh —
    but reproducible — channel noise.
    """
    payload = [1 if b else 0 for b in bits]
    if not payload:
        raise ValueError("nothing to transmit")
    config = config if config is not None else ArqConfig()
    delivered: list[int] = []
    frames = attempts = retransmissions = failed_frames = 0
    duration_ns = 0.0
    for frame_index in range(0, len(payload), config.payload_bits):
        chunk = payload[frame_index:frame_index + config.payload_bits]
        seq = frames % (1 << config.seq_bits)
        body = _int_to_bits(seq, config.seq_bits) + chunk
        framed = body + crc8(body)
        coded = hamming_encode(framed)
        wire = interleave(coded, config.interleave_depth)
        best_body: list[int] = []
        accepted = False
        for attempt in range(config.max_retries + 1):
            attempts += 1
            if attempt > 0:
                retransmissions += 1
            result = channel.transmit(
                wire, seed=seed + 101 * frames + attempt
            )
            duration_ns += result.duration_ns
            received = deinterleave(list(result.decoded), config.interleave_depth)
            decoded = hamming_decode(received[:len(coded)])[:len(framed)]
            best_body = decoded[config.seq_bits:len(body)]
            if (crc8_check(decoded)
                    and _bits_to_int(decoded[:config.seq_bits]) == seq):
                accepted = True
                break
        if not accepted:
            failed_frames += 1
        delivered.extend(best_body)
        frames += 1
    return ArqResult(
        sent=tuple(payload),
        delivered=tuple(delivered),
        frames=frames,
        attempts=attempts,
        retransmissions=retransmissions,
        failed_frames=failed_frames,
        duration_ns=duration_ns,
    )
