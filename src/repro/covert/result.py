"""Channel evaluation results in Table V's format."""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.covert.framing import bit_error_rate, bsc_capacity
from repro.sim.units import SECONDS


@dataclasses.dataclass(frozen=True)
class ChannelResult:
    """Outcome of one covert transmission."""

    channel: str
    rnic: str
    sent: tuple[int, ...]
    decoded: tuple[int, ...]
    duration_ns: float

    @classmethod
    def build(
        cls,
        channel: str,
        rnic: str,
        sent: Sequence[int],
        decoded: Sequence[int],
        duration_ns: float,
    ) -> "ChannelResult":
        if duration_ns <= 0:
            raise ValueError(f"duration must be positive, got {duration_ns}")
        return cls(
            channel=channel,
            rnic=rnic,
            sent=tuple(int(b) for b in sent),
            decoded=tuple(int(b) for b in decoded),
            duration_ns=float(duration_ns),
        )

    @property
    def bits(self) -> int:
        return len(self.sent)

    @property
    def bandwidth_bps(self) -> float:
        """Raw bandwidth: transmitted bits per second."""
        return self.bits / (self.duration_ns / SECONDS)

    @property
    def error_rate(self) -> float:
        return bit_error_rate(self.sent, self.decoded)

    @property
    def effective_bandwidth_bps(self) -> float:
        """Raw bandwidth scaled by BSC capacity (Table V)."""
        return self.bandwidth_bps * bsc_capacity(self.error_rate)

    def row(self) -> dict:
        """A Table V row."""
        return {
            "channel": self.channel,
            "rnic": self.rnic,
            "bandwidth_bps": self.bandwidth_bps,
            "error_rate": self.error_rate,
            "effective_bandwidth_bps": self.effective_bandwidth_bps,
            "bits": self.bits,
        }
