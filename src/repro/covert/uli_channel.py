"""Shared machinery of the ULI-based covert channels (Sections V-C/V-D).

Both channels follow the same lockstep protocol:

1. sender and receiver each keep a pipelined stream of RDMA Reads to
   the same server (they never communicate directly);
2. a warm-up phase measures the receiver's completion rate, fixing the
   symbol period at ``samples_per_bit`` receiver completions;
3. the sender switches its *target set* at every symbol boundary —
   which MR it reads (inter-MR) or which address offset (intra-MR);
4. the sender prepends a known alternating preamble; the receiver
   scans demodulation phase offsets for the one that best separates the
   preamble (the end-to-end lag is roughly the sender's queue drain
   plus half the receiver's queue residency);
5. the receiver buckets its ULI samples into symbol windows at the
   recovered phase and thresholds with 2-means.

An optional *ambient* client emulates unrelated tenants with bursty
on/off read traffic — the realistic noise floor that produces the
paper's few-percent error rates.

Subclasses only define the two target sets and the receiver's
background targets.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.covert.lockstep import (
    PipelinedReader,
    RelockConfig,
    decode_windows,
    detrend,
    estimate_drift,
    relock_decode,
    window_means,
    winsorize,
)
from repro.covert.result import ChannelResult
from repro.fabric.network import Link
from repro.host.cluster import Cluster
from repro.obs import runtime as _obs
from repro.host.node import Host
from repro.rnic.spec import RNICSpec, cx5
from repro.sim.units import MEBIBYTE, MICROSECONDS
from repro.telemetry.uli import ProbeTarget

if TYPE_CHECKING:  # pragma: no cover - import for annotations only
    from repro.faults.plan import FaultPlan


@dataclasses.dataclass(frozen=True)
class ULIChannelConfig:
    """Lockstep parameters shared by the inter-/intra-MR channels."""

    msg_size: int = 512
    max_send_queue: int = 6      # the paper's "max send queue size"
    samples_per_bit: int = 10
    warmup_completions: int = 200
    guard_ns: float = 2 * MICROSECONDS
    preamble_bits: int = 10      # alternating 1010... sync header
    max_shift_symbols: float = 1.5
    #: Sender queue depth.  Deeper = stronger coupling (more of the
    #: shared pipeline's slots carry the sender's encoding) but more
    #: inter-symbol interference, since already-posted WQEs cannot be
    #: retargeted when the bit flips; ``samples_per_bit`` must grow
    #: accordingly.  The per-device tuned configs balance the two.
    sender_depth: int = 8
    #: Depth of the optional background (ambient) client that emulates
    #: unrelated tenants sharing the server; 0 disables it.  Ambient
    #: traffic is the main source of decoding errors, as on real
    #: hardware.
    ambient_depth: int = 0
    ambient_on_ns: float = 10 * MICROSECONDS    # mean burst duration
    ambient_off_ns: float = 40 * MICROSECONDS   # mean idle gap
    #: Receiver baseline tracking: half-width (in symbols) of the
    #: rolling mean subtracted before demodulation.
    detrend_symbols: float = 6.0
    #: Access link used by the covert endpoints (None = lossless
    #: default).  Lossy links exercise the channels under RC
    #: retransmission spikes (``bench_ablation_lossy_fabric``).
    endpoint_link: Optional["Link"] = None
    #: Fault scenario armed on the session's cluster before traffic
    #: starts (see :mod:`repro.faults`); None runs clean.  With a plan
    #: installed the endpoint readers absorb failed completions instead
    #: of raising, so the channel degrades rather than crashing.
    fault_plan: Optional["FaultPlan"] = None
    #: Re-estimate the symbol phase every this many decoded bits (0 =
    #: lock once on the preamble).  Fault scenarios perturb the
    #: receiver's completion rate mid-frame; re-locking tracks the
    #: resulting symbol-clock drift.
    relock_interval_bits: int = 0
    #: Prime every pipelined reader with one doorbell-batched cohort
    #: (``--batch`` on the experiment CLI) instead of per-WQE posts.
    #: Exercises the batched descriptor ingress; simulated timings
    #: shift by the saved doorbells, so results are comparable only
    #: within one setting of this flag.
    batch_prime: bool = False

    def __post_init__(self) -> None:
        if self.samples_per_bit < 2:
            raise ValueError("need at least two samples per bit")
        if self.max_send_queue < 1:
            raise ValueError("send queue must hold at least one WQE")
        if self.preamble_bits < 4:
            raise ValueError("preamble too short to recover symbol phase")
        if self.ambient_depth < 0:
            raise ValueError("ambient depth must be non-negative")
        if self.relock_interval_bits < 0:
            raise ValueError("relock interval must be non-negative")
        if 0 < self.relock_interval_bits < 4:
            raise ValueError("relock segments must cover at least 4 bits")

    @property
    def preamble(self) -> list[int]:
        return [(i + 1) % 2 for i in range(self.preamble_bits)]  # 1010...


class AmbientClient:
    """Bursty on/off background reader (an unrelated tenant)."""

    def __init__(self, cluster: Cluster, server: Host, config: ULIChannelConfig) -> None:
        host = cluster.add_host("ambient", spec=server.rnic.spec)
        self.conn = cluster.connect(host, server, max_send_wr=config.ambient_depth)
        self.mr = server.reg_mr(2 * MEBIBYTE)
        self.cluster = cluster
        self.config = config
        self.rng = cluster.sim.random.stream("ambient")
        self.active = False
        self._reader = PipelinedReader(self.conn, self._next_target,
                                       depth=config.ambient_depth,
                                       batch_prime=config.batch_prime)
        self._obs = _obs.tracer_for(cluster.sim)
        # handle of the pending toggle, kept so stop() can cancel it —
        # dropping it would leave a zombie on/off chain after restart
        self._handle = None

    def _next_target(self) -> ProbeTarget:
        # benign tenants read aligned records
        offset = 64 * int(self.rng.integers(0, (self.mr.length - 4096) // 64))
        return ProbeTarget(self.mr, offset, int(self.rng.choice([64, 256, 1024])))

    def start(self) -> None:
        if self._handle is not None:
            raise RuntimeError("ambient client already started")
        self._toggle()

    def stop(self) -> None:
        """Cancel the pending toggle and quiesce the reader; a later
        :meth:`start` resumes cleanly with a single toggle chain."""
        if self._handle is not None:
            self.cluster.sim.cancel(self._handle)
            self._handle = None
        if self.active:
            self._reader.stop()
            self.active = False

    def _toggle(self) -> None:
        if self.active:
            self._reader.stop()
            self.active = False
            mean = self.config.ambient_off_ns
        else:
            self._reader.resume()
            self.active = True
            mean = self.config.ambient_on_ns
        if self._obs is not None:
            self._obs.instant("ambient.on" if self.active else "ambient.off",
                              category="covert", component="covert.ambient")
        delay = float(self.rng.exponential(mean))
        self._handle = self.cluster.sim.schedule(
            max(delay, 1000.0), self._toggle)


class _Session:
    """One live channel session: cluster + both endpoint readers."""

    def __init__(self, channel: "ULIChannelBase", seed: int) -> None:
        cfg = channel.config
        self.cluster = Cluster(seed=seed)
        server = self.cluster.add_host("server", spec=channel.spec)
        tx_host = self.cluster.add_host("covert-tx", spec=channel.spec,
                                        link=cfg.endpoint_link)
        rx_host = self.cluster.add_host("covert-rx", spec=channel.spec,
                                        link=cfg.endpoint_link)
        tx_conn = self.cluster.connect(tx_host, server, max_send_wr=cfg.max_send_queue)
        rx_conn = self.cluster.connect(rx_host, server, max_send_wr=cfg.max_send_queue)
        channel.setup_server(server)
        if cfg.fault_plan is not None:
            cfg.fault_plan.install(
                self.cluster, server=server, endpoints=[tx_host, rx_host]
            )

        rx_targets = channel.receiver_targets()
        rx_cursor = [0]

        def next_rx_target() -> ProbeTarget:
            target = rx_targets[rx_cursor[0] % len(rx_targets)]
            rx_cursor[0] += 1
            return target

        self.current_bit = [0]
        tx_cursor = [0]

        def next_tx_target() -> ProbeTarget:
            targets = channel.sender_targets(self.current_bit[0])
            target = targets[tx_cursor[0] % len(targets)]
            tx_cursor[0] += 1
            return target

        # Under an armed fault plan the endpoints must survive failed
        # completions (retry-budget exhaustion shows up as an errored
        # CQE); a clean session keeps the loud fail-fast behaviour.
        survive = cfg.fault_plan is not None
        self.receiver = PipelinedReader(rx_conn, next_rx_target,
                                        halt_on_error=survive,
                                        batch_prime=cfg.batch_prime)
        self.sender = PipelinedReader(
            tx_conn, next_tx_target,
            depth=min(cfg.sender_depth, cfg.max_send_queue),
            halt_on_error=survive,
            batch_prime=cfg.batch_prime,
        )
        self.receiver.start()
        self.sender.start()
        self.ambient = None
        if cfg.ambient_depth > 0:
            self.ambient = AmbientClient(self.cluster, server, cfg)
            self.ambient.start()

    def warm_up(self, completions: int) -> float:
        """Run until the receiver has ``completions`` samples; returns
        the estimated inter-completion time."""
        while self.receiver.completed < completions:
            if self.receiver.halted:
                raise RuntimeError("receiver failed during warm-up")
            if not self.cluster.sim.step():
                raise RuntimeError("simulation drained during warm-up")
        warm = self.receiver.samples[-(completions // 2):]
        return (warm[-1][0] - warm[0][0]) / (len(warm) - 1)

    def run_frame(self, frame: list[int], period: float, tail_ns: float) -> float:
        """Schedule the sender's bit flips and run the frame; returns
        the frame start time."""
        sim = self.cluster.sim
        start = sim.now + 2 * MICROSECONDS
        obs = _obs.tracer_for(sim)

        def set_bit(bit: int) -> None:
            self.current_bit[0] = bit
            if obs is not None:
                obs.instant("covert.bit", category="covert",
                            component="covert.tx", bit=bit)

        for index, bit in enumerate(frame):
            sim.schedule_at(start + index * period, set_bit, bit)
        end = start + len(frame) * period
        if obs is not None:
            obs.span("covert.frame", start, len(frame) * period,
                     category="covert", component="covert.tx",
                     bits=len(frame), period_ns=period)
        sim.run(until=end + tail_ns)
        self.sender.stop()
        self.receiver.stop()
        return start


class ULIChannelBase:
    """Template for lockstep ULI covert channels."""

    name = "uli-base"
    #: bit 1 raises the receiver's ULI when True
    high_is_one = True

    def __init__(
        self,
        spec: Optional[RNICSpec] = None,
        config: Optional[ULIChannelConfig] = None,
    ) -> None:
        self.spec = spec if spec is not None else cx5()
        self.config = config if config is not None else ULIChannelConfig()
        #: Phase estimates from the most recent transmit (drift
        #: telemetry; one entry per re-lock segment).
        self.last_shifts: list[float] = []
        self.last_drift: float = 0.0

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    def setup_server(self, server: Host) -> None:
        """Register the MRs the channel uses; store them on self."""
        raise NotImplementedError

    def receiver_targets(self) -> list[ProbeTarget]:
        raise NotImplementedError

    def sender_targets(self, bit: int) -> list[ProbeTarget]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # The lockstep protocol
    # ------------------------------------------------------------------
    def transmit(self, bits: Sequence[int], seed: int = 0) -> ChannelResult:
        bits = [1 if b else 0 for b in bits]
        if not bits:
            raise ValueError("nothing to transmit")
        cfg = self.config
        session = _Session(self, seed)
        inter_completion = session.warm_up(cfg.warmup_completions)
        period = cfg.samples_per_bit * inter_completion
        frame = cfg.preamble + bits
        start = session.run_frame(
            frame, period, tail_ns=cfg.max_shift_symbols * period
        )
        decoded_frame = self._demodulate(
            session.receiver.samples_after(start), start, period, frame
        )
        decoded = decoded_frame[len(cfg.preamble):]
        return ChannelResult.build(
            channel=self.name,
            rnic=self.spec.name,
            sent=bits,
            decoded=decoded,
            duration_ns=len(frame) * period,
        )

    def receiver_trace(
        self, bits: Sequence[int], seed: int = 0
    ) -> tuple[list[tuple[float, float]], float, float]:
        """Raw receiver samples plus (start, period) — the demodulator's
        input, for the folded ULI plots of Figures 10-11."""
        bits = [1 if b else 0 for b in bits]
        cfg = self.config
        session = _Session(self, seed)
        inter_completion = session.warm_up(cfg.warmup_completions)
        period = cfg.samples_per_bit * inter_completion
        start = session.run_frame(list(bits), period, tail_ns=period)
        return session.receiver.samples_after(start), start, period

    def _demodulate(
        self,
        samples: list[tuple[float, float]],
        start: float,
        period: float,
        frame: list[int],
    ) -> list[int]:
        """Outlier clipping, baseline removal, phase recovery on the
        preamble, then window decoding — segment-wise re-locked when
        ``relock_interval_bits`` is set."""
        cfg = self.config
        samples = winsorize(samples)
        samples = detrend(samples, half_window_ns=cfg.detrend_symbols * period)
        preamble = np.asarray(cfg.preamble, dtype=np.float64)
        sign = 1.0 if self.high_is_one else -1.0
        best_shift, best_contrast = 0.0, -np.inf
        for shift in np.linspace(0.0, cfg.max_shift_symbols * period, 31):
            means = window_means(samples, start + shift, period, len(cfg.preamble))
            ones = means[preamble == 1]
            zeros = means[preamble == 0]
            contrast = sign * (ones.mean() - zeros.mean())
            if contrast > best_contrast:
                best_contrast, best_shift = contrast, float(shift)
        if cfg.relock_interval_bits > 0:
            relock = RelockConfig(segment_bits=cfg.relock_interval_bits)
            bits, shifts = relock_decode(
                samples,
                start + best_shift,
                period,
                len(frame),
                high_is_one=self.high_is_one,
                config=relock,
            )
            self.last_shifts = [best_shift + s for s in shifts]
            self.last_drift = estimate_drift(
                shifts, cfg.relock_interval_bits, period
            )
            return bits
        self.last_shifts = [best_shift]
        self.last_drift = 0.0
        return decode_windows(
            samples,
            start + best_shift,
            period,
            len(frame),
            high_is_one=self.high_is_one,
        )
