"""Forward error correction for the covert channels.

The paper reports raw error rates of 4–8 % and scales bandwidth by BSC
capacity to get "effective bandwidth".  A real covert deployment would
close that gap with coding; Hamming(7,4) corrects any single bit error
per 7-bit codeword, which at the observed error rates removes most
residual errors for a fixed 4/7 rate cost.  The ablation benchmark
(``bench_ablation_fec``) measures where coding beats raw transmission.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

#: Generator matrix (4 data bits -> 7 coded bits), systematic form.
_G = np.array([
    [1, 0, 0, 0, 1, 1, 0],
    [0, 1, 0, 0, 1, 0, 1],
    [0, 0, 1, 0, 0, 1, 1],
    [0, 0, 0, 1, 1, 1, 1],
], dtype=np.int64)

#: Parity-check matrix (3 x 7).
_H = np.array([
    [1, 1, 0, 1, 1, 0, 0],
    [1, 0, 1, 1, 0, 1, 0],
    [0, 1, 1, 1, 0, 0, 1],
], dtype=np.int64)

#: Map of syndrome (as integer) -> error bit position.
_SYNDROME_TO_POSITION = {}
for _pos in range(7):
    _e = np.zeros(7, dtype=np.int64)
    _e[_pos] = 1
    _syndrome = tuple((_H @ _e) % 2)
    _SYNDROME_TO_POSITION[_syndrome] = _pos


def hamming_encode(bits: Sequence[int]) -> list[int]:
    """Encode a bitstream with Hamming(7,4).

    The input is zero-padded to a multiple of 4; callers that need the
    exact length back should track it (``hamming_decode`` returns the
    padded stream).
    """
    data = [1 if b else 0 for b in bits]
    while len(data) % 4:
        data.append(0)
    out: list[int] = []
    for i in range(0, len(data), 4):
        block = np.asarray(data[i : i + 4], dtype=np.int64)
        out.extend(int(b) for b in (block @ _G) % 2)
    return out


def hamming_decode(bits: Sequence[int]) -> list[int]:
    """Decode, correcting up to one flipped bit per 7-bit codeword.

    Trailing partial codewords are dropped (they cannot be decoded).
    """
    coded = [1 if b else 0 for b in bits]
    out: list[int] = []
    for i in range(0, len(coded) - 6, 7):
        word = np.asarray(coded[i : i + 7], dtype=np.int64)
        syndrome = tuple((_H @ word) % 2)
        if any(syndrome):
            position = _SYNDROME_TO_POSITION.get(syndrome)
            if position is not None:
                word[position] ^= 1
        out.extend(int(b) for b in word[:4])
    return out


CODE_RATE = 4.0 / 7.0


def interleave(bits: Sequence[int], depth: int) -> list[int]:
    """Block interleaver: write row-wise into ``depth`` rows, read
    column-wise.  A burst of up to ``depth`` consecutive channel errors
    then lands in ``depth`` different codewords, each within Hamming's
    single-error budget.  Pads with zeros to a full block."""
    if depth <= 0:
        raise ValueError(f"depth must be positive, got {depth}")
    data = [1 if b else 0 for b in bits]
    while len(data) % depth:
        data.append(0)
    columns = len(data) // depth
    return [data[row * columns + col]
            for col in range(columns) for row in range(depth)]


def deinterleave(bits: Sequence[int], depth: int) -> list[int]:
    """Inverse of :func:`interleave` (padding retained)."""
    if depth <= 0:
        raise ValueError(f"depth must be positive, got {depth}")
    data = [1 if b else 0 for b in bits]
    if len(data) % depth:
        raise ValueError(
            f"stream length {len(data)} is not a multiple of depth {depth}"
        )
    columns = len(data) // depth
    out = [0] * len(data)
    index = 0
    for col in range(columns):
        for row in range(depth):
            out[row * columns + col] = data[index]
            index += 1
    return out


def coded_transmit(channel, bits: Sequence[int], seed: int = 0,
                   interleave_depth: int = 8):
    """Send ``bits`` through ``channel`` under interleaved Hamming(7,4).

    ULI-channel errors are bursty (one latency spike corrupts adjacent
    symbols), so codewords are spread ``interleave_depth`` symbols
    apart before transmission.  Returns
    ``(decoded_payload_bits, ChannelResult_of_coded_stream)``; compare
    the decoded payload against the input for the post-FEC error rate.
    """
    payload = [1 if b else 0 for b in bits]
    coded = hamming_encode(payload)
    wire = interleave(coded, interleave_depth)
    result = channel.transmit(wire, seed=seed)
    received = deinterleave(list(result.decoded), interleave_depth)
    decoded = hamming_decode(received[: len(coded)])
    return decoded[: len(payload)], result
