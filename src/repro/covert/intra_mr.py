"""The intra-MR address channel (Section V-D).

The stealthiest channel: sender and receiver read the *same* MR, and
bits ride purely in the sender's address offset — 0 B (aligned, fast in
the translation unit) vs 255 B (sub-8 B aligned, slow).  The sender's
slower service inflates the shared pipeline's cycle time and thus the
receiver's ULI.  To Grain-I..III counters the sender's traffic is
byte-for-byte identical across bits; only a Grain-IV (address-aware)
monitor could tell.

Table V setup: max send queue 8; bit offsets 0/255 B on CX-4 and CX-5,
0/257 B on CX-6; 512 B reads.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.covert.uli_channel import ULIChannelBase, ULIChannelConfig
from repro.host.node import Host
from repro.rnic.spec import RNICSpec
from repro.sim.units import MEBIBYTE
from repro.telemetry.uli import ProbeTarget


@dataclasses.dataclass(frozen=True)
class IntraMRConfig(ULIChannelConfig):
    """Intra-MR channel knobs (footnote 11 parameters)."""

    mr_size: int = 2 * MEBIBYTE
    max_send_queue: int = 8
    bit_zero_offset: int = 0
    bit_one_offset: int = 255
    #: The sender reads at ``sender_base + bit offset``.  Bank layout:
    #: the receiver's 512 B targets at 0 and 512 cover banks 0-15, the
    #: sender at 1024(+255) covers banks 16-27 — disjoint, so the only
    #: bit-dependent coupling is the sender's alignment penalty in the
    #: shared pipeline, not stray bank serialization.
    sender_base: int = 1024

    @classmethod
    def best_for(cls, rnic_name: str, ambient: bool = False) -> "IntraMRConfig":
        """Footnote 11: 0/255 B offsets for CX-4/5, 0/257 B for CX-6;
        ``samples_per_bit`` compensates the smaller alignment penalty of
        newer silicon with a longer symbol.  ``ambient`` adds the bursty
        background tenant used for Table V's realistic error rates."""
        table = {
            "CX-4": dict(bit_one_offset=255, samples_per_bit=10),
            "CX-5": dict(bit_one_offset=255, samples_per_bit=16),
            "CX-6": dict(bit_one_offset=257, samples_per_bit=20),
        }
        try:
            params = dict(table[rnic_name])
        except KeyError:
            raise KeyError(f"no tuned parameters for {rnic_name!r}") from None
        if ambient:
            params["ambient_depth"] = 2
        return cls(**params)


class IntraMRChannel(ULIChannelBase):
    """Grain-IV covert channel via the offset effect."""

    name = "intra-mr"
    high_is_one = True

    def __init__(
        self,
        spec: Optional[RNICSpec] = None,
        config: Optional[IntraMRConfig] = None,
    ) -> None:
        super().__init__(spec, config if config is not None else IntraMRConfig())
        self.shared_mr = None

    def setup_server(self, server: Host) -> None:
        cfg: IntraMRConfig = self.config
        self.shared_mr = server.reg_mr(cfg.mr_size)

    def receiver_targets(self) -> list[ProbeTarget]:
        size = self.config.msg_size
        return [
            ProbeTarget(self.shared_mr, 0, size),
            ProbeTarget(self.shared_mr, 512, size),
        ]

    def sender_targets(self, bit: int) -> list[ProbeTarget]:
        cfg: IntraMRConfig = self.config
        offset = cfg.bit_one_offset if bit else cfg.bit_zero_offset
        return [ProbeTarget(self.shared_mr, cfg.sender_base + offset, cfg.msg_size)]
