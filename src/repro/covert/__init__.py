"""Covert-channel Ragnar attacks (Section V).

Three channels at increasing granularity and stealthiness:

* :class:`PriorityChannel` — Grain I+II (Section V-B, Figure 9): the
  sender toggles a bulk write flow's message size; the receiver decodes
  from its own monitored bandwidth.  ~1 bps, error-free.
* :class:`InterMRChannel` — Grain III (Section V-C, Figures 10–11): the
  sender encodes bits by reading the same vs. a different MR; the
  receiver decodes from its background traffic's ULI.
* :class:`IntraMRChannel` — Grain IV (Section V-D): the sender encodes
  bits in the *address offset* (0 B vs 255/257 B) of otherwise
  identical reads — indistinguishable from benign access-pattern
  variation to Grain-I..III defenses.
"""

from repro.covert.framing import (
    bit_error_rate,
    bits_to_text,
    bsc_capacity,
    crc8,
    crc8_check,
    random_bits,
    text_to_bits,
    PAPER_BITSTREAM,
)
from repro.covert.result import ChannelResult
from repro.covert.lockstep import (
    PipelinedReader,
    RelockConfig,
    decode_windows,
    detrend,
    estimate_drift,
    relock_decode,
)
from repro.covert.arq import ArqConfig, ArqResult, arq_transmit
from repro.covert.priority_channel import PriorityChannel, PriorityChannelConfig
from repro.covert.inter_mr import InterMRChannel, InterMRConfig
from repro.covert.intra_mr import IntraMRChannel, IntraMRConfig
from repro.covert.fec import (
    CODE_RATE,
    coded_transmit,
    hamming_decode,
    hamming_encode,
)
from repro.covert.multilevel import MultiLevelConfig, MultiLevelIntraMRChannel

__all__ = [
    "ArqConfig",
    "ArqResult",
    "arq_transmit",
    "bit_error_rate",
    "bits_to_text",
    "bsc_capacity",
    "crc8",
    "crc8_check",
    "RelockConfig",
    "estimate_drift",
    "relock_decode",
    "random_bits",
    "text_to_bits",
    "PAPER_BITSTREAM",
    "ChannelResult",
    "PipelinedReader",
    "decode_windows",
    "PriorityChannel",
    "PriorityChannelConfig",
    "InterMRChannel",
    "InterMRConfig",
    "IntraMRChannel",
    "IntraMRConfig",
    "detrend",
    "CODE_RATE",
    "coded_transmit",
    "hamming_decode",
    "hamming_encode",
    "MultiLevelConfig",
    "MultiLevelIntraMRChannel",
]
