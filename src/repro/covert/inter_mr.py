"""The inter-MR resource channel (Section V-C, Figures 10-11).

Encoding: for bit 0 the sender reads the *shared* MR (the one the
receiver's background traffic also reads); for bit 1 it reads a second
MR.  With sender and receiver requests interleaved in the translation
unit, bit 1 makes every request switch MR contexts, raising the
receiver's ULI; bit 0 keeps the whole pipeline inside one MR context.

Table V setup: 2 MB MRs, 2 QPs; best parameters are 512 B reads with
max send queue 10 on CX-4, 64 B / queue 6 on CX-5 and 512 B / queue 6
on CX-6.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.covert.uli_channel import ULIChannelBase, ULIChannelConfig
from repro.host.node import Host
from repro.rnic.spec import RNICSpec
from repro.sim.units import MEBIBYTE
from repro.telemetry.uli import ProbeTarget


@dataclasses.dataclass(frozen=True)
class InterMRConfig(ULIChannelConfig):
    """Inter-MR channel knobs on top of the lockstep base."""

    mr_size: int = 2 * MEBIBYTE

    @classmethod
    def best_for(cls, rnic_name: str, ambient: bool = False) -> "InterMRConfig":
        """The per-device best parameter combinations (footnote 10 gives
        the opcode sizes and queue depths; ``samples_per_bit`` is this
        reproduction's symbol-rate tuning).  ``ambient`` adds the bursty
        background tenant used for Table V's realistic error rates."""
        table = {
            "CX-4": dict(msg_size=512, max_send_queue=10, samples_per_bit=12),
            "CX-5": dict(msg_size=64, max_send_queue=6, samples_per_bit=10),
            "CX-6": dict(msg_size=512, max_send_queue=6, samples_per_bit=10),
        }
        try:
            params = dict(table[rnic_name])
        except KeyError:
            raise KeyError(f"no tuned parameters for {rnic_name!r}") from None
        if ambient:
            params["ambient_depth"] = 2
        return cls(**params)


class InterMRChannel(ULIChannelBase):
    """Grain-III covert channel via MR-context switching."""

    name = "inter-mr"
    high_is_one = True

    def __init__(
        self,
        spec: Optional[RNICSpec] = None,
        config: Optional[InterMRConfig] = None,
    ) -> None:
        super().__init__(spec, config if config is not None else InterMRConfig())
        self.shared_mr = None
        self.other_mr = None

    def setup_server(self, server: Host) -> None:
        cfg: InterMRConfig = self.config
        self.shared_mr = server.reg_mr(cfg.mr_size)
        self.other_mr = server.reg_mr(cfg.mr_size)

    def receiver_targets(self) -> list[ProbeTarget]:
        """Background traffic: two aligned targets of the shared MR
        (alternating targets avoids the same-line lock dominating).
        Offsets 0 and 512 keep the receiver inside banks 0-15."""
        size = self.config.msg_size
        return [
            ProbeTarget(self.shared_mr, 0, size),
            ProbeTarget(self.shared_mr, 512, size),
        ]

    def sender_targets(self, bit: int) -> list[ProbeTarget]:
        """Sender offsets 1024/1536 sit in banks 16-31, disjoint from
        the receiver's banks, so the bit rides purely on the MR-context
        switching, not on incidental bank serialization."""
        size = self.config.msg_size
        if bit:
            return [
                ProbeTarget(self.other_mr, 1024, size),
                ProbeTarget(self.other_mr, 1536, size),
            ]
        return [
            ProbeTarget(self.shared_mr, 1024, size),
            ProbeTarget(self.shared_mr, 1536, size),
        ]
