"""Bitstream utilities and channel-quality metrics."""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

#: The bitstream transmitted in Figure 9.
PAPER_BITSTREAM = tuple(int(b) for b in "1101111101010010")


def text_to_bits(text: str) -> list[int]:
    """UTF-8 text to a bit list, MSB first."""
    out = []
    for byte in text.encode():
        out.extend((byte >> shift) & 1 for shift in range(7, -1, -1))
    return out


def bits_to_text(bits: Sequence[int]) -> str:
    """Inverse of :func:`text_to_bits`; trailing partial bytes dropped.
    Undecodable bytes are replaced (errors are expected on a noisy
    channel)."""
    nbytes = len(bits) // 8
    data = bytearray()
    for i in range(nbytes):
        byte = 0
        for bit in bits[8 * i : 8 * i + 8]:
            byte = (byte << 1) | (1 if bit else 0)
        data.append(byte)
    return data.decode(errors="replace")


def random_bits(count: int, seed: int = 0) -> list[int]:
    """A reproducible balanced-ish random bitstream."""
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    rng = np.random.default_rng(seed)
    return [int(b) for b in rng.integers(0, 2, count)]


#: CRC-8 generator polynomial x^8 + x^2 + x + 1 (the ATM HEC
#: polynomial) — detects all single- and double-bit errors and any
#: burst up to 8 bits within one frame, which matches the ULI
#: channels' bursty error signature.
CRC8_POLY = 0x07


def _crc8_residue(bits: Sequence[int], flush: bool) -> int:
    register = 0
    stream = [1 if b else 0 for b in bits]
    if flush:
        stream += [0] * 8
    for bit in stream:
        carry = (register >> 7) & 1
        register = ((register << 1) | bit) & 0xFF
        if carry:
            register ^= CRC8_POLY
    return register


def crc8(bits: Sequence[int]) -> list[int]:
    """CRC-8 checksum of a bitstream, as 8 bits MSB first.

    Appending the checksum to the message makes the whole frame divide
    the generator exactly, which is what :func:`crc8_check` verifies.
    """
    residue = _crc8_residue(bits, flush=True)
    return [(residue >> shift) & 1 for shift in range(7, -1, -1)]


def crc8_check(frame: Sequence[int]) -> bool:
    """True when ``frame`` (message ++ CRC-8) has a zero residue."""
    if len(frame) < 8:
        return False
    return _crc8_residue(frame, flush=False) == 0


def bit_error_rate(sent: Sequence[int], received: Sequence[int]) -> float:
    """Fraction of differing bits (missing bits count as errors)."""
    if not sent:
        raise ValueError("sent bitstream is empty")
    errors = sum(
        1 for s, r in zip(sent, received) if (1 if s else 0) != (1 if r else 0)
    )
    errors += abs(len(sent) - len(received))
    return errors / max(len(sent), len(received))


def bsc_capacity(error_rate: float) -> float:
    """Capacity (bits per channel use) of a binary symmetric channel.

    Table V's *effective bandwidth* is the raw bandwidth scaled by this
    factor: e.g. CX-4 inter-MR 31.8 Kbps at 5.92 % error gives
    21.5 Kbps, which is exactly ``31.8 * (1 - H2(0.0592))``.
    """
    if not 0.0 <= error_rate <= 1.0:
        raise ValueError(f"error rate must be in [0, 1], got {error_rate}")
    p = error_rate
    if p in (0.0, 1.0):
        return 1.0
    entropy = -p * math.log2(p) - (1 - p) * math.log2(1 - p)
    return 1.0 - entropy
