"""The inter-traffic-class priority channel (Section V-B, Figure 9).

The covert Rx maintains a small monitored flow; the covert Tx encodes
bit 1 as a burst of 128 B RDMA Writes and bit 0 as 2048 B Writes.  Big
writes bully the receiver's flow hard (Key Finding 1), small writes
barely — so the receiver's own bandwidth IS the data.  The channel is
slow (~1 bps: each symbol must span several bandwidth-sampling windows)
but error-free.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Optional, Sequence

from repro.covert.lockstep import decode_windows
from repro.covert.result import ChannelResult
from repro.host.cluster import Cluster
from repro.obs import runtime as _obs
from repro.rnic.bandwidth import FluidFlow
from repro.rnic.spec import RNICSpec, cx5
from repro.sim.units import MILLISECONDS, SECONDS
from repro.verbs.enums import Opcode

if TYPE_CHECKING:  # pragma: no cover - import for annotations only
    from repro.faults.plan import FaultPlan


@dataclasses.dataclass(frozen=True)
class PriorityChannelConfig:
    """Figure 9 parameters."""

    bit_one_size: int = 128       # Tx write size encoding bit 1
    bit_zero_size: int = 2048     # Tx write size encoding bit 0
    tx_qp_num: int = 16
    #: Rx's monitored flow uses large reads: Key Finding 1 says small
    #: writes (bit 1) barely touch large reads while >=512 B writes
    #: (bit 0) crush them — giving Figure 9's slight-vs-significant
    #: drop signature.  The flow is demand-limited (a small flow) so
    #: monitoring it is cheap.
    monitor_size: int = 65536
    monitor_demand_bps: float = 200e6
    bit_period_ns: float = 1.0 * SECONDS
    sample_interval_ns: float = 100 * MILLISECONDS
    #: Fault scenario armed on the cluster before the transmission
    #: starts (None runs clean).  The channel lives in the fluid
    #: bandwidth layer, so packet loss barely touches it — which is
    #: precisely what the faults experiment demonstrates.
    fault_plan: Optional["FaultPlan"] = None

    def __post_init__(self) -> None:
        if self.bit_period_ns < 2 * self.sample_interval_ns:
            raise ValueError("bit period must cover at least two samples")


class PriorityChannel:
    """Grain I+II covert channel over bandwidth contention."""

    name = "inter-traffic-class"

    def __init__(
        self,
        spec: Optional[RNICSpec] = None,
        config: Optional[PriorityChannelConfig] = None,
    ) -> None:
        self.spec = spec if spec is not None else cx5()
        self.config = config if config is not None else PriorityChannelConfig()

    def transmit(self, bits: Sequence[int], seed: int = 0) -> ChannelResult:
        """Run one covert transmission; returns the Table V metrics."""
        bits = [1 if b else 0 for b in bits]
        if not bits:
            raise ValueError("nothing to transmit")
        cfg = self.config
        cluster = Cluster(seed=seed)
        server = cluster.add_host("server", spec=self.spec)
        rnic = server.rnic
        # the paper's setup: two traffic classes in ETS mode, 50/50
        rnic.configure_ets({0: 0.5, 1: 0.5})
        if cfg.fault_plan is not None:
            cfg.fault_plan.install(cluster, server=server)

        # Rx: a small, demand-limited read flow it continuously measures
        monitor_flow = FluidFlow(
            opcode=Opcode.RDMA_READ,
            msg_size=cfg.monitor_size,
            qp_num=1,
            traffic_class=0,
            demand_bps=cfg.monitor_demand_bps,
            label="covert-rx-monitor",
        )
        rnic.add_fluid_flow(monitor_flow)

        samples: list[tuple[float, float]] = []
        obs = _obs.tracer_for(cluster.sim)
        # pending-sample handle, cancelled after the run so the sampler
        # chain cannot outlive the transmission (see RAG104)
        pending: list = [None]

        def sample_bandwidth() -> None:
            bandwidth = rnic.fluid_bandwidth(monitor_flow)
            samples.append((cluster.sim.now, bandwidth))
            if obs is not None:
                obs.counter("covert.rx_bandwidth", {"bps": bandwidth},
                            category="covert", component="covert.rx")
            pending[0] = cluster.sim.schedule(
                cfg.sample_interval_ns, sample_bandwidth)

        pending[0] = cluster.sim.schedule(
            cfg.sample_interval_ns, sample_bandwidth)

        # Tx: swap the bulk write flow at each symbol boundary
        current_flow: list[Optional[FluidFlow]] = [None]

        def set_bit(bit: int) -> None:
            if current_flow[0] is not None:
                rnic.remove_fluid_flow(current_flow[0])
            size = cfg.bit_one_size if bit else cfg.bit_zero_size
            flow = FluidFlow(
                opcode=Opcode.RDMA_WRITE,
                msg_size=size,
                qp_num=cfg.tx_qp_num,
                traffic_class=1,
                label="covert-tx",
            )
            rnic.add_fluid_flow(flow)
            current_flow[0] = flow
            if obs is not None:
                obs.instant("covert.bit", category="covert",
                            component="covert.tx", bit=bit, msg_size=size)

        start = cluster.sim.now
        for index, bit in enumerate(bits):
            cluster.sim.schedule(index * cfg.bit_period_ns, set_bit, bit)
        end = start + len(bits) * cfg.bit_period_ns
        cluster.sim.run(until=end)
        if pending[0] is not None:
            cluster.sim.cancel(pending[0])

        decoded = decode_windows(
            samples, start, cfg.bit_period_ns, len(bits), high_is_one=True
        )
        return ChannelResult.build(
            channel=self.name,
            rnic=self.spec.name,
            sent=bits,
            decoded=decoded,
            duration_ns=end - start,
        )

    def trace(self, bits: Sequence[int], seed: int = 0) -> list[tuple[float, float]]:
        """The receiver's raw bandwidth samples (for plotting Figure 9)."""
        bits = [1 if b else 0 for b in bits]
        cfg = self.config
        cluster = Cluster(seed=seed)
        server = cluster.add_host("server", spec=self.spec)
        rnic = server.rnic
        rnic.configure_ets({0: 0.5, 1: 0.5})
        if cfg.fault_plan is not None:
            cfg.fault_plan.install(cluster, server=server)
        monitor_flow = FluidFlow(
            opcode=Opcode.RDMA_READ,
            msg_size=cfg.monitor_size,
            qp_num=1,
            traffic_class=0,
            demand_bps=cfg.monitor_demand_bps,
        )
        rnic.add_fluid_flow(monitor_flow)
        samples: list[tuple[float, float]] = []
        pending: list = [None]

        def sample_bandwidth() -> None:
            samples.append((cluster.sim.now, rnic.fluid_bandwidth(monitor_flow)))
            pending[0] = cluster.sim.schedule(
                cfg.sample_interval_ns, sample_bandwidth)

        pending[0] = cluster.sim.schedule(
            cfg.sample_interval_ns, sample_bandwidth)
        current: list[Optional[FluidFlow]] = [None]

        def set_bit(bit: int) -> None:
            if current[0] is not None:
                rnic.remove_fluid_flow(current[0])
            size = cfg.bit_one_size if bit else cfg.bit_zero_size
            flow = FluidFlow(opcode=Opcode.RDMA_WRITE, msg_size=size,
                             qp_num=cfg.tx_qp_num, traffic_class=1)
            rnic.add_fluid_flow(flow)
            current[0] = flow

        for index, bit in enumerate(bits):
            cluster.sim.schedule(index * cfg.bit_period_ns, set_bit, bit)
        cluster.sim.run(until=len(bits) * cfg.bit_period_ns)
        if pending[0] is not None:
            cluster.sim.cancel(pending[0])
        return samples
