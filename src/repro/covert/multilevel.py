"""4-ary (2 bits/symbol) intra-MR modulation — an extension study.

The paper encodes one bit per symbol in the sender's address offset
(aligned vs misaligned).  The translation unit actually exposes *three*
distinguishable penalty levels (64 B-aligned, 8 B-but-not-64 B-aligned,
unaligned) plus the same-bank serialization, so a sender can signal
more than one bit per symbol by choosing among four offsets with
distinct ULI signatures.  This module implements a 4-level intra-MR
channel and is exercised by ``bench_ablation_multilevel`` to show where
the denser constellation wins (and where the shrunken eye loses).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np

from repro.covert.result import ChannelResult
from repro.covert.uli_channel import ULIChannelBase, ULIChannelConfig
from repro.host.node import Host
from repro.rnic.spec import RNICSpec
from repro.sim.units import MEBIBYTE
from repro.telemetry.uli import ProbeTarget


@dataclasses.dataclass(frozen=True)
class MultiLevelConfig(ULIChannelConfig):
    """Four sender offsets with increasing translation-unit cost.

    Levels (relative to ``sender_base``, which is 64 B-aligned):

    0. +0    — 64 B-aligned, fastest;
    1. +8    — 8 B-aligned only (sub-64 penalty);
    2. +255  — unaligned (sub-8 penalty);
    3. +0 on the *receiver's* bank — adds bank serialization on top.
    """

    mr_size: int = 2 * MEBIBYTE
    max_send_queue: int = 8
    sender_base: int = 1024
    #: level-3 offset: aligned, but aliasing the receiver's bank range
    collide_offset: int = 0
    samples_per_bit: int = 24   # symbols carry 2 bits; keep them long


class MultiLevelIntraMRChannel(ULIChannelBase):
    """2-bit-per-symbol intra-MR channel (extension, not in the paper)."""

    name = "intra-mr-4ary"
    high_is_one = True

    LEVELS = 4
    BITS_PER_SYMBOL = 2

    def __init__(self, spec: Optional[RNICSpec] = None,
                 config: Optional[MultiLevelConfig] = None) -> None:
        super().__init__(spec, config if config is not None else MultiLevelConfig())
        self.shared_mr = None

    def setup_server(self, server: Host) -> None:
        self.shared_mr = server.reg_mr(self.config.mr_size)

    def receiver_targets(self) -> list[ProbeTarget]:
        size = self.config.msg_size
        return [
            ProbeTarget(self.shared_mr, 0, size),
            ProbeTarget(self.shared_mr, 512, size),
        ]

    def sender_targets(self, symbol: int) -> list[ProbeTarget]:
        cfg: MultiLevelConfig = self.config
        size = cfg.msg_size
        if symbol == 0:
            offset = cfg.sender_base
        elif symbol == 1:
            offset = cfg.sender_base + 8
        elif symbol == 2:
            offset = cfg.sender_base + 255
        else:
            # collide with the receiver's banks for the top level
            return [ProbeTarget(self.shared_mr, cfg.collide_offset + 2048, size)]
        return [ProbeTarget(self.shared_mr, offset, size)]

    # ------------------------------------------------------------------
    # 4-ary transmission
    # ------------------------------------------------------------------
    @staticmethod
    def bits_to_symbols(bits: Sequence[int]) -> list[int]:
        data = [1 if b else 0 for b in bits]
        if len(data) % 2:
            data.append(0)
        return [2 * data[i] + data[i + 1] for i in range(0, len(data), 2)]

    @staticmethod
    def symbols_to_bits(symbols: Sequence[int]) -> list[int]:
        out: list[int] = []
        for s in symbols:
            out.extend(((s >> 1) & 1, s & 1))
        return out

    def transmit(self, bits: Sequence[int], seed: int = 0) -> ChannelResult:
        from repro.covert.uli_channel import _Session

        bits = [1 if b else 0 for b in bits]
        if not bits:
            raise ValueError("nothing to transmit")
        cfg = self.config
        symbols = self.bits_to_symbols(bits)
        # preamble sweeps all four levels for calibration
        preamble_symbols = [0, 3, 1, 2, 0, 3, 2, 1]
        frame = preamble_symbols + symbols

        session = _Session(self, seed)
        inter_completion = session.warm_up(cfg.warmup_completions)
        period = cfg.samples_per_bit * inter_completion
        start = session.run_frame(frame, period, tail_ns=cfg.max_shift_symbols * period)

        # NO detrending here: 4-ary decoding classifies against the
        # preamble's absolute level means, which a rolling-mean filter
        # would destroy (unlike the binary channels' threshold decoding)
        samples = session.receiver.samples_after(start)
        decoded_symbols = self._demodulate_4ary(
            samples, start, period, frame, len(preamble_symbols)
        )
        decoded_bits = self.symbols_to_bits(decoded_symbols)[: len(bits)]
        return ChannelResult.build(
            channel=self.name,
            rnic=self.spec.name,
            sent=bits,
            decoded=decoded_bits,
            duration_ns=len(frame) * period,
        )

    @staticmethod
    def _interior_means(samples, start, period, count,
                        lo: float = 0.4, hi: float = 0.98) -> np.ndarray:
        """Per-window means over the window *interior* only.

        The sender's queued WQEs smear each symbol's effect into the
        next window's head, so the first ~40 % of every window is
        transition-corrupted; a 4-level eye cannot afford that, unlike
        the binary channels' threshold decoding.
        """
        sums = np.zeros(count)
        counts = np.zeros(count)
        for t, v in samples:
            position = (t - start) / period
            index = int(position)
            phase = position - index
            if 0 <= index < count and lo <= phase <= hi:
                sums[index] += v
                counts[index] += 1
        means = np.empty(count)
        previous = 0.0
        for i in range(count):
            if counts[i] > 0:
                previous = sums[i] / counts[i]
            means[i] = previous
        return means

    def _demodulate_4ary(self, samples, start, period, frame,
                         preamble_len) -> list[int]:
        """Phase recovery on the known preamble, then nearest-level
        classification against the preamble's calibrated level means."""
        preamble = frame[:preamble_len]
        best_shift, best_score = 0.0, -np.inf
        # the interior filter already skips the queue-drain smear, so
        # the residual phase error is under half a symbol; scanning
        # further only invites spurious alignments of the level-3 spikes
        for shift in np.linspace(0.0, 0.5 * period, 17):
            means = self._interior_means(samples, start + shift, period,
                                         preamble_len)
            level_groups = [
                [m for m, s in zip(means, preamble) if s == lvl]
                for lvl in range(self.LEVELS)
            ]
            centers = [float(np.mean(g)) for g in level_groups]
            within = float(np.mean([np.std(g) for g in level_groups]))
            gap = float(np.min(np.diff(sorted(centers))))
            score = gap - within
            if score > best_score:
                best_score, best_shift = score, float(shift)
        means = self._interior_means(samples, start + best_shift, period,
                                     len(frame))
        calibration = np.asarray([
            np.mean([m for m, s in zip(means[:preamble_len], preamble)
                     if s == lvl])
            for lvl in range(self.LEVELS)
        ])
        payload_means = means[preamble_len:]
        return [
            int(np.argmin(np.abs(calibration - m))) for m in payload_means
        ]
