"""Server-side structural validation of the Sherman tree.

Walks the tree from the root (using local memory reads, no RDMA) and
checks every invariant a correct B+ tree maintains.  Used by property
tests and available to operators as a consistency audit.
"""

from __future__ import annotations

import dataclasses

from repro.apps.sherman.layout import (
    HEADER_SIZE,
    INTERNAL_CAPACITY,
    KEY_MAX,
    KEY_MIN,
    LEAF_CAPACITY,
    InternalNode,
    LeafNode,
    NodeHeader,
)
from repro.apps.sherman.server import ShermanMemoryServer


class TreeInvariantError(AssertionError):
    """A structural invariant does not hold."""


@dataclasses.dataclass
class TreeStats:
    """Aggregates collected during validation."""

    height: int = 0
    internal_nodes: int = 0
    leaves: int = 0
    entries: int = 0

    @property
    def nodes(self) -> int:
        return self.internal_nodes + self.leaves


def validate_tree(server: ShermanMemoryServer) -> TreeStats:
    """Validate every invariant; returns tree statistics.

    Checks, per node: fence nesting, sorted keys, capacity bounds,
    level decrease; plus globally: all leaves at level 0, the sibling
    chain visits every leaf left-to-right with abutting fences, and no
    lock is held (quiescent tree).
    """
    stats = TreeStats()
    root_offset = server.root_offset
    root_header = NodeHeader.unpack(server.read_node_local(root_offset))
    stats.height = root_header.level
    leaves_via_tree: list[int] = []

    def walk(offset: int, low: int, high: int, level: int) -> None:
        raw = server.read_node_local(offset)
        header = NodeHeader.unpack(raw)
        if header.lock != 0:
            raise TreeInvariantError(f"node @{offset} lock held ({header.lock})")
        if header.level != level:
            raise TreeInvariantError(
                f"node @{offset} level {header.level}, expected {level}"
            )
        if (header.low_key, header.high_key) != (low, high):
            raise TreeInvariantError(
                f"node @{offset} fences [{header.low_key}, {header.high_key}) "
                f"!= expected [{low}, {high})"
            )
        if header.is_leaf:
            leaf = LeafNode.unpack(raw)
            if len(leaf.entries) > LEAF_CAPACITY:
                raise TreeInvariantError(f"leaf @{offset} over capacity")
            keys = [e.key for e in leaf.entries]
            if keys != sorted(set(keys)):
                raise TreeInvariantError(f"leaf @{offset} keys not sorted/unique")
            for key in keys:
                if not (low <= key < high or (key == KEY_MAX and high == KEY_MAX)):
                    raise TreeInvariantError(
                        f"leaf @{offset} key {key} escapes [{low}, {high})"
                    )
            stats.leaves += 1
            stats.entries += len(keys)
            leaves_via_tree.append(offset)
            return
        node = InternalNode.unpack(raw)
        if not node.keys:
            raise TreeInvariantError(f"internal node @{offset} is empty")
        if len(node.keys) > INTERNAL_CAPACITY:
            raise TreeInvariantError(f"internal node @{offset} over capacity")
        if node.keys != sorted(set(node.keys)):
            raise TreeInvariantError(f"internal @{offset} keys not sorted/unique")
        if node.keys[0] != low:
            raise TreeInvariantError(
                f"internal @{offset} first key {node.keys[0]} != low fence {low}"
            )
        stats.internal_nodes += 1
        bounds = node.keys[1:] + [high]
        for child, child_low, child_high in zip(node.children, node.keys, bounds):
            walk(child, child_low, child_high, level - 1)

    walk(root_offset, KEY_MIN, KEY_MAX, root_header.level)

    # the sibling chain must visit the same leaves, in order
    chain: list[int] = []
    offset = leaves_via_tree[0] if leaves_via_tree else 0
    guard = 0
    while offset:
        chain.append(offset)
        header = NodeHeader.unpack(server.read_node_local(offset))
        offset = header.right_sibling
        guard += 1
        if guard > 100_000:
            raise TreeInvariantError("sibling chain does not terminate")
    if chain != leaves_via_tree:
        raise TreeInvariantError(
            f"sibling chain ({len(chain)} leaves) disagrees with the tree "
            f"walk ({len(leaves_via_tree)} leaves)"
        )
    return stats
