"""On-wire node layout of the Sherman-style B+ tree.

Every node is ``NODE_SIZE`` (1024) bytes::

    header (64 B):
        lock:8  level:2  count:2  pad:4  low_key:8  high_key:8
        right_sibling:8  version:8  pad:16
    leaf body:      LEAF_CAPACITY x 64 B entries (key:8 value:48 ver:8)
    internal body:  INTERNAL_CAPACITY x 16 B (key:8 child:8)

``low_key``/``high_key`` are fence keys: a client routed by a stale
cached parent detects the mismatch (key outside the fences) and falls
back to an uncached traversal — Sherman's stale-cache recovery.
Leaves chain through ``right_sibling`` for range scans.
"""

from __future__ import annotations

import dataclasses
import struct

NODE_SIZE = 1024
HEADER_SIZE = 64
LEAF_ENTRY_SIZE = 64
VALUE_SIZE = 48
LEAF_CAPACITY = (NODE_SIZE - HEADER_SIZE) // LEAF_ENTRY_SIZE          # 15
INTERNAL_ENTRY_SIZE = 16
INTERNAL_CAPACITY = (NODE_SIZE - HEADER_SIZE) // INTERNAL_ENTRY_SIZE  # 60

#: Key sentinel for "unbounded" fences.
KEY_MIN = 0
KEY_MAX = 2**64 - 1

_HEADER = struct.Struct("<QHH4xQQQQ16x")
# key:8 | value:48 | val_len:2 | pad:2 | version:4
_LEAF_ENTRY = struct.Struct("<Q48sHHI")
_INTERNAL_ENTRY = struct.Struct("<QQ")

assert _HEADER.size == HEADER_SIZE
assert _LEAF_ENTRY.size == LEAF_ENTRY_SIZE
assert _INTERNAL_ENTRY.size == INTERNAL_ENTRY_SIZE


@dataclasses.dataclass
class NodeHeader:
    """The 64-byte node header."""

    lock: int = 0
    level: int = 0           # 0 = leaf
    count: int = 0
    low_key: int = KEY_MIN
    high_key: int = KEY_MAX
    right_sibling: int = 0   # 0 = none
    version: int = 0

    def pack(self) -> bytes:
        """Serialize to the 64-byte on-wire header."""
        return _HEADER.pack(
            self.lock, self.level, self.count,
            self.low_key, self.high_key, self.right_sibling, self.version,
        )

    @classmethod
    def unpack(cls, raw: bytes) -> "NodeHeader":
        """Decode a header from a raw node image."""
        lock, level, count, low, high, sibling, version = _HEADER.unpack(
            raw[:HEADER_SIZE]
        )
        return cls(lock=lock, level=level, count=count, low_key=low,
                   high_key=high, right_sibling=sibling, version=version)

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    def covers(self, key: int) -> bool:
        """Fence check: does this node own ``key``?"""
        return self.low_key <= key < self.high_key or (
            key == KEY_MAX and self.high_key == KEY_MAX
        )


@dataclasses.dataclass
class LeafEntry:
    """One 64 B KV slot (the paper's 64 B KV store granularity)."""

    key: int
    value: bytes
    version: int = 0

    def pack(self) -> bytes:
        """Serialize to the 64-byte slot format."""
        if len(self.value) > VALUE_SIZE:
            raise ValueError(f"value too long ({len(self.value)} > {VALUE_SIZE})")
        return _LEAF_ENTRY.pack(
            self.key,
            self.value.ljust(VALUE_SIZE, b"\0"),
            len(self.value),
            0,
            self.version & 0xFFFFFFFF,
        )

    @classmethod
    def unpack(cls, raw: bytes) -> "LeafEntry":
        """Decode one 64 B slot."""
        key, value, val_len, _, version = _LEAF_ENTRY.unpack(raw[:LEAF_ENTRY_SIZE])
        return cls(key=key, value=value[:val_len], version=version)


@dataclasses.dataclass
class LeafNode:
    """A decoded leaf: header + sorted entries."""

    header: NodeHeader
    entries: list[LeafEntry]

    def pack(self) -> bytes:
        """Serialize header + entries into one NODE_SIZE image."""
        if len(self.entries) > LEAF_CAPACITY:
            raise ValueError(f"leaf overflow ({len(self.entries)})")
        self.header.count = len(self.entries)
        self.header.level = 0
        body = b"".join(e.pack() for e in self.entries)
        return (self.header.pack() + body).ljust(NODE_SIZE, b"\0")

    @classmethod
    def unpack(cls, raw: bytes) -> "LeafNode":
        """Decode a full leaf image."""
        header = NodeHeader.unpack(raw)
        entries = []
        for i in range(header.count):
            start = HEADER_SIZE + i * LEAF_ENTRY_SIZE
            entries.append(LeafEntry.unpack(raw[start : start + LEAF_ENTRY_SIZE]))
        return cls(header=header, entries=entries)

    def find(self, key: int) -> LeafEntry | None:
        """The entry holding ``key``, or None."""
        for entry in self.entries:
            if entry.key == key:
                return entry
        return None

    @staticmethod
    def entry_offset(index: int) -> int:
        """Byte offset of entry ``index`` inside the node — the Grain-IV
        address the snooping attacker recovers."""
        if not 0 <= index < LEAF_CAPACITY:
            raise ValueError(f"leaf entry index {index} out of range")
        return HEADER_SIZE + index * LEAF_ENTRY_SIZE


@dataclasses.dataclass
class InternalNode:
    """A decoded internal node: header + (separator key, child) pairs.

    ``children[i]`` owns keys in ``[keys[i], keys[i+1])``; ``keys[0]``
    equals the node's low fence.
    """

    header: NodeHeader
    keys: list[int]
    children: list[int]

    def pack(self) -> bytes:
        """Serialize header + (key, child) pairs into one node image."""
        if len(self.keys) != len(self.children):
            raise ValueError("keys and children must pair up")
        if len(self.keys) > INTERNAL_CAPACITY:
            raise ValueError(f"internal overflow ({len(self.keys)})")
        self.header.count = len(self.keys)
        if self.header.level == 0:
            raise ValueError("internal node cannot have level 0")
        body = b"".join(
            _INTERNAL_ENTRY.pack(k, c) for k, c in zip(self.keys, self.children)
        )
        return (self.header.pack() + body).ljust(NODE_SIZE, b"\0")

    @classmethod
    def unpack(cls, raw: bytes) -> "InternalNode":
        """Decode a full internal-node image."""
        header = NodeHeader.unpack(raw)
        keys, children = [], []
        for i in range(header.count):
            start = HEADER_SIZE + i * INTERNAL_ENTRY_SIZE
            key, child = _INTERNAL_ENTRY.unpack(
                raw[start : start + INTERNAL_ENTRY_SIZE]
            )
            keys.append(key)
            children.append(child)
        return cls(header=header, keys=keys, children=children)

    def route(self, key: int) -> int:
        """Child address owning ``key``."""
        if not self.keys:
            raise ValueError("routing through an empty internal node")
        child = self.children[0]
        for k, c in zip(self.keys, self.children):
            if key >= k:
                child = c
            else:
                break
        return child
