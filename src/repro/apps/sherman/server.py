"""The memory server (MS) side of the Sherman-style tree.

The MS is passive after setup — exactly the disaggregated-memory design
point: it registers one big region and never touches the tree again.
The region starts with a 64-byte superblock::

    [ alloc_cursor:8 | root_addr:8 | pad:48 ]

Clients allocate node space by FAA on ``alloc_cursor`` and install new
roots by CAS on ``root_addr``.
"""

from __future__ import annotations

from repro.apps.sherman.layout import KEY_MAX, KEY_MIN, NODE_SIZE, LeafNode, NodeHeader
from repro.host.node import Host
from repro.sim.units import MEBIBYTE
from repro.verbs.mr import MemoryRegion

SUPERBLOCK_SIZE = 64
ALLOC_CURSOR_OFFSET = 0
ROOT_ADDR_OFFSET = 8


class ShermanMemoryServer:
    """Owns the MS region and seeds the initial (empty) tree."""

    def __init__(self, host: Host, region_size: int = 8 * MEBIBYTE) -> None:
        if region_size < SUPERBLOCK_SIZE + 2 * NODE_SIZE:
            raise ValueError("region too small for a superblock and a root")
        self.host = host
        self.mr: MemoryRegion = host.reg_mr(region_size)
        host.memory.fill(self.mr.addr, region_size, 0)
        # seed: one empty leaf as the root
        root_offset = self._bump_local(NODE_SIZE)
        root = LeafNode(
            header=NodeHeader(level=0, low_key=KEY_MIN, high_key=KEY_MAX),
            entries=[],
        )
        host.memory.write(self.mr.addr + root_offset, root.pack())
        host.memory.write_u64(self.mr.addr + ROOT_ADDR_OFFSET, root_offset)

    def _bump_local(self, nbytes: int) -> int:
        """Server-local allocation during setup (no RDMA involved)."""
        cursor_addr = self.mr.addr + ALLOC_CURSOR_OFFSET
        cursor = self.host.memory.read_u64(cursor_addr)
        if cursor == 0:
            cursor = SUPERBLOCK_SIZE
        if cursor + nbytes > self.mr.length:
            raise MemoryError("memory server region exhausted")
        self.host.memory.write_u64(cursor_addr, cursor + nbytes)
        return cursor

    # ------------------------------------------------------------------
    # Introspection for tests and experiments (server-local reads)
    # ------------------------------------------------------------------
    @property
    def root_offset(self) -> int:
        return self.host.memory.read_u64(self.mr.addr + ROOT_ADDR_OFFSET)

    @property
    def allocated_bytes(self) -> int:
        return self.host.memory.read_u64(self.mr.addr + ALLOC_CURSOR_OFFSET)

    def read_node_local(self, offset: int) -> bytes:
        """Raw node image at ``offset`` (server-local, no RDMA)."""
        return self.host.memory.read(self.mr.addr + offset, NODE_SIZE)
