"""The compute-server (CS) client of the Sherman-style tree.

All tree operations are one-sided:

* traversal = RDMA Reads of 1 KB nodes (internal nodes are cached
  client-side, Sherman's index cache, with fence-key fallback);
* node locks = CAS on the node's lock word;
* space allocation = FAA on the superblock cursor;
* root installation = CAS on the superblock root pointer;
* point updates = a single 64 B RDMA Write of one leaf entry — the
  access pattern the Section VI-B attacker snoops on.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.sherman.layout import (
    HEADER_SIZE,
    INTERNAL_CAPACITY,
    KEY_MAX,
    LEAF_CAPACITY,
    LEAF_ENTRY_SIZE,
    NODE_SIZE,
    InternalNode,
    LeafEntry,
    LeafNode,
    NodeHeader,
)
from repro.apps.sherman.server import (
    ALLOC_CURSOR_OFFSET,
    ROOT_ADDR_OFFSET,
    ShermanMemoryServer,
)
from repro.host.cluster import RDMAConnection

MAX_LOCK_RETRIES = 64
LOCK_BACKOFF_NS = 2000.0


class TreeError(RuntimeError):
    """Unrecoverable tree-protocol failure."""


class ShermanClient:
    """One CS process operating on the shared tree."""

    def __init__(self, conn: RDMAConnection, server: ShermanMemoryServer,
                 client_id: int = 1) -> None:
        if client_id <= 0:
            raise ValueError("client_id must be positive (0 means unlocked)")
        self.conn = conn
        self.server = server
        self.client_id = client_id
        self.cache: dict[int, InternalNode] = {}
        #: op counters (Grain-III observable, and handy in tests)
        self.reads = 0
        self.writes = 0
        self.casses = 0

    # ------------------------------------------------------------------
    # One-sided primitives
    # ------------------------------------------------------------------
    def _read(self, offset: int, size: int) -> bytes:
        self.conn.post_read(self.server.mr, offset, size)
        wc = self.conn.await_completions(1)[0]
        if not wc.ok:
            raise TreeError(f"read @{offset} failed: {wc.status}")
        self.reads += 1
        return self.conn.client.memory.read(self.conn.local_mr.addr, size)

    def _write(self, offset: int, data: bytes) -> None:
        self.conn.client.memory.write(self.conn.local_mr.addr, data)
        self.conn.post_write(self.server.mr, offset, len(data))
        wc = self.conn.await_completions(1)[0]
        if not wc.ok:
            raise TreeError(f"write @{offset} failed: {wc.status}")
        self.writes += 1

    def _cas(self, offset: int, compare: int, swap: int) -> int:
        self.conn.post_atomic(self.server.mr, offset, compare=compare, swap=swap)
        wc = self.conn.await_completions(1)[0]
        if not wc.ok:
            raise TreeError(f"CAS @{offset} failed: {wc.status}")
        self.casses += 1
        return self.conn.client.memory.read_u64(self.conn.local_mr.addr)

    def _faa(self, offset: int, add: int) -> int:
        self.conn.post_atomic(self.server.mr, offset, fetch_add=add)
        wc = self.conn.await_completions(1)[0]
        if not wc.ok:
            raise TreeError(f"FAA @{offset} failed: {wc.status}")
        self.casses += 1
        return self.conn.client.memory.read_u64(self.conn.local_mr.addr)

    # ------------------------------------------------------------------
    # Tree plumbing
    # ------------------------------------------------------------------
    def _root(self) -> int:
        return int.from_bytes(self._read(ROOT_ADDR_OFFSET, 8), "little")

    def _alloc_node(self) -> int:
        offset = self._faa(ALLOC_CURSOR_OFFSET, NODE_SIZE)
        if offset + NODE_SIZE > self.server.mr.length:
            raise TreeError("memory server region exhausted")
        return offset

    def _load_header(self, offset: int) -> NodeHeader:
        return NodeHeader.unpack(self._read(offset, HEADER_SIZE))

    def _load_raw(self, offset: int) -> bytes:
        return self._read(offset, NODE_SIZE)

    def _lock(self, offset: int) -> None:
        for _ in range(MAX_LOCK_RETRIES):
            old = self._cas(offset, 0, self.client_id)
            if old == 0:
                return
            self.conn.cluster.run_for(LOCK_BACKOFF_NS)
        raise TreeError(f"could not lock node @{offset}")

    def _write_unlocked(self, offset: int, packed: bytes) -> None:
        """Write a full node image with its lock word cleared."""
        header = NodeHeader.unpack(packed)
        header.lock = 0
        header.version += 1
        self._write(offset, header.pack() + packed[HEADER_SIZE:])

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def _descend(self, key: int, use_cache: bool = True) -> tuple[int, list[int]]:
        """Walk to the leaf owning ``key``; returns (leaf_offset, path of
        internal offsets, root first)."""
        offset = self._root()
        path: list[int] = []
        for _ in range(64):  # tree depth bound
            node = self.cache.get(offset) if use_cache else None
            if node is not None:
                header = node.header
            else:
                raw = self._load_raw(offset)
                header = NodeHeader.unpack(raw)
                if not header.is_leaf:
                    node = InternalNode.unpack(raw)
                    self.cache[offset] = node
            if header.is_leaf:
                if header.covers(key):
                    return offset, path
                # stale route: chase the right sibling chain, else retry
                if key >= header.high_key and header.right_sibling:
                    offset = header.right_sibling
                    continue
                if use_cache:
                    self.cache.clear()
                    return self._descend(key, use_cache=False)
                raise TreeError(f"misrouted to leaf @{offset} for key {key}")
            path.append(offset)
            offset = node.route(key)
        raise TreeError("tree deeper than the traversal bound")

    # ------------------------------------------------------------------
    # Public operations
    # ------------------------------------------------------------------
    def search(self, key: int) -> Optional[bytes]:
        """Point lookup; None if absent."""
        leaf_offset, _ = self._descend(key)
        leaf = LeafNode.unpack(self._load_raw(leaf_offset))
        entry = leaf.find(key)
        return entry.value if entry is not None else None

    def insert(self, key: int, value: bytes) -> None:
        """Insert or overwrite ``key``."""
        if not 0 < key < KEY_MAX:
            raise ValueError(f"key {key} out of the usable range")
        leaf_offset, path = self._descend(key)
        self._lock(leaf_offset)
        leaf = LeafNode.unpack(self._load_raw(leaf_offset))
        if not leaf.header.covers(key):
            # split raced us between descend and lock: release and retry
            self._write_unlocked(leaf_offset, leaf.pack())
            self.cache.clear()
            self.insert(key, value)
            return
        existing = leaf.find(key)
        if existing is not None:
            existing.value = value
            existing.version += 1
            self._write_unlocked(leaf_offset, leaf.pack())
            return
        if len(leaf.entries) < LEAF_CAPACITY:
            leaf.entries.append(LeafEntry(key=key, value=value))
            leaf.entries.sort(key=lambda e: e.key)
            self._write_unlocked(leaf_offset, leaf.pack())
            return
        self._split_leaf(leaf_offset, leaf, path, key, value)

    def _split_leaf(self, leaf_offset: int, leaf: LeafNode,
                    path: list[int], key: int, value: bytes) -> None:
        """Split a full, locked leaf and insert (key, value)."""
        entries = sorted(leaf.entries + [LeafEntry(key=key, value=value)],
                         key=lambda e: e.key)
        mid = len(entries) // 2
        separator = entries[mid].key
        right_offset = self._alloc_node()
        right = LeafNode(
            header=NodeHeader(
                level=0,
                low_key=separator,
                high_key=leaf.header.high_key,
                right_sibling=leaf.header.right_sibling,
            ),
            entries=entries[mid:],
        )
        # write the new right node before linking it in
        self._write(right_offset, right.pack())
        left = LeafNode(
            header=NodeHeader(
                level=0,
                low_key=leaf.header.low_key,
                high_key=separator,
                right_sibling=right_offset,
                version=leaf.header.version,
            ),
            entries=entries[:mid],
        )
        self._write_unlocked(leaf_offset, left.pack())
        self._insert_separator(path, separator, right_offset, level=1)

    def _insert_separator(self, path: list[int], separator: int,
                          child_offset: int, level: int) -> None:
        """Install a separator in the parent, splitting upward as needed."""
        if not path:
            self._grow_root(separator, child_offset, level)
            return
        parent_offset = path[-1]
        self._lock(parent_offset)
        parent = InternalNode.unpack(self._load_raw(parent_offset))
        if not parent.header.covers(separator):
            # parent itself split under us; restart from the root
            self._write_unlocked(parent_offset, parent.pack())
            self.cache.clear()
            new_path = self._find_internal_path(separator, level)
            self._insert_separator(new_path, separator, child_offset, level)
            return
        position = 0
        while position < len(parent.keys) and parent.keys[position] < separator:
            position += 1
        # keys[i] pairs with children[i] (child owns [keys[i], keys[i+1]));
        # inserting (separator, new child) at the first key >= separator
        # keeps every pair correct: the left sibling's range shrinks to
        # [its key, separator) and the new child owns [separator, next).
        parent.keys.insert(position, separator)
        parent.children.insert(position, child_offset)
        self.cache.pop(parent_offset, None)
        if len(parent.keys) <= INTERNAL_CAPACITY:
            self._write_unlocked(parent_offset, parent.pack())
            return
        self._split_internal(parent_offset, parent, path[:-1])

    def _split_internal(self, offset: int, node: InternalNode,
                        path: list[int]) -> None:
        mid = len(node.keys) // 2
        separator = node.keys[mid]
        right_offset = self._alloc_node()
        right = InternalNode(
            header=NodeHeader(
                level=node.header.level,
                low_key=separator,
                high_key=node.header.high_key,
            ),
            keys=node.keys[mid:],
            children=node.children[mid:],
        )
        self._write(right_offset, right.pack())
        left = InternalNode(
            header=NodeHeader(
                level=node.header.level,
                low_key=node.header.low_key,
                high_key=separator,
                version=node.header.version,
            ),
            keys=node.keys[:mid],
            children=node.children[:mid],
        )
        self._write_unlocked(offset, left.pack())
        self.cache.pop(offset, None)
        self._insert_separator(path, separator, right_offset,
                               level=node.header.level + 1)

    def _grow_root(self, separator: int, right_child: int, level: int) -> None:
        """Install a new root above the current one (root split)."""
        for _ in range(MAX_LOCK_RETRIES):
            old_root = self._root()
            old_header = self._load_header(old_root)
            new_root_offset = self._alloc_node()
            # ``level`` is the level the separator belongs to, i.e. one
            # above the split node — exactly the new root's level (the
            # max() guards a raced root replacement by a taller tree)
            new_root = InternalNode(
                header=NodeHeader(level=max(level, old_header.level + 1)),
                keys=[old_header.low_key, separator],
                children=[old_root, right_child],
            )
            self._write(new_root_offset, new_root.pack())
            if self._cas(ROOT_ADDR_OFFSET, old_root, new_root_offset) == old_root:
                self.cache.clear()
                return
            self.conn.cluster.run_for(LOCK_BACKOFF_NS)
        raise TreeError("could not install a new root")

    def _find_internal_path(self, key: int, target_level: int) -> list[int]:
        """Path of internal nodes from the root down to (excluding)
        ``target_level`` — used to restart separator insertion."""
        offset = self._root()
        path = []
        for _ in range(64):
            raw = self._load_raw(offset)
            header = NodeHeader.unpack(raw)
            if header.level <= target_level:
                return path
            node = InternalNode.unpack(raw)
            path.append(offset)
            offset = node.route(key)
        raise TreeError("internal path search exceeded depth bound")

    def update(self, key: int, value: bytes) -> bool:
        """In-place entry update: ONE 64 B RDMA Write (plus lock) to the
        entry's slot — the disaggregated-memory file-access pattern the
        snooping attack targets.  Returns False if the key is absent."""
        leaf_offset, _ = self._descend(key)
        self._lock(leaf_offset)
        leaf = LeafNode.unpack(self._load_raw(leaf_offset))
        index = next((i for i, e in enumerate(leaf.entries) if e.key == key), None)
        if index is None:
            self._write_unlocked(leaf_offset, leaf.pack())
            return False
        entry = leaf.entries[index]
        entry.value = value
        entry.version += 1
        self._write(leaf_offset + LeafNode.entry_offset(index), entry.pack())
        # release the lock (header-only write)
        leaf.header.lock = 0
        leaf.header.version += 1
        self._write(leaf_offset, leaf.header.pack())
        return True

    def delete(self, key: int) -> bool:
        """Remove ``key`` from its leaf (no rebalancing, as in Sherman)."""
        leaf_offset, _ = self._descend(key)
        self._lock(leaf_offset)
        leaf = LeafNode.unpack(self._load_raw(leaf_offset))
        before = len(leaf.entries)
        leaf.entries = [e for e in leaf.entries if e.key != key]
        self._write_unlocked(leaf_offset, leaf.pack())
        return len(leaf.entries) < before

    def range_scan(self, low: int, high: int) -> list[tuple[int, bytes]]:
        """All (key, value) pairs with ``low <= key < high``."""
        if low >= high:
            return []
        leaf_offset, _ = self._descend(low)
        out: list[tuple[int, bytes]] = []
        for _ in range(10_000):
            leaf = LeafNode.unpack(self._load_raw(leaf_offset))
            for entry in leaf.entries:
                if low <= entry.key < high:
                    out.append((entry.key, entry.value))
            if leaf.header.high_key >= high or not leaf.header.right_sibling:
                return out
            leaf_offset = leaf.header.right_sibling
        raise TreeError("range scan exceeded the leaf-chain bound")

    # ------------------------------------------------------------------
    # Victim-side helpers for the snooping experiment
    # ------------------------------------------------------------------
    def locate_entry(self, key: int) -> tuple[int, int]:
        """(node offset, entry byte offset within the node) of ``key`` —
        the address the attacker will try to recover."""
        leaf_offset, _ = self._descend(key)
        leaf = LeafNode.unpack(self._load_raw(leaf_offset))
        for index, entry in enumerate(leaf.entries):
            if entry.key == key:
                return leaf_offset, LeafNode.entry_offset(index)
        raise KeyError(f"key {key} not present")

    def read_entry_at(self, node_offset: int, entry_offset: int) -> LeafEntry:
        """The victim's hot-path access: one 64 B RDMA Read of a fixed
        slot in the shared region."""
        raw = self._read(node_offset + entry_offset, LEAF_ENTRY_SIZE)
        return LeafEntry.unpack(raw)
