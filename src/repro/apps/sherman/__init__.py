"""A write-optimized distributed B+ tree on disaggregated memory.

Modelled after SHERMAN (Wang et al., SIGMOD'22), the Section VI-B
victim: the index lives entirely in a memory server's (MS) registered
memory; compute-server (CS) clients traverse and mutate it with
one-sided verbs only — RDMA Reads for traversal, CAS for node locks and
the root pointer, FAA for space allocation.  Leaf entries are 64 B
key-value slots, matching the paper's "currently implemented as a 64 B
KV store".
"""

from repro.apps.sherman.layout import (
    INTERNAL_CAPACITY,
    LEAF_CAPACITY,
    NODE_SIZE,
    InternalNode,
    LeafEntry,
    LeafNode,
    NodeHeader,
)
from repro.apps.sherman.server import ShermanMemoryServer
from repro.apps.sherman.client import ShermanClient
from repro.apps.sherman.validate import TreeInvariantError, TreeStats, validate_tree

__all__ = [
    "NODE_SIZE",
    "LEAF_CAPACITY",
    "INTERNAL_CAPACITY",
    "NodeHeader",
    "LeafEntry",
    "LeafNode",
    "InternalNode",
    "ShermanMemoryServer",
    "ShermanClient",
    "validate_tree",
    "TreeStats",
    "TreeInvariantError",
]
