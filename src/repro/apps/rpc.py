"""A SEND/RECV RPC service over the simulated fabric.

The missing two-sided workload: a server process polls one CQ fed by a
shared receive queue, dispatches each inbound request to a handler, and
answers with a SEND back to the requesting client.  Used as a benign
tenant in experiments and as the substrate test for SRQ + UD-style
many-to-one service patterns.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.host.cluster import Cluster
from repro.host.node import Host
from repro.sim.process import Process, Timeout
from repro.verbs.cq import CompletionQueue
from repro.verbs.enums import Opcode, WCStatus
from repro.verbs.qp import QueuePair
from repro.verbs.srq import SharedReceiveQueue
from repro.verbs.wr import RecvWR, SendWR

#: Size of one RPC slot (request or response payload limit).
SLOT = 256


class RPCServer:
    """Polls an SRQ-fed CQ and answers requests via a handler."""

    def __init__(self, cluster: Cluster, host: Host,
                 handler: Optional[Callable[[bytes], bytes]] = None,
                 srq_capacity: int = 64,
                 poll_interval_ns: float = 500.0) -> None:
        self.cluster = cluster
        self.host = host
        self.handler = handler if handler is not None else (lambda b: b)
        self.poll_interval_ns = poll_interval_ns
        self.srq: SharedReceiveQueue = host.context.create_srq(srq_capacity)
        self.cq: CompletionQueue = host.context.create_cq()
        self.buffer_mr = host.reg_mr(srq_capacity * SLOT)
        self._slot_addr: dict[int, int] = {}
        self._qp_by_wrid: dict[int, QueuePair] = {}
        self._qps: list[QueuePair] = []
        self.served = 0
        self._running = False
        for index in range(srq_capacity):
            self._refill(index)

    def _refill(self, slot_index: int) -> None:
        address = self.buffer_mr.addr + slot_index * SLOT
        self._slot_addr[slot_index] = address
        self.srq.post_recv(RecvWR(local_addr=address, length=SLOT,
                                  wr_id=slot_index))

    def accept(self, client_host: Host) -> "RPCClient":
        """Create a connected QP pair for a new client."""
        client_cq = client_host.context.create_cq()
        client_qp = client_host.context.create_qp(client_host.pd, client_cq)
        server_qp = self.host.context.create_qp(self.host.pd, self.cq,
                                                srq=self.srq)
        client_qp.connect(server_qp)
        self._qps.append(server_qp)
        return RPCClient(self.cluster, client_host, client_qp, client_cq)

    def start(self) -> None:
        """Launch the polling process on the simulation kernel."""
        if self._running:
            raise RuntimeError("server already running")
        self._running = True
        Process(self.cluster.sim, self._serve(), name="rpc-server")

    def stop(self) -> None:
        """Stop serving; the polling process exits on its next tick."""
        self._running = False

    def _qp_for(self, qp_num: int) -> QueuePair:
        for qp in self._qps:
            if qp.qp_num == qp_num:
                return qp
        raise KeyError(f"no server QP {qp_num}")

    def _serve(self):
        while self._running:
            for wc in self.cq.drain():
                if wc.opcode is Opcode.RECV and wc.ok:
                    self._handle(wc)
            yield Timeout(self.poll_interval_ns)

    def _handle(self, wc) -> None:
        slot_index = wc.wr_id
        address = self._slot_addr[slot_index]
        request = self.host.memory.read(address, wc.byte_len)
        response = self.handler(request)
        if len(response) > SLOT:
            raise ValueError(f"handler response exceeds slot ({len(response)})")
        # respond on the QP the request arrived on
        qp = self._qp_for(wc.qp_num)
        self.host.memory.write(address, response)
        qp.post_send(SendWR(opcode=Opcode.SEND, local_addr=address,
                            length=len(response), signaled=False))
        self.served += 1
        self._refill(slot_index)


class RPCClient:
    """Blocking request/response calls against an :class:`RPCServer`."""

    def __init__(self, cluster: Cluster, host: Host,
                 qp: QueuePair, cq: CompletionQueue) -> None:
        self.cluster = cluster
        self.host = host
        self.qp = qp
        self.cq = cq
        self.mr = host.reg_mr(2 * SLOT)
        self.calls = 0

    def call(self, request: bytes, timeout_ns: float = 5e7) -> bytes:
        """Send a request and run the simulation until the response."""
        if len(request) > SLOT:
            raise ValueError(f"request exceeds slot size ({len(request)})")
        response_addr = self.mr.addr + SLOT
        self.qp.post_recv(RecvWR(local_addr=response_addr, length=SLOT,
                                 wr_id=7))
        self.host.memory.write(self.mr.addr, request)
        self.qp.post_send(SendWR(opcode=Opcode.SEND,
                                 local_addr=self.mr.addr,
                                 length=len(request), signaled=False))
        sim = self.cluster.sim
        deadline = sim.now + timeout_ns
        while True:
            wcs = [wc for wc in self.cq.drain() if wc.opcode is Opcode.RECV]
            if wcs:
                wc = wcs[0]
                if wc.status is not WCStatus.SUCCESS:
                    raise RuntimeError(f"RPC failed: {wc.status}")
                self.calls += 1
                return self.host.memory.read(response_addr, wc.byte_len)
            if sim.now >= deadline or not sim.step():
                raise TimeoutError("no RPC response")
