"""A one-sided RDMA key-value store.

The server registers a slot array; clients locate slots by hashing the
key and fetch them with RDMA Reads — zero server CPU on the read path,
the design point of FaRM/Pilaf-style stores.  Collisions are resolved
by bounded linear probing (``MAX_PROBES`` slots); writes go through
CAS-guarded slot versions so that concurrent one-sided readers can
detect torn reads.

Slot layout (``SLOT_SIZE`` bytes)::

    [ version:8 | key_len:2 | val_len:2 | pad:4 | key:32 | value:... ]

An odd version marks a slot mid-update.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Optional

from repro.host.cluster import Cluster, RDMAConnection
from repro.host.node import Host
from repro.verbs.mr import MemoryRegion

SLOT_SIZE = 256
SLOT_HEADER = struct.Struct("<QHH4x")
MAX_KEY = 32
MAX_VALUE = SLOT_SIZE - SLOT_HEADER.size - MAX_KEY
MAX_PROBES = 8


class StoreFullError(RuntimeError):
    """No free slot within the probe window of a key."""


class KVStoreServer:
    """Server side: owns the slot array MR."""

    def __init__(self, host: Host, num_slots: int = 1024) -> None:
        if num_slots <= 0 or (num_slots & (num_slots - 1)):
            raise ValueError(f"num_slots must be a power of two, got {num_slots}")
        self.host = host
        self.num_slots = num_slots
        self.mr: MemoryRegion = host.reg_mr(num_slots * SLOT_SIZE)
        host.memory.fill(self.mr.addr, self.mr.length, 0)

    def slot_of(self, key: bytes) -> int:
        """Home slot index of a key (shared with clients)."""
        digest = hashlib.sha256(key).digest()
        return int.from_bytes(digest[:8], "little") % self.num_slots

    def probe_sequence(self, key: bytes) -> list[int]:
        """The linear-probe slot indices for ``key``."""
        home = self.slot_of(key)
        return [(home + j) % self.num_slots for j in range(MAX_PROBES)]

    # Server-local loading (bulk setup without network traffic)
    def load(self, key: bytes, value: bytes) -> None:
        """Server-local bulk load (setup without network traffic)."""
        if len(key) > MAX_KEY:
            raise ValueError(f"key too long ({len(key)} > {MAX_KEY})")
        if len(value) > MAX_VALUE:
            raise ValueError(f"value too long ({len(value)} > {MAX_VALUE})")
        padded_key = key.ljust(MAX_KEY, b"\0")
        for slot in self.probe_sequence(key):
            addr = self.mr.addr + slot * SLOT_SIZE
            raw = self.host.memory.read(addr, SLOT_HEADER.size + MAX_KEY)
            version, key_len, _ = SLOT_HEADER.unpack(raw[: SLOT_HEADER.size])
            occupant = raw[SLOT_HEADER.size : SLOT_HEADER.size + key_len]
            if version != 0 and occupant != key:
                continue
            header = SLOT_HEADER.pack(2, len(key), len(value))
            self.host.memory.write(addr, header + padded_key + value)
            return
        raise StoreFullError(f"no slot for key {key!r} within {MAX_PROBES} probes")


class KVStoreClient:
    """Client side: one-sided GET/PUT against a server's slot array."""

    def __init__(self, conn: RDMAConnection, server: KVStoreServer) -> None:
        self.conn = conn
        self.server = server
        self.gets = 0
        self.puts = 0

    def _read_slot(self, slot: int) -> bytes:
        self.conn.post_read(self.server.mr, slot * SLOT_SIZE, SLOT_SIZE)
        wc = self.conn.await_completions(1)[0]
        if not wc.ok:
            raise RuntimeError(f"slot read failed: {wc.status}")
        return self.conn.client.memory.read(self.conn.local_mr.addr, SLOT_SIZE)

    @staticmethod
    def _decode_slot(raw: bytes) -> tuple[int, bytes, bytes]:
        """(version, key, value) of a raw slot image."""
        version, key_len, val_len = SLOT_HEADER.unpack(raw[: SLOT_HEADER.size])
        key = raw[SLOT_HEADER.size : SLOT_HEADER.size + key_len]
        value_start = SLOT_HEADER.size + MAX_KEY
        return version, key, raw[value_start : value_start + val_len]

    def get(self, key: bytes) -> Optional[bytes]:
        """One-sided GET: RDMA Reads along the probe sequence until the
        key or an empty slot is found."""
        for slot in self.server.probe_sequence(key):
            raw = self._read_slot(slot)
            version, stored_key, value = self._decode_slot(raw)
            if version == 0:
                break  # empty slot terminates the probe chain
            if version % 2:
                continue  # mid-update: treat as not found on this path
            if stored_key == key:
                self.gets += 1
                return value
        self.gets += 1
        return None

    def put(self, key: bytes, value: bytes) -> None:
        """PUT via version lock: CAS version to odd, write, bump to even.

        Three one-sided verbs; retries are the caller's concern (the
        CAS fails if another writer holds the slot).
        """
        if len(key) > MAX_KEY:
            raise ValueError(f"key too long ({len(key)} > {MAX_KEY})")
        if len(value) > MAX_VALUE:
            raise ValueError(f"value too long ({len(value)} > {MAX_VALUE})")
        # probe for our key or the first empty slot
        target = None
        for slot in self.server.probe_sequence(key):
            raw = self._read_slot(slot)
            version, stored_key, _ = self._decode_slot(raw)
            if version == 0 or (version % 2 == 0 and stored_key == key):
                target = (slot, version)
                break
        if target is None:
            raise StoreFullError(
                f"no slot for key {key!r} within {MAX_PROBES} probes"
            )
        slot, version = target
        offset = slot * SLOT_SIZE
        slot_addr_off = offset  # version word sits at the slot head
        if version % 2:
            raise RuntimeError("slot is locked by another writer")

        # lock: CAS version -> version + 1 (odd)
        self.conn.post_atomic(self.server.mr, slot_addr_off,
                              compare=version, swap=version + 1)
        wc = self.conn.await_completions(1)[0]
        if not wc.ok:
            raise RuntimeError(f"PUT lock failed: {wc.status}")
        seen = self.conn.client.memory.read_u64(self.conn.local_mr.addr)
        if seen != version:
            raise RuntimeError("lost PUT race: version changed")

        # write body (key + value), then unlock with version + 2
        body = key.ljust(MAX_KEY, b"\0") + value
        local = self.conn.local_mr.addr
        self.conn.client.memory.write(local, body)
        self.conn.post_write(self.server.mr, offset + SLOT_HEADER.size, len(body))
        header = SLOT_HEADER.pack(version + 2, len(key), len(value))
        self.conn.client.memory.write(local + len(body), header)
        self.conn.post_write(
            self.server.mr, offset, SLOT_HEADER.size,
            local_offset=len(body),
        )
        wcs = self.conn.await_completions(2)
        if not all(wc.ok for wc in wcs):
            raise RuntimeError("PUT body write failed")
        self.puts += 1


def build_kv_pair(cluster: Cluster, server_host: Host, client_host: Host,
                  num_slots: int = 1024) -> tuple[KVStoreServer, KVStoreClient]:
    """Convenience: a server and one connected client."""
    server = KVStoreServer(server_host, num_slots=num_slots)
    conn = cluster.connect(client_host, server_host)
    return server, KVStoreClient(conn, server)
