"""Real-world application substrates the side channels attack.

* :mod:`kvstore` — a one-sided RDMA key-value store (the "in-memory
  database or key-value store" the server of Figure 2 hosts);
* :mod:`shuffle_join` — distributed-database shuffle and join operators
  whose network phases produce Figure 12's fingerprints;
* :mod:`sherman` — a write-optimized distributed B+ tree on
  disaggregated memory, modelled after SHERMAN (the Section VI-B
  victim), with one-sided searches, CAS locking and a 64 B KV leaf
  layout;
* :mod:`rpc` — a SEND/RECV request-response service over a shared
  receive queue (the two-sided workload class).
"""

from repro.apps.kvstore import KVStoreClient, KVStoreServer
from repro.apps.shuffle_join import (
    DatabaseNode,
    JoinOperator,
    ShuffleOperator,
    OperatorSchedule,
)
from repro.apps.sherman import ShermanClient, ShermanMemoryServer
from repro.apps.rpc import RPCClient, RPCServer

__all__ = [
    "KVStoreServer",
    "KVStoreClient",
    "DatabaseNode",
    "ShuffleOperator",
    "JoinOperator",
    "OperatorSchedule",
    "ShermanMemoryServer",
    "ShermanClient",
    "RPCServer",
    "RPCClient",
]
