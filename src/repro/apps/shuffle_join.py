"""Distributed-database shuffle and join operators (Section VI-A).

The paper fingerprints the *network phases* of RDMA-based shuffle/join
(the network-intensive operators of distributed databases).  We model
each operator as a schedule of bulk fluid flows on the shared server
NIC:

* **Shuffle** — an all-to-all repartition: every worker streams its
  partitions at full rate for the round's duration.  On the victim's
  NIC this is one long saturating phase — the attacker's monitored
  bandwidth dips in a *plateau* (Figure 12 left).
* **Join (hash join)** — alternating build/probe rounds: short bursts
  of partition fetches separated by CPU-bound hashing gaps.  The
  attacker sees a *tooth* pattern (Figure 12 right).

Operators run against a :class:`DatabaseNode`, which owns the flows it
injects and removes them when each phase ends.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.host.cluster import Cluster
from repro.host.node import Host
from repro.rnic.bandwidth import FluidFlow
from repro.sim.units import MILLISECONDS
from repro.verbs.enums import Opcode


class DatabaseNode:
    """A database worker colocated with the contended server NIC."""

    def __init__(self, cluster: Cluster, host: Host) -> None:
        self.cluster = cluster
        self.host = host
        self._active: list[FluidFlow] = []

    def start_flow(self, opcode: Opcode, msg_size: int, qp_num: int,
                   label: str) -> FluidFlow:
        """Register one bulk flow on the shared NIC."""
        flow = FluidFlow(opcode=opcode, msg_size=msg_size, qp_num=qp_num,
                         label=label)
        self.host.rnic.add_fluid_flow(flow)
        self._active.append(flow)
        return flow

    def stop_flow(self, flow: FluidFlow) -> None:
        """Remove a flow started by :meth:`start_flow`."""
        self.host.rnic.remove_fluid_flow(flow)
        self._active.remove(flow)

    def stop_all(self) -> None:
        """Remove every flow this node still has registered."""
        for flow in list(self._active):
            self.stop_flow(flow)


@dataclasses.dataclass(frozen=True)
class ShuffleOperator:
    """One shuffle round: a sustained all-to-all repartition."""

    duration_ns: float = 40 * MILLISECONDS
    msg_size: int = 65536
    qp_num: int = 8
    fanout: int = 4   # peers being written to

    def run(self, node: DatabaseNode, start_ns: float) -> float:
        """Schedule this round at ``start_ns``; returns its end time."""
        sim = node.cluster.sim
        flows: list[FluidFlow] = []

        def begin() -> None:
            for peer in range(self.fanout):
                flows.append(node.start_flow(
                    Opcode.RDMA_WRITE, self.msg_size, self.qp_num,
                    label=f"shuffle-peer{peer}",
                ))

        def end() -> None:
            for flow in flows:
                node.stop_flow(flow)

        sim.schedule_at(start_ns, begin)
        sim.schedule_at(start_ns + self.duration_ns, end)
        return start_ns + self.duration_ns


@dataclasses.dataclass(frozen=True)
class JoinOperator:
    """One hash join: alternating network bursts and hashing gaps.

    Each burst materializes a build-side partition with bulk RDMA
    Writes, then the worker hashes it locally (the gap).
    """

    rounds: int = 6
    burst_ns: float = 6 * MILLISECONDS
    gap_ns: float = 6 * MILLISECONDS
    msg_size: int = 32768
    qp_num: int = 8

    def run(self, node: DatabaseNode, start_ns: float) -> float:
        """Schedule the join rounds at ``start_ns``; returns the end time."""
        sim = node.cluster.sim
        t = start_ns
        for round_index in range(self.rounds):
            flow_box: list[Optional[FluidFlow]] = [None]

            def begin(box=flow_box, idx=round_index) -> None:
                box[0] = node.start_flow(
                    Opcode.RDMA_WRITE, self.msg_size, self.qp_num,
                    label=f"join-round{idx}",
                )

            def end(box=flow_box) -> None:
                node.stop_flow(box[0])

            sim.schedule_at(t, begin)
            sim.schedule_at(t + self.burst_ns, end)
            t += self.burst_ns + self.gap_ns
        return t

    @property
    def duration_ns(self) -> float:
        return self.rounds * (self.burst_ns + self.gap_ns)


class OperatorSchedule:
    """A workload script: named operators at given times.

    The side-channel benchmarks replay schedules like
    ``[("shuffle", t0), ("join", t1), ...]`` while the attacker
    fingerprints them from bandwidth alone.
    """

    def __init__(self, node: DatabaseNode) -> None:
        self.node = node
        self.events: list[tuple[str, float, float]] = []  # (name, start, end)

    def add(self, name: str, operator, start_ns: float) -> float:
        """Schedule ``operator`` at ``start_ns``; returns its end time."""
        end = operator.run(self.node, start_ns)
        self.events.append((name, start_ns, end))
        return end

    def truth(self) -> list[tuple[str, float, float]]:
        """Ground-truth labels for evaluating the fingerprinting."""
        return sorted(self.events, key=lambda e: e[1])
