"""Kim & Hur's PCIe-contention side channel (ICTC'22) — the coarse
baseline of Table I's Grain-I row.

The attacker measures the latency of its own RDMA operations while a
colocated device (their paper: a GPU) drives DMA over the shared PCIe
link.  Contention raises attacker latency, revealing *that* the victim
is active — but only that: footnote 4 notes it "can only steal coarse
information ... rather than reveal detailed data".  We demonstrate both
halves: activity detection works, address recovery is at chance.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np

from repro.analysis.clustering import two_means
from repro.host.cluster import Cluster
from repro.rnic.bandwidth import FluidFlow
from repro.rnic.spec import RNICSpec, cx5
from repro.sim.units import MEBIBYTE
from repro.verbs.enums import Opcode


@dataclasses.dataclass(frozen=True)
class PCIeActivityResult:
    """Outcome of an on/off activity-detection run."""

    truth: tuple[int, ...]
    detected: tuple[int, ...]
    latencies_on: tuple[float, ...]
    latencies_off: tuple[float, ...]

    @property
    def detection_accuracy(self) -> float:
        hits = sum(1 for t, d in zip(self.truth, self.detected) if t == d)
        return hits / len(self.truth) if self.truth else 0.0

    @property
    def separation(self) -> float:
        """Mean latency gap between active and idle phases (ns)."""
        return float(np.mean(self.latencies_on) - np.mean(self.latencies_off))


class KimPCIeProbe:
    """The attacker: latency self-measurement under PCIe contention."""

    name = "kim-pcie"

    def __init__(self, spec: Optional[RNICSpec] = None) -> None:
        self.spec = spec if spec is not None else cx5()

    def _setup(self, seed: int):
        cluster = Cluster(seed=seed)
        server = cluster.add_host("server", spec=self.spec)
        attacker = cluster.add_host("attacker", spec=self.spec)
        conn = cluster.connect(attacker, server, max_send_wr=8)
        mr = server.reg_mr(2 * MEBIBYTE)
        return cluster, server, conn, mr

    def _mean_latency(self, conn, mr, samples: int = 20) -> float:
        latencies = []
        for i in range(samples):
            conn.post_read(mr, 64 * (i % 16), 64)
            wc = conn.await_completions(1)[0]
            latencies.append(wc.latency)
        return float(np.mean(latencies))

    def detect_activity(self, phases: Sequence[int], seed: int = 0
                        ) -> PCIeActivityResult:
        """Observe a victim toggling bulk DMA per phase; classify each
        phase as active/idle from attacker latency alone."""
        phases = [1 if p else 0 for p in phases]
        if not phases:
            raise ValueError("need at least one phase")
        cluster, server, conn, mr = self._setup(seed)
        latencies = []
        on, off = [], []
        for phase in phases:
            flow = None
            if phase:
                flow = FluidFlow(opcode=Opcode.RDMA_WRITE, msg_size=65536,
                                 qp_num=16, label="victim-dma")
                server.rnic.add_fluid_flow(flow)
            latency = self._mean_latency(conn, mr)
            latencies.append(latency)
            (on if phase else off).append(latency)
            if flow is not None:
                server.rnic.remove_fluid_flow(flow)
        _, _, threshold = two_means(np.asarray(latencies))
        detected = [1 if lat > threshold else 0 for lat in latencies]
        return PCIeActivityResult(
            truth=tuple(phases),
            detected=tuple(detected),
            latencies_on=tuple(on),
            latencies_off=tuple(off),
        )

    def address_recovery_accuracy(self, candidates: Sequence[int],
                                  trials: int = 34, seed: int = 0) -> float:
        """Try to recover WHICH address the victim hammers using only
        PCIe-level contention — footnote 4 says this must fail.

        The victim's per-address traffic is identical at PCIe
        granularity (same sizes, same rates), so the attacker's mean
        latency carries no address information and classification sits
        at chance (~1/len(candidates))."""
        if trials <= 0:
            raise ValueError("trials must be positive")
        candidates = list(candidates)
        cluster, server, conn, mr = self._setup(seed)
        rng = np.random.default_rng(seed)
        # calibration: mean latency while the victim hammers each address
        # (the victim's flow shape does not depend on the address at all)
        def observe(address: int) -> float:
            flow = FluidFlow(opcode=Opcode.RDMA_READ, msg_size=64,
                             qp_num=2, label=f"victim@{address}")
            server.rnic.add_fluid_flow(flow)
            latency = self._mean_latency(conn, mr, samples=10)
            server.rnic.remove_fluid_flow(flow)
            return latency

        templates = {addr: observe(addr) for addr in candidates}
        hits = 0
        for _ in range(trials):
            secret = int(rng.choice(candidates))
            measured = observe(secret)
            guess = min(templates, key=lambda a: abs(templates[a] - measured))
            hits += int(guess == secret)
        return hits / trials
