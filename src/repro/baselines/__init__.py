"""Prior-work baselines Ragnar is compared against.

* :mod:`pythia` — Pythia's persistent (cache-eviction) covert channel
  over the RNIC's MPT cache (Tsai et al., USENIX Security'19): the
  state of the art Ragnar claims 3.2x over, and the attack that
  :class:`~repro.defense.CacheGuard` catches;
* :mod:`kim_pcie` — Kim & Hur's PCIe-contention side channel (ICTC'22):
  coarse on/off activity detection, demonstrating footnote 4's "not
  fine-grained enough" (it cannot recover addresses).
"""

from repro.baselines.pythia import PythiaChannel, PythiaConfig, find_eviction_set
from repro.baselines.kim_pcie import KimPCIeProbe, PCIeActivityResult

__all__ = [
    "PythiaChannel",
    "PythiaConfig",
    "find_eviction_set",
    "KimPCIeProbe",
    "PCIeActivityResult",
]
