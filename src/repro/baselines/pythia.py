"""The Pythia baseline: a persistent covert channel over the MPT cache.

Pythia (Tsai, Payer, Zhang — USENIX Security'19) observed that RNICs
cache MR/page-table state on-chip and built remote evict+time attacks
on it.  As a covert channel: the receiver owns a *probe MR*; the sender
owns an *eviction set* of MRs mapping to the same MPT cache set.  To
send a 1 the sender touches the whole eviction set (kicking the
receiver's MPT entry out); to send a 0 it stays idle.  The receiver
times one read of its probe MR per symbol: a cache miss (slow — the
RNIC refetches the MR context over PCIe) decodes as 1.

The channel is *persistent* (it flips durable cache state), which is
precisely why eviction telemetry — :class:`repro.defense.CacheGuard` —
sees it, and why the paper classifies Ragnar's volatile channels as
stealthier.  Its bandwidth is bounded by the eviction-set walk, giving
Ragnar its 3.2x headline on CX-5.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.analysis.clustering import two_means
from repro.covert.result import ChannelResult
from repro.host.cluster import Cluster, RDMAConnection
from repro.rnic.caches import SetAssocCache
from repro.rnic.spec import RNICSpec, cx5
from repro.rnic.translation import mr_cache_id
from repro.sim.units import MEBIBYTE
from repro.verbs.mr import MemoryRegion


@dataclasses.dataclass(frozen=True)
class PythiaConfig:
    """Eviction-channel parameters."""

    probe_size: int = 64
    #: MRs registered while hunting collisions.  With S cache sets the
    #: expected hits per set are pool/S, so the pool must be several
    #: times the set count x ways (Pythia registers thousands on real
    #: hardware for the same reason).
    mr_pool: int = 1024
    #: Guard between sender and receiver turns.  Pythia's endpoints have
    #: no shared clock, so its protocol budgets conservative timing
    #: slots; this dominates the symbol time.
    settle_ns: float = 6000.0

    def __post_init__(self) -> None:
        if self.mr_pool < 64:
            raise ValueError("pool too small to find an eviction set")


def find_eviction_set(cache: SetAssocCache, target_rkey: int,
                      candidate_rkeys: list[int]) -> list[int]:
    """Rkeys whose MPT entries share the target's cache set.

    Pythia reverse engineers this on hardware with timing; with the
    simulated cache we can compute the set index directly — the result
    is the same eviction set the timing search would find.
    """
    target_set = cache.set_index(mr_cache_id(target_rkey))
    colliding = [
        rkey for rkey in candidate_rkeys
        if cache.set_index(mr_cache_id(rkey)) == target_set
    ]
    return colliding[: cache.ways]


class PythiaChannel:
    """Evict-and-time covert channel between two clients of one server."""

    name = "pythia-mpt"

    def __init__(self, spec: Optional[RNICSpec] = None,
                 config: Optional[PythiaConfig] = None) -> None:
        self.spec = spec if spec is not None else cx5()
        self.config = config if config is not None else PythiaConfig()

    def _build(self, seed: int):
        cluster = Cluster(seed=seed)
        server = cluster.add_host("server", spec=self.spec,
                                  memory_size=32 * MEBIBYTE)
        tx_host = cluster.add_host("pythia-tx", spec=self.spec)
        rx_host = cluster.add_host("pythia-rx", spec=self.spec)
        tx_conn = cluster.connect(tx_host, server, max_send_wr=8)
        rx_conn = cluster.connect(rx_host, server, max_send_wr=8)
        # the receiver's probe MR plus the sender's candidate pool; on
        # 4 KB pages — Pythia targets exactly this non-hugepage state
        probe_mr = server.reg_mr(4096, huge_pages=False)
        pool = [
            server.reg_mr(4096, huge_pages=False)
            for _ in range(self.config.mr_pool)
        ]
        cache = server.rnic.translation.mpt_cache
        eviction_rkeys = find_eviction_set(
            cache, probe_mr.rkey, [mr.rkey for mr in pool]
        )
        if len(eviction_rkeys) < cache.ways:
            raise RuntimeError(
                f"only {len(eviction_rkeys)} colliding MRs in a pool of "
                f"{self.config.mr_pool}; enlarge mr_pool"
            )
        by_rkey = {mr.rkey: mr for mr in pool}
        eviction_mrs = [by_rkey[rkey] for rkey in eviction_rkeys]
        return cluster, tx_conn, rx_conn, probe_mr, eviction_mrs

    @staticmethod
    def _read(conn: RDMAConnection, mr: MemoryRegion, size: int) -> float:
        conn.post_read(mr, 0, size)
        wc = conn.await_completions(1)[0]
        if not wc.ok:
            raise RuntimeError(f"read failed: {wc.status}")
        return wc.latency

    def transmit(self, bits, seed: int = 0) -> ChannelResult:
        """Lockstep transmission; returns Table-V-style metrics."""
        bits = [1 if b else 0 for b in bits]
        if not bits:
            raise ValueError("nothing to transmit")
        cfg = self.config
        cluster, tx_conn, rx_conn, probe_mr, eviction_mrs = self._build(seed)

        # prime: receiver loads its MPT entry
        self._read(rx_conn, probe_mr, cfg.probe_size)
        latencies = []
        start = cluster.sim.now
        for bit in bits:
            if bit:
                for mr in eviction_mrs:  # evict the probe entry
                    self._read(tx_conn, mr, cfg.probe_size)
            cluster.run_for(cfg.settle_ns)
            # probe read re-primes the entry for the next symbol
            latencies.append(self._read(rx_conn, probe_mr, cfg.probe_size))
        duration = cluster.sim.now - start

        _, _, threshold = two_means(np.asarray(latencies))
        decoded = [1 if lat > threshold else 0 for lat in latencies]
        return ChannelResult.build(
            channel=self.name,
            rnic=self.spec.name,
            sent=bits,
            decoded=decoded,
            duration_ns=duration,
        )

    def side_channel_oracle(self, trials: int = 40, seed: int = 0) -> float:
        """Pythia's original use: a remote oracle for "did the victim
        touch MR X recently?".

        Protocol per trial: the attacker evicts the target MR's MPT
        entry with the eviction set, waits a window in which the victim
        may or may not read the MR, then times a probe read — warm
        means the victim touched it.  Returns detection accuracy over
        random victim behaviour.
        """
        if trials <= 0:
            raise ValueError("trials must be positive")
        cfg = self.config
        cluster, attacker_conn, victim_conn, target_mr, eviction_mrs = (
            self._build(seed)
        )
        rng = cluster.sim.random.stream("pythia.oracle")

        # calibrate hit/miss probe latencies
        self._read(attacker_conn, target_mr, cfg.probe_size)   # warm
        hit_latency = self._read(attacker_conn, target_mr, cfg.probe_size)
        for mr in eviction_mrs:
            self._read(attacker_conn, mr, cfg.probe_size)
        miss_latency = self._read(attacker_conn, target_mr, cfg.probe_size)
        threshold = 0.5 * (hit_latency + miss_latency)

        correct = 0
        for _ in range(trials):
            for mr in eviction_mrs:                  # evict
                self._read(attacker_conn, mr, cfg.probe_size)
            victim_touched = bool(rng.random() < 0.5)
            if victim_touched:
                self._read(victim_conn, target_mr, cfg.probe_size)
            cluster.run_for(cfg.settle_ns)
            probe = self._read(attacker_conn, target_mr, cfg.probe_size)
            guessed = probe < threshold
            correct += int(guessed == victim_touched)
        return correct / trials

    def cache_telemetry(self, bits, seed: int = 0) -> dict:
        """Run a transmission and report the MPT cache's counters —
        the evidence :class:`~repro.defense.CacheGuard` keys on.

        Besides the whole-run aggregates this also samples the eviction
        counter once per symbol (``eviction_series``: parallel
        timestamp/delta tuples) — the time series a polling defender
        such as :class:`repro.defense.OnlineCounterDefense` watches.
        Because the channel is persistent, every 1-symbol must kick
        real entries out of the cache and the series toggles with the
        payload; that per-symbol structure, not the aggregate, is what
        online change-point detectors key on."""
        bits = [1 if b else 0 for b in bits]
        cluster, tx_conn, rx_conn, probe_mr, eviction_mrs = self._build(seed)
        cache = cluster.hosts["server"].rnic.translation.mpt_cache
        cache.reset_stats()
        start = cluster.sim.now
        self._read(rx_conn, probe_mr, self.config.probe_size)
        sample_times = []
        sample_deltas = []
        last_evictions = cache.evictions
        for bit in bits:
            if bit:
                for mr in eviction_mrs:
                    self._read(tx_conn, mr, self.config.probe_size)
            cluster.run_for(self.config.settle_ns)
            self._read(rx_conn, probe_mr, self.config.probe_size)
            sample_times.append(cluster.sim.now - start)
            sample_deltas.append(float(cache.evictions - last_evictions))
            last_evictions = cache.evictions
        return {
            "duration_ns": cluster.sim.now - start,
            "accesses": cache.hits + cache.misses,
            "misses": cache.misses,
            "evictions": cache.evictions,
            "eviction_series": (tuple(sample_times), tuple(sample_deltas)),
        }
