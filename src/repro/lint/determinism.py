"""The runtime half of the determinism pass.

Static rules (RAG001/RAG002/...) catch the *sources* of nondeterminism;
this module verifies the *promise* itself: running the same workload
twice from the same seed must produce a bit-identical event trace and
payload.  The auditors here run a workload N times, fingerprint each
run (a canonical SHA-256 over the payload, plus the kernel's event-trace
digest when a :class:`~repro.sim.kernel.Simulator` is involved) and
report the first divergence.

Three entry points, from most to least generic::

    audit_callable(make_run)            # any () -> payload factory
    audit_simulator(drive)              # drive(sim) with a traced kernel
    audit_experiment(table5.run, ...)   # an experiments/ runner

plus :data:`AUDITS`, the canned audits exposed by
``python -m repro.lint --audit <name>``.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any, Callable, Optional

import numpy as np

from repro.sim.kernel import Simulator


# ----------------------------------------------------------------------
# Canonical fingerprinting
# ----------------------------------------------------------------------

def canonicalize(obj: Any) -> Any:
    """A JSON-serializable, order-stable form of ``obj``.

    Floats are kept bit-exact through ``repr``; dict keys are sorted;
    dataclasses, enums and numpy values are unwrapped.  Unknown objects
    fall back to ``repr`` — adequate for result payloads, which are
    plain rows/series containers.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {f.name: canonicalize(getattr(obj, f.name))
                  for f in dataclasses.fields(obj)}
        return {"__dataclass__": type(obj).__name__, **fields}
    if isinstance(obj, enum.Enum):
        return f"{type(obj).__name__}.{obj.name}"
    if isinstance(obj, dict):
        return {str(key): canonicalize(value)
                for key, value in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [canonicalize(item) for item in obj]
    if isinstance(obj, np.ndarray):
        return [canonicalize(item) for item in obj.tolist()]
    if isinstance(obj, np.generic):
        return canonicalize(obj.item())
    if isinstance(obj, float):
        return repr(obj)
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    return repr(obj)


def fingerprint(payload: Any) -> str:
    """Canonical SHA-256 of an arbitrary result payload."""
    text = json.dumps(canonicalize(payload), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Audit records
# ----------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class RunRecord:
    """Digest of one run of the audited workload."""

    payload_hash: str
    trace_digest: Optional[str] = None
    events_fired: Optional[int] = None
    final_time: Optional[float] = None


@dataclasses.dataclass(frozen=True)
class AuditReport:
    """Digests of N identical-seed runs, plus the divergence verdict."""

    name: str
    seed: int
    runs: tuple[RunRecord, ...]

    @property
    def deterministic(self) -> bool:
        return not self.mismatches()

    def mismatches(self) -> list[str]:
        """Human-readable description of every diverging field."""
        problems: list[str] = []
        if len(self.runs) < 2:
            return problems
        first = self.runs[0]
        for index, run in enumerate(self.runs[1:], start=2):
            if run.payload_hash != first.payload_hash:
                problems.append(
                    f"run {index} payload hash {run.payload_hash[:12]} != "
                    f"run 1 {first.payload_hash[:12]}")
            if run.trace_digest != first.trace_digest:
                problems.append(
                    f"run {index} event-trace digest {run.trace_digest} != "
                    f"run 1 {first.trace_digest}")
            if run.events_fired != first.events_fired:
                problems.append(
                    f"run {index} fired {run.events_fired} events, "
                    f"run 1 fired {first.events_fired}")
            if run.final_time != first.final_time:  # ragnar-lint: disable=RAG003 — divergence check must be bit-exact
                problems.append(
                    f"run {index} ended at t={run.final_time!r}, "
                    f"run 1 at t={first.final_time!r}")
        return problems

    def summary(self) -> str:
        verdict = "deterministic" if self.deterministic else "DIVERGED"
        lines = [f"audit {self.name!r} (seed={self.seed}, "
                 f"{len(self.runs)} runs): {verdict}"]
        lines.extend(f"  - {problem}" for problem in self.mismatches())
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Auditors
# ----------------------------------------------------------------------

def audit_callable(make_run: Callable[[], Any], *, name: str = "callable",
                   seed: int = 0, runs: int = 2) -> AuditReport:
    """Run ``make_run()`` N times and compare payload fingerprints.

    ``make_run`` must build a *fresh* world on every call (simulator,
    hosts, channels) so that each run is an independent replay.
    """
    if runs < 2:
        raise ValueError(f"need at least two runs to compare, got {runs}")
    records = tuple(RunRecord(payload_hash=fingerprint(make_run()))
                    for _ in range(runs))
    return AuditReport(name=name, seed=seed, runs=records)


def audit_simulator(drive: Callable[[Simulator], Any], *, seed: int = 0,
                    runs: int = 2, name: str = "simulator") -> AuditReport:
    """Replay ``drive(sim)`` on fresh traced kernels and compare the
    event-trace digests as well as the returned payloads."""
    if runs < 2:
        raise ValueError(f"need at least two runs to compare, got {runs}")
    records = []
    for _ in range(runs):
        sim = Simulator(seed=seed, trace=True)
        payload = drive(sim)
        records.append(RunRecord(
            payload_hash=fingerprint(payload),
            trace_digest=sim.trace_digest,
            events_fired=sim.events_fired,
            final_time=sim.now,
        ))
    return AuditReport(name=name, seed=seed, runs=tuple(records))


def audit_experiment(runner: Callable[..., Any], *, seed: int = 0,
                     runs: int = 2, name: Optional[str] = None,
                     **kwargs: Any) -> AuditReport:
    """Audit an ``experiments/`` runner: call it N times with the same
    seed and fingerprint the :class:`ExperimentResult` payloads."""
    label = name or getattr(runner, "__module__", "experiment")
    return audit_callable(lambda: runner(seed=seed, **kwargs),
                          name=label, seed=seed, runs=runs)


# ----------------------------------------------------------------------
# Canned audits (CLI: python -m repro.lint --audit <name>)
# ----------------------------------------------------------------------

def _audit_inter_mr(seed: int, runs: int) -> AuditReport:
    """Grain-III inter-MR covert channel: the paper's Section V-C setup
    transmitting a short payload end to end."""
    from repro.covert import InterMRChannel, random_bits
    from repro.covert.inter_mr import InterMRConfig
    from repro.rnic.spec import cx4

    def make_run():
        channel = InterMRChannel(cx4(), InterMRConfig.best_for("CX-4"))
        bits = random_bits(16, seed=seed + 1)
        return channel.transmit(bits, seed=seed)

    return audit_callable(make_run, name="inter-mr", seed=seed, runs=runs)


def _audit_table1(seed: int, runs: int) -> AuditReport:
    """Table I defense matrix (fast, exercises defense + covert layers)."""
    from repro.experiments import table1
    return audit_experiment(table1.run, seed=seed, runs=runs, name="table1")


def _audit_faults(seed: int, runs: int) -> AuditReport:
    """Fault-injected covert channels (smoke scale): the entire
    fault-injection subsystem — Gilbert–Elliott loss, pause storms,
    RNR pressure, ARQ retransmissions — must replay bit-identically."""
    from repro.experiments import faults
    return audit_experiment(faults.run, seed=seed, runs=runs,
                            name="faults", smoke=True)


AUDITS: dict[str, Callable[[int, int], AuditReport]] = {
    "inter-mr": _audit_inter_mr,
    "table1": _audit_table1,
    "faults": _audit_faults,
}


def run_audit(name: str, *, seed: int = 0, runs: int = 2) -> AuditReport:
    """Run one canned audit by name (see :data:`AUDITS`)."""
    try:
        audit = AUDITS[name]
    except KeyError:
        raise KeyError(
            f"unknown audit {name!r}; available: {sorted(AUDITS)}") from None
    return audit(seed, runs)
