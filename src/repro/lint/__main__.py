"""Command-line entry point.

Usage::

    python -m repro.lint src/repro tests          # lint, text output
    python -m repro.lint src/ --format json       # machine-readable
    python -m repro.lint --list-rules             # the RAGxxx rule pack
    python -m repro.lint --audit inter-mr         # runtime replay audit

Exit status: 0 when clean, 1 on findings (or audit divergence), 2 on
usage errors.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.lint.determinism import AUDITS, run_audit
from repro.lint.engine import run_lint
from repro.lint.rules import default_rules, rule_index


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Ragnar determinism & invariant checks "
                    "(static rules + runtime replay audits).",
    )
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint "
                             "(default: src/repro)")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--exclude", action="append", default=[],
                        metavar="PREFIX",
                        help="path prefix to skip while walking "
                             "directories (repeatable)")
    parser.add_argument("--include-suppressed", action="store_true",
                        help="also print suppressed findings")
    parser.add_argument("--list-rules", action="store_true",
                        help="list the rule pack and exit")
    parser.add_argument("--audit", choices=sorted(AUDITS), default=None,
                        help="run a canned runtime determinism audit "
                             "instead of the static pass")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for --audit (default: 0)")
    parser.add_argument("--runs", type=int, default=2,
                        help="replay count for --audit (default: 2)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, cls in sorted(rule_index().items()):
            print(f"{rule_id}  {cls.title}")
        return 0

    if args.audit:
        if args.runs < 2:
            parser.error(f"--runs must be at least 2 to compare replays, got {args.runs}")
        report = run_audit(args.audit, seed=args.seed, runs=args.runs)
        print(report.summary())
        return 0 if report.deterministic else 1

    paths = args.paths or ["src/repro"]
    missing = [p for p in paths if not pathlib.Path(p).exists()]
    if missing:
        parser.error("no such file or directory: " + ", ".join(missing))
    report = run_lint(paths, rules=default_rules(), exclude=args.exclude)

    if args.format == "json":
        payload = {
            "files_scanned": report.files_scanned,
            "findings": [f.to_dict() for f in report.findings
                         if args.include_suppressed or not f.suppressed],
            "clean": report.clean,
        }
        print(json.dumps(payload, indent=2))
    else:
        shown = (report.findings if args.include_suppressed
                 else report.active)
        for finding in shown:
            print(finding.format())
        print(report.summary())
    return 0 if report.clean else 1


if __name__ == "__main__":
    sys.exit(main())
