"""Command-line entry point.

Usage::

    python -m repro.lint src/repro tests          # lint, text output
    python -m repro.lint src/ --format json       # machine-readable
    python -m repro.lint src/ --format sarif      # CI code scanning
    python -m repro.lint --flow src/repro         # whole-program pass
    python -m repro.lint --flow --update-baseline # accept findings
    python -m repro.lint --list-rules             # the RAGxxx rule pack
    python -m repro.lint --audit inter-mr         # runtime replay audit

Exit status: 0 when clean, 1 on findings (or audit divergence), 2 on
usage errors.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.lint.determinism import AUDITS, run_audit
from repro.lint.engine import run_lint
from repro.lint.output import findings_to_json, findings_to_sarif
from repro.lint.rules import default_rules, rule_index


def _emit(findings, *, fmt: str, include_suppressed: bool,
          files_scanned: int, summary: str, rule_titles,
          extra=None) -> None:
    shown = [f for f in findings if include_suppressed or not f.suppressed]
    if fmt == "json":
        print(findings_to_json(shown, files_scanned=files_scanned,
                               extra=extra))
    elif fmt == "sarif":
        print(findings_to_sarif(shown, rule_titles=rule_titles))
    else:
        for finding in shown:
            print(finding.format())
        print(summary)


def _run_flow(args, parser) -> int:
    from repro.lint import flow
    from repro.lint.flow.analyses import flow_rule_index
    from repro.lint.flow.baseline import Baseline, load_baseline
    from repro.lint.flow.cache import DEFAULT_CACHE_NAME, FactsCache

    paths = args.paths or ["src/repro"]
    missing = [p for p in paths if not pathlib.Path(p).exists()]
    if missing:
        parser.error("no such file or directory: " + ", ".join(missing))

    cache = None
    if not args.no_cache:
        cache_path = (pathlib.Path(args.cache) if args.cache
                      else pathlib.Path(DEFAULT_CACHE_NAME))
        cache = FactsCache(cache_path)

    baseline_path = (pathlib.Path(args.baseline) if args.baseline
                     else flow.default_baseline_path())
    baseline = None
    if baseline_path is not None and not args.update_baseline:
        baseline = load_baseline(baseline_path)

    report = flow.run_flow(paths, exclude=args.exclude, cache=cache,
                           baseline=baseline)

    if args.update_baseline:
        if baseline_path is None:
            parser.error("--update-baseline needs --baseline PATH "
                         "(no tools/flow_baseline.json found)")
        new_baseline = Baseline(
            ff.fingerprint for ff in report.findings
            if not ff.finding.suppressed)
        new_baseline.save(baseline_path)
        print(f"baseline updated: {len(new_baseline)} finding(s) "
              f"written to {baseline_path}")
        return 0

    titles = {rule_id: rule.title
              for rule_id, rule in flow_rule_index().items()}
    titles["RAG000"] = "file could not be parsed"
    _emit(sorted((ff.finding for ff in report.findings),
                 key=lambda f: (f.path, f.line, f.col, f.rule_id)),
          fmt=args.format, include_suppressed=args.include_suppressed,
          files_scanned=report.files_scanned, summary=report.summary(),
          rule_titles=titles,
          extra={"cache_hits": report.cache_hits,
                 "cache_misses": report.cache_misses,
                 "baselined": report.baselined})
    return 0 if report.clean else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Ragnar determinism & invariant checks "
                    "(static rules + whole-program flow analyses + "
                    "runtime replay audits).",
    )
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint "
                             "(default: src/repro)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text")
    parser.add_argument("--exclude", action="append", default=[],
                        metavar="PREFIX",
                        help="path prefix to skip while walking "
                             "directories (repeatable)")
    parser.add_argument("--include-suppressed", action="store_true",
                        help="also print suppressed findings")
    parser.add_argument("--list-rules", action="store_true",
                        help="list the rule pack and exit")
    parser.add_argument("--flow", action="store_true",
                        help="run the whole-program flow analyses "
                             "(RAG100-RAG106) instead of the per-file "
                             "rules")
    parser.add_argument("--baseline", metavar="PATH", default=None,
                        help="flow baseline file (default: the "
                             "committed tools/flow_baseline.json)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="write the current flow findings to the "
                             "baseline instead of failing on them")
    parser.add_argument("--cache", metavar="PATH", default=None,
                        help="flow facts cache file (default: "
                             ".lint_flow_cache.json)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the flow facts cache")
    parser.add_argument("--audit", choices=sorted(AUDITS), default=None,
                        help="run a canned runtime determinism audit "
                             "instead of the static pass")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for --audit (default: 0)")
    parser.add_argument("--runs", type=int, default=2,
                        help="replay count for --audit (default: 2)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, cls in sorted(rule_index().items()):
            print(f"{rule_id}  {cls.title}")
        from repro.lint.flow.analyses import flow_rule_index
        for rule_id, rule in sorted(flow_rule_index().items()):
            print(f"{rule_id}  {rule.title} (--flow)")
        return 0

    if args.audit:
        if args.runs < 2:
            parser.error(f"--runs must be at least 2 to compare replays, got {args.runs}")
        report = run_audit(args.audit, seed=args.seed, runs=args.runs)
        print(report.summary())
        return 0 if report.deterministic else 1

    if args.flow:
        return _run_flow(args, parser)
    if args.update_baseline:
        parser.error("--update-baseline only applies to --flow")

    paths = args.paths or ["src/repro"]
    missing = [p for p in paths if not pathlib.Path(p).exists()]
    if missing:
        parser.error("no such file or directory: " + ", ".join(missing))
    report = run_lint(paths, rules=default_rules(), exclude=args.exclude)

    titles = {rule_id: cls.title for rule_id, cls in rule_index().items()}
    _emit(report.findings, fmt=args.format,
          include_suppressed=args.include_suppressed,
          files_scanned=report.files_scanned, summary=report.summary(),
          rule_titles=titles)
    return 0 if report.clean else 1


if __name__ == "__main__":
    sys.exit(main())
