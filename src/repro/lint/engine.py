"""The rule engine: file walking, AST parsing, suppressions, reporting.

``repro.lint`` is a *repo-specific* static-analysis pass.  Generic
linters cannot know that ``Simulator.now`` is kernel-owned state, that
all randomness must flow through :class:`repro.sim.random.RandomStreams`,
or that a ``time.time()`` call inside a model silently breaks the
bit-identical-replay promise every experiment depends on.  The engine
here is deliberately small: one :class:`Rule` per invariant, an
``ast``-based walk per file, and inline ``# ragnar-lint: disable=RAGxxx``
suppressions for the rare sanctioned exception.
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib
import re
from typing import Iterable, Iterator, Optional, Sequence

#: Directory names never descended into when walking a tree.  Explicitly
#: named paths (files or directories) are always linted, so fixture
#: corpora can still be targeted directly.
SKIPPED_DIRS = {".git", "__pycache__", ".venv", "venv", "build", "dist",
                ".mypy_cache", ".ruff_cache", ".pytest_cache", "node_modules"}

#: Inline suppression syntax: ``# ragnar-lint: disable=RAG001,RAG007``
#: (or ``disable=all``) on the offending line.
SUPPRESS_RE = re.compile(r"#\s*ragnar-lint:\s*disable=([A-Za-z0-9_,\s]+)")

#: Pseudo-rule id for files the engine cannot parse.
PARSE_ERROR_ID = "RAG000"


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: str
    message: str
    suppressed: bool = False

    def format(self) -> str:
        mark = " (suppressed)" if self.suppressed else ""
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule_id} [{self.severity}] {self.message}{mark}")

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class FileContext:
    """Everything a rule needs to check one file."""

    path: str
    #: Package-relative module path ("repro/sim/kernel.py"), or ``None``
    #: when the file lives outside the ``repro`` package.
    module: Optional[str]
    tree: ast.AST
    lines: tuple[str, ...]


class Rule:
    """One invariant.  Subclasses set the class attributes and implement
    :meth:`check`, yielding findings for a single file."""

    rule_id: str = "RAG999"
    title: str = ""
    severity: str = "error"
    #: Package-relative path prefixes this rule applies to; ``None``
    #: applies everywhere (including files outside the package).
    scope: Optional[tuple[str, ...]] = None
    #: Package-relative path prefixes exempt from this rule.
    exclude: tuple[str, ...] = ()

    def applies_to(self, module: Optional[str]) -> bool:
        if module is not None and any(module.startswith(e) for e in self.exclude):
            return False
        if self.scope is None:
            return True
        if module is None:
            return False
        return any(module.startswith(prefix) for prefix in self.scope)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            severity=self.severity,
            message=message,
        )


@dataclasses.dataclass
class LintReport:
    """Aggregate result of one engine run."""

    findings: list[Finding] = dataclasses.field(default_factory=list)
    files_scanned: int = 0

    @property
    def active(self) -> list[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def clean(self) -> bool:
        return not self.active

    def summary(self) -> str:
        return (f"{self.files_scanned} files scanned: "
                f"{len(self.active)} finding(s), "
                f"{len(self.suppressed)} suppressed")


def module_path_for(path: pathlib.Path) -> Optional[str]:
    """The package-relative module path, anchored at the *last* ``repro``
    directory component — ``None`` for files outside the package."""
    parts = path.resolve().parts
    anchor = None
    for index, part in enumerate(parts):
        if part == "repro":
            anchor = index
    if anchor is None:
        return None
    return "/".join(parts[anchor:])


def parse_suppressions(lines: Sequence[str]) -> dict[int, set[str]]:
    """Map of 1-based line number -> rule ids disabled on that line."""
    table: dict[int, set[str]] = {}
    for number, line in enumerate(lines, start=1):
        match = SUPPRESS_RE.search(line)
        if match:
            ids = {token.strip() for token in match.group(1).split(",")}
            table[number] = {i for i in ids if i}
    return table


def iter_python_files(paths: Iterable[str],
                      exclude: Sequence[str] = ()) -> Iterator[pathlib.Path]:
    """Expand files/directories into ``.py`` files, deterministically.

    ``exclude`` entries are path prefixes (matched against the resolved
    POSIX path) pruned while *walking* directories; explicitly named
    paths always survive.
    """
    resolved_excludes = [str(pathlib.Path(e).resolve()) for e in exclude]

    def excluded(path: pathlib.Path) -> bool:
        text = str(path.resolve())
        return any(text == e or text.startswith(e + "/")
                   for e in resolved_excludes)

    seen: set[pathlib.Path] = set()
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_file():
            if path not in seen:
                seen.add(path)
                yield path
            continue
        for child in sorted(path.rglob("*.py")):
            if child in seen:
                continue
            if any(part in SKIPPED_DIRS for part in child.parts):
                continue
            if excluded(child):
                continue
            seen.add(child)
            yield child


def lint_source(source: str, *, path: str = "<string>",
                module: Optional[str] = None,
                rules: Optional[Sequence[Rule]] = None) -> list[Finding]:
    """Lint a source string (the embedding/testing entry point).

    ``module`` is the virtual package-relative path used for rule
    scoping, e.g. ``"repro/rnic/model.py"``.
    """
    if rules is None:
        from repro.lint.rules import default_rules
        rules = default_rules()
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        return [Finding(path=path, line=error.lineno or 1,
                        col=error.offset or 0, rule_id=PARSE_ERROR_ID,
                        severity="error",
                        message=f"could not parse file: {error.msg}")]
    lines = tuple(source.splitlines())
    ctx = FileContext(path=path, module=module, tree=tree, lines=lines)
    suppressions = parse_suppressions(lines)
    findings = []
    for rule in rules:
        if not rule.applies_to(module):
            continue
        for finding in rule.check(ctx):
            disabled = suppressions.get(finding.line, ())
            if finding.rule_id in disabled or "all" in disabled:
                finding = dataclasses.replace(finding, suppressed=True)
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


def run_lint(paths: Iterable[str], *,
             rules: Optional[Sequence[Rule]] = None,
             exclude: Sequence[str] = ()) -> LintReport:
    """Lint files/directories and aggregate a :class:`LintReport`."""
    if rules is None:
        from repro.lint.rules import default_rules
        rules = default_rules()
    report = LintReport()
    for file_path in iter_python_files(paths, exclude=exclude):
        report.files_scanned += 1
        try:
            source = file_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as error:
            report.findings.append(Finding(
                path=str(file_path), line=1, col=0, rule_id=PARSE_ERROR_ID,
                severity="error", message=f"could not read file: {error}"))
            continue
        report.findings.extend(lint_source(
            source, path=str(file_path),
            module=module_path_for(file_path), rules=rules))
    return report
