"""Determinism & invariant checks for the Ragnar reproduction.

Two complementary halves:

* a **static pass** (:mod:`repro.lint.engine` + :mod:`repro.lint.rules`):
  an AST rule engine with repo-specific RAG001–RAG008 checks, runnable
  as ``python -m repro.lint src/repro tests``;
* a **runtime auditor** (:mod:`repro.lint.determinism`): replays a
  workload from one seed and fails on any payload or event-trace
  divergence.

See docs/LINT.md for the rule catalogue and suppression syntax.
"""

from repro.lint.determinism import (
    AuditReport,
    RunRecord,
    audit_callable,
    audit_experiment,
    audit_simulator,
    fingerprint,
    run_audit,
)
from repro.lint.engine import (
    FileContext,
    Finding,
    LintReport,
    Rule,
    lint_source,
    run_lint,
)
from repro.lint.rules import default_rules, rule_index

__all__ = [
    "AuditReport",
    "RunRecord",
    "audit_callable",
    "audit_experiment",
    "audit_simulator",
    "fingerprint",
    "run_audit",
    "FileContext",
    "Finding",
    "LintReport",
    "Rule",
    "lint_source",
    "run_lint",
    "default_rules",
    "rule_index",
]
